// Ablation: centralized vs tree barrier inside the OpenMP runtime.
// The centralized barrier serializes all arrivals on one cacheline
// (O(n)); the radix-2 tree bounds the critical path at O(log n).
#include <cstdio>
#include <functional>
#include <vector>

#include "harness/jobs/runner.hpp"
#include "harness/metrics.hpp"
#include "harness/table.hpp"
#include "komp/runtime.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"

using namespace kop;

namespace {

double barrier_cost_us(komp::RuntimeTuning::BarrierAlgo algo, int threads) {
  sim::Engine engine(42);
  nautilus::NautilusKernel nk(engine, hw::phi());
  nk.set_env("OMP_NUM_THREADS", std::to_string(threads));
  pthread_compat::Pthreads pt(nk, pthread_compat::nautilus_native_tuning());
  double out = 0.0;
  nk.spawn_thread(
      "main",
      [&] {
        komp::RuntimeTuning tuning;
        tuning.barrier_algo = algo;
        komp::Runtime rt(pt, tuning);
        constexpr int kReps = 64;
        rt.parallel([&](komp::TeamThread& tt) {
          tt.barrier();  // warm up the pool
          const double t0 = rt.wtime();
          for (int i = 0; i < kReps; ++i) tt.barrier();
          if (tt.id() == 0) out = (rt.wtime() - t0) / kReps * 1e6;
        });
      },
      0);
  engine.run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  std::printf("== Ablation: barrier algorithm (centralized vs tree) ==\n");
  std::printf("   mean barrier cost (us) on PHI, kernel threads\n\n");

  auto counts = opts.quick ? std::vector<int>{2, 8}
                           : std::vector<int>{2, 4, 8, 16, 32, 64};
  // This ablation's cells are not declarative points (no cache), so
  // --shard partitions the table rows round-robin by index: each
  // worker prints its rows and the operator concatenates the outputs.
  const auto& shard = opts.jobs.shard;
  if (shard.list_only) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      std::printf("%zu/%d row threads=%d\n", i % shard.count + 1, shard.count,
                  counts[i]);
    }
    return 0;
  }
  if (shard.enabled()) {
    std::vector<int> own;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (static_cast<int>(i % shard.count) == shard.index)
        own.push_back(counts[i]);
    }
    counts = own;
    std::printf("[shard %s] this shard's rows only (no cache; concatenate"
                " shard outputs)\n\n", shard.label().c_str());
  }
  // Each cell builds its own engine, so the cells are independent
  // simulation tasks; run them through the host-thread pool.
  std::vector<double> central(counts.size()), tree(counts.size());
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    tasks.push_back([&central, &counts, i] {
      central[i] = barrier_cost_us(
          komp::RuntimeTuning::BarrierAlgo::kCentralized, counts[i]);
    });
    tasks.push_back([&tree, &counts, i] {
      tree[i] =
          barrier_cost_us(komp::RuntimeTuning::BarrierAlgo::kTree, counts[i]);
    });
  }
  harness::jobs::JobRunner runner(opts.jobs);
  runner.run_tasks(tasks);

  harness::Table t({"threads", "centralized us", "tree us", "speedup"});
  for (std::size_t i = 0; i < counts.size(); ++i) {
    t.add_row({std::to_string(counts[i]), harness::Table::num(central[i], 3),
               harness::Table::num(tree[i], 3),
               harness::Table::num(central[i] / tree[i])});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected: the tree wins increasingly with thread count\n"
              "(libomp defaults to a hyper barrier for the same reason).\n");
  return 0;
}
