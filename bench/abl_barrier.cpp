// Ablation: centralized vs tree barrier inside the OpenMP runtime.
// The centralized barrier serializes all arrivals on one cacheline
// (O(n)); the radix-2 tree bounds the critical path at O(log n).
#include <cstdio>

#include "harness/table.hpp"
#include "komp/runtime.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"

using namespace kop;

namespace {

double barrier_cost_us(komp::RuntimeTuning::BarrierAlgo algo, int threads) {
  sim::Engine engine(42);
  nautilus::NautilusKernel nk(engine, hw::phi());
  nk.set_env("OMP_NUM_THREADS", std::to_string(threads));
  pthread_compat::Pthreads pt(nk, pthread_compat::nautilus_native_tuning());
  double out = 0.0;
  nk.spawn_thread(
      "main",
      [&] {
        komp::RuntimeTuning tuning;
        tuning.barrier_algo = algo;
        komp::Runtime rt(pt, tuning);
        constexpr int kReps = 64;
        rt.parallel([&](komp::TeamThread& tt) {
          tt.barrier();  // warm up the pool
          const double t0 = rt.wtime();
          for (int i = 0; i < kReps; ++i) tt.barrier();
          if (tt.id() == 0) out = (rt.wtime() - t0) / kReps * 1e6;
        });
      },
      0);
  engine.run();
  return out;
}

}  // namespace

int main() {
  std::printf("== Ablation: barrier algorithm (centralized vs tree) ==\n");
  std::printf("   mean barrier cost (us) on PHI, kernel threads\n\n");
  harness::Table t({"threads", "centralized us", "tree us", "speedup"});
  for (int n : {2, 4, 8, 16, 32, 64}) {
    const double central =
        barrier_cost_us(komp::RuntimeTuning::BarrierAlgo::kCentralized, n);
    const double tree =
        barrier_cost_us(komp::RuntimeTuning::BarrierAlgo::kTree, n);
    t.add_row({std::to_string(n), harness::Table::num(central, 3),
               harness::Table::num(tree, 3),
               harness::Table::num(central / tree)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected: the tree wins increasingly with thread count\n"
              "(libomp defaults to a hyper barrier for the same reason).\n");
  return 0;
}
