// Ablation: gang scheduling of PIK process thread groups (§4.2).
//
// Two processes share the machine's CPUs.  Under gang scheduling each
// group's threads run simultaneously; under uncoordinated per-CPU
// timeslicing the group dephases and every barrier waits for
// descheduled partners.  The gap widens with barrier frequency.
#include <cstdio>
#include <functional>
#include <vector>

#include "harness/jobs/runner.hpp"
#include "harness/metrics.hpp"
#include "harness/table.hpp"
#include "osal/sync.hpp"
#include "pik/gang.hpp"
#include "pik/pik_os.hpp"

using namespace kop;

namespace {

double run(pik::GangScheduler::Policy policy, int threads, int rounds,
           sim::Time work_per_round) {
  sim::Engine engine(23);
  pik::PikOs os(engine, hw::phi());
  pik::GangScheduler gang(os, policy, /*groups=*/2);
  osal::Barrier barrier(os, threads);
  sim::Time done = 0;
  for (int t = 0; t < threads; ++t) {
    os.spawn_thread(
        "g0-" + std::to_string(t),
        [&, t] {
          for (int r = 0; r < rounds; ++r) {
            gang.compute(0, t, work_per_round);
            barrier.arrive_and_wait();
          }
          done = std::max(done, engine.now());
        },
        t);
  }
  engine.run();
  return sim::to_seconds(done) * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  std::printf("== Ablation: gang vs uncoordinated scheduling of a PIK "
              "thread group ==\n");
  std::printf("   16 threads + a co-located second group, 2 ms windows;\n"
              "   time to finish 40 compute+barrier rounds (ms)\n\n");

  std::vector<sim::Time> works = {100 * sim::kMicrosecond,
                                  500 * sim::kMicrosecond,
                                  2000 * sim::kMicrosecond};
  // Not declarative points (no cache): --shard splits the table rows
  // round-robin by index, as in abl_barrier.
  const auto& shard = opts.jobs.shard;
  if (shard.list_only) {
    for (std::size_t i = 0; i < works.size(); ++i) {
      std::printf("%zu/%d row work/round=%.0fus\n", i % shard.count + 1,
                  shard.count, sim::to_micros(works[i]));
    }
    return 0;
  }
  if (shard.enabled()) {
    std::vector<sim::Time> own;
    for (std::size_t i = 0; i < works.size(); ++i) {
      if (static_cast<int>(i % shard.count) == shard.index)
        own.push_back(works[i]);
    }
    works = own;
    std::printf("[shard %s] this shard's rows only (no cache; concatenate"
                " shard outputs)\n\n", shard.label().c_str());
  }
  const int rounds = opts.quick ? 10 : 40;
  // Independent engines per cell: parallel map over the host pool.
  std::vector<double> gang_ms(works.size()), unco_ms(works.size());
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < works.size(); ++i) {
    tasks.push_back([&gang_ms, &works, rounds, i] {
      gang_ms[i] =
          run(pik::GangScheduler::Policy::kGang, 16, rounds, works[i]);
    });
    tasks.push_back([&unco_ms, &works, rounds, i] {
      unco_ms[i] = run(pik::GangScheduler::Policy::kUncoordinated, 16, rounds,
                       works[i]);
    });
  }
  harness::jobs::JobRunner runner(opts.jobs);
  runner.run_tasks(tasks);

  harness::Table t({"work/round", "gang ms", "uncoordinated ms", "penalty"});
  for (std::size_t i = 0; i < works.size(); ++i) {
    t.add_row({harness::Table::num(sim::to_micros(works[i]), 0) + "us",
               harness::Table::num(gang_ms[i], 2),
               harness::Table::num(unco_ms[i], 2),
               harness::Table::num(unco_ms[i] / gang_ms[i])});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected: both pay the 2x sharing; the uncoordinated runs\n"
              "pay extra at every barrier, worst for fine-grained rounds --\n"
              "why the PIK process abstraction supports gang scheduling.\n");
  return 0;
}
