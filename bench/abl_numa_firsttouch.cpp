// Ablation: §6.3 -- Nautilus's immediate single-zone allocation vs the
// first-touch-at-2MB extension on 8XEON.  "Immediate allocation
// results in such arrays being assigned to a single NUMA zone,
// lowering performance when different slices are assigned to CPUs in
// different zones."
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/figures.hpp"
#include "harness/table.hpp"

using namespace kop;

int main() {
  std::printf("== Ablation: Nautilus immediate allocation vs "
              "first-touch-at-2MB on 8XEON (§6.3) ==\n");
  std::printf("   RTK timed seconds for MG-C and CG-C\n\n");

  auto suite = harness::scale_suite({nas::mg(), nas::cg()}, 8.0 / 3.0, 3);
  for (const auto& spec : suite) {
    harness::Table t({"cpus", "immediate", "first-touch", "speedup"});
    for (int n : {24, 48, 96, 192}) {
      core::StackConfig cfg;
      cfg.machine = "8xeon";
      cfg.path = core::PathKind::kRtk;
      cfg.num_threads = n;
      cfg.nk_first_touch = false;
      const double imm = harness::run_nas(cfg, spec).timed_seconds;
      cfg.nk_first_touch = true;
      const double ft = harness::run_nas(cfg, spec).timed_seconds;
      t.add_row({std::to_string(n), harness::Table::seconds(imm),
                 harness::Table::seconds(ft), harness::Table::num(imm / ft)});
    }
    std::printf("%s\n%s\n", spec.full_name().c_str(), t.to_string().c_str());
  }
  std::printf("Expected: parity within one socket (24 CPUs), growing\n"
              "first-touch advantage at 2-8 sockets.\n");
  return 0;
}
