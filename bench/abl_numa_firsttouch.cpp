// Ablation: §6.3 -- Nautilus's immediate single-zone allocation vs the
// first-touch-at-2MB extension on 8XEON.  "Immediate allocation
// results in such arrays being assigned to a single NUMA zone,
// lowering performance when different slices are assigned to CPUs in
// different zones."
#include <cstdio>

#include "harness/figures.hpp"
#include "harness/table.hpp"

using namespace kop;

namespace {

harness::jobs::PointSpec point(const nas::BenchmarkSpec& spec, int threads,
                               int first_touch,
                               const harness::FigOptions& opts) {
  harness::jobs::PointSpec p;
  p.kind = harness::jobs::PointSpec::Kind::kNas;
  p.machine = "8xeon";
  p.path = core::PathKind::kRtk;
  p.threads = threads;
  p.first_touch = first_touch;  // the ablation forces both settings
  p.numa_sched_hier = opts.numa_sched_hier;  // --numa-sched hier
  p.numa_migrate = opts.numa_migrate;        // --numa-migrate
  p.nas = spec;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  std::printf("== Ablation: Nautilus immediate allocation vs "
              "first-touch-at-2MB on 8XEON (§6.3) ==\n");
  std::printf("   RTK timed seconds for MG-C and CG-C\n\n");

  const auto suite = harness::scale_suite({nas::mg(), nas::cg()},
                                          opts.quick ? 0.5 : 8.0 / 3.0,
                                          opts.quick ? 2 : 3);
  const auto scales = opts.quick ? std::vector<int>{24, 48}
                                 : std::vector<int>{24, 48, 96, 192};

  harness::jobs::PointMatrix mx;
  for (const auto& spec : suite) {
    for (int n : scales) {
      mx.add(point(spec, n, 0, opts));
      mx.add(point(spec, n, 1, opts));
    }
  }
  harness::MetricsSink sink("abl_numa_firsttouch");
  std::string sharded;
  if (harness::run_shard_mode(mx, &sink, opts.jobs, &sharded)) {
    std::fputs(sharded.c_str(), stdout);
    return harness::finish_figure(opts, sink);
  }
  harness::jobs::JobRunner runner(opts.jobs);
  const auto results = runner.run(mx.points());
  harness::jobs::require_ok(mx.points(), results);
  std::fprintf(stderr, "[jobs] %s\n", runner.summary(mx.size()).c_str());

  for (const auto& r : results) sink.add(r.metrics);

  for (const auto& spec : suite) {
    harness::Table t({"cpus", "immediate", "first-touch", "speedup"});
    for (int n : scales) {
      const double imm =
          results[mx.add(point(spec, n, 0, opts))].metrics.timed_seconds;
      const double ft =
          results[mx.add(point(spec, n, 1, opts))].metrics.timed_seconds;
      t.add_row({std::to_string(n), harness::Table::seconds(imm),
                 harness::Table::seconds(ft), harness::Table::num(imm / ft)});
    }
    std::printf("%s\n%s\n", spec.full_name().c_str(), t.to_string().c_str());
  }
  std::printf("Expected: parity within one socket (24 CPUs), growing\n"
              "first-touch advantage at 2-8 sockets.\n");
  return harness::finish_figure(opts, sink);
}
