// Ablation: Fig. 2a vs Fig. 2b -- the straight PTE port of embedded
// pthreads (portable layering, per-op indirection) against the
// customized implementation that maps pthread objects directly onto
// Nautilus primitives.  Measured through the OpenMP runtime the way
// libomp actually uses the layer (EPCC SYNCH constructs under RTK).
#include <cstdio>

#include "epcc/epcc.hpp"
#include "harness/table.hpp"
#include "rtk/rtk.hpp"

using namespace kop;

namespace {

std::vector<epcc::Measurement> run_with(bool use_pte, int threads) {
  rtk::RtkOptions o;
  o.machine = hw::phi();
  o.use_pte_pthreads = use_pte;
  rtk::RtkStack stack(std::move(o));
  stack.kernel().set_env("OMP_NUM_THREADS", std::to_string(threads));
  std::vector<epcc::Measurement> out;
  stack.run_app([&](komp::Runtime& rt) {
    epcc::EpccConfig cfg;
    cfg.outer_reps = 5;
    cfg.inner_iters = 16;
    epcc::Suite suite(rt, cfg);
    out = suite.run_syncbench();
    return 0;
  });
  return out;
}

}  // namespace

int main() {
  std::printf("== Ablation: PTE pthread port (Fig. 2a) vs customized "
              "pthreads (Fig. 2b) ==\n");
  std::printf("   EPCC SYNCH overheads (us) under RTK on 64 cores of PHI\n\n");
  const auto pte = run_with(true, 64);
  const auto native = run_with(false, 64);

  harness::Table t({"construct", "pte us", "native us", "pte/native"});
  for (std::size_t i = 0; i < pte.size(); ++i) {
    if (pte[i].reference) continue;
    const double a = pte[i].overhead_us.mean();
    const double b = native[i].overhead_us.mean();
    t.add_row({pte[i].name, harness::Table::num(a, 3),
               harness::Table::num(b, 3),
               harness::Table::num(b > 0 ? a / b : 0.0)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected: the layered port is measurably slower on every\n"
              "construct; this is why §3.3 revisited the implementation.\n");
  return 0;
}
