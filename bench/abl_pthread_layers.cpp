// Ablation: Fig. 2a vs Fig. 2b -- the straight PTE port of embedded
// pthreads (portable layering, per-op indirection) against the
// customized implementation that maps pthread objects directly onto
// Nautilus primitives.  Measured through the OpenMP runtime the way
// libomp actually uses the layer (EPCC SYNCH constructs under RTK).
#include <cstdio>

#include "harness/figures.hpp"
#include "harness/table.hpp"

using namespace kop;

namespace {

harness::jobs::PointSpec point(bool use_pte, int threads, bool quick) {
  harness::jobs::PointSpec p;
  p.kind = harness::jobs::PointSpec::Kind::kEpcc;
  p.machine = "phi";
  p.path = core::PathKind::kRtk;
  p.threads = threads;
  p.rtk_use_pte = use_pte;
  p.epcc_part = harness::EpccPart::kSync;
  p.epcc.outer_reps = quick ? 3 : 5;
  p.epcc.inner_iters = quick ? 8 : 16;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  std::printf("== Ablation: PTE pthread port (Fig. 2a) vs customized "
              "pthreads (Fig. 2b) ==\n");
  std::printf("   EPCC SYNCH overheads (us) under RTK on 64 cores of PHI\n\n");

  const int threads = opts.quick ? 8 : 64;
  harness::jobs::PointMatrix mx;
  const std::size_t i_pte = mx.add(point(true, threads, opts.quick));
  const std::size_t i_native = mx.add(point(false, threads, opts.quick));

  {
    harness::MetricsSink shard_sink("abl_pthread_layers");
    std::string sharded;
    if (harness::run_shard_mode(mx, &shard_sink, opts.jobs, &sharded)) {
      std::fputs(sharded.c_str(), stdout);
      return harness::finish_figure(opts, shard_sink);
    }
  }
  harness::jobs::JobRunner runner(opts.jobs);
  const auto results = runner.run(mx.points());
  harness::jobs::require_ok(mx.points(), results);
  std::fprintf(stderr, "[jobs] %s\n", runner.summary(mx.size()).c_str());
  harness::MetricsSink sink("abl_pthread_layers");
  for (const auto& r : results) sink.add(r.metrics);

  const auto& pte = results[i_pte].epcc;
  const auto& native = results[i_native].epcc;

  harness::Table t({"construct", "pte us", "native us", "pte/native"});
  for (std::size_t i = 0; i < pte.size(); ++i) {
    if (pte[i].reference) continue;
    const double a = pte[i].overhead_us.mean();
    const double b = native[i].overhead_us.mean();
    t.add_row({pte[i].name, harness::Table::num(a, 3),
               harness::Table::num(b, 3),
               harness::Table::num(b > 0 ? a / b : 0.0)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected: the layered port is measurably slower on every\n"
              "construct; this is why §3.3 revisited the implementation.\n");
  return harness::finish_figure(opts, sink);
}
