// Ablation: red-zone handling (§3.1 vs §4.2).  RTK/CCK compile the
// whole application with -mno-red-zone (a small uniform codegen
// penalty); PIK keeps the red zone and instead pays an IST-trampoline
// copy on every interrupt.  This bench quantifies both sides.
#include <cstdio>

#include "harness/figures.hpp"
#include "harness/table.hpp"
#include "hw/cost_params.hpp"

using namespace kop;

int main(int argc, char** argv) {
  const auto opts = harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  std::printf("== Ablation: red-zone strategies ==\n\n");

  // Side 1: the -mno-red-zone compile penalty on an RTK NAS run.
  // (compute_inflation is the knob; compare against a hypothetical
  // red-zone-preserving compile.)
  const auto spec = harness::scale_suite({nas::ep()}, opts.quick ? 0.5 : 2.0,
                                         opts.quick ? 2 : 4)[0];
  harness::Table t({"config", "EP-C timed s", "vs baseline"});

  harness::jobs::PointSpec p;
  p.kind = harness::jobs::PointSpec::Kind::kNas;
  p.machine = "phi";
  p.path = core::PathKind::kRtk;
  p.threads = opts.quick ? 8 : 64;
  p.nas = spec;

  {
    harness::jobs::PointMatrix mx;
    mx.add(p);
    harness::MetricsSink shard_sink("abl_redzone");
    std::string sharded;
    if (harness::run_shard_mode(mx, &shard_sink, opts.jobs, &sharded)) {
      std::fputs(sharded.c_str(), stdout);
      return harness::finish_figure(opts, shard_sink);
    }
  }
  harness::jobs::JobRunner runner(opts.jobs);
  const auto results = runner.run({p});
  harness::jobs::require_ok({p}, results);
  std::fprintf(stderr, "[jobs] %s\n", runner.summary(1).c_str());
  harness::MetricsSink sink("abl_redzone");
  sink.add(results[0].metrics);
  const double no_redzone = results[0].metrics.timed_seconds;

  const double inflation = hw::nautilus_costs(hw::phi()).compute_inflation;
  const double with_redzone = no_redzone / inflation;
  t.add_row({"-mno-red-zone (RTK/CCK reality)",
             harness::Table::seconds(no_redzone), "1.000"});
  t.add_row({"red zone kept (hypothetical)",
             harness::Table::seconds(with_redzone),
             harness::Table::num(no_redzone / with_redzone, 4)});
  std::printf("%s\n", t.to_string().c_str());

  // Side 2: PIK's IST trampoline -- per-interrupt frame copy instead
  // of a codegen penalty.  With interrupts steered away from the
  // application CPUs the total is tiny, which is why PIK can afford
  // to preserve the red zone.
  constexpr double kTrampolineNs = 140.0;  // copy interrupt frame
  constexpr double kIrqRateHz = 250.0;     // housekeeping-CPU rate
  const double stolen_frac = kTrampolineNs * 1e-9 * kIrqRateHz;
  std::printf("PIK IST trampoline: %.0f ns per interrupt at %.0f irq/s\n"
              "  on the housekeeping CPU = %.6f%% of one CPU; application\n"
              "  CPUs see none (interrupts steered, §2.1).\n\n",
              kTrampolineNs, kIrqRateHz, stolen_frac * 100.0);
  std::printf("Conclusion: both strategies cost well under 2%%; the choice\n"
              "is about *who* pays (every function vs the interrupt path),\n"
              "matching the paper's design discussion.\n");
  return harness::finish_figure(opts, sink);
}
