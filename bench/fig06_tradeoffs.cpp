// Figure 6: summary of design and software-engineering tradeoffs
// between RTK, PIK, and CCK.  The "Implementation Size" rows report
// the sizes of the corresponding modules in this reproduction next to
// the paper's numbers.
#include <cstdio>

#include "harness/metrics.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using kop::harness::Table;

  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  if (!opts.json_path.empty()) {
    // Uniform CLI with the other fig* binaries, but this figure is a
    // static design-tradeoff table: there are no experiment runs, and
    // the kop-metrics schema requires at least one.
    std::fprintf(stderr,
                 "fig06 is a static table; no metrics artifact written\n");
  }

  std::printf("== Figure 6: design and software engineering tradeoffs ==\n\n");

  Table effort({"Effort", "RTK", "PIK", "CCK"});
  effort.add_row({"Runtime", "major", "none", "minor"});
  effort.add_row({"Kernel", "minor", "major", "minor"});
  effort.add_row({"Compiler", "none", "none", "major"});
  std::printf("%s\n", effort.to_string().c_str());

  Table size({"Implementation size (paper, C LOC)", "RTK", "PIK", "CCK"});
  size.add_row({"Runtime", "1,600", "0", "550"});
  size.add_row({"Kernel", "2,200", "13,250", "600"});
  size.add_row({"Compiler", "0", "0", "6,550 (C++)"});
  std::printf("%s\n", size.to_string().c_str());

  Table repro({"This reproduction (modules)", "RTK", "PIK", "CCK"});
  repro.add_row({"Runtime", "komp+rtk tuning", "komp (pristine)", "virgil"});
  repro.add_row({"Kernel", "pthread_compat", "pik syscalls+loader",
                 "nautilus task system"});
  repro.add_row({"Compiler", "-", "-", "cck (NOELLE/AutoMP analog)"});
  std::printf("%s\n", repro.to_string().c_str());

  Table benefits({"Benefits and opportunities", "RTK", "PIK", "CCK"});
  benefits.add_row({"Application development", "easier", "easiest", "easy"});
  benefits.add_row({"Leveraging kernel context", "easier", "difficult",
                    "easiest"});
  benefits.add_row({"Decoupled from OpenMP runtime", "no", "no", "yes"});
  benefits.add_row({"Applies to all code in kernel", "yes", "no", "no"});
  benefits.add_row({"Automatic parallelization", "no", "no", "yes"});
  std::printf("%s", benefits.to_string().c_str());
  return 0;
}
