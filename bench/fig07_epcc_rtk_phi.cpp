// Figure 7: RTK performance compared to Linux -- EPCC microbenchmarks
// on 64 cores of PHI.  Expected shape (paper §6.1): RTK slightly
// higher overhead than Linux across most constructs (ported runtime,
// pthread compatibility layer, kernel memory allocation).
#include "harness/figures.hpp"

int main() {
  kop::epcc::EpccConfig cfg;
  cfg.outer_reps = 6;
  cfg.inner_iters = 16;
  kop::harness::print_epcc_figure(
      "Figure 7: EPCC, RTK vs Linux, 64 cores of PHI", "phi", 64,
      {kop::core::PathKind::kLinuxOmp, kop::core::PathKind::kRtk}, cfg);
  return 0;
}
