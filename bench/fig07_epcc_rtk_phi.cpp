// Figure 7: RTK performance compared to Linux -- EPCC microbenchmarks
// on 64 cores of PHI.  Expected shape (paper §6.1): RTK slightly
// higher overhead than Linux across most constructs (ported runtime,
// pthread compatibility layer, kernel memory allocation).
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  kop::epcc::EpccConfig cfg;
  cfg.outer_reps = opts.quick ? 2 : 6;
  cfg.inner_iters = opts.quick ? 4 : 16;
  const int threads = opts.quick ? 8 : 64;
  kop::harness::MetricsSink sink("fig07_epcc_rtk_phi");
  std::fputs(kop::harness::print_epcc_figure(
                 "Figure 7: EPCC, RTK vs Linux, 64 cores of PHI", "phi",
                 threads,
                 {kop::core::PathKind::kLinuxOmp, kop::core::PathKind::kRtk},
                 cfg, &sink, opts.jobs)
                 .c_str(),
             stdout);
  return kop::harness::finish_figure(opts, sink);
}
