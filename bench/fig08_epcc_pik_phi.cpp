// Figure 8: PIK performance compared to Linux -- EPCC microbenchmarks
// on 64 cores of PHI.  Expected shape (paper §6.1): PIK slightly
// *lower* overhead than Linux, with considerably lower variance (the
// same binary, but cheap kernel-mode crossings and no OS noise).
#include "harness/figures.hpp"

int main() {
  kop::epcc::EpccConfig cfg;
  cfg.outer_reps = 6;
  cfg.inner_iters = 16;
  kop::harness::print_epcc_figure(
      "Figure 8: EPCC, PIK vs Linux, 64 cores of PHI", "phi", 64,
      {kop::core::PathKind::kLinuxOmp, kop::core::PathKind::kPik}, cfg);
  return 0;
}
