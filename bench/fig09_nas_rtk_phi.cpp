// Figure 9: RTK performance relative to Linux as a function of CPUs --
// NAS benchmarks on PHI.  Expected shape (paper §6.2): RTK gains from
// +90% (BT at 1 CPU) down to roughly parity, ~22% geomean, driven by
// the kernel environment (no faults, rare TLB misses, NUMA-cognizant
// allocation, no noise, no competing threads).
#include "harness/figures.hpp"

int main() {
  const auto suite =
      kop::harness::scale_suite(kop::nas::paper_suite(), 2.0, 4);
  kop::harness::print_nas_normalized(
      "Figure 9: NAS, RTK vs Linux on PHI", "phi",
      {kop::core::PathKind::kRtk}, kop::harness::phi_scales(), suite);
  return 0;
}
