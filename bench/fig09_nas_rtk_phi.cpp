// Figure 9: RTK performance relative to Linux as a function of CPUs --
// NAS benchmarks on PHI.  Expected shape (paper §6.2): RTK gains from
// +90% (BT at 1 CPU) down to roughly parity, ~22% geomean, driven by
// the kernel environment (no faults, rare TLB misses, NUMA-cognizant
// allocation, no noise, no competing threads).
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  // The sweep definition is shared with kop_baseline so a saved cache
  // of this figure lines up point-for-point with the diff driver.
  const auto sweep = kop::harness::fig09_sweep(opts.quick);
  kop::harness::MetricsSink sink("fig09_nas_rtk_phi");
  std::fputs(kop::harness::print_nas_normalized(
                 "Figure 9: NAS, RTK vs Linux on PHI", sweep.machine,
                 sweep.paths, sweep.scales, sweep.suite, &sink, opts.jobs)
                 .c_str(),
             stdout);
  return kop::harness::finish_figure(opts, sink);
}
