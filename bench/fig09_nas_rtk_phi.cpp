// Figure 9: RTK performance relative to Linux as a function of CPUs --
// NAS benchmarks on PHI.  Expected shape (paper §6.2): RTK gains from
// +90% (BT at 1 CPU) down to roughly parity, ~22% geomean, driven by
// the kernel environment (no faults, rare TLB misses, NUMA-cognizant
// allocation, no noise, no competing threads).
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(),
                                         opts.quick ? 0.5 : 2.0,
                                         opts.quick ? 2 : 4);
  if (opts.quick) suite.resize(2);
  const auto scales =
      opts.quick ? std::vector<int>{1, 8} : kop::harness::phi_scales();
  kop::harness::MetricsSink sink("fig09_nas_rtk_phi");
  std::fputs(kop::harness::print_nas_normalized(
                 "Figure 9: NAS, RTK vs Linux on PHI", "phi",
                 {kop::core::PathKind::kRtk}, scales, suite, &sink, opts.jobs)
                 .c_str(),
             stdout);
  return kop::harness::finish_figure(opts, sink);
}
