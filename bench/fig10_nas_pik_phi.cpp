// Figure 10: PIK performance relative to Linux as a function of CPUs
// -- NAS benchmarks on PHI.  Expected shape (paper §6.2): generally
// similar to RTK but smaller gains, ~10% geomean (the pristine binary
// keeps the user-level 2MB-grained memory layout).
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(),
                                         opts.quick ? 0.5 : 2.0,
                                         opts.quick ? 2 : 4);
  if (opts.quick) suite.resize(2);
  const auto scales =
      opts.quick ? std::vector<int>{1, 8} : kop::harness::phi_scales();
  kop::harness::MetricsSink sink("fig10_nas_pik_phi");
  std::fputs(kop::harness::print_nas_normalized(
                 "Figure 10: NAS, PIK vs Linux on PHI", "phi",
                 {kop::core::PathKind::kPik}, scales, suite, &sink, opts.jobs)
                 .c_str(),
             stdout);
  return kop::harness::finish_figure(opts, sink);
}
