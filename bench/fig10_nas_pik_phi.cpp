// Figure 10: PIK performance relative to Linux as a function of CPUs
// -- NAS benchmarks on PHI.  Expected shape (paper §6.2): generally
// similar to RTK but smaller gains, ~10% geomean (the pristine binary
// keeps the user-level 2MB-grained memory layout).
#include "harness/figures.hpp"

int main() {
  const auto suite =
      kop::harness::scale_suite(kop::nas::paper_suite(), 2.0, 4);
  kop::harness::print_nas_normalized(
      "Figure 10: NAS, PIK vs Linux on PHI", "phi",
      {kop::core::PathKind::kPik}, kop::harness::phi_scales(), suite);
  return 0;
}
