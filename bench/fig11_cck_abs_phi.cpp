// Figure 11: CCK absolute performance on Linux and Nautilus compared
// to stock OpenMP on Linux (NAS on PHI; lower is better).  Expected
// shape (paper §6.2): FT/EP parity between OpenMP and AutoMP; LU, BT,
// SP lose (object-privatization limitation leaves loops sequential);
// MG and CG beat OpenMP (latency-aware chunking); IS is elided.
#include <cstdio>

#include "harness/figures.hpp"

int main() {
  const auto suite = kop::harness::scale_suite(kop::nas::cck_suite(), 2.0, 4);
  kop::harness::print_cck_absolute(
      "Figure 11: CCK absolute times on PHI (Linux OMP vs Linux AutoMP vs "
      "NK AutoMP)",
      "phi", kop::harness::phi_scales(), suite);
  std::printf("IS-C is elided: AutoMP extracts no parallelism from it "
              "(every loop needs object privatization).\n");
  return 0;
}
