// Figure 11: CCK absolute performance on Linux and Nautilus compared
// to stock OpenMP on Linux (NAS on PHI; lower is better).  Expected
// shape (paper §6.2): FT/EP parity between OpenMP and AutoMP; LU, BT,
// SP lose (object-privatization limitation leaves loops sequential);
// MG and CG beat OpenMP (latency-aware chunking); IS is elided.
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  auto suite = kop::harness::scale_suite(kop::nas::cck_suite(),
                                         opts.quick ? 0.5 : 2.0,
                                         opts.quick ? 2 : 4);
  if (opts.quick) suite.resize(2);
  const auto scales =
      opts.quick ? std::vector<int>{1, 8} : kop::harness::phi_scales();
  kop::harness::MetricsSink sink("fig11_cck_abs_phi");
  std::fputs(kop::harness::print_cck_absolute(
                 "Figure 11: CCK absolute times on PHI (Linux OMP vs Linux "
                 "AutoMP vs NK AutoMP)",
                 "phi", scales, suite, &sink, opts.jobs)
                 .c_str(),
             stdout);
  std::printf("IS-C is elided: AutoMP extracts no parallelism from it "
              "(every loop needs object privatization).\n");
  return kop::harness::finish_figure(opts, sink);
}
