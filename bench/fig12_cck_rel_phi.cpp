// Figure 12: CCK performance relative to Linux-OpenMP on PHI
// (normalized; higher is better).  Same data as Fig. 11, paper-style
// normalization.
#include "harness/figures.hpp"

int main() {
  const auto suite = kop::harness::scale_suite(kop::nas::cck_suite(), 2.0, 4);
  kop::harness::print_cck_normalized(
      "Figure 12: CCK normalized performance on PHI", "phi",
      kop::harness::phi_scales(), suite);
  return 0;
}
