// Figure 12: CCK performance relative to Linux-OpenMP on PHI
// (normalized; higher is better).  Same data as Fig. 11, paper-style
// normalization.
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  auto suite = kop::harness::scale_suite(kop::nas::cck_suite(),
                                         opts.quick ? 0.5 : 2.0,
                                         opts.quick ? 2 : 4);
  if (opts.quick) suite.resize(2);
  const auto scales =
      opts.quick ? std::vector<int>{1, 8} : kop::harness::phi_scales();
  kop::harness::MetricsSink sink("fig12_cck_rel_phi");
  std::fputs(kop::harness::print_cck_normalized(
                 "Figure 12: CCK normalized performance on PHI", "phi",
                 scales, suite, &sink, opts.jobs)
                 .c_str(),
             stdout);
  return kop::harness::finish_figure(opts, sink);
}
