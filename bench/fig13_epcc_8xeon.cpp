// Figure 13: RTK and PIK performance compared to Linux -- EPCC
// microbenchmarks on 192 cores of 8XEON.  Expected shape (paper §6.3):
// except for scheduling (comparable), RTK and PIK outperform Linux at
// this scale (futex wakes and OS noise hurt the user-level barrier and
// task paths much more at 192 threads).
#include "harness/figures.hpp"

int main() {
  kop::epcc::EpccConfig cfg;
  cfg.outer_reps = 4;
  cfg.inner_iters = 8;
  // 192 threads: keep per-construct iteration counts moderate so the
  // full three-path sweep stays fast.
  cfg.sched_iters_per_thread = 32;
  cfg.tasks_per_thread = 8;
  cfg.tree_depth = 5;
  kop::harness::print_epcc_figure(
      "Figure 13: EPCC, RTK and PIK vs Linux, 192 cores of 8XEON", "8xeon",
      192,
      {kop::core::PathKind::kLinuxOmp, kop::core::PathKind::kRtk,
       kop::core::PathKind::kPik},
      cfg);
  return 0;
}
