// Figure 13: RTK and PIK performance compared to Linux -- EPCC
// microbenchmarks on 192 cores of 8XEON.  Expected shape (paper §6.3):
// except for scheduling (comparable), RTK and PIK outperform Linux at
// this scale (futex wakes and OS noise hurt the user-level barrier and
// task paths much more at 192 threads).
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  // The sweep definition is shared with kop_baseline so a saved cache
  // of this figure lines up point-for-point with the diff driver.
  const auto sweep = kop::harness::fig13_sweep(opts.quick);
  kop::harness::MetricsSink sink("fig13_epcc_8xeon");
  std::fputs(kop::harness::print_epcc_figure(
                 "Figure 13: EPCC, RTK and PIK vs Linux, 192 cores of 8XEON",
                 sweep.machine, sweep.threads, sweep.paths, sweep.config,
                 &sink, opts.jobs)
                 .c_str(),
             stdout);
  return kop::harness::finish_figure(opts, sink);
}
