// Figure 13: RTK and PIK performance compared to Linux -- EPCC
// microbenchmarks on 192 cores of 8XEON.  Expected shape (paper §6.3):
// except for scheduling (comparable), RTK and PIK outperform Linux at
// this scale (futex wakes and OS noise hurt the user-level barrier and
// task paths much more at 192 threads).
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  kop::epcc::EpccConfig cfg;
  cfg.outer_reps = opts.quick ? 2 : 4;
  cfg.inner_iters = opts.quick ? 4 : 8;
  // 192 threads: keep per-construct iteration counts moderate so the
  // full three-path sweep stays fast.
  cfg.sched_iters_per_thread = opts.quick ? 16 : 32;
  cfg.tasks_per_thread = opts.quick ? 4 : 8;
  cfg.tree_depth = opts.quick ? 4 : 5;
  const int threads = opts.quick ? 16 : 192;
  kop::harness::MetricsSink sink("fig13_epcc_8xeon");
  std::fputs(kop::harness::print_epcc_figure(
                 "Figure 13: EPCC, RTK and PIK vs Linux, 192 cores of 8XEON",
                 "8xeon", threads,
                 {kop::core::PathKind::kLinuxOmp, kop::core::PathKind::kRtk,
                  kop::core::PathKind::kPik},
                 cfg, &sink, opts.jobs)
                 .c_str(),
             stdout);
  return kop::harness::finish_figure(opts, sink);
}
