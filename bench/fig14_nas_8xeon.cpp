// Figure 14: RTK and PIK performance relative to Linux as a function
// of CPUs -- NAS benchmarks on 8XEON.  Expected shape (paper §6.3):
// ~20% geomean gains for RTK and PIK; Nautilus runs beyond one socket
// use the first-touch-at-2MB extension.
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(),
                                         opts.quick ? 0.5 : 8.0 / 3.0,
                                         opts.quick ? 2 : 3);
  if (opts.quick) suite.resize(2);
  const auto scales =
      opts.quick ? std::vector<int>{1, 16} : kop::harness::xeon_scales();
  kop::harness::MetricsSink sink("fig14_nas_8xeon");
  std::fputs(kop::harness::print_nas_normalized(
                 "Figure 14: NAS, RTK and PIK vs Linux on 8XEON", "8xeon",
                 {kop::core::PathKind::kRtk, kop::core::PathKind::kPik},
                 scales, suite, &sink, opts.jobs)
                 .c_str(),
             stdout);
  return kop::harness::finish_figure(opts, sink);
}
