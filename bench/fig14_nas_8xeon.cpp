// Figure 14: RTK and PIK performance relative to Linux as a function
// of CPUs -- NAS benchmarks on 8XEON.  Expected shape (paper §6.3):
// ~20% geomean gains for RTK and PIK; Nautilus runs beyond one socket
// use the first-touch-at-2MB extension.
#include "harness/figures.hpp"

int main() {
  const auto suite =
      kop::harness::scale_suite(kop::nas::paper_suite(), 8.0/3.0, 3);
  kop::harness::print_nas_normalized(
      "Figure 14: NAS, RTK and PIK vs Linux on 8XEON", "8xeon",
      {kop::core::PathKind::kRtk, kop::core::PathKind::kPik},
      kop::harness::xeon_scales(), suite);
  return 0;
}
