// Figure 15: CCK performance relative to Linux-OpenMP on 8XEON
// (normalized; higher is better).
#include "harness/figures.hpp"

int main() {
  const auto suite = kop::harness::scale_suite(kop::nas::cck_suite(), 8.0/3.0, 3);
  kop::harness::print_cck_normalized(
      "Figure 15: CCK normalized performance on 8XEON", "8xeon",
      kop::harness::xeon_scales(), suite);
  return 0;
}
