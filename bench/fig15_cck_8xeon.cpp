// Figure 15: CCK performance relative to Linux-OpenMP on 8XEON
// (normalized; higher is better).
#include <cstdio>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const auto opts = kop::harness::parse_fig_options(argc, argv);
  if (!opts.ok) return 2;
  auto suite = kop::harness::scale_suite(kop::nas::cck_suite(),
                                         opts.quick ? 0.5 : 8.0 / 3.0,
                                         opts.quick ? 2 : 3);
  if (opts.quick) suite.resize(2);
  const auto scales =
      opts.quick ? std::vector<int>{1, 16} : kop::harness::xeon_scales();
  kop::harness::MetricsSink sink("fig15_cck_8xeon");
  std::fputs(kop::harness::print_cck_normalized(
                 "Figure 15: CCK normalized performance on 8XEON", "8xeon",
                 scales, suite, &sink, opts.jobs)
                 .c_str(),
             stdout);
  return kop::harness::finish_figure(opts, sink);
}
