// NUMA-scheduler microbenchmark: flat ring stealing vs the
// hierarchical topology walk (KOMP_NUMA_SCHED=hier), EPCC taskbench on
// PHI and 8XEON.  The master-spawn patterns (MASTER_TASK and friends)
// concentrate every task on one deque, so idle threads in other zones
// must steal across the machine -- exactly the traffic the
// hierarchical victim order is meant to keep inside a zone.
//
// Reported per (machine, threads): timed seconds and the
// task_steals_local / task_steals_remote split for flat, hier, and
// hier + migration-on-next-touch; for 8XEON also the per-zone remote
// traffic and the flat/hier remote-steal reduction ratio the CI numa
// gate floors at 2x (bench/numa_floor.json).
//
// Both schedulers run identical points (same tasks, same virtual
// work), so the reduction compares equal total work.  --numa-sched and
// --numa-migrate are ignored here: this binary sweeps all modes in one
// run.  --bench-json additionally writes a kop-bench v1 document with
// the reduction ratios for examples/kop_perfgate.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/table.hpp"
#include "hw/topology.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

using namespace kop;

namespace {

struct Mode {
  const char* name;
  bool hier;
  bool migrate;
};

constexpr Mode kModes[] = {
    {"flat", false, false},
    {"hier", true, false},
    {"hier+migrate", true, true},
};

harness::jobs::PointSpec point(const std::string& machine, int threads,
                               const Mode& mode, bool quick) {
  harness::jobs::PointSpec p;
  p.kind = harness::jobs::PointSpec::Kind::kEpcc;
  p.machine = machine;
  p.path = core::PathKind::kLinuxOmp;
  p.threads = threads;
  p.epcc_part = harness::EpccPart::kTask;
  p.epcc.outer_reps = quick ? 2 : 4;
  p.epcc.tasks_per_thread = quick ? 16 : 32;
  p.epcc.tree_depth = quick ? 4 : 6;
  p.numa_sched_hier = mode.hier;
  p.numa_migrate = mode.migrate;
  return p;
}

// Migration demo: EPCC tasks charge no array traffic, so the next-touch
// policy is shown on a NAS point instead -- RTK's immediate single-zone
// allocation (first_touch=0, the §6.3 pathology) with and without
// --numa-migrate re-homing the slices on first access.
harness::jobs::PointSpec mig_point(int threads, bool migrate, bool quick) {
  harness::jobs::PointSpec p;
  p.kind = harness::jobs::PointSpec::Kind::kNas;
  p.machine = "8xeon";
  p.path = core::PathKind::kRtk;
  p.threads = threads;
  p.first_touch = 0;  // immediate single-zone placement
  p.nas = harness::scale_suite({nas::cg()}, quick ? 0.35 : 1.0,
                               quick ? 2 : 3)[0];
  p.numa_migrate = migrate;
  return p;
}

std::uint64_t total(const harness::RunMetrics& m, telemetry::Counter c) {
  return m.counters.totals[static_cast<int>(c)];
}

// Per-zone sums of one counter's per_cpu rows (empty when the snapshot
// carries no per-CPU data or the row count is not the machine's).
std::vector<std::uint64_t> by_zone(const harness::RunMetrics& m,
                                   const hw::MachineConfig& machine,
                                   telemetry::Counter c) {
  std::vector<std::uint64_t> sums;
  if (static_cast<int>(m.counters.per_cpu.size()) != machine.num_cpus)
    return sums;
  sums.resize(machine.zones.size(), 0);
  for (int cpu = 0; cpu < machine.num_cpus; ++cpu) {
    sums[static_cast<std::size_t>(machine.zone_of_cpu(cpu))] +=
        m.counters.per_cpu[static_cast<std::size_t>(cpu)]
                          [static_cast<int>(c)];
  }
  return sums;
}

std::string zone_vector(const std::vector<std::uint64_t>& sums) {
  std::string out = "[";
  for (std::size_t z = 0; z < sums.size(); ++z) {
    if (z != 0) out += " ";
    out += std::to_string(sums[z]);
  }
  return out + "]";
}

std::string bench_json(std::uint64_t flat_remote_phi,
                       std::uint64_t hier_remote_phi,
                       std::uint64_t flat_remote_8xeon,
                       std::uint64_t hier_remote_8xeon) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value(telemetry::kBenchSchemaName);
  w.key("version").value(telemetry::kBenchSchemaVersion);
  w.key("generator").value("fig_numa");
  w.key("benches").begin_array();
  // items = flat remote steals, seconds = hier remote steals, so
  // items_per_sec is the reduction ratio the gate floors.  A zero hier
  // count divides as 1 (the ratio is then simply the flat count).
  const auto emit = [&w](const char* name, std::uint64_t flat,
                         std::uint64_t hier) {
    w.begin_object();
    w.key("name").value(name);
    w.key("unit").value("x");
    w.key("items").value(flat);
    w.key("seconds").value(hier == 0 ? 1.0 : static_cast<double>(hier));
    w.key("items_per_sec")
        .value(static_cast<double>(flat) /
               (hier == 0 ? 1.0 : static_cast<double>(hier)));
    w.key("allocs_steady").value(std::uint64_t{0});
    w.end_object();
  };
  emit("remote_steal_reduction_phi", flat_remote_phi, hier_remote_phi);
  emit("remote_steal_reduction_8xeon", flat_remote_8xeon, hier_remote_8xeon);
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --bench-json is specific to this binary: strip it before handing
  // the rest to the shared figure-option parser.
  std::string bench_path;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--bench-json" && i + 1 < argc) {
      bench_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto opts =
      harness::parse_fig_options(static_cast<int>(rest.size()), rest.data());
  if (!opts.ok) {
    std::fprintf(stderr,
                 "  --bench-json <p> also write a kop-bench v1 document with\n"
                 "                   the remote-steal reduction ratios\n"
                 "                   (gated by kop_perfgate vs\n"
                 "                   bench/numa_floor.json)\n");
    return 2;
  }
  std::printf("== NUMA scheduler: flat ring vs hierarchical stealing "
              "(EPCC taskbench) ==\n");
  std::printf("   task_steals split by victim zone; migrate adds "
              "next-touch page migration\n\n");

  const std::vector<std::pair<std::string, std::vector<int>>> machines = {
      {"phi", opts.quick ? std::vector<int>{16} : std::vector<int>{16, 64}},
      {"8xeon",
       opts.quick ? std::vector<int>{96} : std::vector<int>{48, 96, 192}},
  };

  const std::vector<int> mig_scales =
      opts.quick ? std::vector<int>{96} : std::vector<int>{48, 96, 192};

  harness::jobs::PointMatrix mx;
  for (const auto& [machine, scales] : machines) {
    for (int n : scales) {
      for (const Mode& mode : kModes) mx.add(point(machine, n, mode, opts.quick));
    }
  }
  for (int n : mig_scales) {
    mx.add(mig_point(n, false, opts.quick));
    mx.add(mig_point(n, true, opts.quick));
  }
  harness::MetricsSink sink("fig_numa");
  std::string sharded;
  if (harness::run_shard_mode(mx, &sink, opts.jobs, &sharded)) {
    std::fputs(sharded.c_str(), stdout);
    return harness::finish_figure(opts, sink);
  }
  harness::jobs::JobRunner runner(opts.jobs);
  const auto results = runner.run(mx.points());
  harness::jobs::require_ok(mx.points(), results);
  std::fprintf(stderr, "[jobs] %s\n", runner.summary(mx.size()).c_str());

  for (const auto& r : results) {
    harness::RunMetrics m = r.metrics;
    m.include_per_cpu = true;  // the artifact carries per-zone traffic
    sink.add(m);
  }

  std::uint64_t flat_remote[2] = {0, 0};  // [0]=phi, [1]=8xeon
  std::uint64_t hier_remote[2] = {0, 0};
  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    const auto& [machine, scales] = machines[mi];
    const hw::MachineConfig config = hw::machine_by_name(machine);
    harness::Table t(
        {"threads", "sched", "seconds", "local", "remote", "migrations"});
    for (int n : scales) {
      for (const Mode& mode : kModes) {
        const auto& m =
            results[mx.add(point(machine, n, mode, opts.quick))].metrics;
        const std::uint64_t local =
            total(m, telemetry::Counter::kTaskStealsLocal);
        const std::uint64_t remote =
            total(m, telemetry::Counter::kTaskStealsRemote);
        t.add_row({std::to_string(n), mode.name,
                   harness::Table::seconds(m.timed_seconds),
                   std::to_string(local), std::to_string(remote),
                   std::to_string(
                       total(m, telemetry::Counter::kPageMigrations))});
        if (mode.hier && !mode.migrate) {
          hier_remote[mi] += remote;
        } else if (!mode.hier) {
          flat_remote[mi] += remote;
        }
      }
    }
    std::printf("%s (%d zones)\n%s\n", machine.c_str(),
                static_cast<int>(config.zones.size()), t.to_string().c_str());

    // Per-zone remote traffic at the machine's largest team: where do
    // the cross-zone steals land once the walk prefers local victims?
    const int top = scales.back();
    for (const Mode& mode : kModes) {
      const auto& m =
          results[mx.add(point(machine, top, mode, opts.quick))].metrics;
      const auto zones =
          by_zone(m, config, telemetry::Counter::kTaskStealsRemote);
      if (zones.empty()) continue;
      std::printf("  remote steals by thief zone, t=%d %-12s %s\n", top,
                  mode.name, zone_vector(zones).c_str());
    }
    const double denom =
        hier_remote[mi] == 0 ? 1.0 : static_cast<double>(hier_remote[mi]);
    std::printf("  remote-steal reduction (flat/hier): %s\n\n",
                harness::Table::num(static_cast<double>(flat_remote[mi]) /
                                    denom)
                    .c_str());
  }
  {
    harness::Table t({"threads", "placement", "seconds", "migrations"});
    for (int n : mig_scales) {
      const auto& off = results[mx.add(mig_point(n, false, opts.quick))].metrics;
      const auto& on = results[mx.add(mig_point(n, true, opts.quick))].metrics;
      t.add_row({std::to_string(n), "immediate",
                 harness::Table::seconds(off.timed_seconds),
                 std::to_string(
                     total(off, telemetry::Counter::kPageMigrations))});
      t.add_row({std::to_string(n), "next-touch",
                 harness::Table::seconds(on.timed_seconds),
                 std::to_string(
                     total(on, telemetry::Counter::kPageMigrations))});
    }
    std::printf("migration-on-next-touch: %s immediate allocation on 8xeon\n"
                "(first_touch=0) with and without --numa-migrate\n%s\n",
                mig_point(1, false, opts.quick).nas.full_name().c_str(),
                t.to_string().c_str());
  }
  std::printf("Expected: hier cuts 8XEON remote steals >= 2x at equal\n"
              "total work; next-touch re-homes the slices that immediate\n"
              "allocation stranded in one zone.\n");

  if (!bench_path.empty()) {
    std::ofstream out(bench_path);
    if (!out) {
      std::fprintf(stderr, "cannot open for writing: %s\n",
                   bench_path.c_str());
      return 1;
    }
    out << bench_json(flat_remote[0], hier_remote[0], flat_remote[1],
                      hier_remote[1]);
    if (!out) {
      std::fprintf(stderr, "write failed: %s\n", bench_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", bench_path.c_str());
  }
  return harness::finish_figure(opts, sink);
}
