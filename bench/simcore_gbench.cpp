// google-benchmark microbenchmarks of the simulator core itself:
// wall-clock cost of events, fiber switches, and a full small OpenMP
// region.  These guard the *host* performance of the reproduction
// (every figure is built from millions of these operations).
#include <benchmark/benchmark.h>

#include "komp/runtime.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"
#include "sim/engine.hpp"

namespace {

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    kop::sim::Engine eng;
    for (int i = 0; i < 1000; ++i) eng.post_at(i, [] {});
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineEventDispatch);

void BM_FiberSwitch(benchmark::State& state) {
  kop::sim::Fiber f([] {
    for (;;) kop::sim::Fiber::yield();
  });
  for (auto _ : state) f.resume();
  state.SetItemsProcessed(state.iterations() * 2);  // in + out
}
BENCHMARK(BM_FiberSwitch);

void BM_ThreadSleepWake(benchmark::State& state) {
  for (auto _ : state) {
    kop::sim::Engine eng;
    auto* t = eng.spawn("t", [&] {
      for (int i = 0; i < 100; ++i) eng.sleep_for(10);
    });
    eng.wake(t);
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ThreadSleepWake);

void BM_OmpParallelRegion(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    kop::sim::Engine eng;
    kop::nautilus::NautilusKernel nk(eng, kop::hw::phi());
    nk.set_env("OMP_NUM_THREADS", std::to_string(threads));
    kop::pthread_compat::Pthreads pt(
        nk, kop::pthread_compat::nautilus_native_tuning());
    nk.spawn_thread(
        "main",
        [&] {
          kop::komp::Runtime rt(pt);
          for (int r = 0; r < 10; ++r)
            rt.parallel([](kop::komp::TeamThread& tt) { tt.compute_ns(1000); });
        },
        0);
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_OmpParallelRegion)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
