// Self-contained wall-clock microbenchmarks of the simulator core:
// raw event dispatch through the engine queue, the same-instant yield
// fast path, fiber switches, timed sleep/wake chains, kernel task
// dispatch + steals, and a full small OpenMP region.  These guard the
// *host* performance of the reproduction (every figure is built from
// millions of these operations).
//
//   simcore_gbench [--quick] [--filter SUBSTR] [--json FILE]
//
// Each bench reports items/sec (events, switches, tasks, ...) plus the
// engine queue's steady-state allocation count: allocations observed
// *after* the first warm-up repetition, which a warm arena-backed queue
// must keep at zero.  --json writes a "kop-bench" v1 document
// (validated by metrics_lint; examples/kop_perfgate gates CI against
// bench/simcore_floor.json).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "komp/runtime.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"
#include "sim/engine.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace {

using kop::sim::Engine;

struct BenchResult {
  std::string name;
  std::string unit;           // what "items" counts: events, switches, ...
  std::uint64_t items = 0;    // total across timed reps
  double seconds = 0.0;       // wall-clock over timed reps
  std::uint64_t allocs_steady = 0;  // queue allocs after warm-up

  double items_per_sec() const {
    return seconds > 0 ? static_cast<double>(items) / seconds : 0.0;
  }
};

// Runs `rep` (which returns items processed) eight times for warm-up
// and then `reps` timed times.  `allocs` samples the cumulative
// allocation count of whatever the bench exercises; the steady-state
// figure is the delta across the timed reps only.  Eight warm-ups
// cover calendar-ring convergence: the virtual clock crosses a bucket
// epoch roughly every rep or two, and slot capacities stop growing
// once every slot the workload cycles through has seen its peak load.
BenchResult run_bench(const std::string& name, const std::string& unit,
                      int reps, const std::function<std::uint64_t()>& rep,
                      const std::function<std::uint64_t()>& allocs) {
  BenchResult r;
  r.name = name;
  r.unit = unit;
  for (int i = 0; i < 8; ++i) rep();  // warm-up: populate arenas and stacks
  const std::uint64_t allocs_before = allocs();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) r.items += rep();
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.allocs_steady = allocs() - allocs_before;
  return r;
}

// Deterministic spread generator (benches must not depend on host RNG).
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() { return s = s * 6364136223846793005ull + 1442695040888963407ull; }
};

// --- Bench bodies ------------------------------------------------------

// Mixed near-future posts: many distinct instants plus heavy same-time
// collisions, the shape a barrier-heavy OpenMP run produces.  Reuses
// one engine across reps so the queue is measured warm.
BenchResult bench_event_loop(int reps, int n) {
  Engine eng;
  auto rep = [&]() -> std::uint64_t {
    Lcg lcg{12345};
    const kop::sim::Time base = eng.now();
    for (int i = 0; i < n; ++i)
      eng.post_at(base + static_cast<kop::sim::Time>((lcg.next() >> 32) % 64) * 97,
                  [] {});
    eng.run();
    return static_cast<std::uint64_t>(n);
  };
  return run_bench("event_loop", "events", reps, rep,
                   [&] { return eng.stats().queue_allocs; });
}

// Same-instant fast path: threads ping-ponging via yield_now() at one
// virtual instant must not round-trip the time-ordered structure.
BenchResult bench_same_instant_yield(int reps, int yields) {
  Engine eng;
  auto rep = [&]() -> std::uint64_t {
    std::vector<kop::sim::SimThread*> ts;
    for (int t = 0; t < 4; ++t)
      ts.push_back(eng.spawn("y" + std::to_string(t), [&eng, yields] {
        for (int i = 0; i < yields; ++i) eng.yield_now();
      }));
    for (auto* t : ts) eng.wake(t);
    eng.run();
    return static_cast<std::uint64_t>(4) * yields;
  };
  return run_bench("same_instant_yield", "yields", reps, rep,
                   [&] { return eng.stats().queue_allocs; });
}

BenchResult bench_fiber_switch(int reps, int n) {
  kop::sim::Fiber f([] {
    for (;;) kop::sim::Fiber::yield();
  });
  auto rep = [&]() -> std::uint64_t {
    for (int i = 0; i < n; ++i) f.resume();
    return static_cast<std::uint64_t>(n) * 2;  // in + out
  };
  return run_bench("fiber_switch", "switches", reps, rep, [] { return 0ull; });
}

// Timer-style sleep/wake chain: every sleep posts a timed wake.
BenchResult bench_sleep_wake(int reps, int n) {
  Engine eng;
  auto rep = [&]() -> std::uint64_t {
    auto* t = eng.spawn("sleeper", [&eng, n] {
      for (int i = 0; i < n; ++i) eng.sleep_for(10);
    });
    eng.wake(t);
    eng.run();
    return static_cast<std::uint64_t>(n);
  };
  return run_bench("sleep_wake", "wakes", reps, rep,
                   [&] { return eng.stats().queue_allocs; });
}

// Posts spread over a wide horizon (tens of ms): exercises whatever
// long-range structure backs the queue, not just the near ring.
BenchResult bench_far_horizon(int reps, int n) {
  Engine eng;
  auto rep = [&]() -> std::uint64_t {
    Lcg lcg{99};
    const kop::sim::Time base = eng.now();
    for (int i = 0; i < n; ++i)
      eng.post_at(base + static_cast<kop::sim::Time>((lcg.next() >> 32) % 5000) *
                             20'000,
                  [] {});
    eng.run();
    return static_cast<std::uint64_t>(n);
  };
  return run_bench("far_horizon", "events", reps, rep,
                   [&] { return eng.stats().queue_allocs; });
}

// Nautilus kernel task system: enqueue everything on CPU 0 with 8
// workers so 7 of them must steal.  Emits two records sharing one
// timed run: tasks dispatched and steals performed.
void bench_nk_tasks(int reps, int n, std::vector<BenchResult>* out) {
  std::uint64_t steals = 0;
  auto rep = [&]() -> std::uint64_t {
    Engine eng;
    kop::nautilus::NautilusKernel nk(eng, kop::hw::phi());
    nk.spawn_thread(
        "main",
        [&] {
          nk.task_system().start(8);
          int executed = 0;
          for (int i = 0; i < n; ++i)
            nk.task_system().enqueue([&executed] { ++executed; }, 0);
          while (nk.task_system().pending() > 0 || executed < n)
            eng.sleep_for(50'000);
          nk.task_system().stop();
          steals += nk.task_system().steals();
        },
        0);
    eng.run();
    return static_cast<std::uint64_t>(n);
  };
  BenchResult tasks =
      run_bench("nk_task_dispatch", "tasks", reps, rep, [] { return 0ull; });
  BenchResult st;
  st.name = "nk_task_steals";
  st.unit = "steals";
  // Steals accumulated across warm-up + timed reps; scale to timed share.
  st.items = steals * reps / (reps + 8);
  st.seconds = tasks.seconds;
  st.allocs_steady = 0;
  out->push_back(tasks);
  out->push_back(st);
}

// A full small OpenMP region through komp + pthread_compat + nautilus.
BenchResult bench_omp_parallel(int reps, int regions, int threads) {
  auto rep = [&]() -> std::uint64_t {
    Engine eng;
    kop::nautilus::NautilusKernel nk(eng, kop::hw::phi());
    nk.set_env("OMP_NUM_THREADS", std::to_string(threads));
    kop::pthread_compat::Pthreads pt(
        nk, kop::pthread_compat::nautilus_native_tuning());
    nk.spawn_thread(
        "main",
        [&] {
          kop::komp::Runtime rt(pt);
          for (int r = 0; r < regions; ++r)
            rt.parallel([](kop::komp::TeamThread& tt) { tt.compute_ns(1000); });
        },
        0);
    eng.run();
    return static_cast<std::uint64_t>(regions);
  };
  return run_bench("omp_parallel_t" + std::to_string(threads), "regions", reps,
                   rep, [] { return 0ull; });
}

// --- Output ------------------------------------------------------------

void print_table(const std::vector<BenchResult>& results) {
  std::printf("%-22s %12s %10s %14s %8s  %s\n", "bench", "items", "sec",
              "items/sec", "allocs", "unit");
  for (const auto& r : results) {
    std::printf("%-22s %12llu %10.4f %14.0f %8llu  %s\n", r.name.c_str(),
                static_cast<unsigned long long>(r.items), r.seconds,
                r.items_per_sec(),
                static_cast<unsigned long long>(r.allocs_steady),
                r.unit.c_str());
  }
}

std::string to_json(const std::vector<BenchResult>& results) {
  kop::telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value(kop::telemetry::kBenchSchemaName);
  w.key("version").value(kop::telemetry::kBenchSchemaVersion);
  w.key("generator").value("simcore_gbench");
  w.key("benches").begin_array();
  for (const auto& r : results) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("unit").value(r.unit);
    w.key("items").value(static_cast<std::uint64_t>(r.items));
    w.key("seconds").value(r.seconds);
    w.key("items_per_sec").value(r.items_per_sec());
    w.key("allocs_steady").value(static_cast<std::uint64_t>(r.allocs_steady));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--filter SUBSTR] [--json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  const int reps = quick ? 3 : 10;
  const auto want = [&](const char* name) {
    return filter.empty() || std::string(name).find(filter) != std::string::npos;
  };

  std::vector<BenchResult> results;
  if (want("event_loop"))
    results.push_back(bench_event_loop(reps, quick ? 20'000 : 100'000));
  if (want("same_instant_yield"))
    results.push_back(bench_same_instant_yield(reps, quick ? 5'000 : 25'000));
  if (want("fiber_switch"))
    results.push_back(bench_fiber_switch(reps, quick ? 20'000 : 100'000));
  if (want("sleep_wake"))
    results.push_back(bench_sleep_wake(reps, quick ? 5'000 : 25'000));
  if (want("far_horizon"))
    results.push_back(bench_far_horizon(reps, quick ? 10'000 : 50'000));
  if (want("nk_task")) bench_nk_tasks(quick ? 2 : 5, quick ? 500 : 2'000, &results);
  if (want("omp_parallel"))
    results.push_back(bench_omp_parallel(quick ? 2 : 5, quick ? 5 : 20, 16));

  if (results.empty()) {
    std::fprintf(stderr, "no benches match filter \"%s\"\n", filter.c_str());
    return 2;
  }

  print_table(results);

  if (!json_path.empty()) {
    const std::string doc = to_json(results);
    const auto violations = kop::telemetry::validate_bench_json(doc);
    if (!violations.empty()) {
      for (const auto& v : violations)
        std::fprintf(stderr, "internal schema violation: %s\n", v.c_str());
      return 1;
    }
    std::ofstream out(json_path);
    out << doc << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
