file(REMOVE_RECURSE
  "CMakeFiles/abl_barrier.dir/abl_barrier.cpp.o"
  "CMakeFiles/abl_barrier.dir/abl_barrier.cpp.o.d"
  "abl_barrier"
  "abl_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
