file(REMOVE_RECURSE
  "CMakeFiles/abl_gang.dir/abl_gang.cpp.o"
  "CMakeFiles/abl_gang.dir/abl_gang.cpp.o.d"
  "abl_gang"
  "abl_gang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
