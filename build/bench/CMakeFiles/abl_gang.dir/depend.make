# Empty dependencies file for abl_gang.
# This may be replaced when dependencies are built.
