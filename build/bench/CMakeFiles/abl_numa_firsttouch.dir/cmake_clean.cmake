file(REMOVE_RECURSE
  "CMakeFiles/abl_numa_firsttouch.dir/abl_numa_firsttouch.cpp.o"
  "CMakeFiles/abl_numa_firsttouch.dir/abl_numa_firsttouch.cpp.o.d"
  "abl_numa_firsttouch"
  "abl_numa_firsttouch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_numa_firsttouch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
