# Empty compiler generated dependencies file for abl_numa_firsttouch.
# This may be replaced when dependencies are built.
