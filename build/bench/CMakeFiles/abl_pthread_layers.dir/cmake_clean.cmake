file(REMOVE_RECURSE
  "CMakeFiles/abl_pthread_layers.dir/abl_pthread_layers.cpp.o"
  "CMakeFiles/abl_pthread_layers.dir/abl_pthread_layers.cpp.o.d"
  "abl_pthread_layers"
  "abl_pthread_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pthread_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
