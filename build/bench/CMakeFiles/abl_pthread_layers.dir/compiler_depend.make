# Empty compiler generated dependencies file for abl_pthread_layers.
# This may be replaced when dependencies are built.
