file(REMOVE_RECURSE
  "CMakeFiles/abl_redzone.dir/abl_redzone.cpp.o"
  "CMakeFiles/abl_redzone.dir/abl_redzone.cpp.o.d"
  "abl_redzone"
  "abl_redzone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_redzone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
