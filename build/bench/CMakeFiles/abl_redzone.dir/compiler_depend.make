# Empty compiler generated dependencies file for abl_redzone.
# This may be replaced when dependencies are built.
