file(REMOVE_RECURSE
  "CMakeFiles/fig07_epcc_rtk_phi.dir/fig07_epcc_rtk_phi.cpp.o"
  "CMakeFiles/fig07_epcc_rtk_phi.dir/fig07_epcc_rtk_phi.cpp.o.d"
  "fig07_epcc_rtk_phi"
  "fig07_epcc_rtk_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_epcc_rtk_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
