# Empty dependencies file for fig07_epcc_rtk_phi.
# This may be replaced when dependencies are built.
