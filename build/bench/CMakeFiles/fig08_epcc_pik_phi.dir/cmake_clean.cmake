file(REMOVE_RECURSE
  "CMakeFiles/fig08_epcc_pik_phi.dir/fig08_epcc_pik_phi.cpp.o"
  "CMakeFiles/fig08_epcc_pik_phi.dir/fig08_epcc_pik_phi.cpp.o.d"
  "fig08_epcc_pik_phi"
  "fig08_epcc_pik_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_epcc_pik_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
