# Empty dependencies file for fig08_epcc_pik_phi.
# This may be replaced when dependencies are built.
