file(REMOVE_RECURSE
  "CMakeFiles/fig09_nas_rtk_phi.dir/fig09_nas_rtk_phi.cpp.o"
  "CMakeFiles/fig09_nas_rtk_phi.dir/fig09_nas_rtk_phi.cpp.o.d"
  "fig09_nas_rtk_phi"
  "fig09_nas_rtk_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_nas_rtk_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
