# Empty dependencies file for fig09_nas_rtk_phi.
# This may be replaced when dependencies are built.
