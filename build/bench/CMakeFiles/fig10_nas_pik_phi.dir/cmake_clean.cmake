file(REMOVE_RECURSE
  "CMakeFiles/fig10_nas_pik_phi.dir/fig10_nas_pik_phi.cpp.o"
  "CMakeFiles/fig10_nas_pik_phi.dir/fig10_nas_pik_phi.cpp.o.d"
  "fig10_nas_pik_phi"
  "fig10_nas_pik_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nas_pik_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
