# Empty dependencies file for fig10_nas_pik_phi.
# This may be replaced when dependencies are built.
