file(REMOVE_RECURSE
  "CMakeFiles/fig11_cck_abs_phi.dir/fig11_cck_abs_phi.cpp.o"
  "CMakeFiles/fig11_cck_abs_phi.dir/fig11_cck_abs_phi.cpp.o.d"
  "fig11_cck_abs_phi"
  "fig11_cck_abs_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cck_abs_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
