# Empty compiler generated dependencies file for fig11_cck_abs_phi.
# This may be replaced when dependencies are built.
