file(REMOVE_RECURSE
  "CMakeFiles/fig12_cck_rel_phi.dir/fig12_cck_rel_phi.cpp.o"
  "CMakeFiles/fig12_cck_rel_phi.dir/fig12_cck_rel_phi.cpp.o.d"
  "fig12_cck_rel_phi"
  "fig12_cck_rel_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cck_rel_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
