# Empty dependencies file for fig12_cck_rel_phi.
# This may be replaced when dependencies are built.
