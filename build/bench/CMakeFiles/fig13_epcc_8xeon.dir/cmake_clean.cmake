file(REMOVE_RECURSE
  "CMakeFiles/fig13_epcc_8xeon.dir/fig13_epcc_8xeon.cpp.o"
  "CMakeFiles/fig13_epcc_8xeon.dir/fig13_epcc_8xeon.cpp.o.d"
  "fig13_epcc_8xeon"
  "fig13_epcc_8xeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_epcc_8xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
