# Empty dependencies file for fig13_epcc_8xeon.
# This may be replaced when dependencies are built.
