file(REMOVE_RECURSE
  "CMakeFiles/fig14_nas_8xeon.dir/fig14_nas_8xeon.cpp.o"
  "CMakeFiles/fig14_nas_8xeon.dir/fig14_nas_8xeon.cpp.o.d"
  "fig14_nas_8xeon"
  "fig14_nas_8xeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_nas_8xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
