# Empty compiler generated dependencies file for fig14_nas_8xeon.
# This may be replaced when dependencies are built.
