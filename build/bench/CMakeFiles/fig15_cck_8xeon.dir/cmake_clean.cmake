file(REMOVE_RECURSE
  "CMakeFiles/fig15_cck_8xeon.dir/fig15_cck_8xeon.cpp.o"
  "CMakeFiles/fig15_cck_8xeon.dir/fig15_cck_8xeon.cpp.o.d"
  "fig15_cck_8xeon"
  "fig15_cck_8xeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cck_8xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
