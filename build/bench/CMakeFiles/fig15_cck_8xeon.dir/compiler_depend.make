# Empty compiler generated dependencies file for fig15_cck_8xeon.
# This may be replaced when dependencies are built.
