file(REMOVE_RECURSE
  "CMakeFiles/simcore_gbench.dir/simcore_gbench.cpp.o"
  "CMakeFiles/simcore_gbench.dir/simcore_gbench.cpp.o.d"
  "simcore_gbench"
  "simcore_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
