file(REMOVE_RECURSE
  "CMakeFiles/cck_compiler_tour.dir/cck_compiler_tour.cpp.o"
  "CMakeFiles/cck_compiler_tour.dir/cck_compiler_tour.cpp.o.d"
  "cck_compiler_tour"
  "cck_compiler_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cck_compiler_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
