# Empty compiler generated dependencies file for cck_compiler_tour.
# This may be replaced when dependencies are built.
