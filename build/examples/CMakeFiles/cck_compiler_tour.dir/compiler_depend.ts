# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cck_compiler_tour.
