file(REMOVE_RECURSE
  "CMakeFiles/kernel_openmp_shell.dir/kernel_openmp_shell.cpp.o"
  "CMakeFiles/kernel_openmp_shell.dir/kernel_openmp_shell.cpp.o.d"
  "kernel_openmp_shell"
  "kernel_openmp_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_openmp_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
