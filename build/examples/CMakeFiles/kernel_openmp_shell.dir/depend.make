# Empty dependencies file for kernel_openmp_shell.
# This may be replaced when dependencies are built.
