file(REMOVE_RECURSE
  "CMakeFiles/multikernel_partition.dir/multikernel_partition.cpp.o"
  "CMakeFiles/multikernel_partition.dir/multikernel_partition.cpp.o.d"
  "multikernel_partition"
  "multikernel_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multikernel_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
