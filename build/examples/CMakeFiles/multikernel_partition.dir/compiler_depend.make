# Empty compiler generated dependencies file for multikernel_partition.
# This may be replaced when dependencies are built.
