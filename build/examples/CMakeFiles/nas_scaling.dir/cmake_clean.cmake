file(REMOVE_RECURSE
  "CMakeFiles/nas_scaling.dir/nas_scaling.cpp.o"
  "CMakeFiles/nas_scaling.dir/nas_scaling.cpp.o.d"
  "nas_scaling"
  "nas_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
