# Empty compiler generated dependencies file for nas_scaling.
# This may be replaced when dependencies are built.
