file(REMOVE_RECURSE
  "CMakeFiles/nas_verify.dir/nas_verify.cpp.o"
  "CMakeFiles/nas_verify.dir/nas_verify.cpp.o.d"
  "nas_verify"
  "nas_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
