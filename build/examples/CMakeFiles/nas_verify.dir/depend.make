# Empty dependencies file for nas_verify.
# This may be replaced when dependencies are built.
