file(REMOVE_RECURSE
  "CMakeFiles/pik_strace.dir/pik_strace.cpp.o"
  "CMakeFiles/pik_strace.dir/pik_strace.cpp.o.d"
  "pik_strace"
  "pik_strace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pik_strace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
