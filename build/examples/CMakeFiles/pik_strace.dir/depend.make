# Empty dependencies file for pik_strace.
# This may be replaced when dependencies are built.
