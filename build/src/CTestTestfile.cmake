# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("hw")
subdirs("osal")
subdirs("nautilus")
subdirs("linuxmodel")
subdirs("pthread_compat")
subdirs("virgil")
subdirs("komp")
subdirs("cck")
subdirs("rtk")
subdirs("pik")
subdirs("epcc")
subdirs("nas")
subdirs("core")
subdirs("harness")
