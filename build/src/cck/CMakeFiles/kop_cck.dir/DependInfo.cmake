
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cck/codegen.cpp" "src/cck/CMakeFiles/kop_cck.dir/codegen.cpp.o" "gcc" "src/cck/CMakeFiles/kop_cck.dir/codegen.cpp.o.d"
  "/root/repo/src/cck/ir.cpp" "src/cck/CMakeFiles/kop_cck.dir/ir.cpp.o" "gcc" "src/cck/CMakeFiles/kop_cck.dir/ir.cpp.o.d"
  "/root/repo/src/cck/parallelizer.cpp" "src/cck/CMakeFiles/kop_cck.dir/parallelizer.cpp.o" "gcc" "src/cck/CMakeFiles/kop_cck.dir/parallelizer.cpp.o.d"
  "/root/repo/src/cck/pdg.cpp" "src/cck/CMakeFiles/kop_cck.dir/pdg.cpp.o" "gcc" "src/cck/CMakeFiles/kop_cck.dir/pdg.cpp.o.d"
  "/root/repo/src/cck/program.cpp" "src/cck/CMakeFiles/kop_cck.dir/program.cpp.o" "gcc" "src/cck/CMakeFiles/kop_cck.dir/program.cpp.o.d"
  "/root/repo/src/cck/transforms.cpp" "src/cck/CMakeFiles/kop_cck.dir/transforms.cpp.o" "gcc" "src/cck/CMakeFiles/kop_cck.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/virgil/CMakeFiles/kop_virgil.dir/DependInfo.cmake"
  "/root/repo/build/src/komp/CMakeFiles/kop_komp.dir/DependInfo.cmake"
  "/root/repo/build/src/pthread_compat/CMakeFiles/kop_pthread_compat.dir/DependInfo.cmake"
  "/root/repo/build/src/nautilus/CMakeFiles/kop_nautilus.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/osal/CMakeFiles/kop_osal.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
