file(REMOVE_RECURSE
  "CMakeFiles/kop_cck.dir/codegen.cpp.o"
  "CMakeFiles/kop_cck.dir/codegen.cpp.o.d"
  "CMakeFiles/kop_cck.dir/ir.cpp.o"
  "CMakeFiles/kop_cck.dir/ir.cpp.o.d"
  "CMakeFiles/kop_cck.dir/parallelizer.cpp.o"
  "CMakeFiles/kop_cck.dir/parallelizer.cpp.o.d"
  "CMakeFiles/kop_cck.dir/pdg.cpp.o"
  "CMakeFiles/kop_cck.dir/pdg.cpp.o.d"
  "CMakeFiles/kop_cck.dir/program.cpp.o"
  "CMakeFiles/kop_cck.dir/program.cpp.o.d"
  "CMakeFiles/kop_cck.dir/transforms.cpp.o"
  "CMakeFiles/kop_cck.dir/transforms.cpp.o.d"
  "libkop_cck.a"
  "libkop_cck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_cck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
