file(REMOVE_RECURSE
  "libkop_cck.a"
)
