# Empty dependencies file for kop_cck.
# This may be replaced when dependencies are built.
