file(REMOVE_RECURSE
  "CMakeFiles/kop_core.dir/stack.cpp.o"
  "CMakeFiles/kop_core.dir/stack.cpp.o.d"
  "libkop_core.a"
  "libkop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
