file(REMOVE_RECURSE
  "libkop_core.a"
)
