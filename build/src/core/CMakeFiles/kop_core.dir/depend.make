# Empty dependencies file for kop_core.
# This may be replaced when dependencies are built.
