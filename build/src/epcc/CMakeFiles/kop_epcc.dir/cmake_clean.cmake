file(REMOVE_RECURSE
  "CMakeFiles/kop_epcc.dir/epcc.cpp.o"
  "CMakeFiles/kop_epcc.dir/epcc.cpp.o.d"
  "libkop_epcc.a"
  "libkop_epcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_epcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
