file(REMOVE_RECURSE
  "libkop_epcc.a"
)
