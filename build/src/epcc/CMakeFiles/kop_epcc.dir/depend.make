# Empty dependencies file for kop_epcc.
# This may be replaced when dependencies are built.
