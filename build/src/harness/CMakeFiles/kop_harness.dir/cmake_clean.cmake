file(REMOVE_RECURSE
  "CMakeFiles/kop_harness.dir/experiment.cpp.o"
  "CMakeFiles/kop_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/kop_harness.dir/figures.cpp.o"
  "CMakeFiles/kop_harness.dir/figures.cpp.o.d"
  "CMakeFiles/kop_harness.dir/table.cpp.o"
  "CMakeFiles/kop_harness.dir/table.cpp.o.d"
  "libkop_harness.a"
  "libkop_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
