file(REMOVE_RECURSE
  "libkop_harness.a"
)
