# Empty compiler generated dependencies file for kop_harness.
# This may be replaced when dependencies are built.
