file(REMOVE_RECURSE
  "CMakeFiles/kop_hw.dir/cpu.cpp.o"
  "CMakeFiles/kop_hw.dir/cpu.cpp.o.d"
  "CMakeFiles/kop_hw.dir/exec_model.cpp.o"
  "CMakeFiles/kop_hw.dir/exec_model.cpp.o.d"
  "CMakeFiles/kop_hw.dir/memory.cpp.o"
  "CMakeFiles/kop_hw.dir/memory.cpp.o.d"
  "CMakeFiles/kop_hw.dir/topology.cpp.o"
  "CMakeFiles/kop_hw.dir/topology.cpp.o.d"
  "libkop_hw.a"
  "libkop_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
