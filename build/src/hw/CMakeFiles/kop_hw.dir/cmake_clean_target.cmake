file(REMOVE_RECURSE
  "libkop_hw.a"
)
