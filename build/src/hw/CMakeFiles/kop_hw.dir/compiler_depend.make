# Empty compiler generated dependencies file for kop_hw.
# This may be replaced when dependencies are built.
