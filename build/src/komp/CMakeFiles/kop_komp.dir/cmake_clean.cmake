file(REMOVE_RECURSE
  "CMakeFiles/kop_komp.dir/barrier.cpp.o"
  "CMakeFiles/kop_komp.dir/barrier.cpp.o.d"
  "CMakeFiles/kop_komp.dir/icv.cpp.o"
  "CMakeFiles/kop_komp.dir/icv.cpp.o.d"
  "CMakeFiles/kop_komp.dir/lock.cpp.o"
  "CMakeFiles/kop_komp.dir/lock.cpp.o.d"
  "CMakeFiles/kop_komp.dir/runtime.cpp.o"
  "CMakeFiles/kop_komp.dir/runtime.cpp.o.d"
  "CMakeFiles/kop_komp.dir/tasking.cpp.o"
  "CMakeFiles/kop_komp.dir/tasking.cpp.o.d"
  "CMakeFiles/kop_komp.dir/team.cpp.o"
  "CMakeFiles/kop_komp.dir/team.cpp.o.d"
  "libkop_komp.a"
  "libkop_komp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_komp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
