file(REMOVE_RECURSE
  "libkop_komp.a"
)
