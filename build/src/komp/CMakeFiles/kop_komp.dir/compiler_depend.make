# Empty compiler generated dependencies file for kop_komp.
# This may be replaced when dependencies are built.
