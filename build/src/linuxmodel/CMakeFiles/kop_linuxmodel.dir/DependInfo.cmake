
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linuxmodel/futex.cpp" "src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/futex.cpp.o" "gcc" "src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/futex.cpp.o.d"
  "/root/repo/src/linuxmodel/linux_os.cpp" "src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/linux_os.cpp.o" "gcc" "src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/linux_os.cpp.o.d"
  "/root/repo/src/linuxmodel/process.cpp" "src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/process.cpp.o" "gcc" "src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/osal/CMakeFiles/kop_osal.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
