file(REMOVE_RECURSE
  "CMakeFiles/kop_linuxmodel.dir/futex.cpp.o"
  "CMakeFiles/kop_linuxmodel.dir/futex.cpp.o.d"
  "CMakeFiles/kop_linuxmodel.dir/linux_os.cpp.o"
  "CMakeFiles/kop_linuxmodel.dir/linux_os.cpp.o.d"
  "CMakeFiles/kop_linuxmodel.dir/process.cpp.o"
  "CMakeFiles/kop_linuxmodel.dir/process.cpp.o.d"
  "libkop_linuxmodel.a"
  "libkop_linuxmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_linuxmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
