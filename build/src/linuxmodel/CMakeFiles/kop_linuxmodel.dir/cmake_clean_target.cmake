file(REMOVE_RECURSE
  "libkop_linuxmodel.a"
)
