# Empty dependencies file for kop_linuxmodel.
# This may be replaced when dependencies are built.
