file(REMOVE_RECURSE
  "CMakeFiles/kop_nas.dir/automp_exec.cpp.o"
  "CMakeFiles/kop_nas.dir/automp_exec.cpp.o.d"
  "CMakeFiles/kop_nas.dir/functional.cpp.o"
  "CMakeFiles/kop_nas.dir/functional.cpp.o.d"
  "CMakeFiles/kop_nas.dir/openmp_exec.cpp.o"
  "CMakeFiles/kop_nas.dir/openmp_exec.cpp.o.d"
  "CMakeFiles/kop_nas.dir/spec_parser.cpp.o"
  "CMakeFiles/kop_nas.dir/spec_parser.cpp.o.d"
  "CMakeFiles/kop_nas.dir/specs.cpp.o"
  "CMakeFiles/kop_nas.dir/specs.cpp.o.d"
  "libkop_nas.a"
  "libkop_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
