file(REMOVE_RECURSE
  "libkop_nas.a"
)
