# Empty dependencies file for kop_nas.
# This may be replaced when dependencies are built.
