
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nautilus/buddy.cpp" "src/nautilus/CMakeFiles/kop_nautilus.dir/buddy.cpp.o" "gcc" "src/nautilus/CMakeFiles/kop_nautilus.dir/buddy.cpp.o.d"
  "/root/repo/src/nautilus/fibers.cpp" "src/nautilus/CMakeFiles/kop_nautilus.dir/fibers.cpp.o" "gcc" "src/nautilus/CMakeFiles/kop_nautilus.dir/fibers.cpp.o.d"
  "/root/repo/src/nautilus/irq.cpp" "src/nautilus/CMakeFiles/kop_nautilus.dir/irq.cpp.o" "gcc" "src/nautilus/CMakeFiles/kop_nautilus.dir/irq.cpp.o.d"
  "/root/repo/src/nautilus/kernel.cpp" "src/nautilus/CMakeFiles/kop_nautilus.dir/kernel.cpp.o" "gcc" "src/nautilus/CMakeFiles/kop_nautilus.dir/kernel.cpp.o.d"
  "/root/repo/src/nautilus/loader.cpp" "src/nautilus/CMakeFiles/kop_nautilus.dir/loader.cpp.o" "gcc" "src/nautilus/CMakeFiles/kop_nautilus.dir/loader.cpp.o.d"
  "/root/repo/src/nautilus/task_system.cpp" "src/nautilus/CMakeFiles/kop_nautilus.dir/task_system.cpp.o" "gcc" "src/nautilus/CMakeFiles/kop_nautilus.dir/task_system.cpp.o.d"
  "/root/repo/src/nautilus/tls.cpp" "src/nautilus/CMakeFiles/kop_nautilus.dir/tls.cpp.o" "gcc" "src/nautilus/CMakeFiles/kop_nautilus.dir/tls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/osal/CMakeFiles/kop_osal.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
