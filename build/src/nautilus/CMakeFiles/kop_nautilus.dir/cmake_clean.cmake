file(REMOVE_RECURSE
  "CMakeFiles/kop_nautilus.dir/buddy.cpp.o"
  "CMakeFiles/kop_nautilus.dir/buddy.cpp.o.d"
  "CMakeFiles/kop_nautilus.dir/fibers.cpp.o"
  "CMakeFiles/kop_nautilus.dir/fibers.cpp.o.d"
  "CMakeFiles/kop_nautilus.dir/irq.cpp.o"
  "CMakeFiles/kop_nautilus.dir/irq.cpp.o.d"
  "CMakeFiles/kop_nautilus.dir/kernel.cpp.o"
  "CMakeFiles/kop_nautilus.dir/kernel.cpp.o.d"
  "CMakeFiles/kop_nautilus.dir/loader.cpp.o"
  "CMakeFiles/kop_nautilus.dir/loader.cpp.o.d"
  "CMakeFiles/kop_nautilus.dir/task_system.cpp.o"
  "CMakeFiles/kop_nautilus.dir/task_system.cpp.o.d"
  "CMakeFiles/kop_nautilus.dir/tls.cpp.o"
  "CMakeFiles/kop_nautilus.dir/tls.cpp.o.d"
  "libkop_nautilus.a"
  "libkop_nautilus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_nautilus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
