file(REMOVE_RECURSE
  "libkop_nautilus.a"
)
