# Empty dependencies file for kop_nautilus.
# This may be replaced when dependencies are built.
