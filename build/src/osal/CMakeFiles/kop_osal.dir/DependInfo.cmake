
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osal/base_os.cpp" "src/osal/CMakeFiles/kop_osal.dir/base_os.cpp.o" "gcc" "src/osal/CMakeFiles/kop_osal.dir/base_os.cpp.o.d"
  "/root/repo/src/osal/sync.cpp" "src/osal/CMakeFiles/kop_osal.dir/sync.cpp.o" "gcc" "src/osal/CMakeFiles/kop_osal.dir/sync.cpp.o.d"
  "/root/repo/src/osal/tracer.cpp" "src/osal/CMakeFiles/kop_osal.dir/tracer.cpp.o" "gcc" "src/osal/CMakeFiles/kop_osal.dir/tracer.cpp.o.d"
  "/root/repo/src/osal/wait_queue.cpp" "src/osal/CMakeFiles/kop_osal.dir/wait_queue.cpp.o" "gcc" "src/osal/CMakeFiles/kop_osal.dir/wait_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/kop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
