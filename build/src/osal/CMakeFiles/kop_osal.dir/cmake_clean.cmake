file(REMOVE_RECURSE
  "CMakeFiles/kop_osal.dir/base_os.cpp.o"
  "CMakeFiles/kop_osal.dir/base_os.cpp.o.d"
  "CMakeFiles/kop_osal.dir/sync.cpp.o"
  "CMakeFiles/kop_osal.dir/sync.cpp.o.d"
  "CMakeFiles/kop_osal.dir/tracer.cpp.o"
  "CMakeFiles/kop_osal.dir/tracer.cpp.o.d"
  "CMakeFiles/kop_osal.dir/wait_queue.cpp.o"
  "CMakeFiles/kop_osal.dir/wait_queue.cpp.o.d"
  "libkop_osal.a"
  "libkop_osal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_osal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
