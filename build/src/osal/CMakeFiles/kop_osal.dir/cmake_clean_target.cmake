file(REMOVE_RECURSE
  "libkop_osal.a"
)
