# Empty dependencies file for kop_osal.
# This may be replaced when dependencies are built.
