
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pik/gang.cpp" "src/pik/CMakeFiles/kop_pik.dir/gang.cpp.o" "gcc" "src/pik/CMakeFiles/kop_pik.dir/gang.cpp.o.d"
  "/root/repo/src/pik/pik.cpp" "src/pik/CMakeFiles/kop_pik.dir/pik.cpp.o" "gcc" "src/pik/CMakeFiles/kop_pik.dir/pik.cpp.o.d"
  "/root/repo/src/pik/pik_os.cpp" "src/pik/CMakeFiles/kop_pik.dir/pik_os.cpp.o" "gcc" "src/pik/CMakeFiles/kop_pik.dir/pik_os.cpp.o.d"
  "/root/repo/src/pik/syscalls.cpp" "src/pik/CMakeFiles/kop_pik.dir/syscalls.cpp.o" "gcc" "src/pik/CMakeFiles/kop_pik.dir/syscalls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/komp/CMakeFiles/kop_komp.dir/DependInfo.cmake"
  "/root/repo/build/src/nautilus/CMakeFiles/kop_nautilus.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/pthread_compat/CMakeFiles/kop_pthread_compat.dir/DependInfo.cmake"
  "/root/repo/build/src/osal/CMakeFiles/kop_osal.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
