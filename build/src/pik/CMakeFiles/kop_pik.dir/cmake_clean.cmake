file(REMOVE_RECURSE
  "CMakeFiles/kop_pik.dir/gang.cpp.o"
  "CMakeFiles/kop_pik.dir/gang.cpp.o.d"
  "CMakeFiles/kop_pik.dir/pik.cpp.o"
  "CMakeFiles/kop_pik.dir/pik.cpp.o.d"
  "CMakeFiles/kop_pik.dir/pik_os.cpp.o"
  "CMakeFiles/kop_pik.dir/pik_os.cpp.o.d"
  "CMakeFiles/kop_pik.dir/syscalls.cpp.o"
  "CMakeFiles/kop_pik.dir/syscalls.cpp.o.d"
  "libkop_pik.a"
  "libkop_pik.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_pik.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
