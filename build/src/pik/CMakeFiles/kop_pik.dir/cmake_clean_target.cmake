file(REMOVE_RECURSE
  "libkop_pik.a"
)
