# Empty dependencies file for kop_pik.
# This may be replaced when dependencies are built.
