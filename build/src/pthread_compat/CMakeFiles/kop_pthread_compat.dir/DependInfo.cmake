
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pthread_compat/pthreads.cpp" "src/pthread_compat/CMakeFiles/kop_pthread_compat.dir/pthreads.cpp.o" "gcc" "src/pthread_compat/CMakeFiles/kop_pthread_compat.dir/pthreads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nautilus/CMakeFiles/kop_nautilus.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/osal/CMakeFiles/kop_osal.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
