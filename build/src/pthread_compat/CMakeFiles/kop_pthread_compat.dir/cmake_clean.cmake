file(REMOVE_RECURSE
  "CMakeFiles/kop_pthread_compat.dir/pthreads.cpp.o"
  "CMakeFiles/kop_pthread_compat.dir/pthreads.cpp.o.d"
  "libkop_pthread_compat.a"
  "libkop_pthread_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_pthread_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
