file(REMOVE_RECURSE
  "libkop_pthread_compat.a"
)
