# Empty compiler generated dependencies file for kop_pthread_compat.
# This may be replaced when dependencies are built.
