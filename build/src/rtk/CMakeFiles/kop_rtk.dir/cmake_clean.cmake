file(REMOVE_RECURSE
  "CMakeFiles/kop_rtk.dir/rtk.cpp.o"
  "CMakeFiles/kop_rtk.dir/rtk.cpp.o.d"
  "libkop_rtk.a"
  "libkop_rtk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_rtk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
