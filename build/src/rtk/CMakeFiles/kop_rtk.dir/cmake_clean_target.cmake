file(REMOVE_RECURSE
  "libkop_rtk.a"
)
