# Empty dependencies file for kop_rtk.
# This may be replaced when dependencies are built.
