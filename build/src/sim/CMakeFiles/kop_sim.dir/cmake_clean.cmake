file(REMOVE_RECURSE
  "CMakeFiles/kop_sim.dir/engine.cpp.o"
  "CMakeFiles/kop_sim.dir/engine.cpp.o.d"
  "CMakeFiles/kop_sim.dir/fiber.cpp.o"
  "CMakeFiles/kop_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/kop_sim.dir/rng.cpp.o"
  "CMakeFiles/kop_sim.dir/rng.cpp.o.d"
  "CMakeFiles/kop_sim.dir/stats.cpp.o"
  "CMakeFiles/kop_sim.dir/stats.cpp.o.d"
  "libkop_sim.a"
  "libkop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
