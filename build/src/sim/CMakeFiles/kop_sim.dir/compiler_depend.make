# Empty compiler generated dependencies file for kop_sim.
# This may be replaced when dependencies are built.
