file(REMOVE_RECURSE
  "CMakeFiles/kop_virgil.dir/virgil.cpp.o"
  "CMakeFiles/kop_virgil.dir/virgil.cpp.o.d"
  "libkop_virgil.a"
  "libkop_virgil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_virgil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
