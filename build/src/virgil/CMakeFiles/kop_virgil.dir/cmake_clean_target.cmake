file(REMOVE_RECURSE
  "libkop_virgil.a"
)
