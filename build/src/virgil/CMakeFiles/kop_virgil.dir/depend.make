# Empty dependencies file for kop_virgil.
# This may be replaced when dependencies are built.
