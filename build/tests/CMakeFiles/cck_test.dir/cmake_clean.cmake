file(REMOVE_RECURSE
  "CMakeFiles/cck_test.dir/cck_test.cpp.o"
  "CMakeFiles/cck_test.dir/cck_test.cpp.o.d"
  "cck_test"
  "cck_test.pdb"
  "cck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
