# Empty compiler generated dependencies file for cck_test.
# This may be replaced when dependencies are built.
