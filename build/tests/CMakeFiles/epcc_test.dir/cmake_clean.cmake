file(REMOVE_RECURSE
  "CMakeFiles/epcc_test.dir/epcc_test.cpp.o"
  "CMakeFiles/epcc_test.dir/epcc_test.cpp.o.d"
  "epcc_test"
  "epcc_test.pdb"
  "epcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
