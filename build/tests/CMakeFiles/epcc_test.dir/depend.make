# Empty dependencies file for epcc_test.
# This may be replaced when dependencies are built.
