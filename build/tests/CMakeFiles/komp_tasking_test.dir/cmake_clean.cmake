file(REMOVE_RECURSE
  "CMakeFiles/komp_tasking_test.dir/komp_tasking_test.cpp.o"
  "CMakeFiles/komp_tasking_test.dir/komp_tasking_test.cpp.o.d"
  "komp_tasking_test"
  "komp_tasking_test.pdb"
  "komp_tasking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/komp_tasking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
