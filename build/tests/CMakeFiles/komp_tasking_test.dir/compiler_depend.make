# Empty compiler generated dependencies file for komp_tasking_test.
# This may be replaced when dependencies are built.
