file(REMOVE_RECURSE
  "CMakeFiles/komp_test.dir/komp_test.cpp.o"
  "CMakeFiles/komp_test.dir/komp_test.cpp.o.d"
  "komp_test"
  "komp_test.pdb"
  "komp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/komp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
