# Empty dependencies file for komp_test.
# This may be replaced when dependencies are built.
