file(REMOVE_RECURSE
  "CMakeFiles/linuxmodel_test.dir/linuxmodel_test.cpp.o"
  "CMakeFiles/linuxmodel_test.dir/linuxmodel_test.cpp.o.d"
  "linuxmodel_test"
  "linuxmodel_test.pdb"
  "linuxmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linuxmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
