# Empty compiler generated dependencies file for linuxmodel_test.
# This may be replaced when dependencies are built.
