file(REMOVE_RECURSE
  "CMakeFiles/nautilus_test.dir/nautilus_test.cpp.o"
  "CMakeFiles/nautilus_test.dir/nautilus_test.cpp.o.d"
  "nautilus_test"
  "nautilus_test.pdb"
  "nautilus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nautilus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
