# Empty compiler generated dependencies file for nautilus_test.
# This may be replaced when dependencies are built.
