file(REMOVE_RECURSE
  "CMakeFiles/pik_test.dir/pik_test.cpp.o"
  "CMakeFiles/pik_test.dir/pik_test.cpp.o.d"
  "pik_test"
  "pik_test.pdb"
  "pik_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pik_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
