# Empty compiler generated dependencies file for pik_test.
# This may be replaced when dependencies are built.
