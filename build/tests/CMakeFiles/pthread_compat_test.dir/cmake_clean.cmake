file(REMOVE_RECURSE
  "CMakeFiles/pthread_compat_test.dir/pthread_compat_test.cpp.o"
  "CMakeFiles/pthread_compat_test.dir/pthread_compat_test.cpp.o.d"
  "pthread_compat_test"
  "pthread_compat_test.pdb"
  "pthread_compat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pthread_compat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
