# Empty dependencies file for pthread_compat_test.
# This may be replaced when dependencies are built.
