file(REMOVE_RECURSE
  "CMakeFiles/rtk_test.dir/rtk_test.cpp.o"
  "CMakeFiles/rtk_test.dir/rtk_test.cpp.o.d"
  "rtk_test"
  "rtk_test.pdb"
  "rtk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
