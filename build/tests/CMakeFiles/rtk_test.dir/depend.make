# Empty dependencies file for rtk_test.
# This may be replaced when dependencies are built.
