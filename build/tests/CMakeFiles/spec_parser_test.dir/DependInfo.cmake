
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spec_parser_test.cpp" "tests/CMakeFiles/spec_parser_test.dir/spec_parser_test.cpp.o" "gcc" "tests/CMakeFiles/spec_parser_test.dir/spec_parser_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/kop_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rtk/CMakeFiles/kop_rtk.dir/DependInfo.cmake"
  "/root/repo/build/src/pik/CMakeFiles/kop_pik.dir/DependInfo.cmake"
  "/root/repo/build/src/epcc/CMakeFiles/kop_epcc.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/kop_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/cck/CMakeFiles/kop_cck.dir/DependInfo.cmake"
  "/root/repo/build/src/virgil/CMakeFiles/kop_virgil.dir/DependInfo.cmake"
  "/root/repo/build/src/komp/CMakeFiles/kop_komp.dir/DependInfo.cmake"
  "/root/repo/build/src/pthread_compat/CMakeFiles/kop_pthread_compat.dir/DependInfo.cmake"
  "/root/repo/build/src/nautilus/CMakeFiles/kop_nautilus.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxmodel/CMakeFiles/kop_linuxmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/osal/CMakeFiles/kop_osal.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kop_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
