file(REMOVE_RECURSE
  "CMakeFiles/virgil_test.dir/virgil_test.cpp.o"
  "CMakeFiles/virgil_test.dir/virgil_test.cpp.o.d"
  "virgil_test"
  "virgil_test.pdb"
  "virgil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virgil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
