# Empty dependencies file for virgil_test.
# This may be replaced when dependencies are built.
