# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/osal_test[1]_include.cmake")
include("/root/repo/build/tests/nautilus_test[1]_include.cmake")
include("/root/repo/build/tests/linuxmodel_test[1]_include.cmake")
include("/root/repo/build/tests/pthread_compat_test[1]_include.cmake")
include("/root/repo/build/tests/komp_test[1]_include.cmake")
include("/root/repo/build/tests/komp_tasking_test[1]_include.cmake")
include("/root/repo/build/tests/virgil_test[1]_include.cmake")
include("/root/repo/build/tests/cck_test[1]_include.cmake")
include("/root/repo/build/tests/rtk_test[1]_include.cmake")
include("/root/repo/build/tests/pik_test[1]_include.cmake")
include("/root/repo/build/tests/nas_test[1]_include.cmake")
include("/root/repo/build/tests/epcc_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/spec_parser_test[1]_include.cmake")
