// Scenario: a compiler engineer explores what the CCK/AutoMP pipeline
// does to a mixed program -- a DOALL loop, a scalar reduction, a loop
// needing *object* privatization (the documented limitation), and a
// recurrence that only pipelines.  We compile twice (with and without
// the OpenMP semantic metadata) and run the result on kernel VIRGIL.
#include <cstdio>

#include "cck/codegen.hpp"
#include "cck/program.hpp"
#include "nautilus/kernel.hpp"
#include "virgil/virgil.hpp"

using namespace kop;

namespace {

cck::Module build_program(hw::MemRegion* data) {
  cck::Module m;
  cck::Function fn;
  fn.name = "main";
  fn.declare({"grid", 64ULL << 20, /*is_object=*/true});
  fn.declare({"sum", 8, /*is_object=*/false});
  fn.declare({"scratch", 1ULL << 20, /*is_object=*/true});
  fn.declare({"state", 8, /*is_object=*/false});

  auto make_exec = [&](double per_iter) {
    cck::ExecInfo e;
    e.region = data;
    e.per_iter_ns = per_iter;
    e.mem_fraction = 0.4;
    e.bytes_per_iter = 512;
    return e;
  };

  {  // 1. textbook DOALL: a[i] = f(a[i])
    cck::Loop l;
    l.name = "stencil_update";
    l.trip = 4096;
    l.omp.parallel_for = true;
    cck::Stmt s;
    s.label = "update";
    s.est_cost_ns = 900;
    s.accesses = {cck::read("grid"), cck::write("grid")};
    l.body.push_back(s);
    l.exec = make_exec(900);
    fn.items.push_back(cck::Item::make_loop(l));
  }
  {  // 2. scalar reduction: sum += a[i] -- privatizable (scalar)
    cck::Loop l;
    l.name = "norm";
    l.trip = 4096;
    l.omp.parallel_for = true;
    l.omp.reduction_vars = {"sum"};
    cck::Stmt s;
    s.label = "acc";
    s.est_cost_ns = 300;
    s.accesses = {cck::read("grid"),
                  cck::Access{"sum", true, false, false},
                  cck::Access{"sum", false, false, false}};
    l.body.push_back(s);
    l.exec = make_exec(300);
    fn.items.push_back(cck::Item::make_loop(l));
  }
  {  // 3. per-thread work array: private(scratch) -- object: blocked
    cck::Loop l;
    l.name = "solver_sweep";
    l.trip = 2048;
    l.omp.parallel_for = true;
    l.omp.private_vars = {"scratch"};
    cck::Stmt s;
    s.label = "sweep";
    s.est_cost_ns = 1200;
    s.accesses = {cck::read("grid"), cck::write("grid"),
                  cck::Access{"scratch", true, false, false},
                  cck::Access{"scratch", false, false, false}};
    l.body.push_back(s);
    l.exec = make_exec(1200);
    fn.items.push_back(cck::Item::make_loop(l));
  }
  {  // 4. recurrence feeding parallel work: pipeline candidate
    cck::Loop l;
    l.name = "time_advance";
    l.trip = 2048;
    cck::Stmt rec;
    rec.label = "advance_state";
    rec.est_cost_ns = 150;
    rec.accesses = {cck::carried_write("state"), cck::carried_read("state")};
    cck::Stmt work;
    work.label = "apply";
    work.est_cost_ns = 850;
    work.accesses = {cck::read("state", false), cck::read("grid"),
                     cck::write("grid")};
    l.body = {rec, work};
    l.exec = make_exec(1000);
    fn.items.push_back(cck::Item::make_loop(l));
  }
  m.functions["main"] = std::move(fn);
  return m;
}

}  // namespace

int main() {
  sim::Engine engine(7);
  nautilus::NautilusKernel kernel(engine, hw::phi());

  int exit_code = 0;
  kernel.spawn_thread(
      "main",
      [&] {
        hw::MemRegion* data = kernel.alloc_region(
            "grid", 64ULL << 20, osal::AllocPolicy::local());
        const cck::Module module = build_program(data);

        cck::CompilerOptions with_md;
        with_md.width = 16;
        const auto prog = cck::Compiler(with_md).compile(module);
        std::printf("--- compile WITH OpenMP metadata ---\n%s\n",
                    prog.report.to_string().c_str());

        cck::CompilerOptions without_md = with_md;
        without_md.use_omp_metadata = false;
        const auto blind = cck::Compiler(without_md).compile(module);
        std::printf("--- compile WITHOUT metadata (plain auto-par) ---\n%s\n",
                    blind.report.to_string().c_str());

        kernel.task_system().start(16);
        virgil::KernelVirgil vg(kernel, 16);
        cck::ProgramRunner runner(kernel, vg);
        const sim::Time with_t = runner.run(prog);
        const sim::Time blind_t = runner.run(blind);
        kernel.task_system().stop();

        std::printf("execution on kernel VIRGIL (16 lanes):\n");
        std::printf("  with metadata:    %8.3f ms virtual\n",
                    sim::to_seconds(with_t) * 1e3);
        std::printf("  without metadata: %8.3f ms virtual\n",
                    sim::to_seconds(blind_t) * 1e3);
        std::printf("\nThe metadata turns the reduction loop into a DOALL the\n"
                    "plain analysis must serialize; the object-privatized\n"
                    "sweep stays sequential either way (the AutoMP\n"
                    "limitation, paper SS6.2).\n");
        exit_code = prog.report.doall_loops >= 2 ? 0 : 1;
      },
      0);
  engine.run();
  return exit_code;
}
