// Scenario: a performance engineer describes their application in the
// workload text format (no recompilation), then sweeps it across the
// kernel paths.  Pass a file path to use your own description:
//
//   ./examples/custom_workload my_app.kop
#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "nas/spec_parser.hpp"

using namespace kop;

namespace {

constexpr const char* kDefaultWorkload = R"(
# A seismic wave-propagation kernel: one big stencil plus an uneven
# gather phase whose per-thread scratch arrays defeat AutoMP.
benchmark WAVE class B
timesteps 4
region field 512M
static_bytes 512M
serial_per_step 1ms

loop stencil
  region field
  trip 2048
  per_iter 250us
  mem_fraction 0.55
  accesses_per_ns 0.004
  pattern streaming
end

loop gather
  region field
  trip 2048
  per_iter 120us
  mem_fraction 0.60
  accesses_per_ns 0.003
  pattern random
  skew 0.5
  privatized_object true
end
)";

}  // namespace

int main(int argc, char** argv) {
  nas::BenchmarkSpec spec;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    spec = nas::parse_spec(in);
  } else {
    spec = nas::parse_spec(kDefaultWorkload);
  }

  std::printf("workload '%s' (%s):\n%s\n", spec.full_name().c_str(),
              argc > 1 ? argv[1] : "built-in example",
              nas::format_spec(spec).c_str());

  harness::Table t({"path", "16 threads", "64 threads"});
  for (auto path :
       {core::PathKind::kLinuxOmp, core::PathKind::kRtk, core::PathKind::kPik,
        core::PathKind::kAutoMpNautilus}) {
    std::vector<std::string> row{core::path_name(path)};
    for (int n : {16, 64}) {
      core::StackConfig cfg;
      cfg.path = path;
      cfg.num_threads = n;
      cfg.app_static_bytes = 0;  // allocate at startup, boot image small
      row.push_back(harness::Table::seconds(
          harness::run_nas(cfg, spec).timed_seconds));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Note the AutoMP row: the gather loop's privatized scratch\n"
              "arrays force it sequential (compile reports explain why --\n"
              "see examples/cck_compiler_tour).\n");
  return 0;
}
