// Scenario: the RTK-only superpower -- *kernel code itself* can use
// OpenMP (§3, Fig. 6 "applies to all code in kernel").  We register
// two kernel shell commands that parallelize internal kernel work:
// a memory-zone scrubber and a parallel checksum over a buffer, both
// with real computed results.
#include <cstdio>
#include <numeric>
#include <vector>

#include "rtk/rtk.hpp"

using namespace kop;

int main() {
  rtk::RtkOptions options;
  options.machine = hw::phi();
  rtk::RtkStack stack(std::move(options));
  stack.kernel().set_env("OMP_NUM_THREADS", "16");

  std::printf("RTK: OpenMP inside kernel shell commands\n\n");

  // Command 1: parallel checksum of a "DMA buffer".
  std::vector<std::uint64_t> buffer(1 << 16);
  std::iota(buffer.begin(), buffer.end(), 1);
  stack.register_app("checksum", [&](komp::Runtime& rt) {
    std::uint64_t sum = 0;
    rt.parallel([&](komp::TeamThread& tt) {
      std::uint64_t local = 0;
      tt.for_loop(komp::Schedule::kStatic, 0, 0,
                  static_cast<std::int64_t>(buffer.size()),
                  [&](std::int64_t b, std::int64_t e) {
                    for (std::int64_t i = b; i < e; ++i)
                      local += buffer[static_cast<std::size_t>(i)];
                    tt.compute_ns(40 * (e - b));
                  },
                  /*nowait=*/true);
      const double total =
          tt.reduce(static_cast<double>(local), komp::ReduceOp::kSum);
      tt.master([&] { sum = static_cast<std::uint64_t>(total); });
      tt.barrier();
    });
    const std::uint64_t n = buffer.size();
    const bool ok = sum == n * (n + 1) / 2;
    std::printf("  [checksum] sum=%llu (%s)\n",
                static_cast<unsigned long long>(sum), ok ? "ok" : "BAD");
    return ok ? 0 : 1;
  });

  // Command 2: parallel scrub of the DRAM zone's free lists -- a
  // classic kernel maintenance job, now a parallel for.
  stack.register_app("scrub", [&](komp::Runtime& rt) {
    auto& os = rt.os();
    hw::MemRegion* zone0 =
        os.alloc_region("scrub-window", 2ULL << 30, osal::AllocPolicy::in_zone(0));
    rt.parallel([&](komp::TeamThread& tt) {
      tt.for_loop(komp::Schedule::kDynamic, 4, 0, 256,
                  [&](std::int64_t b, std::int64_t e) {
                    hw::WorkBlock w;
                    w.cpu_ns = 30'000 * (e - b);
                    w.mem_fraction = 0.8;
                    w.region = zone0;
                    w.bytes_touched = (2ULL << 30) / 256 *
                                      static_cast<std::uint64_t>(e - b);
                    w.working_set_bytes = (2ULL << 30) / 256;
                    tt.compute(w);
                  });
    });
    os.free_region(zone0);
    std::printf("  [scrub] 2 GiB scrubbed in parallel, virtual time %.3f ms\n",
                sim::to_seconds(stack.engine().now()) * 1e3);
    return 0;
  });

  const int rc1 = stack.run_shell("checksum");
  const int rc2 = stack.run_shell("scrub");
  std::printf("\nshell commands available: ");
  for (const auto& name : stack.kernel().shell_command_names())
    std::printf("%s ", name.c_str());
  std::printf("\nexit codes: checksum=%d scrub=%d\n", rc1, rc2);
  return rc1 | rc2;
}
