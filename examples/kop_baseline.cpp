// Baseline shape-diff driver: regenerate a figure's sweep and compare
// its perf *shape* against a saved result cache.
//
//   kop_baseline --baseline <cache-dir> [--fig fig09,fig13] [--quick]
//                [--tolerance 0.05] [--allow-missing] [--json <path>]
//                [--jobs N] [--cache-dir <dir>] [--no-cache]
//
// The sweeps are the exact fig09/fig13 definitions (fig09_sweep /
// fig13_sweep), so a baseline recorded with e.g.
//
//   fig09_nas_rtk_phi --quick --cache-dir baseline/
//
// lines up point-for-point.  Baseline entries are read
// fingerprint-agnostically -- a hw/cost_params.hpp edit moves every
// cache key, and drift *across* such an edit is exactly what this tool
// judges: per-series geomean gain drift beyond --tolerance, win/loss
// flips, and crossover moves all fail the verdict.
//
// Exit code: 0 clean, 1 shape regression (or baseline points missing,
// unless --allow-missing), 2 usage.  --json writes the machine-readable
// verdict CI gates on.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/jobs/baseline.hpp"
#include "harness/jobs/runner.hpp"

using namespace kop;
namespace jobs = kop::harness::jobs;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline <cache-dir> [--fig fig09,fig13]\n"
               "          [--quick] [--tolerance <rel>] [--allow-missing]\n"
               "          [--json <path>] [--jobs N] [--cache-dir <dir>]\n"
               "          [--no-cache]\n",
               argv0);
  return 2;
}

struct FigureDiff {
  std::vector<jobs::ShapeCell> cells;
  std::vector<std::string> missing;
};

/// Run the figure's points fresh, look the same points up in the
/// baseline index, and reduce both sides to shape cells.
FigureDiff diff_figure(const std::string& fig, bool quick,
                       const jobs::CacheIndex& baseline_index,
                       const jobs::JobOptions& jopts) {
  FigureDiff diff;
  std::vector<jobs::PointSpec> points;
  if (fig == "fig09") {
    const auto sweep = harness::fig09_sweep(quick);
    points = harness::enumerate_nas_normalized(sweep.machine, sweep.paths,
                                               sweep.scales, sweep.suite);
    jobs::JobRunner runner(jopts);
    const auto fresh = runner.run(points);
    std::fputs(runner.summary(points.size()).c_str(), stderr);
    jobs::require_ok(points, fresh);
    std::vector<jobs::PointResult> base(points.size());
    std::vector<bool> have(points.size(), false);
    for (std::size_t i = 0; i < points.size(); ++i)
      have[i] = baseline_index.load(points[i], &base[i]);
    diff.cells = jobs::nas_shape_cells(fig, sweep.machine, sweep.paths,
                                       sweep.scales, sweep.suite, base, have,
                                       fresh, &diff.missing);
  } else {  // fig13
    const auto sweep = harness::fig13_sweep(quick);
    points = harness::enumerate_epcc_figure(sweep.machine, sweep.threads,
                                            sweep.paths, sweep.config);
    jobs::JobRunner runner(jopts);
    const auto fresh = runner.run(points);
    std::fputs(runner.summary(points.size()).c_str(), stderr);
    jobs::require_ok(points, fresh);
    std::vector<jobs::PointResult> base(points.size());
    std::vector<bool> have(points.size(), false);
    for (std::size_t i = 0; i < points.size(); ++i)
      have[i] = baseline_index.load(points[i], &base[i]);
    diff.cells = jobs::epcc_shape_cells(fig, sweep.machine, sweep.threads,
                                        sweep.paths, sweep.config, base, have,
                                        fresh, &diff.missing);
  }
  return diff;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir, figs = "fig09,fig13", json_path;
  bool quick = false, allow_missing = false;
  jobs::BaselineOptions bopts;
  jobs::JobOptions jopts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (arg == "--fig" && i + 1 < argc) {
      figs = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--tolerance" && i + 1 < argc) {
      bopts.geomean_tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--allow-missing") {
      allow_missing = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jopts.jobs = std::atoi(argv[++i]);
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      jopts.cache_dir = argv[++i];
    } else if (arg == "--no-cache") {
      jopts.no_cache = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_dir.empty()) return usage(argv[0]);

  std::vector<std::string> wanted;
  std::string cur;
  for (char ch : figs + ",") {
    if (ch == ',') {
      if (cur == "fig09" || cur == "fig13") {
        wanted.push_back(cur);
      } else if (!cur.empty()) {
        std::fprintf(stderr, "error: unknown figure '%s' (fig09, fig13)\n",
                     cur.c_str());
        return 2;
      }
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (wanted.empty()) return usage(argv[0]);

  const jobs::CacheIndex baseline_index(baseline_dir);
  std::fprintf(stderr, "[kop_baseline] %zu baseline entries in %s\n",
               baseline_index.size(), baseline_dir.c_str());

  jobs::BaselineVerdict verdict;
  try {
    std::vector<jobs::ShapeCell> cells;
    std::vector<std::string> missing;
    for (const auto& fig : wanted) {
      auto diff = diff_figure(fig, quick, baseline_index, jopts);
      cells.insert(cells.end(), diff.cells.begin(), diff.cells.end());
      missing.insert(missing.end(), diff.missing.begin(), diff.missing.end());
    }
    verdict = jobs::compare_shapes(std::move(cells), bopts);
    // A shared point (e.g. the Linux column) goes missing once per cell
    // that needed it; report it once.
    for (const auto& m : missing) {
      bool seen = false;
      for (const auto& v : verdict.incomparable) seen = seen || v == m;
      if (!seen) verdict.incomparable.push_back(m);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::fputs(verdict.text(bopts).c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << verdict.json(bopts);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  if (!verdict.shapes_ok()) return 1;
  if (!verdict.incomparable.empty() && !allow_missing) return 1;
  return 0;
}
