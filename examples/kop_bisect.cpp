// Cache-backed bisection of one cost-model constant.
//
//   kop_bisect --param <personality.field> --baseline <cache-dir>
//              [--min 0.25] [--max 4.0] [--steps 5] [--bisect-iters 4]
//              [--quick] [--tolerance <rel>] [--jobs N]
//              [--cache-dir <dir>] [--json <path>] [--checkpoint]
//              [--expect-hit-rate <frac>] [--list-params]
//
// Recalibration question the paper pipeline keeps hitting: how far can
// one hw/cost_params.hpp constant move before the reported *shape*
// (RTK-vs-Linux gains, fig09) breaks against a recorded baseline?
// kop_bisect sweeps a multiplicative scale over --param on a log grid,
// judges each scale with the kop_baseline shape predicate, then
// bisects every pass/fail boundary in log space.
//
// Each scale is a *late-binding suffix*: the grid enumerates one matrix
// whose points carry the scale in PointSpec::cost_scales, applied to
// the booted stack at the warmup/measurement boundary (warmup runs at
// calibrated costs; a boundary-insensitive constant that only shapes
// warmup -- e.g. a fault cost fully amortized before the timed phase --
// will therefore read as flat here).  Because the scale rides in the
// point's canonical form, every ResultCache entry stays valid forever
// and re-running the same bisection hits the cache for every point (the
// pocl trick -- reuse keyed by exact content, Jääskeläinen et al.);
// --expect-hit-rate turns that into a CI assertion.
//
// With --checkpoint, all scales of one sweep point share a single warm
// prefix: the stack boots and warms once, then forks one COW child per
// scale at the boundary.  Results are byte-identical either way.
//
// Exit code: 0 ok, 1 evaluation failure or hit-rate shortfall, 2 usage.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/jobs/baseline.hpp"
#include "harness/jobs/runner.hpp"
#include "hw/cost_params.hpp"

using namespace kop;
namespace jobs = kop::harness::jobs;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --param <personality.field> --baseline <cache-dir>\n"
               "          [--min F] [--max F] [--steps N] [--bisect-iters N]\n"
               "          [--quick] [--tolerance <rel>] [--jobs N]\n"
               "          [--cache-dir <dir>] [--json <path>]\n"
               "          [--checkpoint] [--no-checkpoint]\n"
               "          [--expect-hit-rate <frac>] [--list-params]\n",
               argv0);
  return 2;
}

struct Eval {
  double scale = 1.0;
  bool pass = false;
};

struct Driver {
  std::string param;
  bool quick = false;
  jobs::BaselineOptions bopts;
  jobs::JobOptions jopts;
  const jobs::CacheIndex* baseline = nullptr;
  // Aggregate cache traffic across every evaluation.
  std::uint64_t hits = 0;
  std::uint64_t executed = 0;

  /// Judge a batch of scales in one JobRunner pass, one verdict per
  /// scale in input order.  Every scale contributes the same fig09
  /// sweep, tagged per point with {param, scale} in cost_scales -- so
  /// the whole batch is one matrix where each sweep point is a shared
  /// prefix with one suffix per scale, exactly the shape --checkpoint
  /// forks.  Baseline lookups use the scale-free twin of each point
  /// (the baseline was recorded without scale suffixes).  Throws on
  /// simulation failure (a scale so extreme the run collapses is an
  /// error, not a shape verdict).
  std::vector<bool> evaluate_batch(const std::vector<double>& scales) {
    const auto sweep = harness::fig09_sweep(quick);
    const auto base_points = harness::enumerate_nas_normalized(
        sweep.machine, sweep.paths, sweep.scales, sweep.suite);
    const std::size_t B = base_points.size();
    std::vector<jobs::PointSpec> all;
    all.reserve(scales.size() * B);
    for (const double s : scales) {
      for (jobs::PointSpec p : base_points) {
        p.cost_scales.push_back({param, s});
        all.push_back(std::move(p));
      }
    }
    jobs::JobRunner runner(jopts);
    const auto fresh = runner.run(all);
    hits += runner.stats().cache_hits;
    executed += runner.stats().executed;
    jobs::require_ok(all, fresh);

    std::vector<jobs::PointResult> base(B);
    std::vector<bool> have(B, false);
    for (std::size_t i = 0; i < B; ++i)
      have[i] = baseline->load(base_points[i], &base[i]);

    std::vector<bool> verdicts;
    verdicts.reserve(scales.size());
    for (std::size_t k = 0; k < scales.size(); ++k) {
      const auto lo = fresh.begin() + static_cast<std::ptrdiff_t>(k * B);
      std::vector<jobs::PointResult> slice(lo, lo + static_cast<std::ptrdiff_t>(B));
      std::vector<std::string> missing;
      auto cells =
          jobs::nas_shape_cells("fig09", sweep.machine, sweep.paths,
                                sweep.scales, sweep.suite, base, have, slice,
                                &missing);
      const auto verdict = jobs::compare_shapes(std::move(cells), bopts);
      verdicts.push_back(verdict.shapes_ok() && missing.empty());
    }
    return verdicts;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Driver drv;
  std::string baseline_dir, json_path;
  double lo = 0.25, hi = 4.0, expect_hit_rate = -1.0;
  int steps = 5, bisect_iters = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--param" && i + 1 < argc) {
      drv.param = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (arg == "--min" && i + 1 < argc) {
      lo = std::strtod(argv[++i], nullptr);
    } else if (arg == "--max" && i + 1 < argc) {
      hi = std::strtod(argv[++i], nullptr);
    } else if (arg == "--steps" && i + 1 < argc) {
      steps = std::atoi(argv[++i]);
    } else if (arg == "--bisect-iters" && i + 1 < argc) {
      bisect_iters = std::atoi(argv[++i]);
    } else if (arg == "--quick") {
      drv.quick = true;
    } else if (arg == "--tolerance" && i + 1 < argc) {
      drv.bopts.geomean_tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--jobs" && i + 1 < argc) {
      drv.jopts.jobs = std::atoi(argv[++i]);
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      drv.jopts.cache_dir = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--checkpoint") {
      drv.jopts.checkpoint = true;
    } else if (arg == "--no-checkpoint") {
      drv.jopts.checkpoint = false;
    } else if (arg == "--expect-hit-rate" && i + 1 < argc) {
      expect_hit_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--list-params") {
      for (const auto& name : hw::cost_param_names())
        std::printf("%s\n", name.c_str());
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (drv.param.empty() || baseline_dir.empty() || steps < 2 ||
      !(lo > 0.0) || !(hi > lo)) {
    return usage(argv[0]);
  }
  try {
    hw::set_cost_scale(drv.param, 2.0);  // validate the key early
    hw::clear_cost_scales();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const jobs::CacheIndex baseline_index(baseline_dir);
  drv.baseline = &baseline_index;
  std::fprintf(stderr, "[kop_bisect] %s over [%g, %g], %zu baseline entries\n",
               drv.param.c_str(), lo, hi, baseline_index.size());

  std::vector<Eval> evals;
  std::vector<double> boundaries;
  int rc = 0;
  try {
    // Coarse pass: log-spaced grid, endpoints included, evaluated as
    // ONE batched matrix (steps suffixes per sweep-point prefix).
    std::vector<double> grid;
    for (int i = 0; i < steps; ++i) {
      grid.push_back(std::exp(std::log(lo) +
                              (std::log(hi) - std::log(lo)) * i / (steps - 1)));
    }
    const std::vector<bool> grid_pass = drv.evaluate_batch(grid);
    for (int i = 0; i < steps; ++i) {
      std::printf("scale %.4f -> %s\n", grid[i],
                  grid_pass[i] ? "PASS" : "FAIL");
      evals.push_back({grid[i], grid_pass[i]});
    }
    // Refine every pass/fail boundary of the coarse grid by log-space
    // bisection.  Rounds are batched across boundaries: each round
    // evaluates one midpoint per still-active interval in a single
    // matrix, so --checkpoint keeps sharing prefixes during refinement.
    struct Interval {
      double a, b;
      bool a_pass;
    };
    std::vector<Interval> active;
    for (std::size_t i = 1; i < evals.size(); ++i) {
      if (evals[i - 1].pass != evals[i].pass)
        active.push_back({evals[i - 1].scale, evals[i].scale,
                          evals[i - 1].pass});
    }
    for (int it = 0; it < bisect_iters && !active.empty(); ++it) {
      std::vector<double> mids;
      mids.reserve(active.size());
      for (const Interval& iv : active)
        mids.push_back(std::exp(0.5 * (std::log(iv.a) + std::log(iv.b))));
      const std::vector<bool> mid_pass = drv.evaluate_batch(mids);
      for (std::size_t j = 0; j < active.size(); ++j) {
        std::printf("  bisect %.4f -> %s\n", mids[j],
                    mid_pass[j] ? "PASS" : "FAIL");
        evals.push_back({mids[j], mid_pass[j]});
        if (mid_pass[j] == active[j].a_pass) active[j].a = mids[j];
        else active[j].b = mids[j];
      }
    }
    for (const Interval& iv : active) {
      const double boundary = std::exp(0.5 * (std::log(iv.a) + std::log(iv.b)));
      boundaries.push_back(boundary);
      std::printf("boundary near scale %.4f (%s)\n", boundary,
                  drv.param.c_str());
    }
    if (boundaries.empty()) {
      std::printf("no pass/fail boundary in [%g, %g]: shape verdict is %s "
                  "across the whole range\n",
                  lo, hi, evals.front().pass ? "PASS" : "FAIL");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  const std::uint64_t lookups = drv.hits + drv.executed;
  const double rate =
      lookups == 0 ? 0.0 : static_cast<double>(drv.hits) / lookups;
  std::fprintf(stderr, "[kop_bisect] cache: %llu hits / %llu lookups (%.1f%%)\n",
               static_cast<unsigned long long>(drv.hits),
               static_cast<unsigned long long>(lookups), 100.0 * rate);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << "{\n  \"param\": \"" << drv.param << "\",\n  \"evals\": [";
    for (std::size_t i = 0; i < evals.size(); ++i) {
      out << (i ? ", " : "") << "{\"scale\": " << evals[i].scale
          << ", \"pass\": " << (evals[i].pass ? "true" : "false") << "}";
    }
    out << "],\n  \"boundaries\": [";
    for (std::size_t i = 0; i < boundaries.size(); ++i)
      out << (i ? ", " : "") << boundaries[i];
    out << "],\n  \"cache_hits\": " << drv.hits
        << ",\n  \"cache_lookups\": " << lookups
        << ",\n  \"cache_hit_rate\": " << rate << "\n}\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      rc = 1;
    }
  }
  if (expect_hit_rate >= 0.0 && rate < expect_hit_rate) {
    std::fprintf(stderr,
                 "error: cache hit rate %.1f%% below expected %.1f%%\n",
                 100.0 * rate, 100.0 * expect_hit_rate);
    rc = 1;
  }
  return rc;
}
