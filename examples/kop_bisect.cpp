// Cache-backed bisection of one cost-model constant.
//
//   kop_bisect --param <personality.field> --baseline <cache-dir>
//              [--min 0.25] [--max 4.0] [--steps 5] [--bisect-iters 4]
//              [--quick] [--tolerance <rel>] [--jobs N]
//              [--cache-dir <dir>] [--json <path>]
//              [--expect-hit-rate <frac>] [--list-params]
//
// Recalibration question the paper pipeline keeps hitting: how far can
// one hw/cost_params.hpp constant move before the reported *shape*
// (RTK-vs-Linux gains, fig09) breaks against a recorded baseline?
// kop_bisect sweeps a multiplicative scale over --param on a log grid,
// judges each scale with the kop_baseline shape predicate, then
// bisects every pass/fail boundary in log space.
//
// The sweep is minutes-scale instead of hours-scale because results
// are content-addressed: overrides are applied inside
// hw::linux_costs()/nautilus_costs(), so each scale lands on its own
// cost-model fingerprint and every ResultCache entry stays valid
// forever.  Re-running the same bisection hits the cache for every
// point (the pocl trick -- reuse keyed by exact content, Jääskeläinen
// et al.); --expect-hit-rate turns that into a CI assertion.
//
// Exit code: 0 ok, 1 evaluation failure or hit-rate shortfall, 2 usage.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/jobs/baseline.hpp"
#include "harness/jobs/runner.hpp"
#include "hw/cost_params.hpp"

using namespace kop;
namespace jobs = kop::harness::jobs;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --param <personality.field> --baseline <cache-dir>\n"
               "          [--min F] [--max F] [--steps N] [--bisect-iters N]\n"
               "          [--quick] [--tolerance <rel>] [--jobs N]\n"
               "          [--cache-dir <dir>] [--json <path>]\n"
               "          [--expect-hit-rate <frac>] [--list-params]\n",
               argv0);
  return 2;
}

struct Eval {
  double scale = 1.0;
  bool pass = false;
};

struct Driver {
  std::string param;
  bool quick = false;
  jobs::BaselineOptions bopts;
  jobs::JobOptions jopts;
  const jobs::CacheIndex* baseline = nullptr;
  // Aggregate cache traffic across every evaluation.
  std::uint64_t hits = 0;
  std::uint64_t executed = 0;

  /// Judge one scale of the parameter against the baseline shape.
  /// Throws on simulation failure (a scale so extreme the stack cannot
  /// boot is an error, not a shape verdict).
  bool evaluate(double scale) {
    hw::set_cost_scale(param, scale);
    const auto sweep = harness::fig09_sweep(quick);
    const auto points = harness::enumerate_nas_normalized(
        sweep.machine, sweep.paths, sweep.scales, sweep.suite);
    jobs::JobRunner runner(jopts);
    const auto fresh = runner.run(points);
    hits += runner.stats().cache_hits;
    executed += runner.stats().executed;
    jobs::require_ok(points, fresh);
    std::vector<jobs::PointResult> base(points.size());
    std::vector<bool> have(points.size(), false);
    for (std::size_t i = 0; i < points.size(); ++i)
      have[i] = baseline->load(points[i], &base[i]);
    std::vector<std::string> missing;
    auto cells =
        jobs::nas_shape_cells("fig09", sweep.machine, sweep.paths,
                              sweep.scales, sweep.suite, base, have, fresh,
                              &missing);
    const auto verdict = jobs::compare_shapes(std::move(cells), bopts);
    return verdict.shapes_ok() && missing.empty();
  }
};

}  // namespace

int main(int argc, char** argv) {
  Driver drv;
  std::string baseline_dir, json_path;
  double lo = 0.25, hi = 4.0, expect_hit_rate = -1.0;
  int steps = 5, bisect_iters = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--param" && i + 1 < argc) {
      drv.param = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (arg == "--min" && i + 1 < argc) {
      lo = std::strtod(argv[++i], nullptr);
    } else if (arg == "--max" && i + 1 < argc) {
      hi = std::strtod(argv[++i], nullptr);
    } else if (arg == "--steps" && i + 1 < argc) {
      steps = std::atoi(argv[++i]);
    } else if (arg == "--bisect-iters" && i + 1 < argc) {
      bisect_iters = std::atoi(argv[++i]);
    } else if (arg == "--quick") {
      drv.quick = true;
    } else if (arg == "--tolerance" && i + 1 < argc) {
      drv.bopts.geomean_tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--jobs" && i + 1 < argc) {
      drv.jopts.jobs = std::atoi(argv[++i]);
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      drv.jopts.cache_dir = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--expect-hit-rate" && i + 1 < argc) {
      expect_hit_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--list-params") {
      for (const auto& name : hw::cost_param_names())
        std::printf("%s\n", name.c_str());
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (drv.param.empty() || baseline_dir.empty() || steps < 2 ||
      !(lo > 0.0) || !(hi > lo)) {
    return usage(argv[0]);
  }
  try {
    hw::set_cost_scale(drv.param, 2.0);  // validate the key early
    hw::clear_cost_scales();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const jobs::CacheIndex baseline_index(baseline_dir);
  drv.baseline = &baseline_index;
  std::fprintf(stderr, "[kop_bisect] %s over [%g, %g], %zu baseline entries\n",
               drv.param.c_str(), lo, hi, baseline_index.size());

  std::vector<Eval> evals;
  std::vector<double> boundaries;
  int rc = 0;
  try {
    // Coarse pass: log-spaced grid, endpoints included.
    for (int i = 0; i < steps; ++i) {
      Eval e;
      e.scale = std::exp(std::log(lo) + (std::log(hi) - std::log(lo)) * i /
                                            (steps - 1));
      e.pass = drv.evaluate(e.scale);
      std::printf("scale %.4f -> %s\n", e.scale, e.pass ? "PASS" : "FAIL");
      evals.push_back(e);
    }
    // Refine every pass/fail boundary by log-space bisection.  Only
    // the coarse grid defines boundaries; the evals appended below are
    // records of the refinement itself, not new intervals to scan.
    const std::size_t coarse = evals.size();
    for (std::size_t i = 1; i < coarse; ++i) {
      if (evals[i - 1].pass == evals[i].pass) continue;
      double a = evals[i - 1].scale, b = evals[i].scale;
      bool a_pass = evals[i - 1].pass;
      for (int it = 0; it < bisect_iters; ++it) {
        const double mid = std::exp(0.5 * (std::log(a) + std::log(b)));
        const bool mid_pass = drv.evaluate(mid);
        std::printf("  bisect %.4f -> %s\n", mid, mid_pass ? "PASS" : "FAIL");
        evals.push_back({mid, mid_pass});
        if (mid_pass == a_pass) a = mid; else b = mid;
      }
      const double boundary = std::exp(0.5 * (std::log(a) + std::log(b)));
      boundaries.push_back(boundary);
      std::printf("boundary near scale %.4f (%s)\n", boundary,
                  drv.param.c_str());
    }
    if (boundaries.empty()) {
      std::printf("no pass/fail boundary in [%g, %g]: shape verdict is %s "
                  "across the whole range\n",
                  lo, hi, evals.front().pass ? "PASS" : "FAIL");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  hw::clear_cost_scales();

  const std::uint64_t lookups = drv.hits + drv.executed;
  const double rate =
      lookups == 0 ? 0.0 : static_cast<double>(drv.hits) / lookups;
  std::fprintf(stderr, "[kop_bisect] cache: %llu hits / %llu lookups (%.1f%%)\n",
               static_cast<unsigned long long>(drv.hits),
               static_cast<unsigned long long>(lookups), 100.0 * rate);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << "{\n  \"param\": \"" << drv.param << "\",\n  \"evals\": [";
    for (std::size_t i = 0; i < evals.size(); ++i) {
      out << (i ? ", " : "") << "{\"scale\": " << evals[i].scale
          << ", \"pass\": " << (evals[i].pass ? "true" : "false") << "}";
    }
    out << "],\n  \"boundaries\": [";
    for (std::size_t i = 0; i < boundaries.size(); ++i)
      out << (i ? ", " : "") << boundaries[i];
    out << "],\n  \"cache_hits\": " << drv.hits
        << ",\n  \"cache_lookups\": " << lookups
        << ",\n  \"cache_hit_rate\": " << rate << "\n}\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      rc = 1;
    }
  }
  if (expect_hit_rate >= 0.0 && rate < expect_hit_rate) {
    std::fprintf(stderr,
                 "error: cache hit rate %.1f%% below expected %.1f%%\n",
                 100.0 * rate, 100.0 * expect_hit_rate);
    rc = 1;
  }
  return rc;
}
