// Point-query client for a running kop_sweepd: the "millions of users"
// read path.  A warm result costs the daemon one cache lookup -- no
// simulation, no lease traffic.
//
//   kop_client --coord <addr> --get <point-hash-hex16>
//   kop_client --coord <addr> --get-token <propcheck-token>
//   kop_client --coord <addr> --get-file <list> [--out-dir <dir>]
//   kop_client --coord <addr> --stats
//   kop_client --coord <addr> --wait-drained [--timeout-ms T | --timeout S]
//   kop_client --coord <addr> --shutdown
//
// <addr> is a unix socket path or host:port; --socket is an equivalent
// legacy spelling of --coord.
//
// --get prints the kop-metrics v1 entry document on stdout and exits 0.
// A known-but-unfinished point exits 2 (stderr says queued/leased); a
// finished point the daemon has no cache for also exits 2 (COMPLETE);
// an unknown hash exits 3.  --get-token hashes a replay token locally
// first, so callers never need to know the hash scheme.
//
// --get-file reads hashes or replay tokens (one per line, `#` comments)
// and resolves them with batched MGET -- one round trip per 64 points
// instead of one per point.  Per-point status lines go to stdout; with
// --out-dir every HIT document is written to
// <dir>/kop-point-<hash>.json.  Exit: 0 all served or complete, 2 any
// pending, 3 any unknown.
//
// --wait-drained polls STATS with exponential backoff (25ms doubling to
// 2s); --timeout-ms / --timeout bound the wait and exit 2 on expiry,
// and a daemon that vanishes mid-wait is an error (exit 1), never a
// hang.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "coord/client.hpp"
#include "harness/propcheck/propcheck.hpp"

using namespace kop;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --coord <addr> (--get <hash> | --get-token <token> |\n"
      "          --get-file <list> [--out-dir <dir>] | --stats |\n"
      "          --wait-drained [--timeout-ms T | --timeout S] | --shutdown)\n"
      "  --coord <addr>     coordinator: unix socket path or host:port\n"
      "  --socket <addr>    alias for --coord\n"
      "  --get <hash>       fetch one point's cached entry by content hash\n"
      "                     (exit 0 HIT, 2 PENDING/COMPLETE, 3 UNKNOWN)\n"
      "  --get-token <tok>  same, addressed by a propcheck replay token\n"
      "  --get-file <list>  batched fetch: hashes or tokens, one per line\n"
      "                     (MGET, one round trip per 64 points)\n"
      "  --out-dir <dir>    with --get-file: write HIT docs to\n"
      "                     <dir>/kop-point-<hash>.json\n"
      "  --stats            print the daemon's status JSON\n"
      "  --wait-drained     poll until every point is complete\n"
      "                     (exponential backoff, 25ms doubling to 2s)\n"
      "  --timeout-ms T     give up waiting after T ms (exit 2)\n"
      "  --timeout S        same, in whole seconds\n"
      "  --shutdown         ask the daemon to exit\n",
      argv0);
  return 2;
}

int run_get(coord::Client& client, std::uint64_t hash) {
  const auto reply = client.get(hash);
  if (reply.status == "HIT") {
    std::fputs(reply.doc.c_str(), stdout);
    return 0;
  }
  if (reply.status == "PENDING") {
    std::fprintf(stderr, "PENDING %s\n", reply.detail.c_str());
    return 2;
  }
  if (reply.status == "COMPLETE") {
    std::fprintf(stderr, "COMPLETE (finished, but this daemon has no cache "
                         "for it)\n");
    return 2;
  }
  std::fprintf(stderr, "%s\n", reply.status.c_str());
  return 3;
}

// A --get-file line is a 16-digit hex hash or a propcheck replay token.
bool line_to_hash(const std::string& line, std::uint64_t* hash) {
  if (coord::parse_hex16(line, hash)) return true;
  harness::propcheck::CaseParams params;
  if (!harness::propcheck::CaseParams::parse(line, &params)) return false;
  *hash = params.point().content_hash();
  return true;
}

int run_get_file(coord::Client& client, const std::string& list_path,
                 const std::string& out_dir) {
  std::ifstream in(list_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", list_path.c_str());
    return 1;
  }
  std::vector<std::uint64_t> hashes;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    std::uint64_t hash = 0;
    if (!line_to_hash(line, &hash)) {
      std::fprintf(stderr, "error: %s:%zu: neither a hex16 hash nor a "
                           "replay token\n",
                   list_path.c_str(), line_no);
      return 1;
    }
    hashes.push_back(hash);
  }
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create %s: %s\n", out_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  const std::uint64_t trips_before = client.round_trips();
  const auto replies = client.mget(hashes);
  const std::uint64_t trips = client.round_trips() - trips_before;
  std::size_t hit = 0, complete = 0, pending = 0, unknown = 0;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const auto& reply = replies[i];
    std::string detail;
    if (reply.status == "HIT") {
      ++hit;
      if (!out_dir.empty()) {
        const std::string path =
            out_dir + "/kop-point-" + coord::to_hex16(hashes[i]) + ".json";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << reply.doc;
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
          return 1;
        }
        detail = " -> " + path;
      }
    } else if (reply.status == "COMPLETE") {
      ++complete;
    } else if (reply.status == "PENDING") {
      ++pending;
      detail = " " + reply.detail;
    } else {
      ++unknown;
    }
    std::printf("%s %s%s\n", coord::to_hex16(hashes[i]).c_str(),
                reply.status.c_str(), detail.c_str());
  }
  std::fprintf(stderr,
               "[get-file] %zu point(s): %zu hit, %zu complete, %zu pending, "
               "%zu unknown in %llu round trip(s)\n",
               replies.size(), hit, complete, pending, unknown,
               static_cast<unsigned long long>(trips));
  if (unknown > 0) return 3;
  if (pending > 0) return 2;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string coord_addr, get_hash, get_token, get_file, out_dir;
  bool stats = false, wait_drained = false, shutdown = false;
  long timeout_ms = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--coord" || arg == "--socket") && i + 1 < argc) {
      coord_addr = argv[++i];
    } else if (arg == "--get" && i + 1 < argc) {
      get_hash = argv[++i];
    } else if (arg == "--get-token" && i + 1 < argc) {
      get_token = argv[++i];
    } else if (arg == "--get-file" && i + 1 < argc) {
      get_file = argv[++i];
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--wait-drained") {
      wait_drained = true;
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = std::atol(argv[++i]);
    } else if (arg == "--timeout" && i + 1 < argc) {
      timeout_ms = std::atol(argv[++i]) * 1000;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      return usage(argv[0]);
    }
  }
  const int actions = !get_hash.empty() + !get_token.empty() +
                      !get_file.empty() + stats + wait_drained + shutdown;
  if (coord_addr.empty() || actions != 1) return usage(argv[0]);

  try {
    coord::Client client(coord_addr);

    if (!get_hash.empty()) {
      std::uint64_t hash = 0;
      if (!coord::parse_hex16(get_hash, &hash)) {
        std::fprintf(stderr, "error: --get wants a 16-digit hex hash\n");
        return 2;
      }
      return run_get(client, hash);
    }
    if (!get_token.empty()) {
      harness::propcheck::CaseParams params;
      if (!harness::propcheck::CaseParams::parse(get_token, &params)) {
        std::fprintf(stderr, "error: bad replay token\n");
        return 2;
      }
      return run_get(client, params.point().content_hash());
    }
    if (!get_file.empty()) return run_get_file(client, get_file, out_dir);
    if (stats) {
      std::printf("%s\n", client.stats().c_str());
      return 0;
    }
    if (wait_drained) {
      const auto start = std::chrono::steady_clock::now();
      // Exponential backoff: an idle daemon should not eat a core's
      // worth of STATS traffic from a parked waiter.
      long sleep_ms = 25;
      for (;;) {
        // STATS is one line of JSON; "drained" is its last key.
        if (client.stats().find("\"drained\":true") != std::string::npos) {
          return 0;
        }
        const long waited =
            static_cast<long>(std::chrono::duration_cast<
                                  std::chrono::milliseconds>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
        if (timeout_ms >= 0 && waited >= timeout_ms) {
          std::fprintf(stderr, "timed out waiting for drain\n");
          return 2;
        }
        long nap = sleep_ms;
        if (timeout_ms >= 0 && waited + nap > timeout_ms) {
          nap = timeout_ms - waited;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(nap));
        sleep_ms = std::min(sleep_ms * 2, 2000L);
      }
    }
    client.shutdown();
    return 0;
  } catch (const std::exception& e) {
    // Covers the daemon vanishing mid---wait-drained too: a gone
    // coordinator is an error exit, never an infinite poll.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
