// Point-query client for a running kop_sweepd: the "millions of users"
// read path.  A warm result costs the daemon one cache lookup -- no
// simulation, no lease traffic.
//
//   kop_client --socket <path> --get <point-hash-hex16>
//   kop_client --socket <path> --get-token <propcheck-token>
//   kop_client --socket <path> --stats
//   kop_client --socket <path> --wait-drained [--timeout-ms T]
//   kop_client --socket <path> --shutdown
//
// --get prints the kop-metrics v1 entry document on stdout and exits 0.
// A known-but-unfinished point exits 2 (stderr says queued/leased); an
// unknown hash exits 3.  --get-token hashes a replay token locally
// first, so callers never need to know the hash scheme.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <chrono>

#include "coord/client.hpp"
#include "harness/propcheck/propcheck.hpp"

using namespace kop;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket <path> (--get <hash> | --get-token <token> |\n"
      "          --stats | --wait-drained [--timeout-ms T] | --shutdown)\n"
      "  --get <hash>       fetch one point's cached entry by content hash\n"
      "                     (exit 0 HIT, 2 PENDING, 3 UNKNOWN)\n"
      "  --get-token <tok>  same, addressed by a propcheck replay token\n"
      "  --stats            print the daemon's status JSON\n"
      "  --wait-drained     poll until every point is complete\n"
      "  --timeout-ms T     give up waiting after T ms (exit 2)\n"
      "  --shutdown         ask the daemon to exit\n",
      argv0);
  return 2;
}

int run_get(coord::Client& client, std::uint64_t hash) {
  const auto reply = client.get(hash);
  if (reply.status == "HIT") {
    std::fputs(reply.doc.c_str(), stdout);
    return 0;
  }
  if (reply.status == "PENDING") {
    std::fprintf(stderr, "PENDING %s\n", reply.detail.c_str());
    return 2;
  }
  std::fprintf(stderr, "%s\n", reply.status.c_str());
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, get_hash, get_token;
  bool stats = false, wait_drained = false, shutdown = false;
  long timeout_ms = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--get" && i + 1 < argc) {
      get_hash = argv[++i];
    } else if (arg == "--get-token" && i + 1 < argc) {
      get_token = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--wait-drained") {
      wait_drained = true;
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = std::atol(argv[++i]);
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      return usage(argv[0]);
    }
  }
  const int actions = !get_hash.empty() + !get_token.empty() + stats +
                      wait_drained + shutdown;
  if (socket_path.empty() || actions != 1) return usage(argv[0]);

  try {
    coord::Client client(socket_path);

    if (!get_hash.empty()) {
      std::uint64_t hash = 0;
      if (!coord::parse_hex16(get_hash, &hash)) {
        std::fprintf(stderr, "error: --get wants a 16-digit hex hash\n");
        return 2;
      }
      return run_get(client, hash);
    }
    if (!get_token.empty()) {
      harness::propcheck::CaseParams params;
      if (!harness::propcheck::CaseParams::parse(get_token, &params)) {
        std::fprintf(stderr, "error: bad replay token\n");
        return 2;
      }
      return run_get(client, params.point().content_hash());
    }
    if (stats) {
      std::printf("%s\n", client.stats().c_str());
      return 0;
    }
    if (wait_drained) {
      const auto start = std::chrono::steady_clock::now();
      for (;;) {
        // STATS is one line of JSON; "drained" is its last key.
        if (client.stats().find("\"drained\":true") != std::string::npos) {
          return 0;
        }
        if (timeout_ms >= 0 &&
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                    .count() >= timeout_ms) {
          std::fprintf(stderr, "timed out waiting for drain\n");
          return 2;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    client.shutdown();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
