// Shard-cache merge driver: unions the --cache-dir outputs of a
// sharded sweep (fig* --shard K/N, run_experiment --shard K/N) into
// one result cache the unsharded binary replays from.
//
//   kop_merge --into <dir> [--expect <shard-list.txt>] [--json <path>]
//             <shard-dir> [<shard-dir> ...]
//
// Every entry is re-validated on the way in (kop-metrics v1 schema,
// cost-model fingerprint, recorded identity vs filename); `--expect`
// takes a `--shard-list` capture and reports coverage against it.
// Exit code: 0 when the merge is clean and complete, 1 otherwise.
//
//   kop_merge --fingerprint
//
// prints this build's cache namespace (`<cost-model fingerprint>-
// schema<version>`) -- the key CI uses for its persisted bench cache.
//
//   kop_merge --audit-claims <claim-dir> <cache-dir> [<cache-dir> ...]
//
// cross-checks a --shard-claim directory: every claim file must have a
// matching cache entry in some cache dir, else the claiming worker died
// mid-point and the sweep silently lost coverage.  Exit 1 when any
// claim is stranded.
//
//   kop_merge --digest <cache-dir>
//
// prints an order-independent content digest of the cache -- equal
// digests mean two sweeps produced byte-identical results (the
// determinism check behind the crash-and-reclaim CI smoke).
#include <cstdio>
#include <fstream>
#include <string>

#include "harness/jobs/merge.hpp"
#include "harness/jobs/point.hpp"
#include "telemetry/metrics.hpp"

using namespace kop;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --into <dir> [--expect <shard-list.txt>]\n"
               "          [--json <path>] <shard-dir> [<shard-dir> ...]\n"
               "       %s --audit-claims <claim-dir> <cache-dir> [...]\n"
               "       %s --digest <cache-dir>\n"
               "       %s --fingerprint\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  harness::jobs::MergeOptions opts;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fingerprint") {
      std::printf("%s-schema%d\n",
                  harness::jobs::hex16(
                      harness::jobs::cost_model_fingerprint())
                      .c_str(),
                  telemetry::kMetricsSchemaVersion);
      return 0;
    } else if (arg == "--audit-claims" && i + 2 < argc) {
      const std::string claim_dir = argv[++i];
      std::vector<std::string> caches;
      while (++i < argc) caches.emplace_back(argv[i]);
      try {
        const auto audit = harness::jobs::audit_claims(claim_dir, caches);
        std::fputs(audit.text().c_str(), stdout);
        return audit.ok() ? 0 : 1;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    } else if (arg == "--digest" && i + 1 < argc) {
      try {
        std::printf("%s\n",
                    harness::jobs::hex16(
                        harness::jobs::cache_digest(argv[++i]))
                        .c_str());
        return 0;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    } else if (arg == "--into" && i + 1 < argc) {
      opts.dest = argv[++i];
    } else if (arg == "--expect" && i + 1 < argc) {
      opts.expect_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else {
      opts.sources.push_back(arg);
    }
  }
  if (opts.dest.empty() || opts.sources.empty()) return usage(argv[0]);

  try {
    const auto report = harness::jobs::merge_caches(opts);
    std::fputs(report.text().c_str(), stdout);
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
      out << report.json();
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
        return 1;
      }
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
