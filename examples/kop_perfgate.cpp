// CI perf gate for the simulator-core microbenchmarks.  Compares a
// kop-bench v1 result document (simcore_gbench --json) against a
// committed floor file of the same schema whose items_per_sec values
// are minimum acceptable rates and whose allocs_steady values are
// maximum acceptable steady-state allocation counts.
//
//   kop_perfgate --floor bench/simcore_floor.json [--tolerance 0.25]
//                <results.json>
//
// A result passes when, for every bench named in the floor file,
//
//   measured items/sec >= floor items/sec * (1 - tolerance)
//   measured allocs_steady <= floor allocs_steady
//
// Benches present in the results but absent from the floor are ignored
// (new benches can land before their floor is calibrated); benches in
// the floor but missing from the results fail the gate.
//
// Exit code: 0 = all gates pass, 1 = regression or missing bench,
// 2 = usage/schema error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace {

struct BenchRow {
  double items_per_sec = 0.0;
  double allocs_steady = 0.0;
};

// Loads and schema-validates a kop-bench document; returns false (with
// a message on stderr) on any problem.
bool load_bench_file(const std::string& path,
                     std::map<std::string, BenchRow>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto violations = kop::telemetry::validate_bench_json(ss.str());
  if (!violations.empty()) {
    std::fprintf(stderr, "%s: %zu schema violation(s)\n", path.c_str(),
                 violations.size());
    for (const auto& v : violations)
      std::fprintf(stderr, "  %s\n", v.c_str());
    return false;
  }
  const auto root = kop::telemetry::parse_json(ss.str());
  for (const auto& b : root.find("benches")->array) {
    BenchRow row;
    row.items_per_sec = b.find("items_per_sec")->number;
    row.allocs_steady = b.find("allocs_steady")->number;
    (*out)[b.find("name")->string] = row;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string floor_path;
  std::string results_path;
  double tolerance = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--floor" && i + 1 < argc) {
      floor_path = argv[++i];
    } else if (a == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (a[0] != '-' && results_path.empty()) {
      results_path = a;
    } else {
      std::fprintf(stderr,
                   "usage: %s --floor FLOOR.json [--tolerance FRAC] "
                   "RESULTS.json\n",
                   argv[0]);
      return 2;
    }
  }
  if (floor_path.empty() || results_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --floor FLOOR.json [--tolerance FRAC] "
                 "RESULTS.json\n",
                 argv[0]);
    return 2;
  }
  if (tolerance < 0.0 || tolerance >= 1.0) {
    std::fprintf(stderr, "--tolerance must be in [0, 1)\n");
    return 2;
  }

  std::map<std::string, BenchRow> floor;
  std::map<std::string, BenchRow> results;
  if (!load_bench_file(floor_path, &floor) ||
      !load_bench_file(results_path, &results)) {
    return 2;
  }

  int failures = 0;
  std::printf("%-22s %14s %14s %8s  %s\n", "bench", "measured/s", "gate/s",
              "allocs", "verdict");
  for (const auto& [name, f] : floor) {
    const auto it = results.find(name);
    if (it == results.end()) {
      ++failures;
      std::printf("%-22s %14s %14.0f %8s  MISSING\n", name.c_str(), "-",
                  f.items_per_sec * (1.0 - tolerance), "-");
      continue;
    }
    const BenchRow& m = it->second;
    const double gate = f.items_per_sec * (1.0 - tolerance);
    const bool rate_ok = m.items_per_sec >= gate;
    const bool alloc_ok = m.allocs_steady <= f.allocs_steady;
    if (!rate_ok || !alloc_ok) ++failures;
    std::printf("%-22s %14.0f %14.0f %8.0f  %s\n", name.c_str(),
                m.items_per_sec, gate, m.allocs_steady,
                rate_ok && alloc_ok ? "ok"
                : !rate_ok          ? "RATE-REGRESSION"
                                    : "ALLOC-REGRESSION");
  }
  if (failures > 0) {
    std::printf("perfgate: %d failure(s) vs %s (tolerance %.0f%%)\n", failures,
                floor_path.c_str(), tolerance * 100.0);
    return 1;
  }
  std::printf("perfgate: all %zu gated benches ok\n", floor.size());
  return 0;
}
