// The sweep coordinator daemon: lease-based dispatch over a unix or
// TCP socket, answering point queries straight from the result cache.
//
//   kop_sweepd --listen <addr> [--cache-dir <dir>] [--journal <file>]
//              (--points <token-file> | --gen-seed S --gen-count N)
//              [--ttl-ms T] [--suspect-ms S] [--dead-ms D]
//              [--exit-when-drained] [--manifest <out>]
//   kop_sweepd --dump-journal <file> [--verify]
//
// <addr> is a unix socket path (one box) or host:port (multi-box TCP);
// --socket remains as an alias that always means a unix path.
//
// The sweep manifest is a list of propcheck replay tokens, either read
// from a file (one per line, `#` comments) or drawn from the seeded
// propcheck generator -- the same deterministic case distribution the
// invariant suite runs, so a coordinated sweep is replayable from two
// integers.  Workers (kop_worker, or any fig binary with --coord)
// lease points, renew while simulating, and report completions; dead
// workers are detected by heartbeat silence and their leases re-queued.
//
// With --cache-dir the daemon also answers `GET <point-hash>` from the
// cache (kop_client): warm results are served without any simulation,
// and at startup every already-cached point is marked complete, so a
// restarted coordinator re-dispatches exactly the unfinished work.
//
// With --journal every lease-table transition is appended to a
// checksummed crash ledger; a restart on the same journal replays back
// to the exact table (in-flight leases come back as queued points, not
// lost work) before the cache sync runs.  --dump-journal pretty-prints
// a journal offline; --verify makes it a silent checksum pass.
//
// --manifest writes the sweep's coverage manifest (the --shard-list
// format); after the sweep, `kop_merge --expect <manifest>` over the
// worker caches proves every point was completed exactly once.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coord/coordinator.hpp"
#include "coord/server.hpp"
#include "harness/jobs/cache.hpp"
#include "harness/jobs/shard.hpp"
#include "harness/propcheck/propcheck.hpp"

using namespace kop;

namespace {

coord::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --listen <addr> [--cache-dir <dir>] [--journal <file>]\n"
      "          (--points <token-file> | --gen-seed S --gen-count N)\n"
      "          [--ttl-ms T] [--suspect-ms S] [--dead-ms D]\n"
      "          [--exit-when-drained] [--manifest <out>]\n"
      "       %s --dump-journal <file> [--verify]\n"
      "  --listen <addr>      unix socket path or host:port to listen on\n"
      "  --socket <path>      alias for --listen, always a unix path\n"
      "  --cache-dir <dir>    result cache backing GET and warm restarts\n"
      "  --journal <file>     append-only crash ledger; a restart on the\n"
      "                       same file resumes the exact lease table\n"
      "  --points <file>      sweep manifest: propcheck tokens, one per line\n"
      "  --gen-seed S         draw the manifest from the seeded propcheck\n"
      "  --gen-count N        generator instead (deterministic per S,N)\n"
      "  --ttl-ms T           lease TTL (default 5000)\n"
      "  --suspect-ms S       heartbeat silence before Suspect (default 3000)\n"
      "  --dead-ms D          heartbeat silence before Dead (default 10000)\n"
      "  --exit-when-drained  exit 0 once every point is complete\n"
      "  --manifest <out>     write the coverage manifest (kop_merge --expect)\n"
      "  --dump-journal <f>   pretty-print a journal record by record\n"
      "  --verify             with --dump-journal: checksum pass only\n",
      argv0, argv0);
  return 2;
}

int dump_journal(const std::string& path, bool verify_only) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::size_t start = 0, line_no = 0, records = 0;
  while (start < data.size()) {
    const std::size_t nl = data.find('\n', start);
    if (nl == std::string::npos) {
      std::fprintf(stderr, "[journal] torn tail: %zu byte(s) past the last "
                           "terminator (crash artifact, replay drops them)\n",
                   data.size() - start);
      break;
    }
    ++line_no;
    const std::string line = data.substr(start, nl - start);
    const std::size_t offset = start;
    start = nl + 1;
    if (line.empty()) continue;
    coord::JournalRecord rec;
    std::string why;
    if (!coord::decode_record(line, &rec, &why)) {
      std::fprintf(stderr, "error: %s:%zu (offset %zu): %s\n", path.c_str(),
                   line_no, offset, why.c_str());
      return 1;
    }
    ++records;
    if (verify_only) continue;
    switch (rec.type) {
      case coord::JournalRecord::Type::kRegister:
        std::printf("%6zu @%-8zu REGISTER point=%s entry=%s label=%s\n",
                    line_no, offset, coord::to_hex16(rec.hash).c_str(),
                    rec.entry.c_str(), rec.label.c_str());
        break;
      case coord::JournalRecord::Type::kGrant:
        std::printf("%6zu @%-8zu GRANT    lease=%llu point=%s worker=%s "
                    "expires=%lld\n",
                    line_no, offset,
                    static_cast<unsigned long long>(rec.lease_id),
                    coord::to_hex16(rec.hash).c_str(), rec.worker.c_str(),
                    static_cast<long long>(rec.expires_ms));
        break;
      case coord::JournalRecord::Type::kRenew:
        std::printf("%6zu @%-8zu RENEW    lease=%llu expires=%lld\n", line_no,
                    offset, static_cast<unsigned long long>(rec.lease_id),
                    static_cast<long long>(rec.expires_ms));
        break;
      case coord::JournalRecord::Type::kDone:
        std::printf("%6zu @%-8zu DONE     point=%s\n", line_no, offset,
                    coord::to_hex16(rec.hash).c_str());
        break;
      case coord::JournalRecord::Type::kReclaim:
        std::printf("%6zu @%-8zu RECLAIM  point=%s\n", line_no, offset,
                    coord::to_hex16(rec.hash).c_str());
        break;
      case coord::JournalRecord::Type::kSeq:
        std::printf("%6zu @%-8zu SEQ      next-lease=%llu\n", line_no, offset,
                    static_cast<unsigned long long>(rec.lease_id));
        break;
    }
  }
  std::fprintf(stderr, "[journal] %zu record(s) verified in %s\n", records,
               path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_addr, cache_dir, points_path, manifest_path;
  std::string journal_path, dump_path;
  bool dump_verify = false;
  bool listen_is_unix_alias = false;
  std::uint64_t gen_seed = 0;
  int gen_count = 0;
  coord::CoordinatorOptions copt;
  coord::ServerOptions sopt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      listen_addr = argv[++i];
      listen_is_unix_alias = false;
    } else if (arg == "--socket" && i + 1 < argc) {
      listen_addr = argv[++i];
      listen_is_unix_alias = true;
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--journal" && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (arg == "--dump-journal" && i + 1 < argc) {
      dump_path = argv[++i];
    } else if (arg == "--verify") {
      dump_verify = true;
    } else if (arg == "--points" && i + 1 < argc) {
      points_path = argv[++i];
    } else if (arg == "--gen-seed" && i + 1 < argc) {
      gen_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--gen-count" && i + 1 < argc) {
      gen_count = std::atoi(argv[++i]);
    } else if (arg == "--ttl-ms" && i + 1 < argc) {
      copt.lease_ttl_ms = std::atoll(argv[++i]);
    } else if (arg == "--suspect-ms" && i + 1 < argc) {
      copt.liveness.suspect_after_ms = std::atoll(argv[++i]);
    } else if (arg == "--dead-ms" && i + 1 < argc) {
      copt.liveness.dead_after_ms = std::atoll(argv[++i]);
    } else if (arg == "--exit-when-drained") {
      sopt.exit_when_drained = true;
    } else if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!dump_path.empty()) return dump_journal(dump_path, dump_verify);
  if (listen_addr.empty()) return usage(argv[0]);
  if (points_path.empty() && gen_count <= 0) return usage(argv[0]);

  // Assemble the sweep manifest: token -> PointSpec.
  std::vector<std::string> tokens;
  if (!points_path.empty()) {
    std::ifstream in(points_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", points_path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line.empty() || line[0] == '#') continue;
      tokens.push_back(line);
    }
  } else {
    harness::propcheck::GenOptions gen;
    gen.seed = gen_seed;
    gen.count = gen_count;
    for (const auto& c : harness::propcheck::generate(gen)) {
      tokens.push_back(c.token());
    }
  }

  std::map<std::uint64_t, harness::jobs::PointSpec> specs;
  std::vector<harness::jobs::PointSpec> manifest_points;
  std::vector<coord::PointInfo> infos;
  for (const auto& token : tokens) {
    harness::propcheck::CaseParams params;
    if (!harness::propcheck::CaseParams::parse(token, &params)) {
      std::fprintf(stderr, "error: bad point token: %s\n", token.c_str());
      return 1;
    }
    const auto spec = params.point();
    coord::PointInfo info;
    info.hash = spec.content_hash();
    info.entry =
        "kop-" + harness::jobs::hex16(harness::jobs::ResultCache::key(spec)) +
        ".json";
    info.payload = token;
    info.label = spec.label();
    if (specs.emplace(info.hash, spec).second) {
      manifest_points.push_back(spec);
    }
    infos.push_back(std::move(info));
  }

  if (!manifest_path.empty()) {
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    out << harness::jobs::shard_list_text(manifest_points, {});
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", manifest_path.c_str());
      return 1;
    }
  }

  // The serving path: GET probes the cache by point hash.  The entry
  // document is decoded and re-encoded, so a torn or stale file is a
  // miss, never a served lie.
  std::unique_ptr<harness::jobs::ResultCache> cache;
  coord::CacheProbe probe;
  if (!cache_dir.empty()) {
    cache = std::make_unique<harness::jobs::ResultCache>(cache_dir);
    probe = [&cache, &specs](std::uint64_t hash, std::string* doc) {
      const auto it = specs.find(hash);
      if (it == specs.end()) return false;
      harness::jobs::PointResult result;
      if (!cache->load(it->second, &result)) return false;
      *doc = harness::jobs::ResultCache::encode(it->second, result);
      return true;
    };
  }

  coord::Coordinator coordinator(copt, std::move(probe));

  // Journal recovery runs before the manifest pass: the ledger is the
  // authoritative record of the previous incarnation's lease table
  // (including worker-enumerated points the manifest does not know).
  std::unique_ptr<coord::Journal> journal;
  if (!journal_path.empty()) {
    coord::ReplayStats replay;
    std::string err;
    if (!coordinator.recover_from_journal(journal_path, &replay, &err)) {
      std::fprintf(stderr, "error: journal replay failed: %s\n", err.c_str());
      return 1;
    }
    try {
      journal = std::make_unique<coord::Journal>(journal_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    coordinator.attach_journal(journal.get());
    const std::size_t requeued = coordinator.requeue_live_leases();
    if (replay.records > 0 || replay.truncated_bytes > 0) {
      std::fprintf(stderr,
                   "[sweepd] journal %s: replayed %zu record(s), re-queued "
                   "%zu in-flight lease(s)%s\n",
                   journal_path.c_str(), replay.records, requeued,
                   replay.truncated_bytes > 0 ? " (torn tail dropped)" : "");
    }
  }

  for (auto& info : infos) coordinator.add_point(std::move(info));
  const std::size_t warm = coordinator.sync_with_cache();
  if (journal != nullptr) journal->commit();

  try {
    if (listen_is_unix_alias) {
      sopt.socket_path = listen_addr;
    } else {
      sopt.address = listen_addr;
    }
    coord::Server server(&coordinator, sopt);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::fprintf(stderr,
                 "[sweepd] %zu points (%zu warm from cache) on %s "
                 "(ttl=%lld suspect=%lld dead=%lld)\n",
                 specs.size(), warm, server.bound_address().c_str(),
                 static_cast<long long>(copt.lease_ttl_ms),
                 static_cast<long long>(copt.liveness.suspect_after_ms),
                 static_cast<long long>(copt.liveness.dead_after_ms));
    server.run();
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::fprintf(stderr, "[sweepd] %s\n", coordinator.stats_json().c_str());
  if (sopt.exit_when_drained && !coordinator.drained()) return 1;
  return 0;
}
