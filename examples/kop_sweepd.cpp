// The sweep coordinator daemon: lease-based dispatch over a unix
// socket, answering point queries straight from the result cache.
//
//   kop_sweepd --socket <path> [--cache-dir <dir>]
//              (--points <token-file> | --gen-seed S --gen-count N)
//              [--ttl-ms T] [--suspect-ms S] [--dead-ms D]
//              [--exit-when-drained] [--manifest <out>]
//
// The sweep manifest is a list of propcheck replay tokens, either read
// from a file (one per line, `#` comments) or drawn from the seeded
// propcheck generator -- the same deterministic case distribution the
// invariant suite runs, so a coordinated sweep is replayable from two
// integers.  Workers (kop_worker, or any fig binary with --coord)
// lease points, renew while simulating, and report completions; dead
// workers are detected by heartbeat silence and their leases re-queued.
//
// With --cache-dir the daemon also answers `GET <point-hash>` from the
// cache (kop_client): warm results are served without any simulation,
// and at startup every already-cached point is marked complete, so a
// restarted coordinator re-dispatches exactly the unfinished work.
//
// --manifest writes the sweep's coverage manifest (the --shard-list
// format); after the sweep, `kop_merge --expect <manifest>` over the
// worker caches proves every point was completed exactly once.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coord/coordinator.hpp"
#include "coord/server.hpp"
#include "harness/jobs/cache.hpp"
#include "harness/jobs/shard.hpp"
#include "harness/propcheck/propcheck.hpp"

using namespace kop;

namespace {

coord::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket <path> [--cache-dir <dir>]\n"
      "          (--points <token-file> | --gen-seed S --gen-count N)\n"
      "          [--ttl-ms T] [--suspect-ms S] [--dead-ms D]\n"
      "          [--exit-when-drained] [--manifest <out>]\n"
      "  --socket <path>      unix socket to listen on\n"
      "  --cache-dir <dir>    result cache backing GET and warm restarts\n"
      "  --points <file>      sweep manifest: propcheck tokens, one per line\n"
      "  --gen-seed S         draw the manifest from the seeded propcheck\n"
      "  --gen-count N        generator instead (deterministic per S,N)\n"
      "  --ttl-ms T           lease TTL (default 5000)\n"
      "  --suspect-ms S       heartbeat silence before Suspect (default 3000)\n"
      "  --dead-ms D          heartbeat silence before Dead (default 10000)\n"
      "  --exit-when-drained  exit 0 once every point is complete\n"
      "  --manifest <out>     write the coverage manifest (kop_merge --expect)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, cache_dir, points_path, manifest_path;
  std::uint64_t gen_seed = 0;
  int gen_count = 0;
  coord::CoordinatorOptions copt;
  coord::ServerOptions sopt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--points" && i + 1 < argc) {
      points_path = argv[++i];
    } else if (arg == "--gen-seed" && i + 1 < argc) {
      gen_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--gen-count" && i + 1 < argc) {
      gen_count = std::atoi(argv[++i]);
    } else if (arg == "--ttl-ms" && i + 1 < argc) {
      copt.lease_ttl_ms = std::atoll(argv[++i]);
    } else if (arg == "--suspect-ms" && i + 1 < argc) {
      copt.liveness.suspect_after_ms = std::atoll(argv[++i]);
    } else if (arg == "--dead-ms" && i + 1 < argc) {
      copt.liveness.dead_after_ms = std::atoll(argv[++i]);
    } else if (arg == "--exit-when-drained") {
      sopt.exit_when_drained = true;
    } else if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);
  if (points_path.empty() && gen_count <= 0) return usage(argv[0]);

  // Assemble the sweep manifest: token -> PointSpec.
  std::vector<std::string> tokens;
  if (!points_path.empty()) {
    std::ifstream in(points_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", points_path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line.empty() || line[0] == '#') continue;
      tokens.push_back(line);
    }
  } else {
    harness::propcheck::GenOptions gen;
    gen.seed = gen_seed;
    gen.count = gen_count;
    for (const auto& c : harness::propcheck::generate(gen)) {
      tokens.push_back(c.token());
    }
  }

  std::map<std::uint64_t, harness::jobs::PointSpec> specs;
  std::vector<harness::jobs::PointSpec> manifest_points;
  std::vector<coord::PointInfo> infos;
  for (const auto& token : tokens) {
    harness::propcheck::CaseParams params;
    if (!harness::propcheck::CaseParams::parse(token, &params)) {
      std::fprintf(stderr, "error: bad point token: %s\n", token.c_str());
      return 1;
    }
    const auto spec = params.point();
    coord::PointInfo info;
    info.hash = spec.content_hash();
    info.entry =
        "kop-" + harness::jobs::hex16(harness::jobs::ResultCache::key(spec)) +
        ".json";
    info.payload = token;
    info.label = spec.label();
    if (specs.emplace(info.hash, spec).second) {
      manifest_points.push_back(spec);
    }
    infos.push_back(std::move(info));
  }

  if (!manifest_path.empty()) {
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    out << harness::jobs::shard_list_text(manifest_points, {});
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", manifest_path.c_str());
      return 1;
    }
  }

  // The serving path: GET probes the cache by point hash.  The entry
  // document is decoded and re-encoded, so a torn or stale file is a
  // miss, never a served lie.
  std::unique_ptr<harness::jobs::ResultCache> cache;
  coord::CacheProbe probe;
  if (!cache_dir.empty()) {
    cache = std::make_unique<harness::jobs::ResultCache>(cache_dir);
    probe = [&cache, &specs](std::uint64_t hash, std::string* doc) {
      const auto it = specs.find(hash);
      if (it == specs.end()) return false;
      harness::jobs::PointResult result;
      if (!cache->load(it->second, &result)) return false;
      *doc = harness::jobs::ResultCache::encode(it->second, result);
      return true;
    };
  }

  coord::Coordinator coordinator(copt, std::move(probe));
  for (auto& info : infos) coordinator.add_point(std::move(info));
  const std::size_t warm = coordinator.sync_with_cache();

  try {
    sopt.socket_path = socket_path;
    coord::Server server(&coordinator, sopt);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::fprintf(stderr,
                 "[sweepd] %zu points (%zu warm from cache) on %s "
                 "(ttl=%lld suspect=%lld dead=%lld)\n",
                 specs.size(), warm, socket_path.c_str(),
                 static_cast<long long>(copt.lease_ttl_ms),
                 static_cast<long long>(copt.liveness.suspect_after_ms),
                 static_cast<long long>(copt.liveness.dead_after_ms));
    server.run();
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::fprintf(stderr, "[sweepd] %s\n", coordinator.stats_json().c_str());
  if (sopt.exit_when_drained && !coordinator.drained()) return 1;
  return 0;
}
