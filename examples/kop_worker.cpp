// The coordinator-fed worker loop: HELLO, then NEXT until DRAINED.
//
//   kop_worker --coord <addr> --cache-dir <dir> [--worker <id>]
//              [--max-points N] [--idle-wait-ms W] [--crash-after N]
//
// <addr> is a unix socket path (same box as the daemon) or host:port
// (kop_sweepd --listen over TCP); --socket is an equivalent legacy
// spelling of --coord.
//
// Each GRANT carries a propcheck replay token; the worker materializes
// the PointSpec, simulates it (or takes a warm cache hit), stores the
// entry in its cache directory, and reports DONE.  A background thread
// renews the held lease at TTL/3 (and PINGs while idle) so a healthy
// worker never decays past Suspect, however long one point takes.
//
// --crash-after N dies with SIGKILL *while holding* the (N+1)th lease
// -- no BYE, no cleanup -- which is exactly the failure the
// coordinator's reclaim path exists for.  CI uses it to prove a
// crashed worker's points are re-queued and the merged sweep still
// covers every point exactly once.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "coord/client.hpp"
#include "harness/jobs/cache.hpp"
#include "harness/propcheck/propcheck.hpp"

using namespace kop;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --coord <addr> --cache-dir <dir> [--worker <id>]\n"
      "          [--max-points N] [--idle-wait-ms W] [--crash-after N]\n"
      "  --coord <addr>     kop_sweepd address: unix socket path or host:port\n"
      "  --socket <addr>    alias for --coord\n"
      "  --cache-dir <dir>  this worker's result cache (merge with kop_merge)\n"
      "  --worker <id>      worker name (default <hostname>:<pid>)\n"
      "  --max-points N     stop after completing N points\n"
      "  --idle-wait-ms W   sleep between NEXT retries while IDLE (default 200)\n"
      "  --crash-after N    SIGKILL self while holding the (N+1)th lease\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, cache_dir, worker;
  int max_points = 0, idle_wait_ms = 200, crash_after = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--coord" || arg == "--socket") && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--worker" && i + 1 < argc) {
      worker = argv[++i];
    } else if (arg == "--max-points" && i + 1 < argc) {
      max_points = std::atoi(argv[++i]);
    } else if (arg == "--idle-wait-ms" && i + 1 < argc) {
      idle_wait_ms = std::atoi(argv[++i]);
    } else if (arg == "--crash-after" && i + 1 < argc) {
      crash_after = std::atoi(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty() || cache_dir.empty()) return usage(argv[0]);
  if (worker.empty()) {
    char host[256] = "?";
    ::gethostname(host, sizeof(host) - 1);
    worker = std::string(host) + ":" + std::to_string(::getpid());
  }

  try {
    coord::Client client(socket_path);
    const auto hello = client.hello(worker);
    harness::jobs::ResultCache cache(cache_dir);

    // One lease is held at a time; the renewer keeps it alive while the
    // main thread simulates (the Client serializes the shared socket).
    std::atomic<std::uint64_t> held{0};
    std::mutex stop_mu;
    std::condition_variable stop_cv;
    bool stop = false;
    std::thread renewer([&] {
      const auto interval = std::chrono::milliseconds(
          hello.ttl_ms > 0 ? std::max<std::int64_t>(hello.ttl_ms / 3, 50)
                           : 1000);
      std::unique_lock<std::mutex> lock(stop_mu);
      while (!stop_cv.wait_for(lock, interval, [&] { return stop; })) {
        lock.unlock();
        try {
          const std::uint64_t id = held.load();
          if (id != 0) {
            (void)client.renew(worker, id);
          } else {
            (void)client.request("PING " + worker);
          }
        } catch (...) {
          lock.lock();
          return;  // daemon gone; main loop will notice too
        }
        lock.lock();
      }
    });
    const auto join_renewer = [&] {
      {
        std::lock_guard<std::mutex> lock(stop_mu);
        stop = true;
      }
      stop_cv.notify_all();
      renewer.join();
    };

    int completed = 0, simulated = 0, warm = 0;
    for (;;) {
      coord::Client::Grant grant;
      try {
        grant = client.next(worker);
      } catch (const std::exception&) {
        // A daemon running --exit-when-drained may vanish between our
        // DONE and the next NEXT.  Nothing is left to do either way;
        // kop_merge --expect is the authority on coverage.
        std::fprintf(stderr, "[worker %s] coordinator went away; done\n",
                     worker.c_str());
        break;
      }
      if (!grant.granted) {
        if (grant.status == "DRAINED") break;
        if (grant.status == "IDLE") {
          std::this_thread::sleep_for(std::chrono::milliseconds(idle_wait_ms));
          continue;
        }
        std::fprintf(stderr, "[worker %s] rejected: %s\n", worker.c_str(),
                     grant.status.c_str());
        join_renewer();
        return 1;
      }
      if (crash_after >= 0 && completed >= crash_after) {
        // Die holding the lease: no DONE, no BYE.  The coordinator must
        // reclaim this point by TTL expiry or the Dead transition.
        std::fprintf(stderr, "[worker %s] crashing with lease on %s\n",
                     worker.c_str(), coord::to_hex16(grant.point).c_str());
        ::raise(SIGKILL);
      }
      harness::propcheck::CaseParams params;
      if (grant.payload.empty() ||
          !harness::propcheck::CaseParams::parse(grant.payload, &params)) {
        std::fprintf(stderr, "[worker %s] unusable payload for %s: '%s'\n",
                     worker.c_str(), coord::to_hex16(grant.point).c_str(),
                     grant.payload.c_str());
        join_renewer();
        return 1;
      }
      const auto spec = params.point();
      held.store(grant.lease_id);
      harness::jobs::PointResult result;
      if (cache.load(spec, &result)) {
        ++warm;
      } else {
        result = harness::jobs::run_point(spec);
        cache.store(spec, result);
        ++simulated;
      }
      held.store(0);
      (void)client.done(worker, grant.lease_id, grant.point);
      ++completed;
      if (max_points > 0 && completed >= max_points) break;
    }

    join_renewer();
    try {
      client.bye(worker);  // best-effort: the daemon may already be gone
    } catch (const std::exception&) {
    }
    std::fprintf(stderr,
                 "[worker %s] completed %d points (%d simulated, %d warm)\n",
                 worker.c_str(), completed, simulated, warm);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
