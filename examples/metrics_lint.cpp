// kop artifact linter: validates JSON files emitted by run_experiment
// --json, the bench/fig* binaries, omp_profiler, and simcore_gbench
// against their versioned schemas (telemetry/metrics.hpp).  The root
// "schema" field selects the validator: "kop-metrics" documents get
// the full run-record check, "kop-bench" documents the microbenchmark
// throughput-record check.  CI runs this over every artifact the
// bench-smoke and perf-smoke jobs produce.
//
//   metrics_lint <file.json> [<file.json> ...]
//
// Cache entries (files carrying the x_kop_cache sidecar) are
// additionally checked for duplicate points: two entries in the same
// directory recording the same canonical point means the cache holds
// two answers for one question -- readers would pick whichever key
// they compute first, so the lint fails.
//
// Exit code: 0 if every file validates, 1 otherwise.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.json> [<file.json> ...]\n", argv[0]);
    return 2;
  }
  int bad = 0;
  // (directory, canonical point) -> first file that recorded it.
  std::map<std::pair<std::string, std::string>, std::string> points_seen;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++bad;
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    // Dispatch on the root "schema" field; unknown/missing schemas fall
    // through to the kop-metrics validator, whose error message names
    // the expected schema.
    bool is_bench = false;
    try {
      const auto peek = kop::telemetry::parse_json(ss.str());
      const auto* schema = peek.find("schema");
      is_bench = schema != nullptr && schema->is_string() &&
                 schema->string == kop::telemetry::kBenchSchemaName;
    } catch (const kop::telemetry::JsonParseError&) {
      // Malformed JSON: let the validator report it.
    }
    const auto violations =
        is_bench ? kop::telemetry::validate_bench_json(ss.str())
                 : kop::telemetry::validate_metrics_json(ss.str());
    if (!violations.empty()) {
      ++bad;
      std::printf("%s: %zu violation(s)\n", argv[i], violations.size());
      for (const auto& v : violations) std::printf("  %s\n", v.c_str());
      continue;
    }
    if (is_bench) {
      std::printf("%s: OK (kop-bench)\n", argv[i]);
      continue;
    }
    // Duplicate-point check for cache entries (validate passed, so the
    // text parses).
    const auto root = kop::telemetry::parse_json(ss.str());
    const auto* side = root.find("x_kop_cache");
    const auto* point =
        side != nullptr && side->is_object() ? side->find("point") : nullptr;
    if (point != nullptr && point->is_string()) {
      const std::string dir =
          std::filesystem::path(argv[i]).parent_path().string();
      const auto key = std::make_pair(dir, point->string);
      const auto it = points_seen.find(key);
      if (it != points_seen.end()) {
        ++bad;
        std::printf("%s: duplicate point (same canonical form as %s)\n",
                    argv[i], it->second.c_str());
        continue;
      }
      points_seen.emplace(key, argv[i]);
    }
    std::printf("%s: OK\n", argv[i]);
  }
  return bad == 0 ? 0 : 1;
}
