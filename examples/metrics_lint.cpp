// kop-metrics artifact linter: validates JSON files emitted by
// run_experiment --json, the bench/fig* binaries, and omp_profiler
// against the versioned schema (telemetry/metrics.hpp).  CI runs this
// over every artifact the bench-smoke job produces.
//
//   metrics_lint <file.json> [<file.json> ...]
//
// Exit code: 0 if every file validates, 1 otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/metrics.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.json> [<file.json> ...]\n", argv[0]);
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++bad;
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto violations = kop::telemetry::validate_metrics_json(ss.str());
    if (violations.empty()) {
      std::printf("%s: OK\n", argv[i]);
      continue;
    }
    ++bad;
    std::printf("%s: %zu violation(s)\n", argv[i], violations.size());
    for (const auto& v : violations) std::printf("  %s\n", v.c_str());
  }
  return bad == 0 ? 0 : 1;
}
