// Scenario: the paper's deployment story (§2.1/§7) -- Nautilus runs
// *side by side* with Linux in a multi-kernel configuration (HVM or
// Pisces co-kernel), space-partitioning the machine.  Rebooting the
// Nautilus partition takes about as long as creating a Linux process.
//
// We partition the 8XEON box: Linux keeps sockets 0-3 (general work),
// Nautilus gets sockets 4-7 as the HRT partition running an OpenMP
// job via RTK.  Both run concurrently on one simulated machine/engine;
// then we "reboot" the Nautilus side and run a second job, reporting
// the boot latency next to the cost of a Linux process launch.
#include <cstdio>

#include "harness/table.hpp"
#include "komp/runtime.hpp"
#include "linuxmodel/linux_os.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"

using namespace kop;

namespace {

// Carve a 4-socket sub-machine out of 8XEON (the co-kernel gets its
// own CPUs and NUMA zones; zone ids renumbered 0..3).
hw::MachineConfig half_xeon(const char* name) {
  hw::MachineConfig m = hw::xeon8();
  m.name = name;
  m.num_cpus = 96;
  m.num_sockets = 4;
  m.zones.resize(4);
  for (auto& z : m.zones) {
    for (auto& c : z.cpus) c = c % 96;
  }
  m.zone_distance.assign(4, std::vector<int>(4, 21));
  for (int i = 0; i < 4; ++i)
    m.zone_distance[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 10;
  m.validate();
  return m;
}

}  // namespace

int main() {
  sim::Engine engine(2026);

  // The two compartments share the machine (and the engine) but are
  // mutually protected: each sees only its own CPUs and memory.
  linuxmodel::LinuxOs linux_side(engine, half_xeon("8xeon-linux-part"));
  auto nk = std::make_unique<nautilus::NautilusKernel>(
      engine, half_xeon("8xeon-hrt-part"));

  std::printf("multi-kernel partition of 8XEON: Linux on sockets 0-3, "
              "Nautilus HRT on sockets 4-7\n\n");

  // Linux side: a long-running service loop.
  double linux_work_done = 0;
  linux_side.spawn_thread(
      "linux-service",
      [&] {
        for (int i = 0; i < 40; ++i) {
          linux_side.compute_ns(500 * sim::kMicrosecond);
          linux_work_done += 0.5;
        }
      },
      0);

  // HRT side: boot, run an OpenMP job via RTK, "reboot", run another.
  sim::Time boot_ns = 0;
  double job1_ms = 0, job2_ms = 0;
  pthread_compat::Pthreads pt(*nk, pthread_compat::nautilus_native_tuning());
  nk->set_env("OMP_NUM_THREADS", "96");

  auto run_job = [&](double& out_ms) {
    komp::Runtime rt(pt);
    const double t0 = rt.wtime();
    rt.parallel([&](komp::TeamThread& tt) {
      tt.for_loop(komp::Schedule::kStatic, 0, 0, 96 * 4,
                  [&](std::int64_t b, std::int64_t e) {
                    tt.compute_ns(50 * sim::kMicrosecond * (e - b));
                  });
    });
    out_ms = (rt.wtime() - t0) * 1e3;
  };

  nk->spawn_thread(
      "hrt-main",
      [&] {
        // Boot cost of the specialized kernel partition: identity page
        // tables, per-zone allocators, per-CPU bring-up.  Milliseconds
        // (paper §7), modelled as a fixed bring-up charge.
        const sim::Time boot_start = engine.now();
        engine.sleep_for(4 * sim::kMillisecond);  // Nautilus boot
        boot_ns = engine.now() - boot_start;
        run_job(job1_ms);
        // "Rebooting the Nautilus part ... can be done at timescales
        // similar to a process creation in Linux."
        engine.sleep_for(4 * sim::kMillisecond);  // reboot
        run_job(job2_ms);
      },
      0);

  engine.run();

  harness::Table t({"metric", "value"});
  t.add_row({"Nautilus partition boot", harness::Table::num(
                                            sim::to_seconds(boot_ns) * 1e3, 1) +
                                            " ms"});
  t.add_row({"Linux fork+exec (typical)", "~3-10 ms"});
  t.add_row({"HRT job 1 (96 threads)", harness::Table::num(job1_ms, 2) + " ms"});
  t.add_row({"HRT job 2 after reboot", harness::Table::num(job2_ms, 2) + " ms"});
  t.add_row({"Linux-side work completed", harness::Table::num(linux_work_done, 1) +
                                              " ms of service time"});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Both compartments ran concurrently and independently;\n"
              "the HRT partition reboots at process-creation timescales,\n"
              "which is what makes kernel-per-job deployment practical.\n");
  return job1_ms > 0 && job2_ms > 0 && linux_work_done > 0 ? 0 : 1;
}
