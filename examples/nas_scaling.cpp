// Scenario: an HPC group wants to know whether moving their OpenMP
// code into the kernel is worth it before committing.  This example
// runs one NAS benchmark across all three kernel paths and a core
// sweep, and prints the scaling study they would look at.
//
//   ./examples/nas_scaling [BT|SP|LU|FT|EP|CG|MG|IS] [phi|8xeon]
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "harness/figures.hpp"
#include "harness/table.hpp"

using namespace kop;

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "FT";
  const std::string machine = argc > 2 ? argv[2] : "phi";

  auto spec = harness::scale_suite({nas::by_name(bench)}, 1.0, 3)[0];
  const auto scales = machine == "phi" ? harness::phi_scales()
                                       : harness::xeon_scales();

  std::printf("NAS %s scaling study on %s (timed seconds, virtual)\n\n",
              spec.full_name().c_str(), machine.c_str());
  harness::Table t({"cpus", "Linux", "RTK", "PIK", "RTK speedup",
                    "PIK speedup"});
  for (int n : scales) {
    core::StackConfig cfg;
    cfg.machine = machine;
    cfg.num_threads = n;
    cfg.nk_first_touch = harness::want_first_touch(machine, n);

    cfg.path = core::PathKind::kLinuxOmp;
    const double linux_t = harness::run_nas(cfg, spec).timed_seconds;
    cfg.path = core::PathKind::kRtk;
    const double rtk_t = harness::run_nas(cfg, spec).timed_seconds;
    cfg.path = core::PathKind::kPik;
    const double pik_t = harness::run_nas(cfg, spec).timed_seconds;

    t.add_row({std::to_string(n), harness::Table::seconds(linux_t),
               harness::Table::seconds(rtk_t), harness::Table::seconds(pik_t),
               harness::Table::num(linux_t / rtk_t),
               harness::Table::num(linux_t / pik_t)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Interpretation: RTK gains come from the kernel environment\n"
              "(no page faults, large-page TLB reach, NUMA-exact buddy\n"
              "allocation, no OS noise); PIK recovers most of them while\n"
              "running the unmodified user binary.\n");
  return 0;
}
