// Scenario: the NAS suites print "VERIFICATION SUCCESSFUL" after the
// timed run.  This example runs every benchmark's class-S functional
// verification through the in-kernel (RTK) runtime -- demonstrating
// that the kernel OpenMP stack computes real numerics correctly, not
// just fast.
#include <cstdio>

#include "core/stack.hpp"
#include "harness/table.hpp"
#include "nas/functional.hpp"
#include "nas/specs.hpp"

using namespace kop;

int main() {
  core::StackConfig cfg;
  cfg.machine = "phi";
  cfg.path = core::PathKind::kRtk;
  cfg.num_threads = 16;
  auto stack = core::Stack::create(cfg);

  std::printf("NAS class-S functional verification on RTK (16 threads)\n\n");
  harness::Table table({"benchmark", "verification", "detail"});
  int failures = 0;
  stack->run_omp_app([&](komp::Runtime& rt) {
    for (const auto& spec : nas::paper_suite()) {
      const auto r = nas::functional::verify(rt, spec.name);
      if (!r.passed) ++failures;
      table.add_row({spec.full_name(), r.passed ? "SUCCESSFUL" : "FAILED",
                     r.detail});
    }
    return failures;
  });
  std::printf("%s\n", table.to_string().c_str());
  std::printf(failures == 0 ? "all verifications successful\n"
                            : "%d verification(s) FAILED\n",
              failures);
  return failures;
}
