// OMPT-tool demo: profile the per-construct overhead of the EPCC
// syncbench run without touching a single line of runtime code.
//
// The profiler is an ompt::Tool attached through the registry the Os
// exposes (os.tools().attach(...)); komp emits the parallel / work /
// sync-region / mutex callbacks as it executes, and the tool aggregates
// them into (count, total virtual time) buckets.  Detach and the
// runtime is back to zero observation overhead.
//
//   omp_profiler [--path linux|rtk|pik] [--threads N] [--json <path>]
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "ompt/profiler.hpp"

using namespace kop;

int main(int argc, char** argv) {
  core::StackConfig cfg;
  cfg.machine = "phi";
  cfg.path = core::PathKind::kLinuxOmp;
  cfg.num_threads = 8;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--path") {
      const std::string p = next();
      if (p == "linux") cfg.path = core::PathKind::kLinuxOmp;
      else if (p == "rtk") cfg.path = core::PathKind::kRtk;
      else if (p == "pik") cfg.path = core::PathKind::kPik;
      else {
        std::fprintf(stderr, "error: --path must be linux|rtk|pik\n");
        return 2;
      }
    } else if (arg == "--threads") {
      cfg.num_threads = std::atoi(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--path linux|rtk|pik] [--threads N]"
                   " [--json <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  auto stack = core::Stack::create(cfg);

  // The whole integration: one attach call.  The runtime has no idea
  // a profiler exists.
  ompt::ConstructProfiler profiler;
  stack->os().tools().attach(&profiler);

  epcc::EpccConfig ecfg;
  ecfg.outer_reps = 4;
  ecfg.inner_iters = 8;
  stack->run_omp_app([&](komp::Runtime& rt) {
    epcc::Suite suite(rt, ecfg);
    suite.run_syncbench();
    return 0;
  });

  stack->os().tools().detach(&profiler);

  std::printf("== EPCC syncbench on %s, %d threads (%s) ==\n\n",
              core::path_name(cfg.path), cfg.num_threads,
              cfg.machine.c_str());
  std::printf("%s\n", profiler.format_table().c_str());

  const auto snap = stack->os().counters().snapshot();
  std::printf("hardware/OS event counters:\n%s\n",
              harness::format_counters_table(snap).c_str());

  if (!json_path.empty()) {
    harness::RunMetrics m;
    m.label = "syncbench";
    m.machine = cfg.machine;
    m.path = core::path_name(cfg.path);
    m.threads = cfg.num_threads;
    m.timed_seconds = static_cast<double>(stack->engine().now()) / 1e9;
    m.counters = snap;
    m.include_per_cpu = true;
    for (const auto& [name, agg] : profiler.aggregates()) {
      harness::ConstructStat stat;
      stat.count = agg.count;
      stat.total_us = static_cast<double>(agg.total_ns) / 1e3;
      stat.mean_us =
          agg.count == 0 ? 0.0
                         : stat.total_us / static_cast<double>(agg.count);
      m.constructs[name] = stat;
    }
    harness::MetricsSink sink("omp_profiler");
    sink.add(std::move(m));
    try {
      sink.write_file(json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
