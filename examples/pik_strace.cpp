// Scenario: bringing a new binary up under PIK, strace-style.  The
// paper built the syscall layer by watching which calls a program
// makes and implementing them iteratively (§4.3: "Syscall stubs were
// added for each Linux syscall type so we can see all activity").
// This example runs an OpenMP app in a PIK process and prints the
// syscall activity report a porter would read.
#include <cstdio>

#include "pik/pik.hpp"

using namespace kop;

int main() {
  pik::PikOptions options;
  options.machine = hw::phi();
  options.app_static_bytes = 256ULL << 20;
  pik::PikStack stack(std::move(options));
  stack.os().set_env("OMP_NUM_THREADS", "8");

  const int code = stack.run_app("npb.kernel.x", [&](komp::Runtime& rt) {
    // The app: a parallel region plus some console output through the
    // emulated write(2).
    double sum = 0.0;
    rt.parallel([&](komp::TeamThread& tt) {
      const double part = tt.reduce(1.0, komp::ReduceOp::kSum);
      tt.master([&] { sum = part; });
      tt.barrier();
    });
    pik::SyscallArgs w;
    w.arg[0] = 1;
    w.data = "team of " + std::to_string(static_cast<int>(sum)) +
             " threads inside a kernel-mode process\n";
    stack.syscalls().invoke(pik::Sys::kWrite, w);

    // Something the layer does NOT implement, to show the stub path.
    stack.syscalls().invoke(/*nr=*/165 /* mount */);
    return 0;
  });

  std::printf("PIK process '%s' exited with %d\n",
              stack.process()->name.c_str(), code);
  std::printf("console:\n%s\n", stack.console().c_str());

  std::printf("syscall activity (total %llu):\n",
              static_cast<unsigned long long>(stack.syscalls().total_calls()));
  const struct {
    pik::Sys nr;
    const char* name;
  } kNamed[] = {
      {pik::Sys::kArchPrctl, "arch_prctl (FSBASE/TLS)"},
      {pik::Sys::kSetTidAddress, "set_tid_address"},
      {pik::Sys::kMmap, "mmap"},
      {pik::Sys::kSchedGetaffinity, "sched_getaffinity"},
      {pik::Sys::kOpenat, "openat (/proc/self)"},
      {pik::Sys::kRead, "read"},
      {pik::Sys::kClose, "close"},
      {pik::Sys::kClone, "clone (thread create)"},
      {pik::Sys::kWrite, "write"},
      {pik::Sys::kGetrandom, "getrandom"},
      {pik::Sys::kClockGettime, "clock_gettime (no vDSO!)"},
      {pik::Sys::kExitGroup, "exit_group"},
  };
  for (const auto& s : kNamed) {
    std::printf("  %-28s %llu\n", s.name,
                static_cast<unsigned long long>(stack.syscalls().calls(s.nr)));
  }
  std::printf("unimplemented numbers seen (answered -ENOSYS):");
  for (int nr : stack.syscalls().unimplemented_seen()) std::printf(" %d", nr);
  std::printf("\n\nA porter implements exactly what shows up here -- the\n"
              "paper's iterative bring-up loop.\n");
  return code;
}
