// Seeded property-testing CLI over random experiment points.
//
//   propcheck [--seed S] [--budget N] [--scratch <dir>] [--out <file>]
//             [--max-failures N] [--replay <token>] [--list-invariants]
//
// Draws --budget random cases from the pinned --seed and checks every
// registered invariant on each (see src/harness/propcheck).  The same
// seed always generates the same cases and, when the simulator is
// healthy, the same suite digest -- CI runs the suite twice and
// compares the digests, which is the end-to-end determinism gate.
//
// On failure each case is shrunk to a minimal failing token and, with
// --out, written as ready-to-pin schedfuzz regression lines
// ("propcheck:<token> <policy> <seed>").  Replay one token with
// --replay (also accepts the "propcheck:" prefix as pinned in
// tests/schedfuzz_regressions.txt).
//
// Exit code: 0 all invariants hold, 1 violations found, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "harness/propcheck/propcheck.hpp"

using namespace kop;
namespace propcheck = kop::harness::propcheck;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] [--budget N] [--scratch <dir>]\n"
               "          [--out <file>] [--max-failures N]\n"
               "          [--replay <token>] [--list-invariants]\n",
               argv0);
  return 2;
}

std::string regression_line(const propcheck::CaseParams& p) {
  return "propcheck:" + p.token() + " " + sim::sched_policy_name(p.policy) +
         " " + std::to_string(p.sched_seed);
}

int replay(const std::string& raw, const std::string& scratch) {
  std::string token = raw;
  if (token.rfind("propcheck:", 0) == 0) token = token.substr(10);
  propcheck::CaseParams params;
  if (!propcheck::CaseParams::parse(token, &params)) {
    std::fprintf(stderr, "error: unparseable token '%s'\n", token.c_str());
    return 2;
  }
  std::printf("replaying %s\n", params.describe().c_str());
  propcheck::CheckOptions copt;
  copt.scratch_dir = scratch;
  const propcheck::CaseOutcome outcome = propcheck::check_case(params, copt);
  std::printf("case digest %s\n",
              harness::jobs::hex16(outcome.digest).c_str());
  if (outcome.ok()) {
    std::printf("all invariants hold\n");
    return 0;
  }
  for (const auto& v : outcome.violations) {
    std::printf("VIOLATION [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  propcheck::SuiteOptions sopts;
  sopts.gen.seed = 1;
  sopts.gen.count = 200;
  std::string out_path, replay_token;
  std::string scratch =
      (std::filesystem::temp_directory_path() / "kop-propcheck").string();
  bool list_invariants = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      sopts.gen.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--budget" && i + 1 < argc) {
      sopts.gen.count = std::atoi(argv[++i]);
    } else if (arg == "--scratch" && i + 1 < argc) {
      scratch = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--max-failures" && i + 1 < argc) {
      sopts.max_failures = std::atoi(argv[++i]);
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_token = argv[++i];
    } else if (arg == "--list-invariants") {
      list_invariants = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (list_invariants) {
    for (const auto& name : propcheck::invariant_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }
  if (!replay_token.empty()) return replay(replay_token, scratch);
  if (sopts.gen.count < 1) return usage(argv[0]);

  sopts.check.scratch_dir = scratch;
  std::fprintf(stderr, "[propcheck] seed %llu, %d cases, scratch %s\n",
               static_cast<unsigned long long>(sopts.gen.seed),
               sopts.gen.count, scratch.c_str());
  const propcheck::SuiteReport report = propcheck::run_suite(sopts);
  std::printf("%s\n", report.summary().c_str());

  if (!report.ok() && !out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << "# shrunk propcheck failures (seed "
        << static_cast<unsigned long long>(sopts.gen.seed)
        << "); pin by appending to tests/schedfuzz_regressions.txt\n";
    for (const auto& f : report.failures)
      out << regression_line(f.params) << "\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "[propcheck] wrote %zu shrunk failure(s) to %s\n",
                   report.failures.size(), out_path.c_str());
    }
  }
  return report.ok() ? 0 : 1;
}
