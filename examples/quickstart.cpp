// Quickstart: boot each of the paper's stacks and run the same little
// OpenMP program on all of them.
//
//   ./examples/quickstart
//
// The program sums 1..N with a parallel-for reduction, on the Linux
// baseline, RTK, and PIK; then runs the CCK/AutoMP equivalent.
#include <cstdio>

#include "cck/program.hpp"
#include "core/stack.hpp"
#include "nas/exec.hpp"

using namespace kop;

namespace {

// The "application": what a user would write with #pragma omp
// parallel for reduction(+:sum).
int omp_sum_app(komp::Runtime& rt) {
  constexpr std::int64_t kN = 100'000;
  double sum = 0.0;
  rt.parallel([&](komp::TeamThread& tt) {
    double local = 0.0;
    tt.for_loop(komp::Schedule::kStatic, 0, 1, kN + 1,
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i)
                    local += static_cast<double>(i);
                  tt.compute_ns(200 * (e - b));  // the modelled work
                },
                /*nowait=*/true);
    const double total = tt.reduce(local, komp::ReduceOp::kSum);
    tt.master([&] { sum = total; });
    tt.barrier();
  });
  const double expected = 0.5 * kN * (kN + 1);
  std::printf("    sum(1..%lld) = %.0f (%s)\n", static_cast<long long>(kN),
              sum, sum == expected ? "correct" : "WRONG");
  return sum == expected ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("kop quickstart: one OpenMP program, three kernel paths\n\n");

  for (auto path :
       {core::PathKind::kLinuxOmp, core::PathKind::kRtk, core::PathKind::kPik}) {
    core::StackConfig cfg;
    cfg.machine = "phi";
    cfg.path = path;
    cfg.num_threads = 16;
    auto stack = core::Stack::create(cfg);
    std::printf("  [%s] booting on %s with %d threads\n",
                core::path_name(path), cfg.machine.c_str(), cfg.num_threads);
    const double t0 = sim::to_seconds(stack->engine().now());
    stack->run_omp_app(omp_sum_app);
    std::printf("    virtual time: %.6f s\n\n",
                sim::to_seconds(stack->engine().now()) - t0);
  }

  // The CCK path: same loop, compiled to VIRGIL tasks instead.
  core::StackConfig cfg;
  cfg.path = core::PathKind::kAutoMpNautilus;
  cfg.num_threads = 16;
  cfg.app_static_bytes = 0;
  auto stack = core::Stack::create(cfg);
  std::printf("  [%s] compiling the loop with AutoMP\n",
              core::path_name(cfg.path));
  stack->run_cck_app([](osal::Os& os, virgil::Virgil& vg) {
    cck::Module m;
    cck::Function fn;
    fn.name = "main";
    fn.declare(cck::Var{"data", 8 * 100'000, /*is_object=*/true});
    cck::Loop loop;
    loop.name = "sum";
    loop.trip = 100'000;
    loop.omp.parallel_for = true;
    cck::Stmt s;
    s.label = "acc";
    s.est_cost_ns = 200;
    s.accesses = {cck::read("data"), cck::write("data")};
    loop.body.push_back(s);
    loop.exec.per_iter_ns = 200;
    m.functions["main"] = std::move(fn);
    m.entry().items.push_back(cck::Item::make_loop(std::move(loop)));

    cck::CompilerOptions opts;
    opts.width = vg.width();
    const auto program = cck::Compiler(opts).compile(m);
    std::printf("%s", program.report.to_string().c_str());

    cck::ProgramRunner runner(os, vg);
    const sim::Time elapsed = runner.run(program);
    std::printf("    virtual time: %.6f s\n", sim::to_seconds(elapsed));
    return 0;
  });

  std::printf("\ndone.\n");
  return 0;
}
