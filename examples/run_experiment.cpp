// General experiment runner: the library as a command-line tool.
//
//   run_experiment [--bench BT,FT,...|all] [--machine phi|8xeon]
//                  [--paths linux,rtk,pik,automp-linux,automp-nk]
//                  [--threads 1,2,4,...] [--scale <factor>] [--csv]
//                  [--json <path>] [--jobs N] [--cache-dir <dir>]
//                  [--no-cache]
//
// --json writes a kop-metrics v1 artifact (telemetry/metrics.hpp): one
// run entry per (bench, path, threads) cell with the stack's event
// counters -- the same schema the bench/fig* binaries emit.
//
// The sweep is enumerated as jobs::PointSpec values and executed by
// the jobs::JobRunner host-thread pool: --jobs N simulates N points
// concurrently (each on its own engine), --cache-dir reuses previous
// results via the content-addressed cache.  Output is byte-identical
// across --jobs levels and cache states.
//
// Examples:
//   run_experiment --bench BT --threads 1,16,64
//   run_experiment --bench all --machine 8xeon --paths rtk,pik --csv
//   run_experiment --bench all --jobs 8 --cache-dir .kop-cache
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/figures.hpp"
#include "harness/table.hpp"

using namespace kop;

namespace {

std::vector<std::string> split(const std::string& s, char sep = ',') {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

core::PathKind path_by_name(const std::string& name) {
  if (name == "linux") return core::PathKind::kLinuxOmp;
  if (name == "rtk") return core::PathKind::kRtk;
  if (name == "pik") return core::PathKind::kPik;
  if (name == "automp-linux") return core::PathKind::kAutoMpLinux;
  if (name == "automp-nk") return core::PathKind::kAutoMpNautilus;
  throw std::invalid_argument("unknown path '" + name +
                              "' (linux|rtk|pik|automp-linux|automp-nk)");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> benches = {"BT"};
  std::string machine = "phi";
  std::vector<std::string> paths = {"linux", "rtk", "pik"};
  std::vector<int> threads = {1, 8, 64};
  double scale = 1.0;
  bool csv = false;
  std::string json_path;
  harness::jobs::JobOptions jopts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--bench") benches = split(next());
      else if (arg == "--machine") machine = next();
      else if (arg == "--paths") paths = split(next());
      else if (arg == "--threads") {
        threads.clear();
        for (const auto& t : split(next())) threads.push_back(std::stoi(t));
      } else if (arg == "--scale") scale = std::stod(next());
      else if (arg == "--csv") csv = true;
      else if (arg == "--json") json_path = next();
      else if (arg == "--jobs") {
        jopts.jobs = std::stoi(next());
        if (jopts.jobs < 1)
          throw std::invalid_argument("--jobs needs a positive integer");
      } else if (arg == "--cache-dir") jopts.cache_dir = next();
      else if (arg == "--no-cache") jopts.no_cache = true;
      else if (arg == "--shard") {
        std::string error;
        if (!harness::jobs::parse_shard(next(), &jopts.shard, &error))
          throw std::invalid_argument(error);
      } else if (arg == "--shard-list") jopts.shard.list_only = true;
      else if (arg == "--shard-claim") jopts.claim_dir = next();
      else if (arg == "--help" || arg == "-h") {
        std::puts("usage: run_experiment [--bench B1,B2|all] [--machine m]\n"
                  "         [--paths p1,p2] [--threads n1,n2] [--scale f]\n"
                  "         [--csv] [--json <path>] [--jobs N]\n"
                  "         [--cache-dir <dir>] [--no-cache]\n"
                  "         [--shard K/N] [--shard-list] [--shard-claim <dir>]");
        return 0;
      } else {
        throw std::invalid_argument("unknown flag " + arg);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  if (benches.size() == 1 && benches[0] == "all") {
    benches.clear();
    for (const auto& b : nas::paper_suite()) benches.push_back(b.name);
  }

  harness::MetricsSink sink("run_experiment");
  try {
    // Enumerate the whole sweep up front ...
    std::vector<nas::BenchmarkSpec> specs;
    for (const auto& bench : benches) {
      specs.push_back(harness::scale_suite(
          {nas::by_name(bench)}, scale,
          std::max(1, static_cast<int>(4 * scale)))[0]);
    }
    harness::jobs::PointMatrix mx;
    auto point = [&](const nas::BenchmarkSpec& spec, const std::string& p,
                     int n) {
      harness::jobs::PointSpec ps;
      ps.kind = harness::jobs::PointSpec::Kind::kNas;
      ps.machine = machine;
      ps.path = path_by_name(p);
      ps.threads = n;
      ps.nas = spec;
      return ps;
    };
    for (const auto& spec : specs)
      for (int n : threads)
        for (const auto& p : paths) mx.add(point(spec, p, n));

    // ... hand a --shard / --shard-list sweep to the shared intercept
    // (tables need every shard; an unsharded rerun against the merged
    // cache prints them) ...
    std::string sharded;
    if (harness::run_shard_mode(mx, &sink, jopts, &sharded)) {
      std::fputs(sharded.c_str(), stdout);
      if (!json_path.empty() && !sink.empty()) {
        sink.write_file(json_path);
        std::printf("wrote %s (%zu runs)\n", json_path.c_str(),
                    sink.runs().size());
      }
      return 0;
    }

    // ... execute it through the pool/cache ...
    harness::jobs::JobRunner runner(jopts);
    const auto results = runner.run(mx.points());
    harness::jobs::require_ok(mx.points(), results);
    std::fprintf(stderr, "[jobs] %s\n", runner.summary(mx.size()).c_str());

    // ... and print tables in enumeration order.
    for (const auto& spec : specs) {
      std::vector<std::string> headers = {"threads"};
      for (const auto& p : paths) headers.push_back(p + " (s)");
      harness::Table table(std::move(headers));
      for (int n : threads) {
        std::vector<std::string> row = {std::to_string(n)};
        for (const auto& p : paths) {
          const auto& r = results[mx.add(point(spec, p, n))];
          row.push_back(harness::Table::num(r.metrics.timed_seconds, 3));
          sink.add(r.metrics);
        }
        table.add_row(std::move(row));
      }
      std::printf("%s on %s (scale %.2f)\n", spec.full_name().c_str(),
                  machine.c_str(), scale);
      std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(),
                 stdout);
      std::printf("\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!json_path.empty()) {
    try {
      sink.write_file(json_path);
      std::printf("wrote %s (%zu runs)\n", json_path.c_str(),
                  sink.runs().size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
