// Schedule-exploration fuzzer CLI.
//
//   schedfuzz                                sweep the default scenario
//                                            set (random + PCT policies)
//   schedfuzz --seeds=N --seed-begin=S       widen / shift the sweep
//   schedfuzz --scenario=NAME                restrict to one scenario
//   schedfuzz --policy=P --sched-seed=S      replay one exact schedule
//   schedfuzz --regressions=FILE             replay a pinned seed list
//   schedfuzz --inject-bug                   include the buggy-unlock
//                                            fixture (must be caught)
//   schedfuzz --list                         print scenario names
//
// Exit code 0 = every run clean; 1 = at least one failure (the summary
// names the racy pair / deadlock and prints the replay command line).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/schedfuzz.hpp"

namespace sf = kop::harness::schedfuzz;

namespace {

bool arg_value(const std::string& arg, const std::string& key,
               std::string& out) {
  const std::string prefix = "--" + key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sf::Options opt;
  std::string only, policy_str, regressions;
  std::uint64_t sched_seed = 0;
  bool have_sched_seed = false, inject_bug = false, list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (arg_value(arg, "seeds", v)) {
      opt.seeds_per_policy = std::atoi(v.c_str());
      if (opt.seeds_per_policy <= 0) {
        std::cerr << "schedfuzz: --seeds needs a positive count, got '" << v
                  << "'\n";
        return 2;
      }
    } else if (arg_value(arg, "seed-begin", v)) {
      opt.seed_begin = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg_value(arg, "scenario", v)) {
      only = v;
    } else if (arg_value(arg, "policy", v)) {
      policy_str = v;
    } else if (arg_value(arg, "sched-seed", v)) {
      sched_seed = std::strtoull(v.c_str(), nullptr, 10);
      have_sched_seed = true;
    } else if (arg_value(arg, "regressions", v)) {
      regressions = v;
    } else if (arg == "--inject-bug") {
      inject_bug = true;
    } else if (arg == "--no-racecheck") {
      opt.racecheck = false;
    } else if (arg == "--keep-going") {
      opt.stop_on_failure = false;
    } else if (arg == "--list") {
      list = true;
    } else {
      if (arg != "--help") {
        std::cerr << "schedfuzz: unknown argument " << arg << "\n";
      }
      std::cerr << "usage: " << argv[0] << " [--seeds=N] [--seed-begin=S]\n"
                << "          [--scenario=NAME] [--policy=P] [--sched-seed=S]\n"
                << "          [--regressions=FILE] [--inject-bug]\n"
                << "          [--no-racecheck] [--keep-going] [--list]\n";
      return 2;
    }
  }

  std::vector<sf::Scenario> scenarios = sf::default_scenarios();
  // Asking for the buggy fixture by name is as explicit an opt-in as
  // --inject-bug, and keeps the replay command printed for its
  // failures runnable verbatim.
  if (inject_bug || only == sf::buggy_unlock_scenario().name)
    scenarios.push_back(sf::buggy_unlock_scenario());

  if (list) {
    for (const auto& s : scenarios) std::cout << s.name << "\n";
    return 0;
  }

  if (!regressions.empty()) {
    sf::Report report;
    try {
      report = sf::replay_regressions(scenarios, regressions, opt.racecheck);
    } catch (const std::exception& e) {
      std::cerr << "schedfuzz: " << e.what() << "\n";
      return 2;
    }
    std::cout << report.summary() << "\n";
    return report.ok() ? 0 : 1;
  }

  if (!only.empty()) {
    const sf::Scenario* s = sf::find_scenario(scenarios, only);
    if (s == nullptr) {
      std::cerr << "schedfuzz: unknown scenario " << only
                << " (try --list)\n";
      return 2;
    }
    scenarios = {*s};
  }

  if (have_sched_seed || !policy_str.empty()) {
    // Replay mode: one exact (policy, seed) pair per listed scenario.
    kop::sim::SchedConfig sched;
    sched.seed = sched_seed;
    if (policy_str == "fifo") sched.policy = kop::sim::SchedPolicy::kFifo;
    else if (policy_str == "pct") sched.policy = kop::sim::SchedPolicy::kPct;
    else if (policy_str == "random" || policy_str.empty())
      sched.policy = kop::sim::SchedPolicy::kRandom;
    else {
      std::cerr << "schedfuzz: unknown policy " << policy_str << "\n";
      return 2;
    }
    sf::Report report;
    for (const auto& s : scenarios) {
      sf::Failure f = sf::run_one(s, sched, opt.racecheck);
      ++report.runs;
      if (f.verdict != sf::Verdict::kOk)
        report.failures.push_back(std::move(f));
    }
    std::cout << report.summary() << "\n";
    return report.ok() ? 0 : 1;
  }

  sf::Report report = sf::sweep(scenarios, opt);
  std::cout << report.summary() << "\n";
  return report.ok() ? 0 : 1;
}
