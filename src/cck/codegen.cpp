#include "cck/codegen.hpp"

#include <sstream>

#include "cck/transforms.hpp"

namespace kop::cck {

std::string CompileReport::to_string() const {
  std::ostringstream oss;
  oss << "CCK compile report for " << module_name << " ("
      << (used_omp_metadata ? "with" : "without") << " OpenMP metadata, "
      << (kernel_compatible ? "kernel" : "user") << " target)\n";
  for (const auto& l : loops) {
    oss << "  " << l.name << ": " << l.technique << " trip=" << l.trip;
    if (l.technique == "DOALL" || l.technique == "DSWP" ||
        l.technique == "HELIX")
      oss << " chunk=" << l.chunk;
    if (l.parallel_fraction < 1.0)
      oss << " parallel_fraction=" << l.parallel_fraction;
    for (const auto& n : l.notes) oss << " [" << n << "]";
    oss << "\n";
  }
  oss << "  loops: " << doall_loops << " DOALL, " << pipeline_loops
      << " pipeline, " << sequential_loops << " sequential; "
      << "parallel work fraction " << parallel_work_fraction << "\n";
  return oss.str();
}

CompiledProgram Compiler::compile(const Module& module) const {
  CompiledProgram out;
  out.options = options_;

  // Front end already produced metadata-annotated sequential IR; the
  // first middle-end step is whole-program inlining for analyzability.
  const Function fn = inline_calls(module);
  out.name = fn.name;
  out.report.module_name = fn.name;
  out.report.kernel_compatible = options_.kernel_target;
  out.report.used_omp_metadata = options_.use_omp_metadata;

  Parallelizer par(ParallelizerOptions{options_.use_omp_metadata,
                                       options_.chunk_target_ns,
                                       options_.width});

  double total_work = 0.0;
  double parallel_work = 0.0;

  for (const auto& item : fn.items) {
    if (item.kind == Item::Kind::kSerial) {
      Phase ph;
      ph.kind = Phase::Kind::kSerial;
      ph.serial_ns = item.serial_ns;
      out.phases.push_back(std::move(ph));
      continue;
    }
    // Distribution then fusion: sequential SCCs split out, parallel
    // statements re-coalesce.
    std::vector<Loop> pieces =
        distribute_loop(fn, item.loop, options_.use_omp_metadata);
    pieces = fuse_loops(fn, std::move(pieces), options_.use_omp_metadata);

    for (auto& piece : pieces) {
      const LoopPlan plan = par.plan(fn, piece);
      const double work =
          piece.exec.per_iter_ns * static_cast<double>(piece.trip);
      total_work += work;

      LoopReport lr;
      lr.name = piece.name;
      lr.technique = technique_name(plan.tech);
      lr.trip = piece.trip;
      lr.chunk = plan.chunk;
      lr.parallel_fraction = plan.parallel_fraction;
      lr.notes = plan.notes;
      out.report.loops.push_back(lr);

      Phase ph;
      ph.plan = plan;
      switch (plan.tech) {
        case Technique::kDoall:
          ph.kind = Phase::Kind::kParallelLoop;
          ++out.report.doall_loops;
          parallel_work += work;
          break;
        case Technique::kDswp:
        case Technique::kHelix:
          ph.kind = Phase::Kind::kPipelineLoop;
          ++out.report.pipeline_loops;
          parallel_work += work * plan.parallel_fraction;
          break;
        case Technique::kSequential:
          ph.kind = Phase::Kind::kSequentialLoop;
          ++out.report.sequential_loops;
          break;
      }
      ph.loop = std::move(piece);
      out.phases.push_back(std::move(ph));
    }
  }
  out.report.parallel_work_fraction =
      total_work > 0 ? parallel_work / total_work : 0.0;
  return out;
}

}  // namespace kop::cck
