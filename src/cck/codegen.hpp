// The CCK compiler driver: front-end module -> inline -> distribute ->
// fuse -> parallelize -> task generation -> a kernel-compatible
// CompiledProgram for VIRGIL (§5.1 pipeline, Fig. 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cck/ir.hpp"
#include "cck/parallelizer.hpp"

namespace kop::cck {

struct CompilerOptions {
  /// Exploit OpenMP semantic metadata (the whole point of CCK); turn
  /// off to see what plain automatic parallelization would do.
  bool use_omp_metadata = true;
  /// Target chunk duration for the latency-aware chunker.
  double chunk_target_ns = 50'000.0;
  /// Execution width the backend plans for.
  int width = 64;
  /// Kernel target: emit no-red-zone, kernel-linkable code (§5.4).
  bool kernel_target = true;
  /// Per-task live-in marshalling cost and per-task live-out slot cost
  /// folded into the landing task.
  double live_in_ns = 90.0;
  double live_out_ns = 40.0;
};

/// One phase of the compiled program (in program order).
struct Phase {
  enum class Kind { kParallelLoop, kPipelineLoop, kSequentialLoop, kSerial };
  Kind kind = Kind::kSerial;
  Loop loop;          // loop phases
  LoopPlan plan;      // loop phases
  double serial_ns = 0;  // kSerial
};

struct LoopReport {
  std::string name;
  std::string technique;
  std::int64_t trip = 0;
  std::int64_t chunk = 1;
  double parallel_fraction = 1.0;
  std::vector<std::string> notes;
};

struct CompileReport {
  std::string module_name;
  bool kernel_compatible = false;  // no red zone, static, linkable
  bool used_omp_metadata = false;
  std::vector<LoopReport> loops;
  int doall_loops = 0;
  int pipeline_loops = 0;
  int sequential_loops = 0;
  /// Fraction of total estimated work in parallelized loops.
  double parallel_work_fraction = 0.0;

  std::string to_string() const;
};

struct CompiledProgram {
  std::string name;
  CompilerOptions options;
  std::vector<Phase> phases;
  CompileReport report;
};

class Compiler {
 public:
  explicit Compiler(CompilerOptions options = {}) : options_(options) {}

  CompiledProgram compile(const Module& module) const;

 private:
  CompilerOptions options_;
};

}  // namespace kop::cck
