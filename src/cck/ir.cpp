#include "cck/ir.hpp"

#include <stdexcept>

namespace kop::cck {

double Loop::est_iter_cost_ns() const {
  double sum = 0.0;
  for (const auto& s : body) sum += s.est_cost_ns;
  return sum;
}

Item Item::make_loop(Loop l) {
  Item it;
  it.kind = Kind::kLoop;
  it.loop = std::move(l);
  return it;
}

Item Item::make_serial(double ns) {
  Item it;
  it.kind = Kind::kSerial;
  it.serial_ns = ns;
  return it;
}

Item Item::make_call(std::string callee) {
  Item it;
  it.kind = Kind::kCall;
  it.callee = std::move(callee);
  return it;
}

const Var* Function::find_var(const std::string& n) const {
  auto it = vars.find(n);
  return it == vars.end() ? nullptr : &it->second;
}

std::size_t Function::loop_count() const {
  std::size_t n = 0;
  for (const auto& it : items)
    if (it.kind == Item::Kind::kLoop) ++n;
  return n;
}

Function& Module::entry() {
  auto it = functions.find("main");
  if (it == functions.end()) throw std::logic_error("Module: no main()");
  return it->second;
}

const Function& Module::entry() const {
  auto it = functions.find("main");
  if (it == functions.end()) throw std::logic_error("Module: no main()");
  return it->second;
}

}  // namespace kop::cck
