// The CCK intermediate representation (paper §5.2).
//
// The custom front end does NOT outline OpenMP regions: it lowers the
// program to sequential IR and attaches the pragma semantics as
// metadata (OmpMeta) so the middle end can analyze whole functions at
// full accuracy.  Statements carry symbolic read/write sets; that is
// the abstraction of LLVM-IR memory operations the dependence analyses
// consume.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hw/memory.hpp"
#include "komp/icv.hpp"
#include "sim/time.hpp"

namespace kop::cck {

/// A program variable (symbol).  `is_object` distinguishes aggregates
/// (arrays, structs) from scalars -- the pivot of the AutoMP
/// privatization limitation (§6.2: "currently unable to exploit OpenMP
/// directives related to object privatization").
struct Var {
  std::string name;
  std::uint64_t bytes = 8;
  bool is_object = false;
};

/// One symbolic memory access inside a loop body.
struct Access {
  std::string var;
  bool write = false;
  /// Access is indexed solely by the induction variable (a[i]):
  /// distinct iterations touch distinct elements.
  bool per_iteration = false;
  /// Access crosses iterations at a fixed distance (a[i-1], a[i+1]).
  bool carried = false;
};

/// Convenience constructors for terse kernel descriptions.
inline Access read(std::string var, bool per_iter = true) {
  return Access{std::move(var), false, per_iter, false};
}
inline Access write(std::string var, bool per_iter = true) {
  return Access{std::move(var), true, per_iter, false};
}
inline Access carried_read(std::string var) {
  return Access{std::move(var), false, false, true};
}
inline Access carried_write(std::string var) {
  return Access{std::move(var), true, false, true};
}

struct Stmt {
  std::string label;
  std::vector<Access> accesses;
  /// The compile-time latency estimate the parallelism-aware data-flow
  /// analysis produces for one execution (drives the chunker, §6.2).
  double est_cost_ns = 100.0;
};

/// OpenMP semantics attached to a loop by the front end.
struct OmpMeta {
  bool parallel_for = false;
  std::vector<std::string> private_vars;
  std::vector<std::string> firstprivate_vars;
  std::vector<std::string> reduction_vars;
  komp::Schedule schedule = komp::Schedule::kStatic;
  int chunk = 0;
  bool nowait = false;
  bool ordered = false;
};

/// Execution payload: how running one iteration charges the simulator.
/// (The compiler only reads est_cost from Stmts; this block is the
/// stand-in for the machine code the backend would emit.)
struct ExecInfo {
  hw::MemRegion* region = nullptr;
  double per_iter_ns = 100.0;
  double mem_fraction = 0.3;
  std::uint64_t bytes_per_iter = 0;
  hw::AccessPattern pattern = hw::AccessPattern::kStreaming;
  /// Linear load ramp: iteration i costs
  /// per_iter_ns * (1 - skew + 2*skew*i/trip).  Non-zero skew is what
  /// makes coarse chunking lose (MG/CG in the paper).
  double skew = 0.0;
};

struct Loop {
  std::string name;
  std::int64_t trip = 0;
  std::vector<Stmt> body;
  OmpMeta omp;
  ExecInfo exec;

  /// Sum of statement latency estimates = estimated iteration latency.
  double est_iter_cost_ns() const;
};

/// A top-level item of a function body, in program order.
struct Item {
  enum class Kind { kLoop, kSerial, kCall };
  Kind kind = Kind::kSerial;
  Loop loop;              // kLoop
  double serial_ns = 0;   // kSerial
  std::string callee;     // kCall

  static Item make_loop(Loop l);
  static Item make_serial(double ns);
  static Item make_call(std::string callee);
};

struct Function {
  std::string name;
  std::map<std::string, Var> vars;
  std::vector<Item> items;

  void declare(Var v) { vars[v.name] = std::move(v); }
  const Var* find_var(const std::string& n) const;
  /// Number of loop items (post-transform convenience).
  std::size_t loop_count() const;
};

/// A whole translation unit: functions by name; `main` is the entry.
struct Module {
  std::map<std::string, Function> functions;
  Function& entry();
  const Function& entry() const;
};

}  // namespace kop::cck
