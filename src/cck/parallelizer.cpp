#include "cck/parallelizer.hpp"

#include <algorithm>
#include <set>

namespace kop::cck {

const char* technique_name(Technique t) {
  switch (t) {
    case Technique::kDoall: return "DOALL";
    case Technique::kDswp: return "DSWP";
    case Technique::kHelix: return "HELIX";
    case Technique::kSequential: return "sequential";
  }
  return "?";
}

std::int64_t Parallelizer::choose_chunk(double iter_cost_ns,
                                        std::int64_t trip) const {
  if (trip <= 0) return 1;
  if (iter_cost_ns <= 0.0) iter_cost_ns = 1.0;
  std::int64_t chunk =
      static_cast<std::int64_t>(options_.chunk_target_ns / iter_cost_ns);
  // Keep at least ~4 tasks per lane so dynamic placement can balance
  // skewed iteration costs; never below one iteration.
  const std::int64_t max_chunk =
      std::max<std::int64_t>(1, trip / (4 * std::max(1, options_.width)));
  chunk = std::clamp<std::int64_t>(chunk, 1, std::max<std::int64_t>(1, max_chunk));
  return chunk;
}

LoopPlan Parallelizer::plan(const Function& fn, const Loop& loop) const {
  LoopPlan out;
  const Pdg pdg = Pdg::build(fn, loop, options_.use_omp_metadata);

  if (!pdg.has_loop_carried_dep()) {
    out.tech = Technique::kDoall;
    out.chunk = choose_chunk(loop.est_iter_cost_ns(), loop.trip);
    return out;
  }

  // Would the loop be DOALL if object privatization were supported?
  // Then the privatization limitation is the *only* blocker and the
  // loop is left sequential (the paper's LU/BT/SP/IS behaviour).
  if (!pdg.unsupported_privatization().empty()) {
    std::set<std::string> blocked(pdg.unsupported_privatization().begin(),
                                  pdg.unsupported_privatization().end());
    const bool only_blocker = std::all_of(
        pdg.edges().begin(), pdg.edges().end(), [&](const DepEdge& e) {
          return !e.loop_carried || blocked.count(e.var) > 0;
        });
    if (only_blocker) {
      out.tech = Technique::kSequential;
      for (const auto& v : pdg.unsupported_privatization())
        out.notes.push_back("unsupported object privatization: " + v);
      return out;
    }
  }

  // Pipeline decomposition: multiple SCCs, some of them carried-free.
  const auto sccs = pdg.sccs();
  std::set<int> carried_stmts;
  for (const auto& e : pdg.edges()) {
    if (e.loop_carried) {
      carried_stmts.insert(e.from);
      carried_stmts.insert(e.to);
    }
  }
  const double total = std::max(1.0, loop.est_iter_cost_ns());
  double parallel_cost = 0.0;
  for (const auto& s : loop.body) {
    // cost of statements not pinned by a carried dependence
    const int idx = static_cast<int>(&s - loop.body.data());
    if (carried_stmts.count(idx) == 0) parallel_cost += s.est_cost_ns;
  }

  if (sccs.size() > 1 && parallel_cost > 0.0) {
    out.tech = Technique::kDswp;
    out.parallel_fraction = parallel_cost / total;
    out.chunk = choose_chunk(loop.est_iter_cost_ns(), loop.trip);
    out.notes.push_back("pipeline stages: " + std::to_string(sccs.size()));
    return out;
  }
  if (parallel_cost > 0.0) {
    out.tech = Technique::kHelix;
    out.parallel_fraction = parallel_cost / total;
    out.chunk = choose_chunk(loop.est_iter_cost_ns(), loop.trip);
    return out;
  }
  out.tech = Technique::kSequential;
  out.notes.push_back("loop-carried dependences on: ");
  for (const auto& v : pdg.carried_vars()) out.notes.back() += v + " ";
  return out;
}

}  // namespace kop::cck
