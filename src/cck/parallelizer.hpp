// Technique selection (DOALL / DSWP / HELIX / sequential) and the
// latency-estimating chunker (§5.3, §6.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cck/ir.hpp"
#include "cck/pdg.hpp"

namespace kop::cck {

enum class Technique { kDoall, kDswp, kHelix, kSequential };

const char* technique_name(Technique t);

struct LoopPlan {
  Technique tech = Technique::kSequential;
  /// Iterations per task for DOALL (latency-aware, §6.2: "chunks loop
  /// iterations depending on the estimated latency of an iteration").
  std::int64_t chunk = 1;
  /// For DSWP/HELIX: fraction of per-iteration work that runs in the
  /// parallel stages; the rest is the sequential segment.
  double parallel_fraction = 1.0;
  std::vector<std::string> notes;
};

struct ParallelizerOptions {
  bool use_omp_metadata = true;
  /// Target duration of one DOALL task.
  double chunk_target_ns = 50'000.0;
  /// Execution width the chunker plans for.
  int width = 64;
};

class Parallelizer {
 public:
  explicit Parallelizer(ParallelizerOptions options) : options_(options) {}

  LoopPlan plan(const Function& fn, const Loop& loop) const;

  /// The chunker, exposed for tests: given an iteration-latency
  /// estimate, pick a chunk size that yields tasks near the target
  /// duration while keeping enough tasks for balance.
  std::int64_t choose_chunk(double iter_cost_ns, std::int64_t trip) const;

 private:
  ParallelizerOptions options_;
};

}  // namespace kop::cck
