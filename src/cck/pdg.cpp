#include "cck/pdg.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

namespace kop::cck {

namespace {

DepKind classify(bool first_writes, bool second_writes) {
  if (first_writes && second_writes) return DepKind::kOutput;
  if (first_writes) return DepKind::kFlow;
  return DepKind::kAnti;
}

}  // namespace

Pdg Pdg::build(const Function& fn, const Loop& loop, bool use_omp_metadata) {
  Pdg pdg;
  pdg.num_stmts_ = static_cast<int>(loop.body.size());
  const OmpMeta& meta = loop.omp;

  // Variables whose carried deps the metadata legalizes away.
  std::set<std::string> privatized_scalars;
  std::set<std::string> blocked_objects;
  if (use_omp_metadata && meta.parallel_for) {
    auto consider = [&](const std::string& v) {
      const Var* var = fn.find_var(v);
      const bool is_object = var != nullptr && var->is_object;
      if (is_object) {
        blocked_objects.insert(v);
      } else {
        privatized_scalars.insert(v);
      }
    };
    for (const auto& v : meta.private_vars) consider(v);
    for (const auto& v : meta.firstprivate_vars) consider(v);
    for (const auto& v : meta.reduction_vars) consider(v);
  }

  std::set<std::string> reported_blocked;
  for (int i = 0; i < pdg.num_stmts_; ++i) {
    for (int j = 0; j < pdg.num_stmts_; ++j) {
      for (const auto& a : loop.body[static_cast<std::size_t>(i)].accesses) {
        for (const auto& b : loop.body[static_cast<std::size_t>(j)].accesses) {
          if (a.var != b.var) continue;
          if (!a.write && !b.write) continue;

          // Intra-iteration dependence: program order within the body.
          if (i < j && a.write) {
            pdg.edges_.push_back(
                DepEdge{i, j, classify(a.write, b.write), false, a.var});
          }

          // Loop-carried dependence: the accesses can conflict across
          // iterations unless both touch only their own element.
          const bool elementwise = a.per_iteration && b.per_iteration &&
                                   !a.carried && !b.carried;
          if (elementwise) continue;

          bool carried = true;
          if (use_omp_metadata && meta.parallel_for) {
            if (privatized_scalars.count(a.var) > 0) {
              carried = false;  // scalar privatization / reduction: legal
            } else if (blocked_objects.count(a.var) > 0) {
              // The pragma says this object is private, but AutoMP
              // cannot privatize objects: keep the dependence and
              // remember why.
              if (reported_blocked.insert(a.var).second)
                pdg.unsupported_privatization_.push_back(a.var);
            } else if (!a.carried && !b.carried && a.per_iteration &&
                       b.per_iteration) {
              carried = false;
            }
            // Shared accesses not covered by any clause: the
            // parallel-for assertion itself vouches for per-iteration
            // accesses only; anything explicitly carried stays.
          }
          // Carried edges run writer -> reader/writer across any pair
          // of statements (including backward and self edges, which is
          // what makes recurrences form SCCs).  Pure anti dependences
          // are omitted: task generation renames/buffers them, as
          // DSWP-style pipelining does.
          if (carried && a.write) {
            pdg.edges_.push_back(
                DepEdge{i, j, classify(a.write, b.write), true, a.var});
          }
        }
      }
    }
  }
  return pdg;
}

bool Pdg::has_loop_carried_dep() const {
  return std::any_of(edges_.begin(), edges_.end(),
                     [](const DepEdge& e) { return e.loop_carried; });
}

std::vector<std::string> Pdg::carried_vars() const {
  std::set<std::string> vars;
  for (const auto& e : edges_) {
    if (e.loop_carried) vars.insert(e.var);
  }
  return {vars.begin(), vars.end()};
}

std::vector<std::vector<int>> Pdg::sccs() const {
  // Tarjan's algorithm; components are emitted in reverse topological
  // order, so we reverse at the end.
  const int n = num_stmts_;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& e : edges_) {
    if (e.from != e.to)
      adj[static_cast<std::size_t>(e.from)].push_back(e.to);
  }

  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> out;
  int next_index = 0;

  std::function<void(int)> strongconnect = [&](int v) {
    index[static_cast<std::size_t>(v)] = next_index;
    low[static_cast<std::size_t>(v)] = next_index;
    ++next_index;
    stack.push_back(v);
    on_stack[static_cast<std::size_t>(v)] = true;
    for (int w : adj[static_cast<std::size_t>(v)]) {
      if (index[static_cast<std::size_t>(w)] < 0) {
        strongconnect(w);
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)], low[static_cast<std::size_t>(w)]);
      } else if (on_stack[static_cast<std::size_t>(w)]) {
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)], index[static_cast<std::size_t>(w)]);
      }
    }
    if (low[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
      std::vector<int> comp;
      for (;;) {
        const int w = stack.back();
        stack.pop_back();
        on_stack[static_cast<std::size_t>(w)] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      std::sort(comp.begin(), comp.end());
      out.push_back(std::move(comp));
    }
  };

  for (int v = 0; v < n; ++v) {
    if (index[static_cast<std::size_t>(v)] < 0) strongconnect(v);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Pdg::to_dot(const Loop& loop) const {
  std::ostringstream oss;
  oss << "digraph \"" << loop.name << "\" {\n";
  for (int i = 0; i < num_stmts_; ++i) {
    oss << "  s" << i << " [label=\""
        << loop.body[static_cast<std::size_t>(i)].label << "\"];\n";
  }
  for (const auto& e : edges_) {
    const char* kind = e.kind == DepKind::kFlow    ? "flow"
                       : e.kind == DepKind::kAnti  ? "anti"
                                                   : "output";
    oss << "  s" << e.from << " -> s" << e.to << " [label=\"" << kind << ":"
        << e.var << "\"" << (e.loop_carried ? ", style=dashed" : "") << "];\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace kop::cck
