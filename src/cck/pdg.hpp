// Program dependence graph construction over the symbolic access sets,
// with the OpenMP-metadata-aware pruning that gives CCK its edge over
// conventional automatic parallelization (§5.3).
#pragma once

#include <string>
#include <vector>

#include "cck/ir.hpp"

namespace kop::cck {

enum class DepKind { kFlow /*RAW*/, kAnti /*WAR*/, kOutput /*WAW*/ };

struct DepEdge {
  int from = 0;  // statement index in the loop body
  int to = 0;
  DepKind kind = DepKind::kFlow;
  bool loop_carried = false;
  std::string var;
};

class Pdg {
 public:
  /// Build the PDG of `loop`'s body.  When `use_omp_metadata` is set
  /// the OpenMP semantics prune edges: private/firstprivate/reduction
  /// *scalars* lose their loop-carried dependences, and a parallel-for
  /// assertion removes carried dependences the metadata can legalize.
  /// Carried dependences on *objects* listed private are kept and the
  /// object is recorded in unsupported_privatization() -- AutoMP cannot
  /// privatize objects (the paper's documented limitation).
  static Pdg build(const Function& fn, const Loop& loop, bool use_omp_metadata);

  int num_stmts() const { return num_stmts_; }
  const std::vector<DepEdge>& edges() const { return edges_; }

  bool has_loop_carried_dep() const;
  std::vector<std::string> carried_vars() const;
  const std::vector<std::string>& unsupported_privatization() const {
    return unsupported_privatization_;
  }

  /// Strongly connected components over *all* dependence edges,
  /// returned in a valid topological order of the condensation.
  std::vector<std::vector<int>> sccs() const;

  /// Graphviz dump (statement nodes, dependence edges; loop-carried
  /// edges dashed) for compiler debugging.
  std::string to_dot(const Loop& loop) const;

 private:
  int num_stmts_ = 0;
  std::vector<DepEdge> edges_;
  std::vector<std::string> unsupported_privatization_;
};

}  // namespace kop::cck
