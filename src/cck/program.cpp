#include "cck/program.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

namespace kop::cck {

hw::WorkBlock chunk_work(const Loop& loop, std::int64_t begin,
                         std::int64_t end, int lanes) {
  const ExecInfo& e = loop.exec;
  const auto iters = static_cast<double>(end - begin);
  // Average of the linear ramp over [begin, end):
  //   mult(i) = 1 - skew + 2*skew*i/trip
  double mult = 1.0;
  if (e.skew != 0.0 && loop.trip > 0) {
    const double mid =
        (static_cast<double>(begin) + static_cast<double>(end)) / 2.0;
    mult = 1.0 - e.skew + 2.0 * e.skew * mid / static_cast<double>(loop.trip);
  }
  hw::WorkBlock b;
  b.cpu_ns = static_cast<sim::Time>(e.per_iter_ns * iters * mult);
  b.mem_fraction = e.mem_fraction;
  b.bytes_touched = e.bytes_per_iter * static_cast<std::uint64_t>(end - begin);
  b.pattern = e.pattern;
  b.region = e.region;
  if (e.region != nullptr && loop.trip > 0) {
    const double region_bytes = static_cast<double>(e.region->bytes());
    const double n = static_cast<double>(std::max(1, lanes));
    double ws = region_bytes;
    switch (e.pattern) {
      case hw::AccessPattern::kStreaming:
        ws = region_bytes / n;
        break;
      case hw::AccessPattern::kRandom:
        ws = region_bytes / std::sqrt(n);
        break;
      case hw::AccessPattern::kBlocked:
        ws = std::min(region_bytes, 16.0 * 1024 * 1024);
        break;
    }
    b.working_set_bytes = static_cast<std::uint64_t>(ws);
  }
  return b;
}

int chunk_partition(const Loop& loop, std::int64_t begin, std::int64_t end,
                    int nparts) {
  if (loop.trip <= 0) return 0;
  const std::int64_t mid = (begin + end) / 2;
  const auto part = static_cast<int>(mid * nparts / loop.trip);
  return std::clamp(part, 0, nparts - 1);
}

void ProgramRunner::run_parallel_loop(const CompiledProgram& program,
                                      const Phase& phase,
                                      double parallel_fraction) {
  const Loop& loop = phase.loop;
  const std::int64_t chunk = std::max<std::int64_t>(1, phase.plan.chunk);
  const std::int64_t trip = loop.trip;
  if (trip <= 0) return;
  const auto n_chunks = static_cast<int>((trip + chunk - 1) / chunk);

  // Generated join code: a counter the landing waits on.  The runtime
  // itself is unaware of the join (§5: "the runtime is unaware of this
  // join").
  virgil::CountdownLatch latch(*os_, n_chunks);
  osal::Os* os = os_;
  const double live_in_ns = program.options.live_in_ns;
  const int nparts = 64;
  const int lanes = virgil_->width();

  for (std::int64_t b = 0; b < trip; b += chunk) {
    const std::int64_t e = std::min(trip, b + chunk);
    virgil_->submit([os, &loop, &latch, b, e, live_in_ns, parallel_fraction,
                     nparts, lanes]() {
      // Live-in unmarshalling emitted at task entry.
      os->compute_ns(static_cast<sim::Time>(live_in_ns));
      hw::WorkBlock work = chunk_work(loop, b, e, lanes);
      if (parallel_fraction < 1.0) {
        work.cpu_ns = static_cast<sim::Time>(
            static_cast<double>(work.cpu_ns) * parallel_fraction);
        work.bytes_touched = static_cast<std::uint64_t>(
            static_cast<double>(work.bytes_touched) * parallel_fraction);
      }
      const int part = chunk_partition(loop, b, e, nparts);
      const int zone = os->resolve_data_zone(work.region, part, nparts);
      os->compute(work, zone);
      latch.count_down();
    });
  }
  latch.wait();
  // Landing task: reduce the live-out array (runs on the joiner).
  os_->compute_ns(static_cast<sim::Time>(program.options.live_out_ns *
                                         static_cast<double>(n_chunks)));

  if (parallel_fraction < 1.0) {
    // Sequential segment of a HELIX/DSWP loop: the serialized portion
    // executes at original program order on the joining thread.
    hw::WorkBlock serial = chunk_work(loop, 0, trip, /*lanes=*/1);
    serial.cpu_ns = static_cast<sim::Time>(static_cast<double>(serial.cpu_ns) *
                                           (1.0 - parallel_fraction));
    serial.bytes_touched = static_cast<std::uint64_t>(
        static_cast<double>(serial.bytes_touched) * (1.0 - parallel_fraction));
    os_->compute(serial);
  }
}

void ProgramRunner::run_sequential_loop(const Phase& phase) {
  const Loop& loop = phase.loop;
  // Charged in slices so fault accounting and the TLB model see the
  // same access stream a real sequential execution would produce.
  const std::int64_t slice = std::max<std::int64_t>(1, loop.trip / 16);
  for (std::int64_t b = 0; b < loop.trip; b += slice) {
    const std::int64_t e = std::min(loop.trip, b + slice);
    hw::WorkBlock work = chunk_work(loop, b, e, /*lanes=*/1);
    os_->compute(work);
  }
}

sim::Time ProgramRunner::run(const CompiledProgram& program) {
  const sim::Time start = os_->engine().now();
  for (const auto& phase : program.phases) {
    switch (phase.kind) {
      case Phase::Kind::kSerial:
        if (phase.serial_ns > 0)
          os_->compute_ns(static_cast<sim::Time>(phase.serial_ns));
        break;
      case Phase::Kind::kParallelLoop:
        run_parallel_loop(program, phase, 1.0);
        break;
      case Phase::Kind::kPipelineLoop:
        run_parallel_loop(program, phase, phase.plan.parallel_fraction);
        break;
      case Phase::Kind::kSequentialLoop:
        run_sequential_loop(phase);
        break;
    }
  }
  return os_->engine().now() - start;
}

}  // namespace kop::cck
