// Execution of a CompiledProgram over a VIRGIL runtime: the behaviour
// of the compiler-generated task submission, join (landing tasks), and
// sequential-segment code (§5.3-5.4).
#pragma once

#include "cck/codegen.hpp"
#include "osal/osal.hpp"
#include "virgil/virgil.hpp"

namespace kop::cck {

/// Cost of one chunk of a loop's iteration space [begin, end):
/// integrates the skew ramp and fills the translation/fault fields.
///
/// `lanes` is the execution width the loop runs at; the per-thread TLB
/// footprint follows from it and the access pattern:
///   streaming -> region/lanes   (contiguous slice)
///   random    -> region/sqrt(lanes)  (strided sweeps touch far more
///                pages than their byte share; z-dimension solves)
///   blocked   -> small constant (tiled kernels)
/// It deliberately does NOT depend on the chunk length: processing a
/// strided sweep in smaller chunks does not shrink its page footprint.
hw::WorkBlock chunk_work(const Loop& loop, std::int64_t begin,
                         std::int64_t end, int lanes = 1);

/// Which first-touch partition (of kParts) a chunk maps to.
int chunk_partition(const Loop& loop, std::int64_t begin, std::int64_t end,
                    int nparts);

class ProgramRunner {
 public:
  ProgramRunner(osal::Os& os, virgil::Virgil& virgil)
      : os_(&os), virgil_(&virgil) {}

  /// Run the program from the calling sim thread; returns elapsed
  /// virtual time.
  sim::Time run(const CompiledProgram& program);

 private:
  void run_parallel_loop(const CompiledProgram& program, const Phase& phase,
                         double parallel_fraction);
  void run_sequential_loop(const Phase& phase);

  osal::Os* os_;
  virgil::Virgil* virgil_;
};

}  // namespace kop::cck
