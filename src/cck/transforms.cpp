#include "cck/transforms.hpp"

#include <set>
#include <stdexcept>

namespace kop::cck {

namespace {

void inline_into(const Module& module, const Function& fn,
                 std::vector<Item>& out, std::set<std::string>& active) {
  for (const auto& item : fn.items) {
    if (item.kind != Item::Kind::kCall) {
      out.push_back(item);
      continue;
    }
    auto it = module.functions.find(item.callee);
    if (it == module.functions.end())
      throw std::logic_error("inline: unknown callee " + item.callee);
    if (!active.insert(item.callee).second)
      throw std::logic_error("inline: recursion through " + item.callee);
    inline_into(module, it->second, out, active);
    active.erase(item.callee);
  }
}

}  // namespace

Function inline_calls(const Module& module) {
  const Function& main_fn = module.entry();
  Function out;
  out.name = main_fn.name;
  // Merge symbol tables (callee-local symbols become visible).
  for (const auto& [name, fn] : module.functions) {
    for (const auto& [vn, var] : fn.vars) out.vars[vn] = var;
  }
  std::set<std::string> active{main_fn.name};
  inline_into(module, main_fn, out.items, active);
  return out;
}

std::vector<Loop> distribute_loop(const Function& fn, const Loop& loop,
                                  bool use_omp_metadata) {
  if (loop.body.size() <= 1) return {loop};
  const Pdg pdg = Pdg::build(fn, loop, use_omp_metadata);
  const auto sccs = pdg.sccs();
  if (sccs.size() <= 1) return {loop};

  const double total_cost = loop.est_iter_cost_ns();
  std::vector<Loop> out;
  out.reserve(sccs.size());
  int part = 0;
  for (const auto& comp : sccs) {
    Loop piece;
    piece.name = loop.name + ".d" + std::to_string(part++);
    piece.trip = loop.trip;
    piece.omp = loop.omp;
    piece.exec = loop.exec;
    double piece_cost = 0.0;
    for (int idx : comp) {
      piece.body.push_back(loop.body[static_cast<std::size_t>(idx)]);
      piece_cost += loop.body[static_cast<std::size_t>(idx)].est_cost_ns;
    }
    // Cost-proportional share of the runtime payload.
    const double share = total_cost > 0 ? piece_cost / total_cost : 1.0;
    piece.exec.per_iter_ns = loop.exec.per_iter_ns * share;
    piece.exec.bytes_per_iter = static_cast<std::uint64_t>(
        static_cast<double>(loop.exec.bytes_per_iter) * share);
    out.push_back(std::move(piece));
  }
  return out;
}

bool can_fuse(const Function& fn, const Loop& a, const Loop& b,
              bool use_omp_metadata) {
  if (a.trip != b.trip) return false;
  if (a.exec.region != b.exec.region) return false;
  const Pdg pa = Pdg::build(fn, a, use_omp_metadata);
  const Pdg pb = Pdg::build(fn, b, use_omp_metadata);
  if (pa.has_loop_carried_dep() || pb.has_loop_carried_dep()) return false;
  // Cross-loop conflicts must be elementwise for iteration-aligned
  // fusion to preserve order.
  for (const auto& sa : a.body) {
    for (const auto& aa : sa.accesses) {
      for (const auto& sb : b.body) {
        for (const auto& ab : sb.accesses) {
          if (aa.var != ab.var) continue;
          if (!aa.write && !ab.write) continue;
          if (!(aa.per_iteration && ab.per_iteration)) return false;
          if (aa.carried || ab.carried) return false;
        }
      }
    }
  }
  return true;
}

std::vector<Loop> fuse_loops(const Function& fn, std::vector<Loop> loops,
                             bool use_omp_metadata) {
  std::vector<Loop> out;
  for (auto& loop : loops) {
    if (!out.empty() && can_fuse(fn, out.back(), loop, use_omp_metadata)) {
      Loop& acc = out.back();
      acc.name += "+" + loop.name;
      for (auto& s : loop.body) acc.body.push_back(std::move(s));
      acc.exec.per_iter_ns += loop.exec.per_iter_ns;
      acc.exec.bytes_per_iter += loop.exec.bytes_per_iter;
      continue;
    }
    out.push_back(std::move(loop));
  }
  return out;
}

}  // namespace kop::cck
