// Middle-end code transformations that make loops amenable to task
// generation (§5.3): function inlining, loop distribution (split a
// body along its dependence SCCs so the parallel part separates from
// the sequential part), and loop fusion (merge adjacent DOALL-able
// loops back together to cut task/join overhead).
#pragma once

#include <vector>

#include "cck/ir.hpp"
#include "cck/pdg.hpp"

namespace kop::cck {

/// Inline every call in `main` (transitively).  Throws on unknown
/// callees or recursion.
Function inline_calls(const Module& module);

/// Distribute one loop along its SCCs.  Returns the resulting loops in
/// program order; each keeps the original OmpMeta and a cost-
/// proportional share of the execution payload.  Loops with a single
/// SCC come back unchanged.
std::vector<Loop> distribute_loop(const Function& fn, const Loop& loop,
                                  bool use_omp_metadata);

/// True if the two (adjacent, same-trip) loops can legally fuse:
/// neither has a loop-carried dependence and all cross-loop
/// dependences are elementwise.
bool can_fuse(const Function& fn, const Loop& a, const Loop& b,
              bool use_omp_metadata);

/// Fuse runs of fusable adjacent loops.  Inverse of over-eager
/// distribution; net effect of distribute+fuse is "sequential SCCs
/// split out, parallel statements coalesced".
std::vector<Loop> fuse_loops(const Function& fn, std::vector<Loop> loops,
                             bool use_omp_metadata);

}  // namespace kop::cck
