#include "coord/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace kop::coord {

namespace {

// MSG_NOSIGNAL so a daemon that exited (e.g. --exit-when-drained won
// the race against our BYE) surfaces as an exception, not SIGPIPE.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::int64_t to_ms(const std::string& s) {
  return static_cast<std::int64_t>(std::strtoll(s.c_str(), nullptr, 10));
}

/// "key=value" token lookup in a HELLO reply.
std::int64_t field_ms(const std::vector<std::string>& tokens,
                      const std::string& key) {
  for (const auto& t : tokens) {
    if (t.rfind(key + "=", 0) == 0) return to_ms(t.substr(key.size() + 1));
  }
  return 0;
}

}  // namespace

Client::Client(std::string address) : path_(std::move(address)) {
  Address addr;
  std::string err;
  if (!parse_address(path_, &addr, &err)) {
    throw std::runtime_error("coord: " + err);
  }
  if (addr.kind == Address::Kind::kUnix) {
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sun.sun_path)) {
      throw std::runtime_error("coord: bad socket path '" + path_ + "'");
    }
    std::memcpy(sun.sun_path, addr.path.c_str(), addr.path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error(std::string("coord: socket: ") +
                               std::strerror(errno));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&sun),
                  sizeof(sun)) != 0) {
      const std::string cerr = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("coord: cannot connect to " + path_ + ": " +
                               cerr);
    }
    return;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(addr.port);
  const int rc = ::getaddrinfo(addr.host.c_str(), service.c_str(), &hints,
                               &res);
  if (rc != 0) {
    throw std::runtime_error("coord: cannot resolve " + addr.host + ": " +
                             ::gai_strerror(rc));
  }
  std::string cerr = "no address";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd_ < 0) {
      cerr = std::strerror(errno);
      continue;
    }
    if (::connect(fd_, ai->ai_addr, ai->ai_addrlen) == 0) break;
    cerr = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
  }
  ::freeaddrinfo(res);
  if (fd_ < 0) {
    throw std::runtime_error("coord: cannot connect to " + path_ + ": " +
                             cerr);
  }
  // Request lines are tiny; don't let Nagle add 40ms to every lease.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::read_line_locked() {
  for (;;) {
    const std::size_t nl = rxbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rxbuf_.substr(0, nl);
      rxbuf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("coord: connection to " + path_ +
                               " closed mid-response");
    }
    rxbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::read_bytes_locked(std::size_t n) {
  while (rxbuf_.size() < n) {
    char chunk[4096];
    const ssize_t r = ::read(fd_, chunk, sizeof(chunk));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) {
      throw std::runtime_error("coord: connection to " + path_ +
                               " closed mid-body");
    }
    rxbuf_.append(chunk, static_cast<std::size_t>(r));
  }
  std::string out = rxbuf_.substr(0, n);
  rxbuf_.erase(0, n);
  return out;
}

std::string Client::request(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!write_all(fd_, line + "\n")) {
    throw std::runtime_error("coord: write to " + path_ + " failed");
  }
  ++round_trips_;
  std::string response = read_line_locked();
  if (response.rfind("HIT ", 0) == 0) {
    const std::size_t n = static_cast<std::size_t>(
        std::strtoull(response.c_str() + 4, nullptr, 10));
    response += "\n" + read_bytes_locked(n);
    // The server terminates the whole HIT frame with one '\n'.
    (void)read_line_locked();
  }
  return response;
}

Client::HelloReply Client::hello(const std::string& worker) {
  const std::string r = request("HELLO " + worker);
  const auto t = split_tokens(r);
  if (t.size() < 5 || t[0] != "OK") {
    throw std::runtime_error("coord: HELLO rejected: " + r);
  }
  HelloReply out;
  out.incarnation = static_cast<std::uint64_t>(to_ms(t[1]));
  out.ttl_ms = field_ms(t, "ttl");
  out.suspect_ms = field_ms(t, "suspect");
  out.dead_ms = field_ms(t, "dead");
  return out;
}

namespace {

Client::Grant parse_grant(const std::string& r) {
  Client::Grant g;
  const auto t = split_tokens(r);
  if (t.empty()) {
    g.status = "ERR empty";
    return g;
  }
  if (t[0] == "GRANT" && t.size() >= 5 && parse_hex16(t[1], &g.point) &&
      parse_hex16(t[2], &g.lease_id)) {
    g.granted = true;
    g.status = "GRANT";
    g.ttl_ms = to_ms(t[3]);
    g.payload = t[4] == "-" ? "" : t[4];
    return g;
  }
  g.status = t[0];
  return g;
}

}  // namespace

Client::Grant Client::next(const std::string& worker) {
  return parse_grant(request("NEXT " + worker));
}

Client::Grant Client::lease(const std::string& worker, std::uint64_t hash,
                            const std::string& entry) {
  std::string line = "LEASE " + worker + " " + to_hex16(hash);
  if (!entry.empty()) line += " " + entry;
  return parse_grant(request(line));
}

bool Client::renew(const std::string& worker, std::uint64_t lease_id) {
  const std::string r = request("RENEW " + worker + " " + to_hex16(lease_id));
  return r.rfind("OK", 0) == 0;
}

bool Client::done(const std::string& worker, std::uint64_t lease_id,
                  std::uint64_t hash) {
  const std::string r = request("DONE " + worker + " " + to_hex16(lease_id) +
                                " " + to_hex16(hash));
  return r == "OK" || r == "OK-STALE";
}

void Client::bye(const std::string& worker) { (void)request("BYE " + worker); }

Client::GetReply Client::get(std::uint64_t hash) {
  const std::string r = request("GET " + to_hex16(hash));
  GetReply out;
  if (r.rfind("HIT ", 0) == 0) {
    out.status = "HIT";
    const std::size_t body = r.find('\n');
    out.doc = body == std::string::npos ? "" : r.substr(body + 1);
    return out;
  }
  const auto t = split_tokens(r);
  out.status = t.empty() ? "ERR" : t[0];
  if (t.size() > 1) out.detail = t[1];
  return out;
}

Client::GetReply Client::read_get_reply_locked() {
  const std::string header = read_line_locked();
  GetReply out;
  if (header.rfind("HIT ", 0) == 0) {
    out.status = "HIT";
    const std::size_t n = static_cast<std::size_t>(
        std::strtoull(header.c_str() + 4, nullptr, 10));
    out.doc = read_bytes_locked(n);
    // One '\n' always follows a HIT body: the batch separator, or the
    // frame terminator for the final sub-response.
    (void)read_line_locked();
    return out;
  }
  const auto t = split_tokens(header);
  out.status = t.empty() ? "ERR" : t[0];
  if (t.size() > 1) out.detail = t[1];
  return out;
}

std::vector<Client::GetReply> Client::mget(
    const std::vector<std::uint64_t>& hashes) {
  std::vector<GetReply> out;
  out.reserve(hashes.size());
  std::size_t start = 0;
  while (start < hashes.size()) {
    const std::size_t count =
        std::min(kMgetMaxHashes, hashes.size() - start);
    std::string line = "MGET";
    for (std::size_t i = 0; i < count; ++i) {
      line += " " + to_hex16(hashes[start + i]);
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!write_all(fd_, line + "\n")) {
      throw std::runtime_error("coord: write to " + path_ + " failed");
    }
    ++round_trips_;
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(read_get_reply_locked());
    }
    start += count;
  }
  return out;
}

std::string Client::stats() { return request("STATS"); }

void Client::shutdown() { (void)request("SHUTDOWN"); }

std::uint64_t Client::round_trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return round_trips_;
}

}  // namespace kop::coord
