// Client side of the kop-sweep line protocol: one blocking connection,
// request/response framing, and typed wrappers for the worker verbs.
//
// The constructor takes a coordinator address in either form -- a unix
// socket path or host:port (proto.hpp parse_address) -- so every flag
// that accepts `--coord <socket>` transparently accepts `--coord
// host:port` too.
//
// Thread-safe: a JobRunner pool and its heartbeat thread share one
// Client, so request() serializes on an internal mutex (the protocol is
// strictly one response per request line, making this sound).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "coord/proto.hpp"

namespace kop::coord {

class Client {
 public:
  /// Connects to a unix socket path or host:port; throws
  /// std::runtime_error when the daemon is not there.
  explicit Client(std::string address);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line, return the response line (without the
  /// terminator).  For HIT responses the body is appended after a
  /// newline, exactly as the server framed it.  Throws on I/O errors.
  std::string request(const std::string& line);

  // --- typed wrappers --------------------------------------------------

  struct HelloReply {
    std::uint64_t incarnation = 0;
    std::int64_t ttl_ms = 0;
    std::int64_t suspect_ms = 0;
    std::int64_t dead_ms = 0;
  };
  HelloReply hello(const std::string& worker);

  struct Grant {
    bool granted = false;
    /// Response status when not granted: IDLE/DRAINED/TAKEN/COMPLETE/...
    std::string status;
    std::uint64_t point = 0;
    std::uint64_t lease_id = 0;
    std::int64_t ttl_ms = 0;
    std::string payload;  // "-" normalized to empty
  };
  Grant next(const std::string& worker);
  Grant lease(const std::string& worker, std::uint64_t hash,
              const std::string& entry = "");

  /// True while the lease is still live (renewal succeeded).
  bool renew(const std::string& worker, std::uint64_t lease_id);
  /// True when the completion was recorded (OK or OK-STALE).
  bool done(const std::string& worker, std::uint64_t lease_id,
            std::uint64_t hash);
  void bye(const std::string& worker);

  struct GetReply {
    std::string status;  // HIT / COMPLETE / PENDING / UNKNOWN
    std::string detail;  // PENDING: queued|leased
    std::string doc;     // HIT: the entry document
  };
  GetReply get(std::uint64_t hash);

  /// Batched GET: every hash answered in request order, one round trip
  /// per kMgetMaxHashes-sized wire batch instead of one per hash.
  std::vector<GetReply> mget(const std::vector<std::uint64_t>& hashes);

  std::string stats();
  void shutdown();

  const std::string& socket_path() const { return path_; }

  /// Request lines sent so far (an MGET batch counts once).  Tests pin
  /// the ~n× round-trip saving of mget() against this.
  std::uint64_t round_trips() const;

 private:
  std::string read_line_locked();
  std::string read_bytes_locked(std::size_t n);
  /// Read one GET-shaped sub-response (header line, optional counted
  /// body + terminator line).
  GetReply read_get_reply_locked();

  std::string path_;
  int fd_ = -1;
  std::string rxbuf_;
  std::uint64_t round_trips_ = 0;
  mutable std::mutex mu_;
};

}  // namespace kop::coord
