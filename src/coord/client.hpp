// Client side of the kop-sweep line protocol: one blocking connection,
// request/response framing, and typed wrappers for the worker verbs.
//
// Thread-safe: a JobRunner pool and its heartbeat thread share one
// Client, so request() serializes on an internal mutex (the protocol is
// strictly one response per request line, making this sound).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "coord/proto.hpp"

namespace kop::coord {

class Client {
 public:
  /// Connects; throws std::runtime_error when the daemon is not there.
  explicit Client(std::string socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line, return the response line (without the
  /// terminator).  For HIT responses the body is appended after a
  /// newline, exactly as the server framed it.  Throws on I/O errors.
  std::string request(const std::string& line);

  // --- typed wrappers --------------------------------------------------

  struct HelloReply {
    std::uint64_t incarnation = 0;
    std::int64_t ttl_ms = 0;
    std::int64_t suspect_ms = 0;
    std::int64_t dead_ms = 0;
  };
  HelloReply hello(const std::string& worker);

  struct Grant {
    bool granted = false;
    /// Response status when not granted: IDLE/DRAINED/TAKEN/COMPLETE/...
    std::string status;
    std::uint64_t point = 0;
    std::uint64_t lease_id = 0;
    std::int64_t ttl_ms = 0;
    std::string payload;  // "-" normalized to empty
  };
  Grant next(const std::string& worker);
  Grant lease(const std::string& worker, std::uint64_t hash,
              const std::string& entry = "");

  /// True while the lease is still live (renewal succeeded).
  bool renew(const std::string& worker, std::uint64_t lease_id);
  /// True when the completion was recorded (OK or OK-STALE).
  bool done(const std::string& worker, std::uint64_t lease_id,
            std::uint64_t hash);
  void bye(const std::string& worker);

  struct GetReply {
    std::string status;  // HIT / PENDING / UNKNOWN
    std::string detail;  // PENDING: queued|leased
    std::string doc;     // HIT: the entry document
  };
  GetReply get(std::uint64_t hash);

  std::string stats();
  void shutdown();

  const std::string& socket_path() const { return path_; }

 private:
  std::string read_line_locked();
  std::string read_bytes_locked(std::size_t n);

  std::string path_;
  int fd_ = -1;
  std::string rxbuf_;
  std::mutex mu_;
};

}  // namespace kop::coord
