#include "coord/coordinator.hpp"

#include "telemetry/json.hpp"

namespace kop::coord {

Coordinator::Coordinator(CoordinatorOptions opt, CacheProbe probe)
    : opt_(opt),
      probe_(std::move(probe)),
      table_(opt.lease_ttl_ms),
      liveness_(opt.liveness) {}

void Coordinator::add_point(PointInfo info) {
  JournalRecord rec;
  rec.type = JournalRecord::Type::kRegister;
  rec.hash = info.hash;
  rec.entry = info.entry;
  rec.payload = info.payload;
  rec.label = info.label;
  if (table_.add_point(std::move(info))) {
    counters_.add("points_registered");
    if (journal_ != nullptr) journal_->append(rec);
  }
}

std::size_t Coordinator::sync_with_cache() {
  if (!probe_) return 0;
  std::size_t completed = 0;
  for (std::uint64_t hash : table_.point_hashes()) {
    if (table_.point_state(hash) == PointState::kComplete) continue;
    std::string doc;
    if (probe_(hash, &doc)) {
      complete_point(hash);
      counters_.add("points_warm_from_cache");
      ++completed;
    }
  }
  return completed;
}

void Coordinator::tick(std::int64_t now_ms) {
  for (const std::string& worker : liveness_.advance(now_ms)) {
    counters_.add("workers_died");
    const auto reclaimed = table_.reclaim_worker(worker);
    counters_.add("leases_reclaimed_dead", reclaimed.size());
    counters_.add("points_requeued", reclaimed.size());
    journal_reclaims(reclaimed);
  }
  const auto expired = table_.reclaim_expired(now_ms);
  counters_.add("leases_expired", expired.size());
  counters_.add("points_requeued", expired.size());
  journal_reclaims(expired);
  if (journal_ != nullptr) {
    // Group commit: one write+fsync per poll round covers every record
    // the round produced.  An unflushed GRANT replays as still-queued
    // (the eventual DONE resolves OK-STALE); an unflushed DONE re-runs
    // one deterministic point -- both safe, so durability can batch.
    if (journal_->appended_since_compact() >= opt_.journal_compact_after) {
      journal_->compact(snapshot_records());
      counters_.add("journal_compactions");
    } else {
      journal_->commit();
    }
  }
}

void Coordinator::attach_journal(Journal* journal) { journal_ = journal; }

void Coordinator::journal_grant(const Lease& lease) {
  if (journal_ == nullptr) return;
  JournalRecord rec;
  rec.type = JournalRecord::Type::kGrant;
  rec.lease_id = lease.id;
  rec.hash = lease.point;
  rec.worker = lease.worker;
  rec.expires_ms = lease.expires_ms;
  journal_->append(rec);
}

void Coordinator::journal_done(std::uint64_t hash) {
  if (journal_ == nullptr) return;
  JournalRecord rec;
  rec.type = JournalRecord::Type::kDone;
  rec.hash = hash;
  journal_->append(rec);
}

void Coordinator::journal_reclaims(const std::vector<std::uint64_t>& hashes) {
  if (journal_ == nullptr) return;
  for (std::uint64_t hash : hashes) {
    JournalRecord rec;
    rec.type = JournalRecord::Type::kReclaim;
    rec.hash = hash;
    journal_->append(rec);
  }
}

void Coordinator::complete_point(std::uint64_t hash) {
  if (table_.point_info(hash) == nullptr) return;
  if (table_.point_state(hash) == PointState::kComplete) return;
  table_.mark_complete(hash);
  journal_done(hash);
}

bool Coordinator::apply_record(const JournalRecord& rec) {
  switch (rec.type) {
    case JournalRecord::Type::kRegister: {
      PointInfo info;
      info.hash = rec.hash;
      info.entry = rec.entry;
      info.payload = rec.payload;
      info.label = rec.label;
      table_.add_point(std::move(info));
      return true;
    }
    case JournalRecord::Type::kGrant:
      return table_.restore_grant(rec.lease_id, rec.hash, rec.worker,
                                  rec.expires_ms);
    case JournalRecord::Type::kRenew:
      return table_.restore_renew(rec.lease_id, rec.expires_ms);
    case JournalRecord::Type::kDone:
      return table_.mark_complete(rec.hash);
    case JournalRecord::Type::kReclaim:
      return table_.reclaim_point(rec.hash);
    case JournalRecord::Type::kSeq:
      table_.restore_next_lease_id(rec.lease_id);
      return true;
  }
  return false;
}

bool Coordinator::recover_from_journal(const std::string& path,
                                       ReplayStats* stats,
                                       std::string* error) {
  std::size_t index = 0;
  std::size_t bad_index = 0;
  bool applied_ok = true;
  const bool read_ok = replay_journal(
      path,
      [&](const JournalRecord& rec) {
        ++index;
        if (applied_ok && !apply_record(rec)) {
          applied_ok = false;
          bad_index = index;
        }
      },
      stats, error);
  if (!read_ok) return false;
  if (!applied_ok) {
    if (error != nullptr) {
      *error = path + ": record " + std::to_string(bad_index) +
               " does not apply to the replayed table (journal out of "
               "sequence)";
    }
    return false;
  }
  counters_.add("journal_records_replayed", index);
  return true;
}

std::size_t Coordinator::requeue_live_leases() {
  const auto requeued = table_.reclaim_all();
  counters_.add("journal_leases_requeued", requeued.size());
  counters_.add("points_requeued", requeued.size());
  journal_reclaims(requeued);
  if (journal_ != nullptr) journal_->commit();
  return requeued.size();
}

std::vector<JournalRecord> Coordinator::snapshot_records() const {
  std::vector<JournalRecord> out;
  JournalRecord seq;
  seq.type = JournalRecord::Type::kSeq;
  seq.lease_id = table_.next_lease_id();
  out.push_back(seq);
  auto push_register = [&](std::uint64_t hash) {
    const PointInfo* info = table_.point_info(hash);
    JournalRecord rec;
    rec.type = JournalRecord::Type::kRegister;
    rec.hash = hash;
    rec.entry = info->entry;
    rec.payload = info->payload;
    rec.label = info->label;
    out.push_back(rec);
  };
  // R records replay back into queue insertions, so queued points go
  // first *in queue order*; leased/complete points follow and are
  // removed from the replayed queue by their G/D records.
  for (std::uint64_t hash : table_.queued_hashes()) push_register(hash);
  for (std::uint64_t hash : table_.point_hashes()) {
    if (table_.point_state(hash) != PointState::kQueued) push_register(hash);
  }
  for (const Lease& lease : table_.live_leases()) {
    JournalRecord rec;
    rec.type = JournalRecord::Type::kGrant;
    rec.lease_id = lease.id;
    rec.hash = lease.point;
    rec.worker = lease.worker;
    rec.expires_ms = lease.expires_ms;
    out.push_back(rec);
  }
  for (std::uint64_t hash : table_.point_hashes()) {
    if (table_.point_state(hash) == PointState::kComplete) {
      JournalRecord rec;
      rec.type = JournalRecord::Type::kDone;
      rec.hash = hash;
      out.push_back(rec);
    }
  }
  return out;
}

bool Coordinator::admit(const Request& r, std::int64_t now_ms,
                        std::string* reply) {
  switch (liveness_.heartbeat(r.worker, now_ms)) {
    case WorkerState::kUnknown:
      *reply = "NOHELLO";
      return false;
    case WorkerState::kDead:
      // This incarnation's leases were reclaimed when it was declared
      // dead; everything except DONE must restart with a fresh HELLO.
      *reply = "DEAD";
      return false;
    case WorkerState::kAlive:
    case WorkerState::kSuspect:
      return true;
  }
  return true;
}

std::string Coordinator::on_hello(const Request& r, std::int64_t now_ms) {
  const std::uint64_t incarnation = liveness_.hello(r.worker, now_ms);
  counters_.add("hellos");
  return "OK " + std::to_string(incarnation) +
         " ttl=" + std::to_string(table_.ttl_ms()) +
         " suspect=" + std::to_string(liveness_.options().suspect_after_ms) +
         " dead=" + std::to_string(liveness_.options().dead_after_ms);
}

std::string Coordinator::on_next(const Request& r, std::int64_t now_ms) {
  std::string reply;
  if (!admit(r, now_ms, &reply)) return reply;
  Lease lease;
  switch (table_.grant_next(r.worker, now_ms, &lease)) {
    case GrantOutcome::kGranted: {
      counters_.add("leases_granted");
      journal_grant(lease);
      const PointInfo* info = table_.point_info(lease.point);
      const std::string payload =
          info != nullptr && !info->payload.empty() ? info->payload : "-";
      return "GRANT " + to_hex16(lease.point) + " " + to_hex16(lease.id) +
             " " + std::to_string(table_.ttl_ms()) + " " + payload;
    }
    case GrantOutcome::kComplete:
      return "DRAINED";
    default:
      return "IDLE " + std::to_string(table_.queued()) + " " +
             std::to_string(table_.leased());
  }
}

std::string Coordinator::on_lease(const Request& r, std::int64_t now_ms) {
  std::string reply;
  if (!admit(r, now_ms, &reply)) return reply;
  if (table_.point_info(r.hash) == nullptr) {
    if (!opt_.accept_unknown_points) return "UNKNOWN";
    PointInfo info;
    info.hash = r.hash;
    info.entry = r.entry;
    add_point(std::move(info));
  }
  Lease lease;
  switch (table_.grant(r.hash, r.worker, now_ms, &lease)) {
    case GrantOutcome::kGranted:
      counters_.add("leases_granted");
      journal_grant(lease);
      return "GRANT " + to_hex16(r.hash) + " " + to_hex16(lease.id) + " " +
             std::to_string(table_.ttl_ms()) + " -";
    case GrantOutcome::kTaken:
      counters_.add("lease_conflicts");
      return "TAKEN";
    case GrantOutcome::kComplete:
      return "COMPLETE";
    default:
      return "UNKNOWN";
  }
}

std::string Coordinator::on_renew(const Request& r, std::int64_t now_ms) {
  std::string reply;
  if (!admit(r, now_ms, &reply)) return reply;
  switch (table_.renew(r.lease_id, now_ms)) {
    case RenewOutcome::kOk: {
      counters_.add("leases_renewed");
      if (journal_ != nullptr) {
        JournalRecord rec;
        rec.type = JournalRecord::Type::kRenew;
        rec.lease_id = r.lease_id;
        rec.expires_ms = now_ms + table_.ttl_ms();
        journal_->append(rec);
      }
      return "OK " + std::to_string(table_.ttl_ms());
    }
    case RenewOutcome::kExpired:
      counters_.add("renewals_lost");
      return "EXPIRED";
    default:
      return "UNKNOWN";
  }
}

std::string Coordinator::on_done(const Request& r, std::int64_t now_ms) {
  // Deliberately no admit() gate: a Suspect or even Dead worker
  // reporting a finished point is still reporting the truth (the entry
  // is on disk, content-addressed).  Refresh liveness only if the
  // incarnation is not dead.
  liveness_.heartbeat(r.worker, now_ms);
  // The journal records completion by *point*; grab the lease's
  // authoritative point hash before complete() erases the lease.
  const Lease* live = table_.lease_by_id(r.lease_id);
  const std::uint64_t lease_point = live != nullptr ? live->point : 0;
  switch (table_.complete(r.lease_id)) {
    case CompleteOutcome::kOk:
      counters_.add("completions");
      journal_done(lease_point);
      return "OK";
    case CompleteOutcome::kUnknown:
      return "UNKNOWN";
    default:
      break;
  }
  // The lease is gone (expired + reclaimed, maybe re-granted).  Resolve
  // by point: an incomplete point still gets its completion -- dropping
  // a finished, deterministic, content-addressed result would only
  // force a redundant re-run by whoever holds the re-granted lease.
  if (table_.point_info(r.hash) == nullptr) return "UNKNOWN";
  if (table_.point_state(r.hash) == PointState::kComplete) {
    counters_.add("completions_dup");
    return "DUP";
  }
  complete_point(r.hash);
  counters_.add("completions");
  counters_.add("completions_stale_lease");
  return "OK-STALE";
}

std::string Coordinator::serve_one(std::uint64_t hash) {
  if (probe_) {
    std::string doc;
    if (probe_(hash, &doc)) {
      counters_.add("serve_cache_hits");
      // The probe hit is also ground truth for dispatch bookkeeping.
      complete_point(hash);
      return "HIT " + std::to_string(doc.size()) + "\n" + doc;
    }
  }
  counters_.add("serve_cache_misses");
  if (table_.point_info(hash) == nullptr) {
    counters_.add("serve_unknown");
    return "UNKNOWN";
  }
  const PointState state = table_.point_state(hash);
  // Complete but not servable from here (no cache attached, or the
  // entry lives in a shard this daemon cannot see): distinct from
  // PENDING so a prefetching client does not wait on it.
  if (state == PointState::kComplete) return "COMPLETE";
  return std::string("PENDING ") +
         (state == PointState::kLeased ? "leased" : "queued");
}

std::string Coordinator::on_get(const Request& r, std::int64_t now_ms) {
  (void)now_ms;
  return serve_one(r.hash);
}

std::string Coordinator::on_mget(const Request& r, std::int64_t now_ms) {
  (void)now_ms;
  counters_.add("serve_mget_batches");
  counters_.add("serve_mget_hashes", r.hashes.size());
  // One sub-response per hash, '\n'-separated; each framed exactly like
  // a GET response so the client reads header / optional body / next.
  std::string out;
  for (std::size_t i = 0; i < r.hashes.size(); ++i) {
    if (i != 0) out += '\n';
    out += serve_one(r.hashes[i]);
  }
  return out;
}

std::string Coordinator::handle_line(const std::string& line,
                                     std::int64_t now_ms) {
  const Request r = parse_request(line);
  counters_.add("requests");
  switch (r.verb) {
    case Request::Verb::kHello:
      return on_hello(r, now_ms);
    case Request::Verb::kNext:
      return on_next(r, now_ms);
    case Request::Verb::kLease:
      return on_lease(r, now_ms);
    case Request::Verb::kRenew:
      return on_renew(r, now_ms);
    case Request::Verb::kDone:
      return on_done(r, now_ms);
    case Request::Verb::kPing: {
      std::string reply;
      if (!admit(r, now_ms, &reply)) return reply;
      return std::string("OK ") + worker_state_name(liveness_.state(r.worker));
    }
    case Request::Verb::kBye: {
      liveness_.heartbeat(r.worker, now_ms);
      const auto reclaimed = table_.reclaim_worker(r.worker);
      counters_.add("leases_released_bye", reclaimed.size());
      counters_.add("points_requeued", reclaimed.size());
      journal_reclaims(reclaimed);
      return "OK";
    }
    case Request::Verb::kGet:
      return on_get(r, now_ms);
    case Request::Verb::kMget:
      return on_mget(r, now_ms);
    case Request::Verb::kStats:
      return stats_json();
    case Request::Verb::kShutdown:
      shutdown_ = true;
      return "OK";
    case Request::Verb::kInvalid:
      break;
  }
  counters_.add("requests_invalid");
  return "ERR " + r.error;
}

std::string Coordinator::stats_json() const {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("tool").value("kop_sweepd");
  w.key("proto").value(kProtoVersion);
  w.key("points").begin_object();
  w.key("total").value(static_cast<std::uint64_t>(table_.total()));
  w.key("queued").value(static_cast<std::uint64_t>(table_.queued()));
  w.key("leased").value(static_cast<std::uint64_t>(table_.leased()));
  w.key("complete").value(static_cast<std::uint64_t>(table_.complete()));
  w.end_object();
  w.key("workers").begin_array();
  for (const auto& info : liveness_.snapshot()) {
    w.begin_object();
    w.key("name").value(info.name);
    w.key("state").value(worker_state_name(info.state));
    w.key("incarnation").value(info.incarnation);
    w.key("suspects").value(info.suspects);
    w.key("recoveries").value(info.recoveries);
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [name, count] : counters_.items()) {
    w.key(name).value(count);
  }
  w.end_object();
  w.key("drained").value(drained());
  w.end_object();
  return w.str();
}

}  // namespace kop::coord
