#include "coord/coordinator.hpp"

#include "telemetry/json.hpp"

namespace kop::coord {

Coordinator::Coordinator(CoordinatorOptions opt, CacheProbe probe)
    : opt_(opt),
      probe_(std::move(probe)),
      table_(opt.lease_ttl_ms),
      liveness_(opt.liveness) {}

void Coordinator::add_point(PointInfo info) {
  if (table_.add_point(std::move(info))) counters_.add("points_registered");
}

std::size_t Coordinator::sync_with_cache() {
  if (!probe_) return 0;
  std::size_t completed = 0;
  for (std::uint64_t hash : table_.point_hashes()) {
    if (table_.point_state(hash) == PointState::kComplete) continue;
    std::string doc;
    if (probe_(hash, &doc)) {
      table_.mark_complete(hash);
      counters_.add("points_warm_from_cache");
      ++completed;
    }
  }
  return completed;
}

void Coordinator::tick(std::int64_t now_ms) {
  for (const std::string& worker : liveness_.advance(now_ms)) {
    counters_.add("workers_died");
    const auto reclaimed = table_.reclaim_worker(worker);
    counters_.add("leases_reclaimed_dead", reclaimed.size());
    counters_.add("points_requeued", reclaimed.size());
  }
  const auto expired = table_.reclaim_expired(now_ms);
  counters_.add("leases_expired", expired.size());
  counters_.add("points_requeued", expired.size());
}

bool Coordinator::admit(const Request& r, std::int64_t now_ms,
                        std::string* reply) {
  switch (liveness_.heartbeat(r.worker, now_ms)) {
    case WorkerState::kUnknown:
      *reply = "NOHELLO";
      return false;
    case WorkerState::kDead:
      // This incarnation's leases were reclaimed when it was declared
      // dead; everything except DONE must restart with a fresh HELLO.
      *reply = "DEAD";
      return false;
    case WorkerState::kAlive:
    case WorkerState::kSuspect:
      return true;
  }
  return true;
}

std::string Coordinator::on_hello(const Request& r, std::int64_t now_ms) {
  const std::uint64_t incarnation = liveness_.hello(r.worker, now_ms);
  counters_.add("hellos");
  return "OK " + std::to_string(incarnation) +
         " ttl=" + std::to_string(table_.ttl_ms()) +
         " suspect=" + std::to_string(liveness_.options().suspect_after_ms) +
         " dead=" + std::to_string(liveness_.options().dead_after_ms);
}

std::string Coordinator::on_next(const Request& r, std::int64_t now_ms) {
  std::string reply;
  if (!admit(r, now_ms, &reply)) return reply;
  Lease lease;
  switch (table_.grant_next(r.worker, now_ms, &lease)) {
    case GrantOutcome::kGranted: {
      counters_.add("leases_granted");
      const PointInfo* info = table_.point_info(lease.point);
      const std::string payload =
          info != nullptr && !info->payload.empty() ? info->payload : "-";
      return "GRANT " + to_hex16(lease.point) + " " + to_hex16(lease.id) +
             " " + std::to_string(table_.ttl_ms()) + " " + payload;
    }
    case GrantOutcome::kComplete:
      return "DRAINED";
    default:
      return "IDLE " + std::to_string(table_.queued()) + " " +
             std::to_string(table_.leased());
  }
}

std::string Coordinator::on_lease(const Request& r, std::int64_t now_ms) {
  std::string reply;
  if (!admit(r, now_ms, &reply)) return reply;
  if (table_.point_info(r.hash) == nullptr) {
    if (!opt_.accept_unknown_points) return "UNKNOWN";
    PointInfo info;
    info.hash = r.hash;
    info.entry = r.entry;
    add_point(std::move(info));
  }
  Lease lease;
  switch (table_.grant(r.hash, r.worker, now_ms, &lease)) {
    case GrantOutcome::kGranted:
      counters_.add("leases_granted");
      return "GRANT " + to_hex16(r.hash) + " " + to_hex16(lease.id) + " " +
             std::to_string(table_.ttl_ms()) + " -";
    case GrantOutcome::kTaken:
      counters_.add("lease_conflicts");
      return "TAKEN";
    case GrantOutcome::kComplete:
      return "COMPLETE";
    default:
      return "UNKNOWN";
  }
}

std::string Coordinator::on_renew(const Request& r, std::int64_t now_ms) {
  std::string reply;
  if (!admit(r, now_ms, &reply)) return reply;
  switch (table_.renew(r.lease_id, now_ms)) {
    case RenewOutcome::kOk:
      counters_.add("leases_renewed");
      return "OK " + std::to_string(table_.ttl_ms());
    case RenewOutcome::kExpired:
      counters_.add("renewals_lost");
      return "EXPIRED";
    default:
      return "UNKNOWN";
  }
}

std::string Coordinator::on_done(const Request& r, std::int64_t now_ms) {
  // Deliberately no admit() gate: a Suspect or even Dead worker
  // reporting a finished point is still reporting the truth (the entry
  // is on disk, content-addressed).  Refresh liveness only if the
  // incarnation is not dead.
  liveness_.heartbeat(r.worker, now_ms);
  switch (table_.complete(r.lease_id)) {
    case CompleteOutcome::kOk:
      counters_.add("completions");
      return "OK";
    case CompleteOutcome::kUnknown:
      return "UNKNOWN";
    default:
      break;
  }
  // The lease is gone (expired + reclaimed, maybe re-granted).  Resolve
  // by point: an incomplete point still gets its completion -- dropping
  // a finished, deterministic, content-addressed result would only
  // force a redundant re-run by whoever holds the re-granted lease.
  if (table_.point_info(r.hash) == nullptr) return "UNKNOWN";
  if (table_.point_state(r.hash) == PointState::kComplete) {
    counters_.add("completions_dup");
    return "DUP";
  }
  table_.mark_complete(r.hash);
  counters_.add("completions");
  counters_.add("completions_stale_lease");
  return "OK-STALE";
}

std::string Coordinator::on_get(const Request& r, std::int64_t now_ms) {
  (void)now_ms;
  if (probe_) {
    std::string doc;
    if (probe_(r.hash, &doc)) {
      counters_.add("serve_cache_hits");
      // The probe hit is also ground truth for dispatch bookkeeping.
      table_.mark_complete(r.hash);
      return "HIT " + std::to_string(doc.size()) + "\n" + doc;
    }
  }
  counters_.add("serve_cache_misses");
  if (table_.point_info(r.hash) == nullptr) {
    counters_.add("serve_unknown");
    return "UNKNOWN";
  }
  return std::string("PENDING ") +
         (table_.point_state(r.hash) == PointState::kLeased ? "leased"
                                                            : "queued");
}

std::string Coordinator::handle_line(const std::string& line,
                                     std::int64_t now_ms) {
  const Request r = parse_request(line);
  counters_.add("requests");
  switch (r.verb) {
    case Request::Verb::kHello:
      return on_hello(r, now_ms);
    case Request::Verb::kNext:
      return on_next(r, now_ms);
    case Request::Verb::kLease:
      return on_lease(r, now_ms);
    case Request::Verb::kRenew:
      return on_renew(r, now_ms);
    case Request::Verb::kDone:
      return on_done(r, now_ms);
    case Request::Verb::kPing: {
      std::string reply;
      if (!admit(r, now_ms, &reply)) return reply;
      return std::string("OK ") + worker_state_name(liveness_.state(r.worker));
    }
    case Request::Verb::kBye: {
      liveness_.heartbeat(r.worker, now_ms);
      const auto reclaimed = table_.reclaim_worker(r.worker);
      counters_.add("leases_released_bye", reclaimed.size());
      counters_.add("points_requeued", reclaimed.size());
      return "OK";
    }
    case Request::Verb::kGet:
      return on_get(r, now_ms);
    case Request::Verb::kStats:
      return stats_json();
    case Request::Verb::kShutdown:
      shutdown_ = true;
      return "OK";
    case Request::Verb::kInvalid:
      break;
  }
  counters_.add("requests_invalid");
  return "ERR " + r.error;
}

std::string Coordinator::stats_json() const {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("tool").value("kop_sweepd");
  w.key("proto").value(kProtoVersion);
  w.key("points").begin_object();
  w.key("total").value(static_cast<std::uint64_t>(table_.total()));
  w.key("queued").value(static_cast<std::uint64_t>(table_.queued()));
  w.key("leased").value(static_cast<std::uint64_t>(table_.leased()));
  w.key("complete").value(static_cast<std::uint64_t>(table_.complete()));
  w.end_object();
  w.key("workers").begin_array();
  for (const auto& info : liveness_.snapshot()) {
    w.begin_object();
    w.key("name").value(info.name);
    w.key("state").value(worker_state_name(info.state));
    w.key("incarnation").value(info.incarnation);
    w.key("suspects").value(info.suspects);
    w.key("recoveries").value(info.recoveries);
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [name, count] : counters_.items()) {
    w.key(name).value(count);
  }
  w.end_object();
  w.key("drained").value(drained());
  w.end_object();
  return w.str();
}

}  // namespace kop::coord
