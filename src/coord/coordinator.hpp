// The sweep coordinator: lease-based dispatch + cache-serving front-end.
//
// One Coordinator owns one sweep execution: a manifest of points
// (content hash, cache entry name, optional replay-token payload), the
// LeaseTable that hands them out, and the LivenessTracker that watches
// the workers holding them.  It speaks the proto.hpp line protocol --
// handle_line() maps one request line to one response -- and is
// deliberately clockless and socketless: callers inject `now_ms`, which
// makes every dispatch schedule (including crash schedules) replayable
// in tests and in the propcheck exactly-once-dispatch invariant.  The
// socket front-end (server.hpp) is a thin shell around this class.
//
// Serving path: GET <hash> answers straight from the result cache via
// an injected probe (the daemon wires jobs::ResultCache in, keeping
// this layer below the harness).  A hit streams the validated entry
// document -- the "millions of users" path costs one lookup and zero
// simulation.  A miss on a known point reports its dispatch state
// (queued/leased); the sweep still completes it exactly once.
//
// Exactly-once: completion is recorded per *point*, never per lease.
// Late completions from expired leases are accepted while the point is
// incomplete (the simulation is deterministic, the entry is
// content-addressed -- the result is the result) and counted as
// `completions_stale_lease`; completions for already-complete points
// change nothing (`completions_dup`).  kop_merge's coverage manifest
// is the end-to-end proof: every expected entry present exactly once.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coord/journal.hpp"
#include "coord/lease.hpp"
#include "coord/liveness.hpp"
#include "coord/proto.hpp"
#include "telemetry/counterset.hpp"

namespace kop::coord {

struct CoordinatorOptions {
  LivenessOptions liveness;
  std::int64_t lease_ttl_ms = 5000;
  /// LEASE on a hash that is not in the manifest registers the point on
  /// the fly (worker-enumerated sweeps, where the figure binary knows
  /// the matrix and the coordinator only arbitrates).  Off: UNKNOWN.
  bool accept_unknown_points = true;
  /// Journal records appended since the last compaction before tick()
  /// rewrites the file down to the canonical snapshot.
  std::size_t journal_compact_after = 65536;
};

/// Injected cache lookup: return true and fill *doc with the validated
/// entry document when `hash` has a servable result.  The daemon backs
/// this with jobs::ResultCache (fingerprint-checked decode + re-encode);
/// tests back it with a map.  May be empty (no serving path).
using CacheProbe =
    std::function<bool(std::uint64_t hash, std::string* doc)>;

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opt = {}, CacheProbe probe = {});

  /// Register one sweep point (idempotent by hash).
  void add_point(PointInfo info);

  /// Probe the cache for every registered-but-incomplete point and mark
  /// the hits complete.  Called at startup (and after a restart: leases
  /// are memory-only, so a restarted coordinator re-queues exactly the
  /// points whose entries are not in the cache -- in-flight work is
  /// re-dispatched, finished work is not).  Returns how many points
  /// were completed from the cache.
  std::size_t sync_with_cache();

  /// Attach the crash journal (non-owning; may be null to detach).
  /// Every lease-table transition from here on is appended; tick()
  /// group-commits and compacts.  Attach *after* recover_from_journal
  /// and the initial add_point/sync_with_cache pass -- recovery must
  /// not re-journal what it replays.
  void attach_journal(Journal* journal);

  /// Replay a journal file into this (fresh) coordinator.  On success
  /// the lease table -- queue order, live leases, id counter -- matches
  /// the table the writing daemon last committed.  False on corruption
  /// (*error names the offending line).  Call requeue_live_leases()
  /// afterwards to turn the dead daemon's in-flight leases back into
  /// queued points.
  bool recover_from_journal(const std::string& path, ReplayStats* stats,
                            std::string* error);

  /// Restart semantics: every live lease belongs to a worker that can
  /// no longer renew against this process, so requeue them all (journaled
  /// as reclaims).  Returns how many were requeued.
  std::size_t requeue_live_leases();

  /// The canonical compacted form of the current table: S, then R for
  /// every point (queued ones first, in queue order), then G for live
  /// leases, then D for completed points.  Replaying these records into
  /// an empty coordinator reproduces debug_state() exactly.
  std::vector<JournalRecord> snapshot_records() const;

  /// The lease table rendered for state-equality checks (tests, the
  /// journal-replay propcheck invariant).
  std::string debug_state() const { return table_.debug_dump(); }

  /// One request line in, one response out (no trailing newline except
  /// inside HIT bodies; the server appends the line terminator).
  std::string handle_line(const std::string& line, std::int64_t now_ms);

  /// Periodic maintenance: liveness transitions, dead-worker reclaim,
  /// lease-expiry reclaim.  The server calls this between polls; tests
  /// call it with synthetic time.
  void tick(std::int64_t now_ms);

  /// True once every registered point is complete.
  bool drained() const { return table_.total() > 0 && table_.drained(); }
  /// SHUTDOWN was received (the server's exit signal).
  bool shutdown_requested() const { return shutdown_; }

  /// One-line JSON: point totals, worker states, and every counter.
  std::string stats_json() const;

  const telemetry::CounterSet& counters() const { return counters_; }
  const LeaseTable& leases() const { return table_; }
  const LivenessTracker& liveness() const { return liveness_; }

 private:
  std::string on_hello(const Request& r, std::int64_t now_ms);
  std::string on_next(const Request& r, std::int64_t now_ms);
  std::string on_lease(const Request& r, std::int64_t now_ms);
  std::string on_renew(const Request& r, std::int64_t now_ms);
  std::string on_done(const Request& r, std::int64_t now_ms);
  std::string on_get(const Request& r, std::int64_t now_ms);
  std::string on_mget(const Request& r, std::int64_t now_ms);
  /// One GET-shaped sub-response for `hash` (shared by GET and MGET).
  std::string serve_one(std::uint64_t hash);
  /// Heartbeat gate shared by worker-bearing verbs: returns false and
  /// fills *reply (NOHELLO / DEAD) when the request must be rejected.
  bool admit(const Request& r, std::int64_t now_ms, std::string* reply);
  /// Journal one completed transition (no-op without a journal).
  void journal_grant(const Lease& lease);
  void journal_done(std::uint64_t hash);
  void journal_reclaims(const std::vector<std::uint64_t>& hashes);
  /// mark_complete + journal, only when the state actually changed.
  void complete_point(std::uint64_t hash);
  bool apply_record(const JournalRecord& rec);

  CoordinatorOptions opt_;
  CacheProbe probe_;
  LeaseTable table_;
  LivenessTracker liveness_;
  telemetry::CounterSet counters_;
  Journal* journal_ = nullptr;
  bool shutdown_ = false;
};

}  // namespace kop::coord
