#include "coord/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "coord/proto.hpp"

namespace kop::coord {

namespace {

// Local FNV-1a 64 so the coord layer stays below the harness (mirrors
// jobs::fnv1a64 -- the checksum is a detector, not a cross-layer key).
std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

bool needs_escape(char c) {
  return c == ' ' || c == '%' || c == '!' ||
         static_cast<unsigned char>(c) < 0x21 ||
         static_cast<unsigned char>(c) > 0x7e;
}

// Percent-escape a field to one space-free token.  Empty encodes as
// "-" (and a literal leading '-' is escaped so the forms never collide).
std::string escape_field(const std::string& s) {
  if (s.empty()) return "-";
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (needs_escape(c) || (i == 0 && c == '-')) {
      const unsigned char u = static_cast<unsigned char>(c);
      out += '%';
      out += digits[u >> 4];
      out += digits[u & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

bool unescape_field(const std::string& s, std::string* out) {
  if (s == "-") {
    out->clear();
    return true;
  }
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      *out += s[i];
      continue;
    }
    auto hex = [](char c, int* v) {
      if (c >= '0' && c <= '9') *v = c - '0';
      else if (c >= 'a' && c <= 'f') *v = c - 'a' + 10;
      else return false;
      return true;
    };
    int hi = 0, lo = 0;
    if (i + 2 >= s.size() || !hex(s[i + 1], &hi) || !hex(s[i + 2], &lo)) {
      return false;
    }
    *out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_i64(const std::string& s, std::int64_t* out) {
  std::uint64_t v = 0;
  if (s.size() > 1 && s[0] == '-') {
    if (!parse_u64(s.substr(1), &v)) return false;
    *out = -static_cast<std::int64_t>(v);
    return true;
  }
  if (!parse_u64(s, &v)) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

}  // namespace

std::string encode_record(const JournalRecord& rec) {
  std::string body;
  switch (rec.type) {
    case JournalRecord::Type::kRegister:
      body = "R " + to_hex16(rec.hash) + " " + escape_field(rec.entry) + " " +
             escape_field(rec.payload) + " " + escape_field(rec.label);
      break;
    case JournalRecord::Type::kGrant:
      body = "G " + to_hex16(rec.lease_id) + " " + to_hex16(rec.hash) + " " +
             escape_field(rec.worker) + " " + std::to_string(rec.expires_ms);
      break;
    case JournalRecord::Type::kRenew:
      body = "N " + to_hex16(rec.lease_id) + " " +
             std::to_string(rec.expires_ms);
      break;
    case JournalRecord::Type::kDone:
      body = "D " + to_hex16(rec.hash);
      break;
    case JournalRecord::Type::kReclaim:
      body = "C " + to_hex16(rec.hash);
      break;
    case JournalRecord::Type::kSeq:
      body = "S " + to_hex16(rec.lease_id);
      break;
  }
  return body + " !" + to_hex16(fnv1a64(body.data(), body.size()));
}

bool decode_record(const std::string& line, JournalRecord* out,
                   std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const std::size_t bang = line.rfind(" !");
  if (bang == std::string::npos) return fail("missing checksum");
  const std::string body = line.substr(0, bang);
  std::uint64_t want = 0;
  if (!parse_hex16(line.substr(bang + 2), &want)) {
    return fail("malformed checksum");
  }
  if (fnv1a64(body.data(), body.size()) != want) {
    return fail("checksum mismatch");
  }
  const std::vector<std::string> t = split_tokens(body);
  if (t.empty() || t[0].size() != 1) return fail("missing record type");
  JournalRecord rec;
  switch (t[0][0]) {
    case 'R':
      if (t.size() != 5 || !parse_hex16(t[1], &rec.hash) ||
          !unescape_field(t[2], &rec.entry) ||
          !unescape_field(t[3], &rec.payload) ||
          !unescape_field(t[4], &rec.label)) {
        return fail("malformed R record");
      }
      rec.type = JournalRecord::Type::kRegister;
      break;
    case 'G':
      if (t.size() != 5 || !parse_hex16(t[1], &rec.lease_id) ||
          !parse_hex16(t[2], &rec.hash) ||
          !unescape_field(t[3], &rec.worker) ||
          !parse_i64(t[4], &rec.expires_ms)) {
        return fail("malformed G record");
      }
      rec.type = JournalRecord::Type::kGrant;
      break;
    case 'N':
      if (t.size() != 3 || !parse_hex16(t[1], &rec.lease_id) ||
          !parse_i64(t[2], &rec.expires_ms)) {
        return fail("malformed N record");
      }
      rec.type = JournalRecord::Type::kRenew;
      break;
    case 'D':
      if (t.size() != 2 || !parse_hex16(t[1], &rec.hash)) {
        return fail("malformed D record");
      }
      rec.type = JournalRecord::Type::kDone;
      break;
    case 'C':
      if (t.size() != 2 || !parse_hex16(t[1], &rec.hash)) {
        return fail("malformed C record");
      }
      rec.type = JournalRecord::Type::kReclaim;
      break;
    case 'S':
      if (t.size() != 2 || !parse_hex16(t[1], &rec.lease_id)) {
        return fail("malformed S record");
      }
      rec.type = JournalRecord::Type::kSeq;
      break;
    default:
      return fail(std::string("unknown record type '") + t[0] + "'");
  }
  *out = rec;
  return true;
}

bool replay_journal(const std::string& path,
                    const std::function<void(const JournalRecord&)>& fn,
                    ReplayStats* stats, std::string* error) {
  ReplayStats local;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // No file yet: a journal that was never written is a valid empty
    // journal (first boot on a fresh --journal path).
    if (stats != nullptr) *stats = local;
    return true;
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string data = raw.str();
  std::size_t start = 0;
  std::size_t line_no = 0;
  while (start < data.size()) {
    const std::size_t nl = data.find('\n', start);
    if (nl == std::string::npos) {
      // Torn tail: bytes past the last terminator are a crash artifact,
      // not corruption.  Drop and report.
      local.truncated_bytes = data.size() - start;
      break;
    }
    ++line_no;
    const std::string line = data.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    JournalRecord rec;
    std::string why;
    if (!decode_record(line, &rec, &why)) {
      if (stats != nullptr) *stats = local;
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) + ": " + why;
      }
      return false;
    }
    ++local.records;
    fn(rec);
  }
  if (stats != nullptr) *stats = local;
  return true;
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("coord: cannot open journal " + path_ + ": " +
                             std::strerror(errno));
  }
}

Journal::~Journal() {
  if (fd_ >= 0) {
    try {
      commit();
    } catch (...) {
      // Destructor: the daemon is going down anyway; the tail becomes a
      // torn record at worst, which replay tolerates.
    }
    ::close(fd_);
  }
}

void Journal::append(const JournalRecord& rec) {
  pending_ += encode_record(rec);
  pending_ += '\n';
  ++appended_;
}

void Journal::commit() {
  if (pending_.empty()) return;
  std::size_t off = 0;
  while (off < pending_.size()) {
    const ssize_t n =
        ::write(fd_, pending_.data() + off, pending_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("coord: journal write failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  pending_.clear();
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("coord: journal fsync failed: " +
                             std::string(std::strerror(errno)));
  }
}

void Journal::compact(const std::vector<JournalRecord>& records) {
  const std::string tmp = path_ + ".tmp";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) {
    throw std::runtime_error("coord: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  std::string out;
  for (const JournalRecord& rec : records) {
    out += encode_record(rec);
    out += '\n';
  }
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(tfd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(tfd);
      throw std::runtime_error("coord: compaction write failed: " + err);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(tfd) != 0 || ::close(tfd) != 0) {
    throw std::runtime_error("coord: compaction fsync failed: " +
                             std::string(std::strerror(errno)));
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("coord: compaction rename failed: " +
                             std::string(std::strerror(errno)));
  }
  // Re-open: the old fd still points at the replaced (unlinked) inode.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("coord: cannot reopen journal " + path_ + ": " +
                             std::strerror(errno));
  }
  pending_.clear();
  appended_ = 0;
}

}  // namespace kop::coord
