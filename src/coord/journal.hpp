// Append-only queue journal: the coordinator's crash ledger.
//
// PR 7's restart story recovered *completed* points only (whatever
// sync_with_cache found on disk); everything mid-flight at the moment
// the daemon died was silently re-enumerated from the manifest and, for
// worker-enumerated sweeps, simply lost.  The journal closes that gap:
// every state transition the LeaseTable makes is appended as one
// checksummed text record, so a restarted daemon replays the file back
// to the *exact* lease table it died with -- then requeues the leases
// whose holders are gone (they cannot renew a daemon that restarted)
// and carries on.
//
// Record grammar (one record per '\n'-terminated line):
//
//   R <hash> <entry> <payload> <label> !<fnv16>     point registered
//   G <lease-id> <hash> <worker> <expires-ms> !<fnv16>   lease granted
//   N <lease-id> <expires-ms> !<fnv16>              lease renewed
//   D <hash> !<fnv16>                               point complete
//   C <hash> !<fnv16>                               lease reclaimed (requeue)
//   S <next-lease-id> !<fnv16>                      id floor (compaction)
//
// String fields are percent-escaped (space, '%', '!', control bytes) so
// every record stays one space-tokenized line.  The checksum is FNV-1a
// 64 over the record body; `--dump-journal --verify` and replay both
// recompute it.
//
// Durability model: append() buffers, commit() writes + fsyncs the
// batch.  The Coordinator commits from tick(), i.e. once per poll
// round, not per request -- group commit.  That is safe because every
// record is *re-derivable loss*: an unflushed GRANT replays as a
// still-queued point (the worker's DONE later resolves OK-STALE), an
// unflushed DONE re-runs one deterministic, content-addressed point.
// The journal buys exactness cheaply; it never needs to buy it
// synchronously.
//
// Torn tails: a crash mid-append leaves a final line without '\n' (or a
// short one).  Replay tolerates exactly that -- trailing bytes with no
// terminator are dropped and reported -- but a *terminated* record with
// a bad checksum or unknown shape is a hard error: that is corruption,
// not a crash artifact, and silently skipping it could resurrect a
// wrong lease table.
//
// Compaction: the live table is re-expressible as (S, R..., G..., D...)
// in canonical order; compact() atomically replaces the file
// (tmp + fsync + rename) once enough history has accumulated.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace kop::coord {

struct JournalRecord {
  enum class Type { kRegister, kGrant, kRenew, kDone, kReclaim, kSeq };
  Type type = Type::kRegister;
  std::uint64_t hash = 0;       // R/G/D/C
  std::uint64_t lease_id = 0;   // G/N; S: the next-lease-id floor
  std::int64_t expires_ms = 0;  // G/N
  std::string worker;           // G
  std::string entry;            // R
  std::string payload;          // R
  std::string label;            // R
};

/// One record as a journal line (no trailing '\n'), checksum included.
std::string encode_record(const JournalRecord& rec);

/// Parse one journal line.  False (with *error set) on checksum
/// mismatch, unknown type, or a malformed field.
bool decode_record(const std::string& line, JournalRecord* out,
                   std::string* error);

struct ReplayStats {
  std::size_t records = 0;          // checksum-verified records replayed
  std::size_t truncated_bytes = 0;  // torn tail dropped (crash artifact)
};

/// Read `path` and invoke `fn` per verified record, in file order.  A
/// missing file is an empty journal (true, zero records).  Returns
/// false (with *error naming the line) on corruption; records before
/// the corrupt line have already been delivered.
bool replay_journal(const std::string& path,
                    const std::function<void(const JournalRecord&)>& fn,
                    ReplayStats* stats, std::string* error);

class Journal {
 public:
  /// Opens `path` for append (created if absent).  Throws
  /// std::runtime_error when the file cannot be opened.
  explicit Journal(std::string path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Buffer one record.  Cheap; durability comes from commit().
  void append(const JournalRecord& rec);

  /// Flush buffered records and fsync.  No-op when nothing is pending.
  /// Throws std::runtime_error on write/fsync failure (a journal that
  /// cannot persist is a daemon that must not keep promising leases).
  void commit();

  /// Atomically replace the journal with `records` (tmp + fsync +
  /// rename) and reset the append counter.  Pending appends are folded
  /// in by the caller snapshotting *after* they were applied.
  void compact(const std::vector<JournalRecord>& records);

  /// Records appended since open/compaction -- the compaction trigger.
  std::size_t appended_since_compact() const { return appended_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::string pending_;
  std::size_t appended_ = 0;
};

}  // namespace kop::coord
