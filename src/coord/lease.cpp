#include "coord/lease.hpp"

#include <algorithm>

namespace kop::coord {

LeaseTable::LeaseTable(std::int64_t ttl_ms)
    : ttl_ms_(std::max<std::int64_t>(ttl_ms, 1)) {}

bool LeaseTable::add_point(PointInfo info) {
  const std::uint64_t hash = info.hash;
  const auto [it, inserted] = points_.try_emplace(hash);
  if (!inserted) return false;
  it->second.info = std::move(info);
  queue_.push_back(hash);
  return true;
}

bool LeaseTable::mark_complete(std::uint64_t hash) {
  const auto it = points_.find(hash);
  if (it == points_.end()) return false;
  PointRec& rec = it->second;
  if (rec.state == PointState::kComplete) return true;
  if (rec.state == PointState::kLeased) {
    leases_.erase(rec.lease_id);
  } else {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), hash),
                 queue_.end());
  }
  rec.state = PointState::kComplete;
  rec.lease_id = 0;
  ++complete_count_;
  return true;
}

Lease* LeaseTable::issue(std::uint64_t hash, const std::string& worker,
                         std::int64_t now_ms) {
  PointRec& rec = points_.at(hash);
  const std::uint64_t id = next_lease_id_++;
  Lease& lease = leases_[id];
  lease.id = id;
  lease.point = hash;
  lease.worker = worker;
  lease.expires_ms = now_ms + ttl_ms_;
  rec.state = PointState::kLeased;
  rec.lease_id = id;
  ++rec.grants;
  return &lease;
}

GrantOutcome LeaseTable::grant_next(const std::string& worker,
                                    std::int64_t now_ms, Lease* lease) {
  if (queue_.empty()) {
    return drained() ? GrantOutcome::kComplete : GrantOutcome::kIdle;
  }
  const std::uint64_t hash = queue_.front();
  queue_.pop_front();
  *lease = *issue(hash, worker, now_ms);
  return GrantOutcome::kGranted;
}

GrantOutcome LeaseTable::grant(std::uint64_t hash, const std::string& worker,
                               std::int64_t now_ms, Lease* lease) {
  const auto it = points_.find(hash);
  if (it == points_.end()) return GrantOutcome::kUnknown;
  PointRec& rec = it->second;
  switch (rec.state) {
    case PointState::kComplete:
      return GrantOutcome::kComplete;
    case PointState::kLeased:
      return GrantOutcome::kTaken;
    case PointState::kQueued:
      break;
  }
  queue_.erase(std::remove(queue_.begin(), queue_.end(), hash), queue_.end());
  *lease = *issue(hash, worker, now_ms);
  return GrantOutcome::kGranted;
}

RenewOutcome LeaseTable::renew(std::uint64_t lease_id, std::int64_t now_ms) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    // Distinguish "reclaimed" from "never issued" for the caller: ids
    // below the counter were real leases once.
    return lease_id != 0 && lease_id < next_lease_id_ ? RenewOutcome::kExpired
                                                      : RenewOutcome::kUnknown;
  }
  if (now_ms >= it->second.expires_ms) {
    // Expired but not yet swept by reclaim_expired: the renewal still
    // loses -- renewing past the boundary would make expiry racy.
    return RenewOutcome::kExpired;
  }
  it->second.expires_ms = now_ms + ttl_ms_;
  return RenewOutcome::kOk;
}

CompleteOutcome LeaseTable::complete(std::uint64_t lease_id) {
  const auto it = leases_.find(lease_id);
  if (it != leases_.end()) {
    const std::uint64_t hash = it->second.point;
    leases_.erase(it);
    PointRec& rec = points_.at(hash);
    rec.state = PointState::kComplete;
    rec.lease_id = 0;
    ++complete_count_;
    return CompleteOutcome::kOk;
  }
  // Stale lease id (reclaimed, maybe re-granted).  We cannot recover
  // the point from the id alone once the lease is gone, so the caller
  // (Coordinator) resolves stale completions by point hash instead.
  return lease_id != 0 && lease_id < next_lease_id_
             ? CompleteOutcome::kAlreadyComplete
             : CompleteOutcome::kUnknown;
}

std::vector<std::uint64_t> LeaseTable::reclaim_expired(std::int64_t now_ms) {
  std::vector<std::uint64_t> reclaimed;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (now_ms >= it->second.expires_ms) {
      const std::uint64_t hash = it->second.point;
      PointRec& rec = points_.at(hash);
      rec.state = PointState::kQueued;
      rec.lease_id = 0;
      queue_.push_back(hash);
      reclaimed.push_back(hash);
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

std::vector<std::uint64_t> LeaseTable::reclaim_worker(
    const std::string& worker) {
  std::vector<std::uint64_t> reclaimed;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.worker == worker) {
      const std::uint64_t hash = it->second.point;
      PointRec& rec = points_.at(hash);
      rec.state = PointState::kQueued;
      rec.lease_id = 0;
      queue_.push_back(hash);
      reclaimed.push_back(hash);
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

std::vector<std::uint64_t> LeaseTable::reclaim_all() {
  std::vector<std::uint64_t> reclaimed;
  for (auto it = leases_.begin(); it != leases_.end();) {
    const std::uint64_t hash = it->second.point;
    PointRec& rec = points_.at(hash);
    rec.state = PointState::kQueued;
    rec.lease_id = 0;
    queue_.push_back(hash);
    reclaimed.push_back(hash);
    it = leases_.erase(it);
  }
  return reclaimed;
}

bool LeaseTable::reclaim_point(std::uint64_t hash) {
  const auto it = points_.find(hash);
  if (it == points_.end() || it->second.state != PointState::kLeased) {
    return false;
  }
  leases_.erase(it->second.lease_id);
  it->second.state = PointState::kQueued;
  it->second.lease_id = 0;
  queue_.push_back(hash);
  return true;
}

bool LeaseTable::restore_grant(std::uint64_t id, std::uint64_t hash,
                               const std::string& worker,
                               std::int64_t expires_ms) {
  const auto it = points_.find(hash);
  if (id == 0 || it == points_.end() ||
      it->second.state != PointState::kQueued ||
      leases_.count(id) != 0) {
    return false;
  }
  queue_.erase(std::remove(queue_.begin(), queue_.end(), hash), queue_.end());
  Lease& lease = leases_[id];
  lease.id = id;
  lease.point = hash;
  lease.worker = worker;
  lease.expires_ms = expires_ms;
  it->second.state = PointState::kLeased;
  it->second.lease_id = id;
  ++it->second.grants;
  if (id >= next_lease_id_) next_lease_id_ = id + 1;
  return true;
}

bool LeaseTable::restore_renew(std::uint64_t id, std::int64_t expires_ms) {
  const auto it = leases_.find(id);
  if (it == leases_.end()) return false;
  it->second.expires_ms = expires_ms;
  return true;
}

void LeaseTable::restore_next_lease_id(std::uint64_t next) {
  if (next > next_lease_id_) next_lease_id_ = next;
}

PointState LeaseTable::point_state(std::uint64_t hash) const {
  const auto it = points_.find(hash);
  return it == points_.end() ? PointState::kQueued : it->second.state;
}

const PointInfo* LeaseTable::point_info(std::uint64_t hash) const {
  const auto it = points_.find(hash);
  return it == points_.end() ? nullptr : &it->second.info;
}

const Lease* LeaseTable::lease_of(std::uint64_t hash) const {
  const auto it = points_.find(hash);
  if (it == points_.end() || it->second.state != PointState::kLeased)
    return nullptr;
  const auto lit = leases_.find(it->second.lease_id);
  return lit == leases_.end() ? nullptr : &lit->second;
}

std::vector<std::uint64_t> LeaseTable::point_hashes() const {
  std::vector<std::uint64_t> out;
  out.reserve(points_.size());
  for (const auto& [hash, rec] : points_) out.push_back(hash);
  return out;
}

std::vector<std::uint64_t> LeaseTable::queued_hashes() const {
  return {queue_.begin(), queue_.end()};
}

std::vector<Lease> LeaseTable::live_leases() const {
  std::vector<Lease> out;
  out.reserve(leases_.size());
  for (const auto& [id, lease] : leases_) out.push_back(lease);
  return out;
}

const Lease* LeaseTable::lease_by_id(std::uint64_t id) const {
  const auto it = leases_.find(id);
  return it == leases_.end() ? nullptr : &it->second;
}

std::string LeaseTable::debug_dump() const {
  static const char* state_names[] = {"queued", "leased", "complete"};
  std::string out = "next_lease=" + std::to_string(next_lease_id_) + "\n";
  for (const auto& [hash, rec] : points_) {
    out += "point " + std::to_string(hash) + " " +
           state_names[static_cast<int>(rec.state)] + " entry=" +
           rec.info.entry + " payload=" + rec.info.payload + "\n";
  }
  out += "queue";
  for (std::uint64_t hash : queue_) out += " " + std::to_string(hash);
  out += "\n";
  for (const auto& [id, lease] : leases_) {
    out += "lease " + std::to_string(id) + " point=" +
           std::to_string(lease.point) + " worker=" + lease.worker +
           " expires=" + std::to_string(lease.expires_ms) + "\n";
  }
  return out;
}

}  // namespace kop::coord
