// Point leases: the coordinator's replacement for O_EXCL claim files.
//
// A claim file is forever -- a crashed worker strands its points until
// an operator deletes the claims by hand (kop_merge --audit-claims
// finds them).  A lease is a claim with an expiry: the granting
// coordinator remembers who holds each point and until when, renewals
// push the expiry forward, and an expired or orphaned (dead-worker)
// lease is *reclaimed* -- the point goes back on the queue for the next
// worker, exactly once.
//
// The table is pure bookkeeping over injected timestamps: no clock, no
// I/O, no threads.  Exactly-once dispatch is the invariant the
// propcheck harness checks against this code under random crash
// schedules (exactly-once-dispatch).
//
// Lifecycle of one point:
//
//   Queued ──grant──► Leased ──complete──► Complete   (terminal)
//     ▲                  │
//     └────reclaim───────┘   (TTL expired, or holder declared dead)
//
// Completion is accepted from a *stale* lease holder as long as the
// point is still incomplete: the result already exists (deterministic
// simulation, content-addressed entry), so dropping it would only force
// a redundant re-run.  A completion for an already-complete point is
// counted separately (`stale_completions`) and changes nothing.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace kop::coord {

/// What the coordinator knows about one sweep point.  The coordinator
/// never materializes a PointSpec -- it deals in the point's content
/// hash, the cache entry file the result will occupy, and an opaque
/// payload (a propcheck replay token) a generic worker can execute.
struct PointInfo {
  std::uint64_t hash = 0;   // PointSpec::content_hash()
  std::string entry;        // "kop-<cache-key>.json"
  std::string payload;      // replay token; empty: worker-enumerated
  std::string label;        // human label for logs
};

enum class PointState { kQueued, kLeased, kComplete };

struct Lease {
  std::uint64_t id = 0;
  std::uint64_t point = 0;        // PointInfo::hash
  std::string worker;
  std::int64_t expires_ms = 0;    // exclusive: expired once now >= expires
};

enum class GrantOutcome { kGranted, kTaken, kComplete, kUnknown, kIdle };
enum class RenewOutcome { kOk, kExpired, kUnknown };
enum class CompleteOutcome { kOk, kOkStaleLease, kAlreadyComplete, kUnknown };

class LeaseTable {
 public:
  explicit LeaseTable(std::int64_t ttl_ms = 5000);

  /// Register a sweep point (idempotent by hash; first registration
  /// wins).  Returns true when the point is new.
  bool add_point(PointInfo info);

  /// Mark a point complete out-of-band (warm cache at startup).  False
  /// when the hash is unknown.
  bool mark_complete(std::uint64_t hash);

  /// Grant the next queued point (FIFO requeue order) to `worker`.
  /// Outcome kGranted fills *lease; kIdle means nothing is queued right
  /// now (points may still be leased out and come back via reclaim).
  GrantOutcome grant_next(const std::string& worker, std::int64_t now_ms,
                          Lease* lease);

  /// Grant one specific point (worker-enumerated dispatch, the lease
  /// analogue of ClaimDir::try_claim).  kTaken: live lease held by
  /// someone; kComplete: already done; kUnknown: never registered.
  GrantOutcome grant(std::uint64_t hash, const std::string& worker,
                     std::int64_t now_ms, Lease* lease);

  /// Push the lease expiry to now + TTL.  kExpired covers both "the
  /// lease timed out and was reclaimed" and "it was reclaimed when the
  /// holder died" -- either way the renewal loses.
  RenewOutcome renew(std::uint64_t lease_id, std::int64_t now_ms);

  /// Completion by lease id.  See the header comment for the stale
  /// cases; kOk and kOkStaleLease both mark the point complete.
  CompleteOutcome complete(std::uint64_t lease_id);

  /// Reclaim every lease whose expiry has passed; their points go back
  /// on the queue.  Returns the reclaimed point hashes.
  std::vector<std::uint64_t> reclaim_expired(std::int64_t now_ms);

  /// Reclaim every live lease held by `worker` (declared dead or said
  /// BYE).  Returns the requeued point hashes.
  std::vector<std::uint64_t> reclaim_worker(const std::string& worker);

  /// Reclaim every live lease unconditionally (daemon restart: the old
  /// process's promises cannot be renewed against the new one).
  /// Returns the requeued point hashes.
  std::vector<std::uint64_t> reclaim_all();

  /// Requeue the live lease on one specific point (journal C-record
  /// replay).  False when the point is not currently leased.
  bool reclaim_point(std::uint64_t hash);

  // --- journal replay ---------------------------------------------------
  // Replay applies recorded transitions verbatim instead of allocating
  // fresh state, so a replayed table is bit-equal (debug_dump) to the
  // live one the records were written from.

  /// Re-issue a lease with its recorded id/holder/expiry.  Bumps the id
  /// counter past `id`.  False when the point is unknown or not queued
  /// (a journal that grants twice without an intervening reclaim is
  /// corrupt).
  bool restore_grant(std::uint64_t id, std::uint64_t hash,
                     const std::string& worker, std::int64_t expires_ms);

  /// Re-apply a recorded renewal's absolute expiry.  False when the
  /// lease id is not live.
  bool restore_renew(std::uint64_t id, std::int64_t expires_ms);

  /// Floor the id counter (compacted journals carry an S record so
  /// completed leases' ids are never reused for new grants -- a stale
  /// DONE with a recycled id would complete the wrong point).
  void restore_next_lease_id(std::uint64_t next);

  // --- queries ---------------------------------------------------------
  PointState point_state(std::uint64_t hash) const;
  const PointInfo* point_info(std::uint64_t hash) const;
  /// The live lease on a point, or nullptr.
  const Lease* lease_of(std::uint64_t hash) const;
  /// The live lease with this id, or nullptr (reclaimed/completed ids
  /// are gone -- the Coordinator resolves those by point hash).
  const Lease* lease_by_id(std::uint64_t id) const;
  std::uint64_t next_lease_id() const { return next_lease_id_; }
  std::size_t total() const { return points_.size(); }
  std::size_t queued() const { return queue_.size(); }
  std::size_t leased() const { return leases_.size(); }
  std::size_t complete() const { return complete_count_; }
  bool drained() const { return complete_count_ == points_.size(); }
  std::int64_t ttl_ms() const { return ttl_ms_; }
  /// Every registered point hash, ascending (manifest iteration order).
  std::vector<std::uint64_t> point_hashes() const;
  /// Queued point hashes in grant (FIFO) order.
  std::vector<std::uint64_t> queued_hashes() const;
  /// Every live lease, ascending by id.
  std::vector<Lease> live_leases() const;
  /// Canonical multi-line rendering of the whole table -- point states,
  /// queue order, live leases, id counter.  Two tables that render the
  /// same dispatch identically; journal-replay tests compare this.
  std::string debug_dump() const;

 private:
  Lease* issue(std::uint64_t hash, const std::string& worker,
               std::int64_t now_ms);

  struct PointRec {
    PointInfo info;
    PointState state = PointState::kQueued;
    std::uint64_t lease_id = 0;  // valid while kLeased
    std::uint64_t grants = 0;    // times this point was handed out
  };

  std::int64_t ttl_ms_;
  std::uint64_t next_lease_id_ = 1;
  std::map<std::uint64_t, PointRec> points_;
  std::map<std::uint64_t, Lease> leases_;  // by lease id, live only
  std::deque<std::uint64_t> queue_;        // queued point hashes, FIFO
  std::size_t complete_count_ = 0;
};

}  // namespace kop::coord
