#include "coord/liveness.hpp"

#include <algorithm>

namespace kop::coord {

const char* worker_state_name(WorkerState s) {
  switch (s) {
    case WorkerState::kUnknown: return "unknown";
    case WorkerState::kAlive:   return "alive";
    case WorkerState::kSuspect: return "suspect";
    case WorkerState::kDead:    return "dead";
  }
  return "?";
}

LivenessTracker::LivenessTracker(LivenessOptions opt) : opt_(opt) {
  if (opt_.suspect_after_ms < 1) opt_.suspect_after_ms = 1;
  if (opt_.dead_after_ms <= opt_.suspect_after_ms) {
    opt_.dead_after_ms = opt_.suspect_after_ms + 1;
  }
}

std::uint64_t LivenessTracker::hello(const std::string& worker,
                                     std::int64_t now_ms) {
  WorkerInfo& info = workers_[worker];
  info.name = worker;
  info.state = WorkerState::kAlive;
  info.last_seen_ms = now_ms;
  ++info.incarnation;
  return info.incarnation;
}

WorkerState LivenessTracker::heartbeat(const std::string& worker,
                                       std::int64_t now_ms) {
  const auto it = workers_.find(worker);
  if (it == workers_.end()) return WorkerState::kUnknown;
  WorkerInfo& info = it->second;
  if (info.state == WorkerState::kDead) return WorkerState::kDead;
  if (info.state == WorkerState::kSuspect) {
    info.state = WorkerState::kAlive;
    ++info.recoveries;
  }
  info.last_seen_ms = std::max(info.last_seen_ms, now_ms);
  return info.state;
}

std::vector<std::string> LivenessTracker::advance(std::int64_t now_ms) {
  std::vector<std::string> died;
  for (auto& [name, info] : workers_) {
    if (info.state == WorkerState::kDead) continue;
    const std::int64_t silence = now_ms - info.last_seen_ms;
    if (silence >= opt_.dead_after_ms) {
      // A worker can cross both thresholds in one advance (a long gap
      // between ticks); record the Suspect transition it skipped so the
      // trajectory is always Alive -> Suspect -> Dead.
      if (info.state == WorkerState::kAlive) ++info.suspects;
      info.state = WorkerState::kDead;
      died.push_back(name);
    } else if (silence >= opt_.suspect_after_ms &&
               info.state == WorkerState::kAlive) {
      info.state = WorkerState::kSuspect;
      ++info.suspects;
    }
  }
  return died;  // std::map iteration: already name-sorted
}

WorkerState LivenessTracker::state(const std::string& worker) const {
  const auto it = workers_.find(worker);
  return it == workers_.end() ? WorkerState::kUnknown : it->second.state;
}

std::vector<LivenessTracker::WorkerInfo> LivenessTracker::snapshot() const {
  std::vector<WorkerInfo> out;
  out.reserve(workers_.size());
  for (const auto& [name, info] : workers_) out.push_back(info);
  return out;
}

}  // namespace kop::coord
