// Worker liveness for the sweep coordinator.
//
// Every worker the coordinator has ever heard from sits in one of four
// states, driven only by heartbeat arrival times (any request carrying
// the worker's id counts as a heartbeat):
//
//   Unknown ──HELLO──► Alive ──silence > suspect_after──► Suspect
//                        ▲                                   │
//                        └────────late heartbeat─────────────┤
//                                                            │
//                              silence > dead_after ─────────► Dead
//
// Those are the only legal transitions (ek-kor2-style heartbeat state
// machine).  Dead is terminal *per incarnation*: a worker that comes
// back after being declared dead must HELLO again, which registers a
// fresh incarnation -- its stale leases were already reclaimed when it
// died, so the late twin can never double-dispatch a point.
//
// The tracker never reads a clock; callers pass `now_ms` (the socket
// server passes steady-clock time, tests pass synthetic time), so every
// transition sequence is replayable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kop::coord {

enum class WorkerState { kUnknown, kAlive, kSuspect, kDead };

const char* worker_state_name(WorkerState s);

struct LivenessOptions {
  /// Alive -> Suspect after this much heartbeat silence.
  std::int64_t suspect_after_ms = 3000;
  /// Suspect -> Dead after this much total silence (> suspect_after_ms).
  std::int64_t dead_after_ms = 10000;
};

class LivenessTracker {
 public:
  explicit LivenessTracker(LivenessOptions opt = {});

  /// HELLO: register the worker (or a fresh incarnation of a dead one).
  /// Returns the incarnation number, starting at 1.
  std::uint64_t hello(const std::string& worker, std::int64_t now_ms);

  /// A request from `worker` arrived.  Refreshes last-seen and applies
  /// Suspect -> Alive recovery.  Returns the resulting state:
  /// kUnknown means the worker never sent HELLO (caller should reject),
  /// kDead means this incarnation was already declared dead (caller
  /// should tell the worker to re-HELLO).
  WorkerState heartbeat(const std::string& worker, std::int64_t now_ms);

  /// Apply time-based transitions (Alive -> Suspect -> Dead) as of
  /// `now_ms`.  Returns the workers that died in this step, in name
  /// order -- the caller reclaims their leases.
  std::vector<std::string> advance(std::int64_t now_ms);

  WorkerState state(const std::string& worker) const;

  struct WorkerInfo {
    std::string name;
    WorkerState state = WorkerState::kUnknown;
    std::int64_t last_seen_ms = 0;
    std::uint64_t incarnation = 0;
    std::uint64_t suspects = 0;    // Alive -> Suspect transitions
    std::uint64_t recoveries = 0;  // Suspect -> Alive transitions
  };
  /// All known workers, sorted by name.
  std::vector<WorkerInfo> snapshot() const;

  const LivenessOptions& options() const { return opt_; }

 private:
  LivenessOptions opt_;
  std::map<std::string, WorkerInfo> workers_;
};

}  // namespace kop::coord
