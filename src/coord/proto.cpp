#include "coord/proto.hpp"

namespace kop::coord {

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < line.size()) {
    const std::size_t sp = line.find(' ', start);
    const std::size_t end = sp == std::string::npos ? line.size() : sp;
    if (end > start) out.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parse_hex16(const std::string& s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = v;
  return true;
}

std::string to_hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

namespace {

// Worker ids travel unquoted; keep them to one safe token.
bool valid_worker_id(const std::string& s) {
  if (s.empty() || s.size() > 128) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.' || c == ':' || c == '@';
    if (!ok) return false;
  }
  return true;
}

Request invalid(const std::string& why) {
  Request r;
  r.error = why;
  return r;
}

}  // namespace

Request parse_request(const std::string& line) {
  if (line.size() > 4096) return invalid("line too long");
  const std::vector<std::string> t = split_tokens(line);
  if (t.empty()) return invalid("empty line");
  Request r;
  const std::string& verb = t[0];

  auto want_worker = [&](std::size_t argc) -> bool {
    if (t.size() != argc) return false;
    if (!valid_worker_id(t[1])) return false;
    r.worker = t[1];
    return true;
  };

  if (verb == "HELLO") {
    if (!want_worker(2)) return invalid("usage: HELLO <worker>");
    r.verb = Request::Verb::kHello;
  } else if (verb == "NEXT") {
    if (!want_worker(2)) return invalid("usage: NEXT <worker>");
    r.verb = Request::Verb::kNext;
  } else if (verb == "LEASE") {
    if (t.size() != 3 && t.size() != 4) {
      return invalid("usage: LEASE <worker> <hash> [entry]");
    }
    if (!valid_worker_id(t[1]) || !parse_hex16(t[2], &r.hash)) {
      return invalid("usage: LEASE <worker> <hash> [entry]");
    }
    r.worker = t[1];
    if (t.size() == 4) r.entry = t[3];
    r.verb = Request::Verb::kLease;
  } else if (verb == "RENEW") {
    if (t.size() != 3 || !valid_worker_id(t[1]) ||
        !parse_hex16(t[2], &r.lease_id)) {
      return invalid("usage: RENEW <worker> <lease-id>");
    }
    r.worker = t[1];
    r.verb = Request::Verb::kRenew;
  } else if (verb == "DONE") {
    if (t.size() != 4 || !valid_worker_id(t[1]) ||
        !parse_hex16(t[2], &r.lease_id) || !parse_hex16(t[3], &r.hash)) {
      return invalid("usage: DONE <worker> <lease-id> <hash>");
    }
    r.worker = t[1];
    r.verb = Request::Verb::kDone;
  } else if (verb == "PING") {
    if (!want_worker(2)) return invalid("usage: PING <worker>");
    r.verb = Request::Verb::kPing;
  } else if (verb == "BYE") {
    if (!want_worker(2)) return invalid("usage: BYE <worker>");
    r.verb = Request::Verb::kBye;
  } else if (verb == "GET") {
    if (t.size() != 2 || !parse_hex16(t[1], &r.hash)) {
      return invalid("usage: GET <hash>");
    }
    r.verb = Request::Verb::kGet;
  } else if (verb == "MGET") {
    if (t.size() < 2) return invalid("usage: MGET <hash>...");
    if (t.size() - 1 > kMgetMaxHashes) {
      return invalid("MGET batch too large (max " +
                     std::to_string(kMgetMaxHashes) + ")");
    }
    r.hashes.reserve(t.size() - 1);
    for (std::size_t i = 1; i < t.size(); ++i) {
      std::uint64_t h = 0;
      if (!parse_hex16(t[i], &h)) return invalid("usage: MGET <hash>...");
      r.hashes.push_back(h);
    }
    r.verb = Request::Verb::kMget;
  } else if (verb == "STATS") {
    if (t.size() != 1) return invalid("usage: STATS");
    r.verb = Request::Verb::kStats;
  } else if (verb == "SHUTDOWN") {
    if (t.size() != 1) return invalid("usage: SHUTDOWN");
    r.verb = Request::Verb::kShutdown;
  } else {
    return invalid("unknown verb " + verb);
  }
  return r;
}

bool parse_address(const std::string& s, Address* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (s.empty()) return fail("empty coordinator address");
  const std::size_t colon = s.rfind(':');
  if (s.find('/') != std::string::npos || colon == std::string::npos) {
    out->kind = Address::Kind::kUnix;
    out->path = s;
    out->host.clear();
    out->port = 0;
    return true;
  }
  const std::string host = s.substr(0, colon);
  const std::string port_str = s.substr(colon + 1);
  if (host.empty()) return fail("tcp address '" + s + "' has no host");
  if (port_str.empty()) return fail("tcp address '" + s + "' has no port");
  long port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return fail("tcp address '" + s + "' has a non-numeric port");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) return fail("tcp address '" + s + "' port out of range");
  }
  out->kind = Address::Kind::kTcp;
  out->host = host;
  out->port = static_cast<int>(port);
  out->path.clear();
  return true;
}

}  // namespace kop::coord
