// The kop-sweep line protocol (v1).
//
// One request per line, space-separated ASCII tokens, '\n' terminated;
// one response line back (GET HIT responses append a length-prefixed
// body).  Small enough to drive with `nc -U`, stable enough to pin in
// tests.  Point hashes and lease ids travel as 16-digit lower-case hex
// (jobs::hex16 rendering).
//
//   HELLO <worker>                 -> OK <incarnation> ttl=<ms> suspect=<ms> dead=<ms>
//   NEXT <worker>                  -> GRANT <hash> <lease-id> <ttl-ms> <payload>
//                                   | IDLE <queued> <leased>
//                                   | DRAINED
//   LEASE <worker> <hash> [entry]  -> GRANT <hash> <lease-id> <ttl-ms> -
//                                   | TAKEN | COMPLETE | UNKNOWN
//   RENEW <worker> <lease-id>      -> OK <ttl-ms> | EXPIRED | UNKNOWN
//   DONE <worker> <lease-id> <hash>-> OK | OK-STALE | DUP | UNKNOWN
//   PING <worker>                  -> OK <state>
//   BYE <worker>                   -> OK
//   GET <hash>                     -> HIT <bytes>\n<bytes-of-entry-doc>
//                                   | COMPLETE (done, no servable cache here)
//                                   | PENDING <queued|leased> | UNKNOWN
//   MGET <hash>...                 -> one sub-response per hash, in
//                                     request order, each framed exactly
//                                     like a GET response; at most
//                                     kMgetMaxHashes hashes per line
//   STATS                          -> one-line JSON
//   SHUTDOWN                       -> OK (server exits its loop)
//
// Any worker-bearing request doubles as a heartbeat.  A request from a
// worker whose incarnation was declared dead gets `DEAD` (re-HELLO to
// continue); a worker that never said HELLO gets `NOHELLO`.  Malformed
// lines get `ERR <reason>`.
//
// The protocol is transport-agnostic: the same lines flow over a Unix
// stream socket (one box) or TCP (many boxes).  parse_address() below is
// the one place both ends agree on how "--coord <addr>" strings map to
// transports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kop::coord {

inline constexpr int kProtoVersion = 1;

/// Largest MGET batch one request line may carry.  64 hashes of 17
/// bytes each stay comfortably inside the 4096-byte line limit.
inline constexpr std::size_t kMgetMaxHashes = 64;

struct Request {
  enum class Verb {
    kHello, kNext, kLease, kRenew, kDone, kPing, kBye,
    kGet, kMget, kStats, kShutdown, kInvalid,
  };
  Verb verb = Verb::kInvalid;
  std::string worker;        // HELLO/NEXT/LEASE/RENEW/DONE/PING/BYE
  std::uint64_t hash = 0;    // LEASE/DONE/GET
  std::uint64_t lease_id = 0;  // RENEW/DONE
  std::vector<std::uint64_t> hashes;  // MGET, request order
  std::string entry;         // LEASE: optional cache entry name
  std::string error;         // kInvalid: what was wrong with the line
};

/// Parse one request line (without the trailing '\n').  Never throws;
/// malformed input comes back as Verb::kInvalid with `error` set.
Request parse_request(const std::string& line);

/// Split on single spaces (empty tokens dropped).
std::vector<std::string> split_tokens(const std::string& line);

/// Strict 16-digit lower-case hex -> u64; false on anything else.
bool parse_hex16(const std::string& s, std::uint64_t* out);

/// The hex16 rendering (mirrors jobs::hex16, locally so the coord
/// layer stays below the harness).
std::string to_hex16(std::uint64_t v);

/// Where a coordinator lives.  One string form serves both transports:
///
///   /tmp/kop.sock   -> unix   (contains '/', or has no ':')
///   sweep.sock      -> unix   (no ':')
///   host:7641       -> tcp    (last ':' splits host from numeric port)
///   127.0.0.1:0     -> tcp    (port 0: kernel picks; Server reports it)
///
/// The same parse backs `kop_sweepd --listen`, `--coord` everywhere, and
/// the worker/client `--socket` flags, so every surface accepts every
/// address form.
struct Address {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix: filesystem path
  std::string host;  // kTcp
  int port = 0;      // kTcp
};

/// Parse an address string; false (with *error set) on empty input or a
/// TCP form with a non-numeric / out-of-range port.
bool parse_address(const std::string& s, Address* out, std::string* error);

}  // namespace kop::coord
