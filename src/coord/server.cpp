#include "coord/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace kop::coord {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

std::int64_t Server::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Server::bind_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("coord: bad socket path '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("coord: socket: ") +
                             std::strerror(errno));
  }
  // A previous daemon's socket file would make bind fail; it is dead by
  // definition (we are the daemon), so remove it.
  ::unlink(path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("coord: cannot listen on " + path + ": " + err);
  }
  unlink_path_ = path;
  bound_address_ = path;
}

void Server::bind_tcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  const std::string service = std::to_string(port);
  addrinfo* res = nullptr;
  const char* node =
      (host == "*" || host == "0.0.0.0") ? nullptr : host.c_str();
  const int rc = ::getaddrinfo(node, service.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("coord: cannot resolve " + host + ": " +
                             ::gai_strerror(rc));
  }
  listen_fd_ = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (listen_fd_ < 0) {
    ::freeaddrinfo(res);
    throw std::runtime_error(std::string("coord: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, res->ai_addr, res->ai_addrlen) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::freeaddrinfo(res);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("coord: cannot listen on " + host + ":" +
                             std::to_string(port) + ": " + err);
  }
  ::freeaddrinfo(res);
  // Report the port the kernel actually assigned (":0" = ephemeral).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  int actual = port;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    actual = static_cast<int>(ntohs(bound.sin_port));
  }
  bound_address_ = host + ":" + std::to_string(actual);
}

Server::Server(Coordinator* coord, ServerOptions opt)
    : coord_(coord), opt_(std::move(opt)) {
  const std::string& spec =
      opt_.address.empty() ? opt_.socket_path : opt_.address;
  Address addr;
  std::string err;
  if (opt_.address.empty()) {
    // socket_path is the legacy flag: always a unix path, even one with
    // a colon in its basename.
    addr.kind = Address::Kind::kUnix;
    addr.path = spec;
  } else if (!parse_address(spec, &addr, &err)) {
    throw std::runtime_error("coord: " + err);
  }
  if (addr.kind == Address::Kind::kUnix) {
    bind_unix(addr.path);
  } else {
    bind_tcp(addr.host, addr.port);
  }
  set_nonblocking(listen_fd_);
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const auto& [fd, conn] : conns_) ::close(fd);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

bool Server::flush(int fd, Conn& conn, std::int64_t now) {
  while (!conn.wbuf.empty()) {
    const ssize_t n =
        ::send(fd, conn.wbuf.data(), conn.wbuf.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    conn.wbuf.erase(0, static_cast<std::size_t>(n));
    conn.last_progress_ms = now;
  }
  return true;
}

bool Server::process_lines(Conn& conn, std::int64_t now) {
  std::size_t nl;
  while ((nl = conn.rbuf.find('\n')) != std::string::npos) {
    std::string line = conn.rbuf.substr(0, nl);
    conn.rbuf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    conn.wbuf += coord_->handle_line(line, now);
    conn.wbuf += '\n';
    if (coord_->shutdown_requested()) break;
  }
  // Runaway un-terminated line: no request is this big.
  if (conn.rbuf.size() > 1 << 20) return false;
  return true;
}

void Server::run() {
  auto close_fd = [&](int fd) {
    ::close(fd);
    conns_.erase(fd);
  };

  while (!stop_) {
    const std::int64_t tick_now = now_ms();
    coord_->tick(tick_now);
    if (coord_->shutdown_requested()) break;
    if (opt_.exit_when_drained && coord_->drained()) break;

    // Reap connections stalled mid-frame (partial request in, or reply
    // bytes we cannot push out).  A quiet connection with empty buffers
    // is healthy by definition and never reaped here.
    if (opt_.io_timeout_ms > 0) {
      for (auto it = conns_.begin(); it != conns_.end();) {
        const Conn& c = it->second;
        const bool mid_frame = !c.rbuf.empty() || !c.wbuf.empty();
        if (mid_frame && tick_now - c.last_progress_ms > opt_.io_timeout_ms) {
          ::close(it->first);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      const short events =
          conn.wbuf.empty() ? POLLIN : static_cast<short>(POLLIN | POLLOUT);
      fds.push_back({fd, events, 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), opt_.poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;

    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        Conn conn;
        conn.last_progress_ms = now_ms();
        conns_.emplace(fd, std::move(conn));
      }
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      const std::int64_t now = now_ms();
      bool broken = (fds[i].revents & POLLERR) != 0;

      if (!broken && (fds[i].revents & (POLLIN | POLLHUP)) != 0) {
        for (;;) {
          char chunk[4096];
          const ssize_t n = ::read(fd, chunk, sizeof(chunk));
          if (n > 0) {
            conn.rbuf.append(chunk, static_cast<std::size_t>(n));
            conn.last_progress_ms = now;
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          broken = true;  // EOF or hard error
          break;
        }
        if (!conn.rbuf.empty() && !process_lines(conn, now)) broken = true;
        // A half-closed peer still gets the replies to what it sent;
        // drop it only once nothing is owed.
        if (broken && !conn.wbuf.empty()) broken = false;
      }
      if (!broken && !flush(fd, conn, now)) broken = true;
      if (!broken && conn.wbuf.size() > opt_.max_write_buffer) {
        // Slow reader: it stopped draining replies.  Cut it loose; its
        // leases come back via liveness/TTL reclaim.
        broken = true;
      }
      if (broken) close_fd(fd);
      if (coord_->shutdown_requested()) break;
    }
  }
  for (const auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
}

}  // namespace kop::coord
