#include "coord/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace kop::coord {

namespace {

// Write all of `data`, retrying short writes; false on a broken pipe.
// MSG_NOSIGNAL: a client that vanished mid-reply is a return value,
// not a process-killing SIGPIPE.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::int64_t Server::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Server::Server(Coordinator* coord, ServerOptions opt)
    : coord_(coord), opt_(std::move(opt)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.empty() ||
      opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("coord: bad socket path '" + opt_.socket_path +
                             "'");
  }
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
              opt_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("coord: socket: ") +
                             std::strerror(errno));
  }
  // A previous daemon's socket file would make bind fail; it is dead by
  // definition (we are the daemon), so remove it.
  ::unlink(opt_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("coord: cannot listen on " + opt_.socket_path +
                             ": " + err);
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(opt_.socket_path.c_str());
}

void Server::run() {
  // Per-connection receive buffers (lines may arrive split).
  std::map<int, std::string> buffers;

  auto close_fd = [&](int fd) {
    ::close(fd);
    buffers.erase(fd);
  };

  while (!stop_) {
    coord_->tick(now_ms());
    if (coord_->shutdown_requested()) break;
    if (opt_.exit_when_drained && coord_->drained()) break;

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, buf] : buffers) fds.push_back({fd, POLLIN, 0});

    const int ready = ::poll(fds.data(), fds.size(), opt_.poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;

    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) buffers.try_emplace(fd);
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int fd = fds[i].fd;
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        close_fd(fd);
        continue;
      }
      std::string& buf = buffers[fd];
      buf.append(chunk, static_cast<std::size_t>(n));
      // Handle every complete line; requests are independent, so a
      // pipelined client works too.
      bool broken = false;
      std::size_t nl;
      while (!broken && (nl = buf.find('\n')) != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        const std::string response = coord_->handle_line(line, now_ms());
        broken = !write_all(fd, response + "\n");
      }
      if (buf.size() > 1 << 20) broken = true;  // runaway un-terminated line
      if (broken) close_fd(fd);
      if (coord_->shutdown_requested()) break;
    }
  }
  for (const auto& [fd, buf] : buffers) ::close(fd);
}

}  // namespace kop::coord
