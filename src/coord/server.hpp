// Socket front-end for the Coordinator: a single-threaded poll loop
// over a Unix-domain or TCP stream socket.
//
// One thread, no locks: every request line is handled to completion
// before the next is read, so the Coordinator needs no internal
// synchronization and request interleaving is a total order (which is
// what makes the STATS counters exact).  Between polls the loop calls
// Coordinator::tick() with steady-clock time -- liveness and lease
// expiry advance even when no requests arrive.
//
// Transports share everything above the fd: the address string decides
// (proto.hpp parse_address).  A Unix socket is still the right default
// for one box or one shared filesystem (hermetic CI smokes); TCP is for
// the multi-box sweeps where workers live on other machines.
//
// Slow-worker isolation: all connection fds are non-blocking.  Replies
// queue in a per-connection write buffer drained on POLLOUT, capped at
// max_write_buffer (a reader that stops reading gets closed, not
// waited on), and a connection sitting mid-request or mid-reply with no
// socket progress for io_timeout_ms is dropped.  Idle-but-healthy
// connections (no partial frame either way) are never timed out -- the
// liveness layer owns worker health, the transport only owns frames.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "coord/coordinator.hpp"

namespace kop::coord {

struct ServerOptions {
  /// Where to listen: a unix socket path or host:port (parse_address).
  /// TCP port 0 binds an ephemeral port; bound_address() reports it.
  std::string address;
  /// Legacy alias for `address` (always treated as a unix path).  Used
  /// only when `address` is empty.
  std::string socket_path;
  /// Poll timeout between ticks.
  int poll_ms = 100;
  /// Exit the loop once the sweep is drained (CI smoke mode).  The
  /// loop still answers requests until the last connection closes.
  bool exit_when_drained = false;
  /// Drop a connection whose partial request or undrained reply makes
  /// no socket progress for this long.  <= 0 disables.
  std::int64_t io_timeout_ms = 30000;
  /// Close a connection once its pending replies exceed this (a slow or
  /// dead reader must not grow the heap or stall the loop).
  std::size_t max_write_buffer = 4u << 20;
};

class Server {
 public:
  /// Binds and listens; throws std::runtime_error on socket errors.
  Server(Coordinator* coord, ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve until SHUTDOWN is received, stop() is called from another
  /// thread, or (with exit_when_drained) the sweep completes.
  void run();

  /// Async-signal-safe-ish stop flag (checked every poll round).
  void stop() { stop_ = true; }

  /// The address actually bound: the unix path, or host:port with the
  /// kernel-assigned port substituted when the caller asked for port 0.
  const std::string& bound_address() const { return bound_address_; }

  /// Milliseconds on the steady clock (the server's time base).
  static std::int64_t now_ms();

 private:
  struct Conn {
    std::string rbuf;               // partial request line(s)
    std::string wbuf;               // undrained reply bytes
    std::int64_t last_progress_ms = 0;  // last successful read/write
  };

  void bind_unix(const std::string& path);
  void bind_tcp(const std::string& host, int port);
  /// Run every complete line in `conn.rbuf` through the coordinator and
  /// queue the replies.  False when the connection must close.
  bool process_lines(Conn& conn, std::int64_t now);
  /// Drain as much of `conn.wbuf` as the socket accepts right now.
  /// False on a broken connection.
  bool flush(int fd, Conn& conn, std::int64_t now);

  Coordinator* coord_;
  ServerOptions opt_;
  std::string bound_address_;
  std::string unlink_path_;  // non-empty: unix socket file to remove
  int listen_fd_ = -1;
  std::map<int, Conn> conns_;
  volatile bool stop_ = false;
};

}  // namespace kop::coord
