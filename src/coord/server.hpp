// Socket front-end for the Coordinator: a single-threaded poll loop
// over a Unix-domain stream socket.
//
// One thread, no locks: every request line is handled to completion
// before the next is read, so the Coordinator needs no internal
// synchronization and request interleaving is a total order (which is
// what makes the STATS counters exact).  Between polls the loop calls
// Coordinator::tick() with steady-clock time -- liveness and lease
// expiry advance even when no requests arrive.
//
// A Unix socket (not TCP) because the serving path's unit of deployment
// is one machine or one shared filesystem, the same scope --shard-claim
// already assumes; it also makes the CI smoke hermetic.
#pragma once

#include <cstdint>
#include <string>

#include "coord/coordinator.hpp"

namespace kop::coord {

struct ServerOptions {
  std::string socket_path;
  /// Poll timeout between ticks.
  int poll_ms = 100;
  /// Exit the loop once the sweep is drained (CI smoke mode).  The
  /// loop still answers requests until the last connection closes.
  bool exit_when_drained = false;
};

class Server {
 public:
  /// Binds and listens; throws std::runtime_error on socket errors.
  Server(Coordinator* coord, ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve until SHUTDOWN is received, stop() is called from another
  /// thread, or (with exit_when_drained) the sweep completes.
  void run();

  /// Async-signal-safe-ish stop flag (checked every poll round).
  void stop() { stop_ = true; }

  const std::string& socket_path() const { return opt_.socket_path; }

  /// Milliseconds on the steady clock (the server's time base).
  static std::int64_t now_ms();

 private:
  void serve_connection(int fd);

  Coordinator* coord_;
  ServerOptions opt_;
  int listen_fd_ = -1;
  volatile bool stop_ = false;
};

}  // namespace kop::coord
