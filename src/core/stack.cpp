#include "core/stack.hpp"

#include <stdexcept>

#include "hw/topology.hpp"
#include "komp/tuning.hpp"
#include "linuxmodel/linux_os.hpp"
#include "nautilus/kernel.hpp"
#include "pik/pik.hpp"
#include "rtk/rtk.hpp"

namespace kop::core {

const char* path_name(PathKind p) {
  switch (p) {
    case PathKind::kLinuxOmp: return "linux-omp";
    case PathKind::kRtk: return "rtk";
    case PathKind::kPik: return "pik";
    case PathKind::kAutoMpLinux: return "linux-automp";
    case PathKind::kAutoMpNautilus: return "nk-automp";
  }
  return "?";
}

namespace {

void apply_env(osal::Os& os, const StackConfig& config) {
  if (config.num_threads > 0)
    os.set_env("OMP_NUM_THREADS", std::to_string(config.num_threads));
  for (const auto& [k, v] : config.env) os.set_env(k, v);
  if (config.numa_migrate) os.set_next_touch_migration(true);
}

int effective_width(const StackConfig& config, const hw::MachineConfig& m) {
  return config.num_threads > 0 ? std::min(config.num_threads, m.num_cpus)
                                : m.num_cpus;
}

[[noreturn]] void wrong_path(const char* wanted, PathKind actual) {
  throw std::logic_error(std::string("Stack: ") + wanted +
                         " is not runnable on path " + path_name(actual));
}

class LinuxOmpStack final : public Stack {
 public:
  explicit LinuxOmpStack(StackConfig config)
      : config_(std::move(config)),
        machine_(hw::machine_by_name(config_.machine)),
        engine_(config_.seed, config_.sched),
        os_(engine_, machine_),
        pthreads_(os_, pthread_compat::linux_glibc_tuning()) {
    if (config_.racecheck) engine_.enable_racecheck();
    apply_env(os_, config_);
  }

  PathKind path() const override { return PathKind::kLinuxOmp; }
  sim::Engine& engine() override { return engine_; }
  osal::Os& os() override { return os_; }
  const StackConfig& config() const override { return config_; }

  int run_omp_app(OmpApp app) override {
    int code = -1;
    os_.spawn_thread(
        "main",
        [this, app = std::move(app), &code]() {
          komp::Runtime runtime(pthreads_, komp::linux_libomp_tuning());
          code = app(runtime);
        },
        /*cpu=*/0);
    engine_.run();
    return code;
  }

  int run_cck_app(CckApp) override { wrong_path("CckApp", path()); }

 private:
  StackConfig config_;
  hw::MachineConfig machine_;
  sim::Engine engine_;
  linuxmodel::LinuxOs os_;
  pthread_compat::Pthreads pthreads_;
};

class RtkPathStack final : public Stack {
 public:
  explicit RtkPathStack(StackConfig config) : config_(std::move(config)) {
    rtk::RtkOptions opts;
    opts.machine = hw::machine_by_name(config_.machine);
    opts.kernel_config.first_touch_at_2mb = config_.nk_first_touch;
    opts.use_pte_pthreads = config_.rtk_use_pte;
    opts.seed = config_.seed;
    opts.sched = config_.sched;
    opts.racecheck = config_.racecheck;
    opts.app_static_bytes = config_.app_static_bytes;
    impl_ = std::make_unique<rtk::RtkStack>(std::move(opts));
    apply_env(impl_->kernel(), config_);
  }

  PathKind path() const override { return PathKind::kRtk; }
  sim::Engine& engine() override { return impl_->engine(); }
  osal::Os& os() override { return impl_->kernel(); }
  const StackConfig& config() const override { return config_; }

  int run_omp_app(OmpApp app) override { return impl_->run_app(std::move(app)); }
  int run_cck_app(CckApp) override { wrong_path("CckApp", path()); }

  rtk::RtkStack& rtk() { return *impl_; }

 private:
  StackConfig config_;
  std::unique_ptr<rtk::RtkStack> impl_;
};

class PikPathStack final : public Stack {
 public:
  explicit PikPathStack(StackConfig config) : config_(std::move(config)) {
    pik::PikOptions opts;
    opts.machine = hw::machine_by_name(config_.machine);
    opts.seed = config_.seed;
    opts.sched = config_.sched;
    opts.racecheck = config_.racecheck;
    opts.app_static_bytes = config_.app_static_bytes;
    impl_ = std::make_unique<pik::PikStack>(std::move(opts));
    apply_env(impl_->os(), config_);
  }

  PathKind path() const override { return PathKind::kPik; }
  sim::Engine& engine() override { return impl_->engine(); }
  osal::Os& os() override { return impl_->os(); }
  const StackConfig& config() const override { return config_; }

  int run_omp_app(OmpApp app) override {
    return impl_->run_app("app", std::move(app));
  }
  int run_cck_app(CckApp) override { wrong_path("CckApp", path()); }

  pik::PikStack& pik() { return *impl_; }

 private:
  StackConfig config_;
  std::unique_ptr<pik::PikStack> impl_;
};

class AutoMpLinuxStack final : public Stack {
 public:
  explicit AutoMpLinuxStack(StackConfig config)
      : config_(std::move(config)),
        machine_(hw::machine_by_name(config_.machine)),
        engine_(config_.seed, config_.sched),
        os_(engine_, machine_) {
    if (config_.racecheck) engine_.enable_racecheck();
    apply_env(os_, config_);
  }

  PathKind path() const override { return PathKind::kAutoMpLinux; }
  sim::Engine& engine() override { return engine_; }
  osal::Os& os() override { return os_; }
  const StackConfig& config() const override { return config_; }

  int run_omp_app(OmpApp) override { wrong_path("OmpApp", path()); }

  int run_cck_app(CckApp app) override {
    const int width = effective_width(config_, machine_);
    int code = -1;
    os_.spawn_thread(
        "main",
        [this, width, app = std::move(app), &code]() {
          virgil::UserVirgil vg(os_, width);
          vg.start();
          code = app(os_, vg);
          vg.stop();
        },
        /*cpu=*/0);
    engine_.run();
    return code;
  }

 private:
  StackConfig config_;
  hw::MachineConfig machine_;
  sim::Engine engine_;
  linuxmodel::LinuxOs os_;
};

class AutoMpNautilusStack final : public Stack {
 public:
  explicit AutoMpNautilusStack(StackConfig config)
      : config_(std::move(config)),
        machine_(hw::machine_by_name(config_.machine)) {
    // CCK links the app into the boot image like RTK does: same
    // MMIO-overlap constraint (§6.2).
    nautilus::BootImage image;
    image.kernel_bytes = 48ULL << 20;
    image.app_static_bytes = config_.app_static_bytes;
    nautilus::BootLayout::check(machine_, image);

    engine_ = std::make_unique<sim::Engine>(config_.seed, config_.sched);
    if (config_.racecheck) engine_->enable_racecheck();
    nautilus::NautilusConfig kc;
    kc.first_touch_at_2mb = config_.nk_first_touch;
    kernel_ = std::make_unique<nautilus::NautilusKernel>(*engine_, machine_, kc);
    apply_env(*kernel_, config_);
  }

  PathKind path() const override { return PathKind::kAutoMpNautilus; }
  sim::Engine& engine() override { return *engine_; }
  osal::Os& os() override { return *kernel_; }
  const StackConfig& config() const override { return config_; }

  int run_omp_app(OmpApp) override { wrong_path("OmpApp", path()); }

  int run_cck_app(CckApp app) override {
    const int width = effective_width(config_, machine_);
    int code = -1;
    kernel_->spawn_thread(
        "main",
        [this, width, app = std::move(app), &code]() {
          kernel_->task_system().start(width);
          virgil::KernelVirgil vg(*kernel_, width);
          code = app(*kernel_, vg);
          kernel_->task_system().stop();
        },
        /*cpu=*/0);
    engine_->run();
    return code;
  }

 private:
  StackConfig config_;
  hw::MachineConfig machine_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<nautilus::NautilusKernel> kernel_;
};

}  // namespace

std::unique_ptr<Stack> Stack::create(const StackConfig& config) {
  switch (config.path) {
    case PathKind::kLinuxOmp:
      return std::make_unique<LinuxOmpStack>(config);
    case PathKind::kRtk:
      return std::make_unique<RtkPathStack>(config);
    case PathKind::kPik:
      return std::make_unique<PikPathStack>(config);
    case PathKind::kAutoMpLinux:
      return std::make_unique<AutoMpLinuxStack>(config);
    case PathKind::kAutoMpNautilus:
      return std::make_unique<AutoMpNautilusStack>(config);
  }
  throw std::invalid_argument("Stack::create: unknown path");
}

}  // namespace kop::core
