// The public facade of the library: assemble a complete stack for any
// of the paper's evaluated configurations and run an application on it.
//
//   kLinuxOmp       -- the baseline: libomp on glibc pthreads on Linux
//   kRtk            -- §3: libomp ported into Nautilus
//   kPik            -- §4: pristine libomp binary in a kernel process
//   kAutoMpLinux    -- §5: CCK-compiled tasks on user-level VIRGIL
//   kAutoMpNautilus -- §5: CCK-compiled tasks on kernel VIRGIL
//
// libomp paths run OmpApps (code written against komp::Runtime, i.e.
// "compiled with -fopenmp"); AutoMP paths run CckApps (code that
// builds a cck::Module, compiles it, and executes the task program).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "komp/runtime.hpp"
#include "osal/osal.hpp"
#include "sim/engine.hpp"
#include "virgil/virgil.hpp"

namespace kop::core {

enum class PathKind { kLinuxOmp, kRtk, kPik, kAutoMpLinux, kAutoMpNautilus };

const char* path_name(PathKind p);

struct StackConfig {
  std::string machine = "phi";
  PathKind path = PathKind::kLinuxOmp;
  /// Execution width (OMP_NUM_THREADS / VIRGIL lanes); 0 = all CPUs.
  int num_threads = 0;
  std::uint64_t seed = 42;
  /// Ready-queue tie-break policy for the engine: FIFO (default), or a
  /// seeded random / PCT-style perturbation for schedule exploration.
  sim::SchedConfig sched;
  /// Attach the vector-clock race detector to the engine.
  bool racecheck = false;
  /// RTK: use the PTE pthread port (Fig. 2a) instead of the customized
  /// layer (Fig. 2b).
  bool rtk_use_pte = false;
  /// Nautilus §6.3 extension: first-touch allocation at 2 MB.
  bool nk_first_touch = false;
  /// Link-time static data of the app (RTK/CCK boot-image constraint).
  std::uint64_t app_static_bytes = 64ULL << 20;
  /// Migration-on-next-touch placement: arm every app allocation so its
  /// first access per slice re-homes the slice to the toucher's
  /// preferred DRAM zone (third policy beside first-touch/interleave).
  bool numa_migrate = false;
  /// Extra environment for the run (OMP_SCHEDULE, KMP_BLOCKTIME, ...).
  std::vector<std::pair<std::string, std::string>> env;
};

class Stack {
 public:
  virtual ~Stack() = default;

  /// Build the full stack for a configuration.  Throws
  /// nautilus::BootOverlapError if an RTK/CCK boot image cannot fit.
  static std::unique_ptr<Stack> create(const StackConfig& config);

  virtual PathKind path() const = 0;
  virtual sim::Engine& engine() = 0;
  virtual osal::Os& os() = 0;
  virtual const StackConfig& config() const = 0;

  using OmpApp = std::function<int(komp::Runtime&)>;
  using CckApp = std::function<int(osal::Os&, virgil::Virgil&)>;

  /// Run an OpenMP application (libomp paths only; throws otherwise).
  /// Drains the engine; returns the app's exit code.
  virtual int run_omp_app(OmpApp app) = 0;
  /// Run a CCK/AutoMP application (AutoMP paths only; throws otherwise).
  virtual int run_cck_app(CckApp app) = 0;

  /// Whether this path runs OmpApps (vs CckApps).
  bool is_omp_path() const {
    return path() == PathKind::kLinuxOmp || path() == PathKind::kRtk ||
           path() == PathKind::kPik;
  }
};

}  // namespace kop::core
