#include "epcc/epcc.hpp"

#include <functional>
#include <sstream>

namespace kop::epcc {

Suite::Suite(komp::Runtime& rt, EpccConfig config) : rt_(&rt), cfg_(config) {}

double Suite::now_us() const { return sim::to_micros(rt_->os().engine().now()); }

Measurement Suite::make(const std::string& group, const std::string& name,
                        bool reference) const {
  Measurement m;
  m.group = group;
  m.name = name;
  m.reference = reference;
  return m;
}

void Suite::sample(Measurement& m, sim::Time per_construct_delay,
                   const std::function<void()>& total_fn) {
  // What the nominal delay actually costs on this machine/OS (faster
  // cores shrink it, no-red-zone codegen inflates it) -- the measured
  // reference EPCC subtracts.
  const double effective_delay_us =
      sim::to_micros(per_construct_delay) *
      rt_->os().costs().compute_inflation / rt_->os().machine().perf_factor;
  for (int rep = 0; rep < cfg_.outer_reps; ++rep) {
    const double t0 = now_us();
    total_fn();
    const double t1 = now_us();
    const double per_construct = (t1 - t0) / cfg_.inner_iters;
    m.overhead_us.add(per_construct - effective_delay_us);
  }
}

// ---------------------------------------------------------------- sync

std::vector<Measurement> Suite::run_syncbench() {
  // Warmup (stack boot, pool spin-up) ends here; everything below is
  // the measurement phase a checkpointed sweep forks at.
  rt_->os().engine().snapshot_point();
  std::vector<Measurement> out;
  komp::Runtime& rt = *rt_;
  const sim::Time delay = cfg_.delay_ns;
  const sim::Time mdelay = cfg_.mutex_delay_ns;
  const int inner = cfg_.inner_iters;

  // reference: the delay alone, on the master thread.
  {
    auto m = make("SYNCH", "reference", true);
    sample(m, delay, [&] {
      for (int i = 0; i < inner; ++i) rt.os().compute_ns(delay);
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "PARALLEL");
    sample(m, delay, [&] {
      for (int i = 0; i < inner; ++i)
        rt.parallel([&](komp::TeamThread& tt) { tt.compute_ns(delay); });
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "FOR");
    sample(m, delay, [&] {
      rt.parallel([&](komp::TeamThread& tt) {
        const int n = tt.nthreads();
        for (int i = 0; i < inner; ++i) {
          tt.for_loop(komp::Schedule::kStatic, 0, 0, n,
                      [&](std::int64_t b, std::int64_t e) {
                        tt.compute_ns(delay * (e - b));
                      });
        }
      });
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "PARALLEL_FOR");
    sample(m, delay, [&] {
      for (int i = 0; i < inner; ++i) {
        rt.parallel([&](komp::TeamThread& tt) {
          tt.for_loop(komp::Schedule::kStatic, 0, 0, tt.nthreads(),
                      [&](std::int64_t, std::int64_t) { tt.compute_ns(delay); });
        });
      }
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "BARRIER");
    sample(m, delay, [&] {
      rt.parallel([&](komp::TeamThread& tt) {
        for (int i = 0; i < inner; ++i) {
          tt.compute_ns(delay);
          tt.barrier();
        }
      });
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "SINGLE");
    sample(m, delay, [&] {
      rt.parallel([&](komp::TeamThread& tt) {
        for (int i = 0; i < inner; ++i)
          tt.single([&] { tt.compute_ns(delay); });
      });
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "CRITICAL");
    sample(m, mdelay, [&] {
      rt.parallel([&](komp::TeamThread& tt) {
        for (int i = 0; i < inner; ++i)
          tt.critical("epcc", [&] { tt.compute_ns(mdelay); });
      });
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "LOCK/UNLOCK");
    auto lock = rt.make_lock();
    sample(m, mdelay, [&] {
      rt.parallel([&](komp::TeamThread& tt) {
        for (int i = 0; i < inner; ++i) {
          lock->set();
          tt.compute_ns(mdelay);
          lock->unset();
        }
      });
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "ORDERED");
    sample(m, mdelay, [&] {
      rt.parallel([&](komp::TeamThread& tt) {
        // inner ordered iterations spread over the team.
        tt.for_ordered(0, inner, [&](std::int64_t) { tt.compute_ns(mdelay); });
      });
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "ATOMIC");
    sample(m, 0, [&] {
      rt.parallel([&](komp::TeamThread& tt) {
        for (int i = 0; i < inner; ++i) tt.atomic_update();
      });
    });
    out.push_back(std::move(m));
  }
  {
    auto m = make("SYNCH", "REDUCTION");
    sample(m, delay, [&] {
      for (int i = 0; i < inner; ++i) {
        rt.parallel([&](komp::TeamThread& tt) {
          tt.compute_ns(delay);
          tt.reduce(1.0, komp::ReduceOp::kSum);
        });
      }
    });
    out.push_back(std::move(m));
  }
  return out;
}

// ------------------------------------------------------------ schedule

std::vector<Measurement> Suite::run_schedbench() {
  rt_->os().engine().snapshot_point();
  std::vector<Measurement> out;
  komp::Runtime& rt = *rt_;
  // Per-iteration delay, EPCC schedbench style.
  const sim::Time iter_delay = 1 * sim::kMicrosecond;
  const int inner = cfg_.inner_iters;

  {
    auto m = make("SCHEDULE", "reference", true);
    sample(m, iter_delay * cfg_.sched_iters_per_thread, [&] {
      for (int i = 0; i < inner; ++i) {
        for (int k = 0; k < cfg_.sched_iters_per_thread; ++k)
          rt.os().compute_ns(iter_delay);
      }
    });
    out.push_back(std::move(m));
  }

  auto run_sched = [&](const std::string& name, komp::Schedule sched,
                       int chunk) {
    auto m = make("SCHEDULE", name);
    sample(m, iter_delay * cfg_.sched_iters_per_thread, [&] {
      rt.parallel([&](komp::TeamThread& tt) {
        const std::int64_t total =
            static_cast<std::int64_t>(tt.nthreads()) *
            cfg_.sched_iters_per_thread;
        for (int i = 0; i < inner; ++i) {
          tt.for_loop(sched, chunk, 0, total,
                      [&](std::int64_t b, std::int64_t e) {
                        tt.compute_ns(iter_delay * (e - b));
                      });
        }
      });
    });
    out.push_back(std::move(m));
  };

  run_sched("STATIC", komp::Schedule::kStatic, 0);
  for (int chunk : {1, 2, 4, 8, 16, 32, 64, 128})
    run_sched("STATIC_" + std::to_string(chunk),
              komp::Schedule::kStaticChunked, chunk);
  for (int chunk : {1, 2, 4, 8, 16, 32, 64, 128})
    run_sched("DYNAMIC_" + std::to_string(chunk), komp::Schedule::kDynamic,
              chunk);
  for (int chunk : {1, 2})
    run_sched("GUIDED_" + std::to_string(chunk), komp::Schedule::kGuided,
              chunk);
  return out;
}

// --------------------------------------------------------------- array

std::vector<Measurement> Suite::run_arraybench() {
  rt_->os().engine().snapshot_point();
  std::vector<Measurement> out;
  komp::Runtime& rt = *rt_;
  const sim::Time delay = cfg_.delay_ns;
  const int inner = cfg_.inner_iters;

  {
    auto m = make("ARRAY", "reference", true);
    sample(m, delay, [&] {
      for (int i = 0; i < inner; ++i) rt.os().compute_ns(delay);
    });
    out.push_back(std::move(m));
  }
  for (const std::uint64_t size_doubles : cfg_.array_sizes) {
    const std::uint64_t bytes = size_doubles * 8;
    const std::string size_tag = std::to_string(size_doubles);
  {
    // private: per-thread stack allocation, no copy.
    auto m = make("ARRAY", "PRIVATE_" + size_tag);
    sample(m, delay, [&] {
      for (int i = 0; i < inner; ++i)
        rt.parallel([&](komp::TeamThread& tt) { tt.compute_ns(delay); });
    });
    out.push_back(std::move(m));
  }
  {
    // firstprivate: every thread copies the master's array in.
    auto m = make("ARRAY", "FIRSTPRIVATE_" + size_tag);
    sample(m, delay, [&] {
      for (int i = 0; i < inner; ++i) {
        rt.parallel([&](komp::TeamThread& tt) {
          tt.charge_memcpy(bytes);
          tt.compute_ns(delay);
        });
      }
    });
    out.push_back(std::move(m));
  }
  {
    // copyprivate: one thread fills it, the rest copy out.
    auto m = make("ARRAY", "COPYPRIVATE_" + size_tag);
    sample(m, delay, [&] {
      for (int i = 0; i < inner; ++i) {
        rt.parallel([&](komp::TeamThread& tt) {
          tt.copyprivate(bytes, [&] { tt.compute_ns(delay); });
        });
      }
    });
    out.push_back(std::move(m));
  }
  {
    // copyin: threadprivate data propagated from master at region entry.
    auto m = make("ARRAY", "COPYIN_" + size_tag);
    sample(m, delay, [&] {
      for (int i = 0; i < inner; ++i) {
        rt.parallel([&](komp::TeamThread& tt) {
          if (tt.id() != 0) tt.charge_memcpy(bytes);
          tt.barrier();
          tt.compute_ns(delay);
        });
      }
    });
    out.push_back(std::move(m));
  }
  }  // size sweep
  return out;
}

// ---------------------------------------------------------------- task

std::vector<Measurement> Suite::run_taskbench() {
  rt_->os().engine().snapshot_point();
  std::vector<Measurement> out;
  komp::Runtime& rt = *rt_;
  const sim::Time delay = 2 * sim::kMicrosecond;  // per-task work
  const int per_thread = cfg_.tasks_per_thread;
  const int inner = cfg_.inner_iters;

  // Total delay per construct instance: every thread runs per_thread
  // tasks' worth of work.
  const sim::Time construct_delay = delay * per_thread;

  {
    auto m = make("TASK", "reference_1", true);
    sample(m, construct_delay, [&] {
      for (int i = 0; i < inner; ++i) {
        for (int k = 0; k < per_thread; ++k) rt.os().compute_ns(delay);
      }
    });
    out.push_back(std::move(m));
  }

  auto run_task_bench = [&](const std::string& name, auto region_body) {
    auto m = make("TASK", name);
    sample(m, construct_delay, [&] {
      for (int i = 0; i < inner; ++i) rt.parallel(region_body);
    });
    out.push_back(std::move(m));
  };

  run_task_bench("PARALLEL_TASK", [&](komp::TeamThread& tt) {
    for (int k = 0; k < per_thread; ++k)
      tt.task([&](komp::TeamThread& ex) { ex.compute_ns(delay); });
  });

  run_task_bench("MASTER_TASK", [&](komp::TeamThread& tt) {
    tt.master([&] {
      for (int k = 0; k < per_thread * tt.nthreads(); ++k)
        tt.task([&](komp::TeamThread& ex) { ex.compute_ns(delay); });
    });
  });

  run_task_bench("MASTER_TASK_BUSY_SLAVES", [&](komp::TeamThread& tt) {
    if (tt.id() == 0) {
      for (int k = 0; k < per_thread * tt.nthreads(); ++k)
        tt.task([&](komp::TeamThread& ex) { ex.compute_ns(delay); });
    } else {
      for (int k = 0; k < per_thread; ++k) tt.compute_ns(delay);
    }
  });

  run_task_bench("CONDITIONAL_TASK", [&](komp::TeamThread& tt) {
    for (int k = 0; k < per_thread; ++k)
      tt.task_if(false, [&](komp::TeamThread& ex) { ex.compute_ns(delay); });
  });

  run_task_bench("TASK_WAIT", [&](komp::TeamThread& tt) {
    for (int k = 0; k < per_thread; ++k) {
      tt.task([&](komp::TeamThread& ex) { ex.compute_ns(delay); });
    }
    tt.taskwait();
  });

  run_task_bench("TASK_BARRIER", [&](komp::TeamThread& tt) {
    for (int k = 0; k < per_thread; ++k)
      tt.task([&](komp::TeamThread& ex) { ex.compute_ns(delay); });
    tt.barrier();
  });

  run_task_bench("NESTED_TASK", [&](komp::TeamThread& tt) {
    for (int k = 0; k < per_thread / 4; ++k) {
      tt.task([&, delay](komp::TeamThread& ex) {
        for (int j = 0; j < 4; ++j)
          ex.task([&, delay](komp::TeamThread& ex2) { ex2.compute_ns(delay); });
        ex.taskwait();
      });
    }
  });

  run_task_bench("NESTED_MASTER_TASK", [&](komp::TeamThread& tt) {
    tt.master([&] {
      for (int k = 0; k < (per_thread * tt.nthreads()) / 4; ++k) {
        tt.task([&, delay](komp::TeamThread& ex) {
          for (int j = 0; j < 4; ++j)
            ex.task(
                [&, delay](komp::TeamThread& ex2) { ex2.compute_ns(delay); });
          ex.taskwait();
        });
      }
    });
  });

  // Task trees: reference then branch/leaf variants.
  const int depth = cfg_.tree_depth;
  const int tree_nodes = (1 << (depth + 1)) - 1;
  const sim::Time tree_delay_total = delay * tree_nodes;
  {
    auto m = make("TASK", "reference_2", true);
    sample(m, tree_delay_total, [&] {
      for (int i = 0; i < inner; ++i) {
        for (int k = 0; k < tree_nodes; ++k) rt.os().compute_ns(delay);
      }
    });
    out.push_back(std::move(m));
  }

  // BENCH_TASK_TREE: every node does work; LEAF_TASK_TREE: only leaves.
  std::function<void(komp::TeamThread&, int, bool)> spawn_tree =
      [&](komp::TeamThread& tt, int d, bool work_at_nodes) {
        if (work_at_nodes || d == 0) tt.compute_ns(delay);
        if (d == 0) return;
        for (int c = 0; c < 2; ++c) {
          tt.task([&spawn_tree, d, work_at_nodes](komp::TeamThread& ex) {
            spawn_tree(ex, d - 1, work_at_nodes);
          });
        }
        tt.taskwait();
      };

  run_task_bench("BENCH_TASK_TREE", [&](komp::TeamThread& tt) {
    tt.master([&] { spawn_tree(tt, depth, true); });
    tt.barrier();
  });
  run_task_bench("LEAF_TASK_TREE", [&](komp::TeamThread& tt) {
    tt.master([&] { spawn_tree(tt, depth, false); });
    tt.barrier();
  });

  return out;
}

std::vector<Measurement> Suite::run_all() {
  std::vector<Measurement> out;
  for (auto&& part :
       {run_arraybench(), run_schedbench(), run_syncbench(), run_taskbench()}) {
    for (auto& m : part) out.push_back(m);
  }
  return out;
}

std::string format_table(const std::string& title,
                         const std::vector<Measurement>& ms) {
  std::ostringstream oss;
  oss << title << "\n";
  oss << "  construct                        mean_us     sd_us\n";
  for (const auto& m : ms) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %-28s %10.3f %9.3f%s\n", m.name.c_str(),
                  m.overhead_us.mean(), m.overhead_us.stddev(),
                  m.reference ? "  (reference)" : "");
    oss << buf;
  }
  return oss.str();
}

}  // namespace kop::epcc
