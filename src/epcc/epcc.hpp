// The Edinburgh OpenMP Microbenchmark Suite (EPCC) re-implemented
// against komp (paper §2.2, Figs. 7/8/13).
//
// Methodology follows Bull et al.: each benchmark measures the time of
// `inner_iters` instances of a directive wrapping a known delay, over
// `outer_reps` samples; the reported overhead is the per-instance time
// minus the same delay measured without the directive (the
// "reference").  All times are virtual microseconds.
#pragma once

#include <string>
#include <vector>

#include "komp/runtime.hpp"
#include "sim/stats.hpp"

namespace kop::epcc {

struct EpccConfig {
  int outer_reps = 8;
  int inner_iters = 32;
  /// The delay executed inside each measured construct (EPCC's
  /// calibrated delaytime is on the order of a microsecond).
  sim::Time delay_ns = 1 * sim::kMicrosecond;
  /// Shorter delay for mutual-exclusion constructs (critical, lock,
  /// atomic, ordered), as in the EPCC sources.
  sim::Time mutex_delay_ns = 200;
  /// Iterations of each scheduling-overhead loop, per thread.
  int sched_iters_per_thread = 64;
  /// Array sizes (in doubles) for arraybench; EPCC sweeps powers of 3
  /// up to 59049.  Default: the biggest standard size (what Figs. 7/8
  /// plot).
  std::vector<std::uint64_t> array_sizes = {59049};
  /// Tasks per thread in taskbench.
  int tasks_per_thread = 16;
  /// Depth of the task trees.
  int tree_depth = 6;
};

struct Measurement {
  std::string group;  // SYNCH / SCHEDULE / ARRAY / TASK
  std::string name;   // e.g. "PARALLEL", "DYNAMIC_4"
  sim::Stats overhead_us;
  bool reference = false;
};

/// Runs the suite on an initialized runtime.  Must be called from the
/// application's main thread (inside Stack::run_omp_app).
class Suite {
 public:
  Suite(komp::Runtime& rt, EpccConfig config = {});

  std::vector<Measurement> run_syncbench();
  std::vector<Measurement> run_schedbench();
  std::vector<Measurement> run_arraybench();
  std::vector<Measurement> run_taskbench();
  std::vector<Measurement> run_all();

  /// Mutable suite knobs.  Each run_* fires Engine::snapshot_point()
  /// before its first sample, and `outer_reps` is re-read per
  /// measurement, so a snapshot hook may late-bind the rep count at the
  /// warmup/measurement boundary (checkpointed sweeps).
  EpccConfig& config() { return cfg_; }

 private:
  /// Time one sample: `total_fn` runs the construct inner_iters times;
  /// records (elapsed/inner - per_construct_delay) in microseconds.
  void sample(Measurement& m, sim::Time per_construct_delay,
              const std::function<void()>& total_fn);
  Measurement make(const std::string& group, const std::string& name,
                   bool reference = false) const;
  double now_us() const;

  komp::Runtime* rt_;
  EpccConfig cfg_;
};

/// Pretty-print a measurement list as the figure rows.
std::string format_table(const std::string& title,
                         const std::vector<Measurement>& ms);

}  // namespace kop::epcc
