#include "harness/experiment.hpp"

#include <stdexcept>

namespace kop::harness {

nas::RunResult run_nas(const core::StackConfig& config,
                       const nas::BenchmarkSpec& spec) {
  core::StackConfig cfg = config;
  // RTK/CCK link the app's static data into the boot image (§3.1);
  // PIK and Linux have no such constraint.
  if (cfg.path == core::PathKind::kRtk ||
      cfg.path == core::PathKind::kAutoMpNautilus) {
    cfg.app_static_bytes = spec.static_bytes;
  }
  auto stack = core::Stack::create(cfg);

  nas::RunResult result;
  if (stack->is_omp_path()) {
    stack->run_omp_app([&](komp::Runtime& rt) {
      result = nas::run_openmp(rt, spec);
      return 0;
    });
  } else {
    stack->run_cck_app([&](osal::Os& os, virgil::Virgil& vg) {
      result = nas::run_automp(os, vg, spec);
      return 0;
    });
  }
  return result;
}

std::vector<epcc::Measurement> run_epcc(const core::StackConfig& config,
                                        EpccPart part,
                                        const epcc::EpccConfig& ecfg) {
  auto stack = core::Stack::create(config);
  if (!stack->is_omp_path())
    throw std::invalid_argument(
        "EPCC measures OpenMP directives; CCK paths have none (§6.1)");
  std::vector<epcc::Measurement> out;
  stack->run_omp_app([&](komp::Runtime& rt) {
    epcc::Suite suite(rt, ecfg);
    switch (part) {
      case EpccPart::kSync: out = suite.run_syncbench(); break;
      case EpccPart::kSched: out = suite.run_schedbench(); break;
      case EpccPart::kArray: out = suite.run_arraybench(); break;
      case EpccPart::kTask: out = suite.run_taskbench(); break;
      case EpccPart::kAll: out = suite.run_all(); break;
    }
    return 0;
  });
  return out;
}

bool want_first_touch(const std::string& machine, int threads) {
  return machine == "8xeon" && threads > 24;
}

std::vector<int> phi_scales() { return {1, 2, 4, 8, 16, 32, 64}; }

std::vector<int> xeon_scales() { return {1, 2, 4, 8, 16, 24, 48, 96, 192}; }

}  // namespace kop::harness
