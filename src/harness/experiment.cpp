#include "harness/experiment.hpp"

#include <algorithm>
#include <stdexcept>

namespace kop::harness {

namespace {

// Identity + counter snapshot shared by both drivers.
void fill_metrics(RunMetrics* m, core::Stack& stack,
                  const core::StackConfig& cfg, const std::string& label) {
  m->label = label;
  m->machine = cfg.machine;
  m->path = core::path_name(cfg.path);
  m->threads = cfg.num_threads > 0 ? cfg.num_threads
                                   : stack.os().machine().num_cpus;
  m->counters = stack.os().counters().snapshot();
}

// Engine-level snapshot hook shared by both drivers: always segment the
// counter fabric at the boundary, then hand control to the caller's
// at_snapshot (if any).  `ctl` and `hooks` must outlive the run; the
// hook fires (at most once) while the app is executing.
void install_snapshot_hook(core::Stack& stack, const RunHooks& hooks,
                           SnapshotCtl& ctl) {
  core::Stack* sp = &stack;
  const RunHooks* hp = &hooks;
  SnapshotCtl* cp = &ctl;
  stack.engine().set_snapshot_hook([sp, hp, cp] {
    sp->os().counters().mark_segment();
    if (hp->at_snapshot) hp->at_snapshot(*sp, *cp);
  });
}

}  // namespace

nas::RunResult run_nas(const core::StackConfig& config,
                       const nas::BenchmarkSpec& spec,
                       RunMetrics* metrics, const RunHooks& hooks) {
  core::StackConfig cfg = config;
  // RTK/CCK link the app's static data into the boot image (§3.1);
  // PIK and Linux have no such constraint.
  if (cfg.path == core::PathKind::kRtk ||
      cfg.path == core::PathKind::kAutoMpNautilus) {
    cfg.app_static_bytes = spec.static_bytes;
  }
  // Mutable workload copy: the timed loops re-read `work.timesteps`
  // every step, so an at_snapshot hook can late-bind the measured step
  // count at the warmup/measurement boundary.
  nas::BenchmarkSpec work = spec;
  auto stack = core::Stack::create(cfg);
  if (hooks.on_boot) hooks.on_boot(*stack);
  SnapshotCtl ctl;
  ctl.nas_timesteps = &work.timesteps;
  install_snapshot_hook(*stack, hooks, ctl);

  nas::RunResult result;
  if (stack->is_omp_path()) {
    stack->run_omp_app([&](komp::Runtime& rt) {
      result = nas::run_openmp(rt, work);
      return 0;
    });
  } else {
    stack->run_cck_app([&](osal::Os& os, virgil::Virgil& vg) {
      result = nas::run_automp(os, vg, work);
      return 0;
    });
  }
  if (metrics != nullptr) {
    fill_metrics(metrics, *stack, cfg, work.full_name());
    metrics->timed_seconds = result.timed_seconds;
    metrics->init_seconds = result.init_seconds;
  }
  if (hooks.on_done) hooks.on_done(*stack);
  return result;
}

std::vector<epcc::Measurement> run_epcc(const core::StackConfig& config,
                                        EpccPart part,
                                        const epcc::EpccConfig& ecfg,
                                        RunMetrics* metrics,
                                        const RunHooks& hooks) {
  auto stack = core::Stack::create(config);
  if (!stack->is_omp_path())
    throw std::invalid_argument(
        "EPCC measures OpenMP directives; CCK paths have none (§6.1)");
  if (hooks.on_boot) hooks.on_boot(*stack);
  SnapshotCtl ctl;
  install_snapshot_hook(*stack, hooks, ctl);
  std::vector<epcc::Measurement> out;
  stack->run_omp_app([&](komp::Runtime& rt) {
    epcc::Suite suite(rt, ecfg);
    // The suite fires snapshot_point() before its first sample and
    // re-reads outer_reps per measurement; aim the late-binding slot at
    // its mutable copy before any part runs.
    ctl.epcc_reps = &suite.config().outer_reps;
    switch (part) {
      case EpccPart::kSync: out = suite.run_syncbench(); break;
      case EpccPart::kSched: out = suite.run_schedbench(); break;
      case EpccPart::kArray: out = suite.run_arraybench(); break;
      case EpccPart::kTask: out = suite.run_taskbench(); break;
      case EpccPart::kAll: out = suite.run_all(); break;
    }
    return 0;
  });
  if (metrics != nullptr) {
    const char* labels[] = {"syncbench", "schedbench", "arraybench",
                            "taskbench", "epcc-all"};
    fill_metrics(metrics, *stack, config, labels[static_cast<int>(part)]);
    metrics->timed_seconds =
        static_cast<double>(stack->engine().now()) / 1e9;
    for (const auto& m : out) {
      ConstructStat stat;
      stat.count = m.overhead_us.count();
      // EPCC overheads can be slightly negative (construct faster than
      // the reference); clamp for the schema's non-negative fields.
      stat.mean_us = std::max(0.0, m.overhead_us.mean());
      stat.total_us = stat.mean_us * static_cast<double>(stat.count);
      metrics->constructs[m.group + "." + m.name] = stat;
    }
  }
  if (hooks.on_done) hooks.on_done(*stack);
  return out;
}

bool want_first_touch(const std::string& machine, int threads) {
  return machine == "8xeon" && threads > 24;
}

std::vector<int> phi_scales() { return {1, 2, 4, 8, 16, 32, 64}; }

std::vector<int> xeon_scales() { return {1, 2, 4, 8, 16, 24, 48, 96, 192}; }

}  // namespace kop::harness
