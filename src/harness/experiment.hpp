// Experiment drivers: one call = one booted stack running one
// benchmark at one configuration, returning virtual-time results.
// The bench/ binaries compose these into the paper's figures.
#pragma once

#include <string>
#include <vector>

#include "core/stack.hpp"
#include "epcc/epcc.hpp"
#include "nas/exec.hpp"

namespace kop::harness {

/// Run one NAS benchmark on a freshly booted stack.
nas::RunResult run_nas(const core::StackConfig& config,
                       const nas::BenchmarkSpec& spec);

/// Which EPCC component to run.
enum class EpccPart { kSync, kSched, kArray, kTask, kAll };

/// Run EPCC on a freshly booted stack (libomp paths only; CCK has no
/// OpenMP directives to measure, §6.1).
std::vector<epcc::Measurement> run_epcc(const core::StackConfig& config,
                                        EpccPart part,
                                        const epcc::EpccConfig& ecfg = {});

/// The paper's convention for 8XEON: Nautilus uses first-touch-at-2MB
/// for runs on more than one socket (§6.3).
bool want_first_touch(const std::string& machine, int threads);

/// CPU-count sweeps used by the figures.
std::vector<int> phi_scales();    // 1 2 4 8 16 32 64
std::vector<int> xeon_scales();   // 1 2 4 8 16 24 48 96 192

}  // namespace kop::harness
