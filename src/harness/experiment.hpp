// Experiment drivers: one call = one booted stack running one
// benchmark at one configuration, returning virtual-time results.
// The bench/ binaries compose these into the paper's figures.
#pragma once

#include <string>
#include <vector>

#include "core/stack.hpp"
#include "epcc/epcc.hpp"
#include "harness/metrics.hpp"
#include "nas/exec.hpp"

namespace kop::harness {

/// Run one NAS benchmark on a freshly booted stack.  If `metrics` is
/// non-null it is filled with the run's identity, timing, and the
/// stack's event-counter snapshot.
nas::RunResult run_nas(const core::StackConfig& config,
                       const nas::BenchmarkSpec& spec,
                       RunMetrics* metrics = nullptr);

/// Which EPCC component to run.
enum class EpccPart { kSync, kSched, kArray, kTask, kAll };

/// Run EPCC on a freshly booted stack (libomp paths only; CCK has no
/// OpenMP directives to measure, §6.1).
/// If `metrics` is non-null, also fills the counter snapshot and a
/// per-construct breakdown derived from the measurements.
std::vector<epcc::Measurement> run_epcc(const core::StackConfig& config,
                                        EpccPart part,
                                        const epcc::EpccConfig& ecfg = {},
                                        RunMetrics* metrics = nullptr);

/// The paper's convention for 8XEON: Nautilus uses first-touch-at-2MB
/// for runs on more than one socket (§6.3).
bool want_first_touch(const std::string& machine, int threads);

/// CPU-count sweeps used by the figures.
std::vector<int> phi_scales();    // 1 2 4 8 16 32 64
std::vector<int> xeon_scales();   // 1 2 4 8 16 24 48 96 192

}  // namespace kop::harness
