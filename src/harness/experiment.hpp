// Experiment drivers: one call = one booted stack running one
// benchmark at one configuration, returning virtual-time results.
// The bench/ binaries compose these into the paper's figures.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/stack.hpp"
#include "epcc/epcc.hpp"
#include "harness/metrics.hpp"
#include "nas/exec.hpp"

namespace kop::harness {

/// Late-binding control surface handed to RunHooks::at_snapshot.  The
/// non-null pointer (one per workload kind) aims at the run's *mutable*
/// copy of the knob that the measurement phase re-reads after the
/// boundary, so a hook can rebind it without perturbing the warmup
/// trajectory -- the mechanism checkpointed sweeps use to give each
/// forked child its own rep count.
struct SnapshotCtl {
  /// kNas: measured timestep count (run_openmp/run_automp re-read the
  /// loop bound every step).
  int* nas_timesteps = nullptr;
  /// kEpcc: outer reps of the suite about to run (re-read per sample).
  int* epcc_reps = nullptr;
};

/// Optional observation hooks for one experiment run.  The drivers boot
/// the stack internally, so anything that wants to watch the run --
/// attach an OMPT tool, read engine stats or the dispatch digest after
/// the workload finished -- needs a window into the stack's lifetime.
/// `on_boot` fires right after Stack::create (before the app runs);
/// `on_done` fires after the app returned, while the stack is still
/// alive.  Used by harness/propcheck; normal callers pass nothing.
///
/// `at_snapshot` fires at most once, at the workload's explicit
/// warmup/measurement boundary (Engine::snapshot_point), synchronously
/// on the workload fiber.  This is where per-point cost scales bind and
/// where checkpointed sweeps fork.  The hook must leave the dispatch
/// trajectory untouched: no event posting, no engine-Rng draws.
struct RunHooks {
  std::function<void(core::Stack&)> on_boot;
  std::function<void(core::Stack&)> on_done;
  std::function<void(core::Stack&, SnapshotCtl&)> at_snapshot;
};

/// Run one NAS benchmark on a freshly booted stack.  If `metrics` is
/// non-null it is filled with the run's identity, timing, and the
/// stack's event-counter snapshot.
nas::RunResult run_nas(const core::StackConfig& config,
                       const nas::BenchmarkSpec& spec,
                       RunMetrics* metrics = nullptr,
                       const RunHooks& hooks = {});

/// Which EPCC component to run.
enum class EpccPart { kSync, kSched, kArray, kTask, kAll };

/// Run EPCC on a freshly booted stack (libomp paths only; CCK has no
/// OpenMP directives to measure, §6.1).
/// If `metrics` is non-null, also fills the counter snapshot and a
/// per-construct breakdown derived from the measurements.
std::vector<epcc::Measurement> run_epcc(const core::StackConfig& config,
                                        EpccPart part,
                                        const epcc::EpccConfig& ecfg = {},
                                        RunMetrics* metrics = nullptr,
                                        const RunHooks& hooks = {});

/// The paper's convention for 8XEON: Nautilus uses first-touch-at-2MB
/// for runs on more than one socket (§6.3).
bool want_first_touch(const std::string& machine, int threads);

/// CPU-count sweeps used by the figures.
std::vector<int> phi_scales();    // 1 2 4 8 16 32 64
std::vector<int> xeon_scales();   // 1 2 4 8 16 24 48 96 192

}  // namespace kop::harness
