#include "harness/figures.hpp"

#include <cstdio>
#include <map>

#include "harness/table.hpp"
#include "sim/stats.hpp"

namespace kop::harness {

namespace {

// Run + optionally record into the sink.
double timed_nas(const core::StackConfig& cfg, const nas::BenchmarkSpec& spec,
                 MetricsSink* sink) {
  if (sink == nullptr) return run_nas(cfg, spec).timed_seconds;
  RunMetrics m;
  const double t = run_nas(cfg, spec, &m).timed_seconds;
  sink->add(std::move(m));
  return t;
}

core::StackConfig make_config(const std::string& machine, core::PathKind path,
                              int threads) {
  core::StackConfig cfg;
  cfg.machine = machine;
  cfg.path = path;
  cfg.num_threads = threads;
  cfg.nk_first_touch = want_first_touch(machine, threads);
  return cfg;
}

}  // namespace

std::vector<nas::BenchmarkSpec> scale_suite(std::vector<nas::BenchmarkSpec> suite,
                                            double factor, int timesteps) {
  for (auto& b : suite) {
    b.timesteps = timesteps;
    for (auto& l : b.loops) {
      l.per_iter_ns *= factor;
      // Keep the memory-access *intensity* (accesses per ns) constant
      // so the translation/fault model behaves identically.
      l.bytes_per_iter = static_cast<std::uint64_t>(
          static_cast<double>(l.bytes_per_iter) * factor);
    }
    b.serial_ns_per_step *= factor;
  }
  return suite;
}

void print_nas_normalized(const std::string& title, const std::string& machine,
                          const std::vector<core::PathKind>& paths,
                          const std::vector<int>& scales,
                          const std::vector<nas::BenchmarkSpec>& suite,
                          MetricsSink* sink) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("   (normalized performance: Linux-OpenMP time / path time;"
              " higher is better; baseline = 1.0)\n\n");
  std::map<core::PathKind, std::vector<double>> ratios_all;

  for (const auto& spec : suite) {
    // Single-thread Linux absolute time: the figure's `t` label.
    const double t1 = timed_nas(
        make_config(machine, core::PathKind::kLinuxOmp, 1), spec, sink);
    std::printf("%s  (t = %.2f sec single-threaded Linux)\n",
                spec.full_name().c_str(), t1);

    std::vector<std::string> headers{"cpus", "linux time"};
    for (auto p : paths) headers.push_back(core::path_name(p));
    Table table(headers);

    for (int n : scales) {
      const double linux_t =
          n == 1 ? t1
                 : timed_nas(make_config(machine, core::PathKind::kLinuxOmp, n),
                             spec, sink);
      std::vector<std::string> row{std::to_string(n), Table::seconds(linux_t)};
      for (auto p : paths) {
        const double pt = timed_nas(make_config(machine, p, n), spec, sink);
        const double ratio = linux_t / pt;
        ratios_all[p].push_back(ratio);
        row.push_back(Table::num(ratio));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  for (auto p : paths) {
    std::printf("geomean normalized performance [%s]: %.3f\n",
                core::path_name(p), sim::geomean(ratios_all[p]));
  }
  std::printf("\n");
}

void print_cck_absolute(const std::string& title, const std::string& machine,
                        const std::vector<int>& scales,
                        const std::vector<nas::BenchmarkSpec>& suite,
                        MetricsSink* sink) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("   (average time in seconds; lower is better)\n\n");
  for (const auto& spec : suite) {
    std::printf("%s\n", spec.full_name().c_str());
    Table table({"cpus", "LINUX OMP", "LINUX AutoMP", "NK AutoMP"});
    for (int n : scales) {
      const double omp = timed_nas(
          make_config(machine, core::PathKind::kLinuxOmp, n), spec, sink);
      const double user = timed_nas(
          make_config(machine, core::PathKind::kAutoMpLinux, n), spec, sink);
      const double nk = timed_nas(
          make_config(machine, core::PathKind::kAutoMpNautilus, n), spec, sink);
      table.add_row({std::to_string(n), Table::num(omp), Table::num(user),
                     Table::num(nk)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
}

void print_cck_normalized(const std::string& title, const std::string& machine,
                          const std::vector<int>& scales,
                          const std::vector<nas::BenchmarkSpec>& suite,
                          MetricsSink* sink) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("   (normalized to Linux-OpenMP = 1.0; higher is better)\n\n");
  for (const auto& spec : suite) {
    const double t1 = timed_nas(
        make_config(machine, core::PathKind::kLinuxOmp, 1), spec, sink);
    std::printf("%s  (t = %.2f sec single-threaded Linux)\n",
                spec.full_name().c_str(), t1);
    Table table({"cpus", "Linux AutoMP", "NK AutoMP"});
    for (int n : scales) {
      const double omp =
          n == 1 ? t1
                 : timed_nas(make_config(machine, core::PathKind::kLinuxOmp, n),
                             spec, sink);
      const double user = timed_nas(
          make_config(machine, core::PathKind::kAutoMpLinux, n), spec, sink);
      const double nk = timed_nas(
          make_config(machine, core::PathKind::kAutoMpNautilus, n), spec, sink);
      table.add_row({std::to_string(n), Table::num(omp / user),
                     Table::num(omp / nk)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
}

void print_epcc_figure(const std::string& title, const std::string& machine,
                       int threads, const std::vector<core::PathKind>& paths,
                       const epcc::EpccConfig& config, MetricsSink* sink) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("   (per-construct overhead in microseconds, mean +- sd over"
              " %d samples)\n\n", config.outer_reps);

  std::vector<std::vector<epcc::Measurement>> results;
  results.reserve(paths.size());
  for (auto p : paths) {
    if (sink == nullptr) {
      results.push_back(
          run_epcc(make_config(machine, p, threads), EpccPart::kAll, config));
    } else {
      RunMetrics m;
      results.push_back(run_epcc(make_config(machine, p, threads),
                                 EpccPart::kAll, config, &m));
      sink->add(std::move(m));
    }
  }

  const char* groups[] = {"ARRAY", "SCHEDULE", "SYNCH", "TASK"};
  const char* labels[] = {"(a) ARRAY", "(b) SCHEDULE", "(c) SYNCH",
                          "(d) TASK"};
  for (int g = 0; g < 4; ++g) {
    std::vector<std::string> headers{"construct"};
    for (auto p : paths) {
      headers.push_back(std::string(core::path_name(p)) + " us");
      headers.push_back("sd");
    }
    Table table(headers);
    // All paths produce the same construct list; walk the first.
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      if (results[0][i].group != groups[g]) continue;
      std::vector<std::string> row{results[0][i].name};
      for (std::size_t p = 0; p < paths.size(); ++p) {
        row.push_back(Table::num(results[p][i].overhead_us.mean(), 3));
        row.push_back(Table::num(results[p][i].overhead_us.stddev(), 3));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n%s\n", labels[g], table.to_string().c_str());
  }
}

}  // namespace kop::harness
