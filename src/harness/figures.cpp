#include "harness/figures.hpp"

#include <cstdarg>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "harness/table.hpp"
#include "sim/stats.hpp"

namespace kop::harness {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

jobs::PointSpec nas_point(const std::string& machine, core::PathKind path,
                          int threads, const nas::BenchmarkSpec& spec) {
  jobs::PointSpec p;
  p.kind = jobs::PointSpec::Kind::kNas;
  p.machine = machine;
  p.path = path;
  p.threads = threads;
  p.nas = spec;
  return p;
}

jobs::PointSpec epcc_point(const std::string& machine, core::PathKind path,
                           int threads, const epcc::EpccConfig& config) {
  jobs::PointSpec p;
  p.kind = jobs::PointSpec::Kind::kEpcc;
  p.machine = machine;
  p.path = path;
  p.threads = threads;
  p.epcc_part = EpccPart::kAll;
  p.epcc = config;
  return p;
}

// The enumerate stage shared by enumerate_*() and print_*(): both walk
// the same deterministic loop nest, so PointMatrix::add() doubles as
// the result-index lookup during printing.
void build_nas_normalized(jobs::PointMatrix& mx, const std::string& machine,
                          const std::vector<core::PathKind>& paths,
                          const std::vector<int>& scales,
                          const std::vector<nas::BenchmarkSpec>& suite) {
  for (const auto& spec : suite) {
    mx.add(nas_point(machine, core::PathKind::kLinuxOmp, 1, spec));
    for (int n : scales) {
      mx.add(nas_point(machine, core::PathKind::kLinuxOmp, n, spec));
      for (auto p : paths) mx.add(nas_point(machine, p, n, spec));
    }
  }
}

void build_cck_matrix(jobs::PointMatrix& mx, const std::string& machine,
                      const std::vector<int>& scales,
                      const std::vector<nas::BenchmarkSpec>& suite) {
  for (const auto& spec : suite) {
    mx.add(nas_point(machine, core::PathKind::kLinuxOmp, 1, spec));
    for (int n : scales) {
      mx.add(nas_point(machine, core::PathKind::kLinuxOmp, n, spec));
      mx.add(nas_point(machine, core::PathKind::kAutoMpLinux, n, spec));
      mx.add(nas_point(machine, core::PathKind::kAutoMpNautilus, n, spec));
    }
  }
}

void build_epcc_figure(jobs::PointMatrix& mx, const std::string& machine,
                       int threads, const std::vector<core::PathKind>& paths,
                       const epcc::EpccConfig& config) {
  for (auto p : paths) mx.add(epcc_point(machine, p, threads, config));
}

// The execute stage shared by every print_*(): run the matrix through
// the pool, fail loudly on any failed point, record metrics in
// enumeration order, and report runner/cache statistics on stderr (so
// stdout stays byte-identical across --jobs levels and cache states).
std::vector<jobs::PointResult> run_matrix(const jobs::PointMatrix& mx,
                                          MetricsSink* sink,
                                          const jobs::JobOptions& jopts) {
  jobs::JobRunner runner(jopts);
  auto results = runner.run(mx.points());
  jobs::require_ok(mx.points(), results);
  std::fprintf(stderr, "[jobs] %s\n", runner.summary(mx.size()).c_str());
  if (sink != nullptr) {
    for (const auto& r : results) sink->add(r.metrics);
  }
  return results;
}

double timed_of(const std::vector<jobs::PointResult>& results,
                std::size_t idx) {
  return results[idx].metrics.timed_seconds;
}

}  // namespace

bool run_shard_mode(const jobs::PointMatrix& mx, MetricsSink* sink,
                    const jobs::JobOptions& jopts, std::string* out) {
  const jobs::ShardSpec& shard = jopts.shard;
  if (shard.enabled() && jopts.claim_enabled()) {
    throw std::invalid_argument(
        "--shard and --shard-claim are mutually exclusive (static vs "
        "work-stealing partition of the same sweep)");
  }
  if (jopts.coord_enabled() && (shard.enabled() || jopts.claim_enabled())) {
    throw std::invalid_argument(
        "--coord is its own dispatch mode; drop --shard/--shard-claim "
        "(the coordinator already partitions the sweep by lease)");
  }
  if (shard.list_only) {
    *out = jobs::shard_list_text(mx.points(), shard);
    return true;
  }
  if (jopts.claim_enabled()) {
    // Work-stealing dispatch: the runner claims each point from the
    // shared directory right before executing it, so fast workers take
    // more of the sweep instead of idling on a static K/N split.
    if (!jopts.cache_enabled()) {
      std::fprintf(stderr,
                   "[claim] warning: no --cache-dir; this worker's results "
                   "are computed and discarded\n");
    }
    jobs::JobRunner runner(jopts);
    const auto results = runner.run(mx.points());
    jobs::require_ok(mx.points(), results);
    std::fprintf(stderr, "[jobs] %s\n", runner.summary(mx.size()).c_str());
    std::size_t won = 0;
    for (const auto& r : results) {
      if (r.skipped) continue;
      ++won;
      if (sink != nullptr) sink->add(r.metrics);
    }
    std::string text;
    appendf(text, "[claim] executed %zu of %zu points (%zu claimed by other "
                  "workers)", won, mx.size(), mx.size() - won);
    if (jopts.cache_enabled()) appendf(text, " into %s", jopts.cache_dir.c_str());
    text += "\n(figure tables need every worker's results: merge the worker"
            " caches with kop_merge\n and rerun unsharded with --cache-dir"
            " pointed at the merged directory)\n";
    *out = text;
    return true;
  }
  if (jopts.coord_enabled()) {
    // Lease-based dispatch: like claim mode, but the arbiter is a
    // kop_sweepd daemon, so a crashed worker's points are re-queued
    // instead of stranded behind orphan claim files.
    if (!jopts.cache_enabled()) {
      std::fprintf(stderr,
                   "[coord] warning: no --cache-dir; this worker's results "
                   "are computed and discarded\n");
    }
    jobs::JobRunner runner(jopts);
    const auto results = runner.run(mx.points());
    jobs::require_ok(mx.points(), results);
    std::fprintf(stderr, "[jobs] %s\n", runner.summary(mx.size()).c_str());
    std::size_t won = 0;
    for (const auto& r : results) {
      if (r.skipped) continue;
      ++won;
      if (sink != nullptr) sink->add(r.metrics);
    }
    std::string text;
    appendf(text, "[coord] executed %zu of %zu points (%zu leased to other "
                  "workers or already complete)", won, mx.size(),
            mx.size() - won);
    if (jopts.cache_enabled()) appendf(text, " into %s", jopts.cache_dir.c_str());
    text += "\n(figure tables need every worker's results: merge the worker"
            " caches with kop_merge\n and rerun unsharded with --cache-dir"
            " pointed at the merged directory)\n";
    *out = text;
    return true;
  }
  if (!shard.enabled()) return false;

  const auto mine = jobs::shard_indices(mx.points(), shard);
  std::vector<jobs::PointSpec> subset;
  subset.reserve(mine.size());
  for (std::size_t i : mine) subset.push_back(mx.points()[i]);

  if (!jopts.cache_enabled()) {
    std::fprintf(stderr,
                 "[shard %s] warning: no --cache-dir; this shard's results "
                 "are computed and discarded\n",
                 shard.label().c_str());
  }
  jobs::JobRunner runner(jopts);
  const auto results = runner.run(subset);
  jobs::require_ok(subset, results);
  std::fprintf(stderr, "[jobs] %s\n", runner.summary(subset.size()).c_str());
  if (sink != nullptr) {
    for (const auto& r : results) sink->add(r.metrics);
  }

  std::string text;
  appendf(text, "[shard %s] executed %zu of %zu points", shard.label().c_str(),
          subset.size(), mx.size());
  if (jopts.cache_enabled()) {
    appendf(text, " into %s", jopts.cache_dir.c_str());
  }
  text += "\n(figure tables need every shard's results: merge the shard"
          " caches with kop_merge\n and rerun unsharded with --cache-dir"
          " pointed at the merged directory)\n";
  *out = text;
  return true;
}

std::vector<nas::BenchmarkSpec> scale_suite(std::vector<nas::BenchmarkSpec> suite,
                                            double factor, int timesteps) {
  for (auto& b : suite) {
    b.timesteps = timesteps;
    for (auto& l : b.loops) {
      l.per_iter_ns *= factor;
      // Keep the memory-access *intensity* (accesses per ns) constant
      // so the translation/fault model behaves identically.
      l.bytes_per_iter = static_cast<std::uint64_t>(
          static_cast<double>(l.bytes_per_iter) * factor);
    }
    b.serial_ns_per_step *= factor;
  }
  return suite;
}

Fig09Sweep fig09_sweep(bool quick) {
  Fig09Sweep s;
  s.suite = scale_suite(nas::paper_suite(), quick ? 0.5 : 2.0, quick ? 2 : 4);
  if (quick) s.suite.resize(2);
  s.scales = quick ? std::vector<int>{1, 8} : phi_scales();
  s.paths = {core::PathKind::kRtk};
  s.machine = "phi";
  return s;
}

Fig13Sweep fig13_sweep(bool quick) {
  Fig13Sweep s;
  s.config.outer_reps = quick ? 2 : 4;
  s.config.inner_iters = quick ? 4 : 8;
  // 192 threads: keep per-construct iteration counts moderate so the
  // full three-path sweep stays fast.
  s.config.sched_iters_per_thread = quick ? 16 : 32;
  s.config.tasks_per_thread = quick ? 4 : 8;
  s.config.tree_depth = quick ? 4 : 5;
  s.threads = quick ? 16 : 192;
  s.paths = {core::PathKind::kLinuxOmp, core::PathKind::kRtk,
             core::PathKind::kPik};
  s.machine = "8xeon";
  return s;
}

std::vector<jobs::PointSpec> enumerate_nas_normalized(
    const std::string& machine, const std::vector<core::PathKind>& paths,
    const std::vector<int>& scales,
    const std::vector<nas::BenchmarkSpec>& suite) {
  jobs::PointMatrix mx;
  build_nas_normalized(mx, machine, paths, scales, suite);
  return mx.points();
}

std::vector<jobs::PointSpec> enumerate_cck_matrix(
    const std::string& machine, const std::vector<int>& scales,
    const std::vector<nas::BenchmarkSpec>& suite) {
  jobs::PointMatrix mx;
  build_cck_matrix(mx, machine, scales, suite);
  return mx.points();
}

std::vector<jobs::PointSpec> enumerate_epcc_figure(
    const std::string& machine, int threads,
    const std::vector<core::PathKind>& paths, const epcc::EpccConfig& config) {
  jobs::PointMatrix mx;
  build_epcc_figure(mx, machine, threads, paths, config);
  return mx.points();
}

std::string print_nas_normalized(const std::string& title,
                                 const std::string& machine,
                                 const std::vector<core::PathKind>& paths,
                                 const std::vector<int>& scales,
                                 const std::vector<nas::BenchmarkSpec>& suite,
                                 MetricsSink* sink,
                                 const jobs::JobOptions& jopts) {
  jobs::PointMatrix mx;
  build_nas_normalized(mx, machine, paths, scales, suite);
  std::string out;
  if (run_shard_mode(mx, sink, jopts, &out)) return out;
  const auto results = run_matrix(mx, sink, jopts);

  appendf(out, "== %s ==\n", title.c_str());
  appendf(out, "   (normalized performance: Linux-OpenMP time / path time;"
               " higher is better; baseline = 1.0)\n\n");
  std::map<core::PathKind, std::vector<double>> ratios_all;

  for (const auto& spec : suite) {
    // Single-thread Linux absolute time: the figure's `t` label.
    const double t1 = timed_of(
        results, mx.add(nas_point(machine, core::PathKind::kLinuxOmp, 1, spec)));
    appendf(out, "%s  (t = %.2f sec single-threaded Linux)\n",
            spec.full_name().c_str(), t1);

    std::vector<std::string> headers{"cpus", "linux time"};
    for (auto p : paths) headers.push_back(core::path_name(p));
    Table table(headers);

    for (int n : scales) {
      const double linux_t = timed_of(
          results,
          mx.add(nas_point(machine, core::PathKind::kLinuxOmp, n, spec)));
      std::vector<std::string> row{std::to_string(n), Table::seconds(linux_t)};
      for (auto p : paths) {
        const double pt =
            timed_of(results, mx.add(nas_point(machine, p, n, spec)));
        const double ratio = linux_t / pt;
        ratios_all[p].push_back(ratio);
        row.push_back(Table::num(ratio));
      }
      table.add_row(std::move(row));
    }
    appendf(out, "%s\n", table.to_string().c_str());
  }

  for (auto p : paths) {
    appendf(out, "geomean normalized performance [%s]: %.3f\n",
            core::path_name(p), sim::geomean(ratios_all[p]));
  }
  out += "\n";
  return out;
}

std::string print_cck_absolute(const std::string& title,
                               const std::string& machine,
                               const std::vector<int>& scales,
                               const std::vector<nas::BenchmarkSpec>& suite,
                               MetricsSink* sink,
                               const jobs::JobOptions& jopts) {
  jobs::PointMatrix mx;
  build_cck_matrix(mx, machine, scales, suite);
  std::string out;
  if (run_shard_mode(mx, sink, jopts, &out)) return out;
  const auto results = run_matrix(mx, sink, jopts);

  appendf(out, "== %s ==\n", title.c_str());
  appendf(out, "   (average time in seconds; lower is better)\n\n");
  for (const auto& spec : suite) {
    appendf(out, "%s\n", spec.full_name().c_str());
    Table table({"cpus", "LINUX OMP", "LINUX AutoMP", "NK AutoMP"});
    for (int n : scales) {
      const double omp = timed_of(
          results,
          mx.add(nas_point(machine, core::PathKind::kLinuxOmp, n, spec)));
      const double user = timed_of(
          results,
          mx.add(nas_point(machine, core::PathKind::kAutoMpLinux, n, spec)));
      const double nk = timed_of(
          results,
          mx.add(nas_point(machine, core::PathKind::kAutoMpNautilus, n, spec)));
      table.add_row({std::to_string(n), Table::num(omp), Table::num(user),
                     Table::num(nk)});
    }
    appendf(out, "%s\n", table.to_string().c_str());
  }
  return out;
}

std::string print_cck_normalized(const std::string& title,
                                 const std::string& machine,
                                 const std::vector<int>& scales,
                                 const std::vector<nas::BenchmarkSpec>& suite,
                                 MetricsSink* sink,
                                 const jobs::JobOptions& jopts) {
  jobs::PointMatrix mx;
  build_cck_matrix(mx, machine, scales, suite);
  std::string out;
  if (run_shard_mode(mx, sink, jopts, &out)) return out;
  const auto results = run_matrix(mx, sink, jopts);

  appendf(out, "== %s ==\n", title.c_str());
  appendf(out, "   (normalized to Linux-OpenMP = 1.0; higher is better)\n\n");
  for (const auto& spec : suite) {
    const double t1 = timed_of(
        results, mx.add(nas_point(machine, core::PathKind::kLinuxOmp, 1, spec)));
    appendf(out, "%s  (t = %.2f sec single-threaded Linux)\n",
            spec.full_name().c_str(), t1);
    Table table({"cpus", "Linux AutoMP", "NK AutoMP"});
    for (int n : scales) {
      const double omp = timed_of(
          results,
          mx.add(nas_point(machine, core::PathKind::kLinuxOmp, n, spec)));
      const double user = timed_of(
          results,
          mx.add(nas_point(machine, core::PathKind::kAutoMpLinux, n, spec)));
      const double nk = timed_of(
          results,
          mx.add(nas_point(machine, core::PathKind::kAutoMpNautilus, n, spec)));
      table.add_row({std::to_string(n), Table::num(omp / user),
                     Table::num(omp / nk)});
    }
    appendf(out, "%s\n", table.to_string().c_str());
  }
  return out;
}

std::string print_epcc_figure(const std::string& title,
                              const std::string& machine, int threads,
                              const std::vector<core::PathKind>& paths,
                              const epcc::EpccConfig& config, MetricsSink* sink,
                              const jobs::JobOptions& jopts) {
  jobs::PointMatrix mx;
  build_epcc_figure(mx, machine, threads, paths, config);
  std::string out;
  if (run_shard_mode(mx, sink, jopts, &out)) return out;
  const auto results = run_matrix(mx, sink, jopts);

  appendf(out, "== %s ==\n", title.c_str());
  appendf(out, "   (per-construct overhead in microseconds, mean +- sd over"
               " %d samples)\n\n", config.outer_reps);

  std::vector<const std::vector<epcc::Measurement>*> measurements;
  measurements.reserve(paths.size());
  for (auto p : paths) {
    measurements.push_back(
        &results[mx.add(epcc_point(machine, p, threads, config))].epcc);
  }

  const char* groups[] = {"ARRAY", "SCHEDULE", "SYNCH", "TASK"};
  const char* labels[] = {"(a) ARRAY", "(b) SCHEDULE", "(c) SYNCH",
                          "(d) TASK"};
  for (int g = 0; g < 4; ++g) {
    std::vector<std::string> headers{"construct"};
    for (auto p : paths) {
      headers.push_back(std::string(core::path_name(p)) + " us");
      headers.push_back("sd");
    }
    Table table(headers);
    // All paths produce the same construct list; walk the first.
    const auto& first = *measurements[0];
    for (std::size_t i = 0; i < first.size(); ++i) {
      if (first[i].group != groups[g]) continue;
      std::vector<std::string> row{first[i].name};
      for (std::size_t p = 0; p < paths.size(); ++p) {
        row.push_back(Table::num((*measurements[p])[i].overhead_us.mean(), 3));
        row.push_back(
            Table::num((*measurements[p])[i].overhead_us.stddev(), 3));
      }
      table.add_row(std::move(row));
    }
    appendf(out, "%s\n%s\n", labels[g], table.to_string().c_str());
  }
  return out;
}

}  // namespace kop::harness
