// Shared figure builders: run the experiment matrices behind the
// paper's figures and print rows in the shapes the paper reports
// (normalized-performance series with the single-thread baseline `t`,
// absolute-time triples, EPCC side-by-side overhead tables).
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"

namespace kop::harness {

// Every builder takes an optional MetricsSink; when non-null each
// underlying experiment run is recorded (kop-metrics v1, satellite of
// the telemetry subsystem) in addition to the printed tables.

/// Figs. 9/10/14: normalized performance (baseline / path time) of one
/// or more paths against the Linux baseline across a CPU sweep.
void print_nas_normalized(const std::string& title, const std::string& machine,
                          const std::vector<core::PathKind>& paths,
                          const std::vector<int>& scales,
                          const std::vector<nas::BenchmarkSpec>& suite,
                          MetricsSink* sink = nullptr);

/// Fig. 11: absolute times for Linux+OMP vs Linux+AutoMP vs NK+AutoMP.
void print_cck_absolute(const std::string& title, const std::string& machine,
                        const std::vector<int>& scales,
                        const std::vector<nas::BenchmarkSpec>& suite,
                        MetricsSink* sink = nullptr);

/// Figs. 12/15: the same matrix normalized to Linux+OMP.
void print_cck_normalized(const std::string& title, const std::string& machine,
                          const std::vector<int>& scales,
                          const std::vector<nas::BenchmarkSpec>& suite,
                          MetricsSink* sink = nullptr);

/// Figs. 7/8/13: EPCC overhead tables for several paths side by side.
void print_epcc_figure(const std::string& title, const std::string& machine,
                       int threads, const std::vector<core::PathKind>& paths,
                       const epcc::EpccConfig& config,
                       MetricsSink* sink = nullptr);

/// Scale a suite's work so full sweeps stay fast; virtual-time ratios
/// are unchanged (the simulation is linear in per-iteration cost).
std::vector<nas::BenchmarkSpec> scale_suite(std::vector<nas::BenchmarkSpec> suite,
                                            double factor, int timesteps);

}  // namespace kop::harness
