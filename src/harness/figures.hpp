// Shared figure builders: each builder is split into the three layers
// of the experiment job subsystem --
//
//   enumerate  an enumerate_*() function flattens the figure's matrix
//              into a deduplicated std::vector<jobs::PointSpec>
//   execute    a jobs::JobRunner runs the points concurrently (--jobs),
//              consulting the content-addressed result cache when one
//              is configured
//   print      the print_*() function re-derives the same enumeration,
//              indexes the in-order results, and renders rows in the
//              shapes the paper reports (normalized-performance series
//              with the single-thread baseline `t`, absolute-time
//              triples, EPCC side-by-side overhead tables)
//
// print_*() returns the rendered text instead of writing stdout so the
// determinism tests can assert byte-identical output across --jobs
// levels; the bench binaries fputs() the result.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/jobs/runner.hpp"
#include "harness/jobs/shard.hpp"
#include "harness/metrics.hpp"

namespace kop::harness {

/// Shard-mode intercept shared by every print_*() builder, the
/// point-based ablations, and run_experiment.  Returns false when no
/// shard flag is active (the caller proceeds normally).  Otherwise
/// *out receives the complete stdout text for this invocation:
///   --shard-list        the partition manifest (no execution)
///   --shard K/N         this shard's points are executed (populating
///                       the cache and, when a sink is given, the
///                       --json artifact with the shard's runs) and
///                       *out is a coverage note -- figure tables need
///                       every shard's results, so they are only
///                       printed by an unsharded rerun against the
///                       merged cache.
///   --shard-claim DIR   work-stealing variant: every worker runs the
///                       full matrix and atomically claims points from
///                       the shared DIR before simulating them
///                       (jobs/claim.hpp); skipped points belong to
///                       other workers.  Merge worker caches exactly
///                       like static shards.
/// Throws std::invalid_argument if --shard and --shard-claim are
/// combined.
bool run_shard_mode(const jobs::PointMatrix& mx, MetricsSink* sink,
                    const jobs::JobOptions& jopts, std::string* out);

// Every builder takes an optional MetricsSink; when non-null each
// underlying experiment point is recorded (kop-metrics v1, in
// enumeration order) in addition to the rendered tables.

/// Figs. 9/10/14 matrix: per spec, the Linux baseline at every scale
/// plus every requested path at every scale.
std::vector<jobs::PointSpec> enumerate_nas_normalized(
    const std::string& machine, const std::vector<core::PathKind>& paths,
    const std::vector<int>& scales, const std::vector<nas::BenchmarkSpec>& suite);

/// Figs. 11/12/15 matrix (absolute and normalized print the same
/// points): Linux+OMP vs Linux+AutoMP vs NK+AutoMP per scale.
std::vector<jobs::PointSpec> enumerate_cck_matrix(
    const std::string& machine, const std::vector<int>& scales,
    const std::vector<nas::BenchmarkSpec>& suite);

/// Figs. 7/8/13 matrix: one EPCC kAll run per path.
std::vector<jobs::PointSpec> enumerate_epcc_figure(
    const std::string& machine, int threads,
    const std::vector<core::PathKind>& paths, const epcc::EpccConfig& config);

/// Figs. 9/10/14: normalized performance (baseline / path time) of one
/// or more paths against the Linux baseline across a CPU sweep.
std::string print_nas_normalized(const std::string& title,
                                 const std::string& machine,
                                 const std::vector<core::PathKind>& paths,
                                 const std::vector<int>& scales,
                                 const std::vector<nas::BenchmarkSpec>& suite,
                                 MetricsSink* sink = nullptr,
                                 const jobs::JobOptions& jopts = {});

/// Fig. 11: absolute times for Linux+OMP vs Linux+AutoMP vs NK+AutoMP.
std::string print_cck_absolute(const std::string& title,
                               const std::string& machine,
                               const std::vector<int>& scales,
                               const std::vector<nas::BenchmarkSpec>& suite,
                               MetricsSink* sink = nullptr,
                               const jobs::JobOptions& jopts = {});

/// Figs. 12/15: the same matrix normalized to Linux+OMP.
std::string print_cck_normalized(const std::string& title,
                                 const std::string& machine,
                                 const std::vector<int>& scales,
                                 const std::vector<nas::BenchmarkSpec>& suite,
                                 MetricsSink* sink = nullptr,
                                 const jobs::JobOptions& jopts = {});

/// Figs. 7/8/13: EPCC overhead tables for several paths side by side.
std::string print_epcc_figure(const std::string& title,
                              const std::string& machine, int threads,
                              const std::vector<core::PathKind>& paths,
                              const epcc::EpccConfig& config,
                              MetricsSink* sink = nullptr,
                              const jobs::JobOptions& jopts = {});

/// Scale a suite's work so full sweeps stay fast; virtual-time ratios
/// are unchanged (the simulation is linear in per-iteration cost).
std::vector<nas::BenchmarkSpec> scale_suite(std::vector<nas::BenchmarkSpec> suite,
                                            double factor, int timesteps);

// The exact sweeps the fig09/fig13 binaries run (full or --quick),
// factored out so kop_baseline enumerates the same points -- a
// baseline cache recorded by `fig09_nas_rtk_phi --quick --cache-dir d`
// must line up entry-for-entry with what the diff driver regenerates.

struct Fig09Sweep {
  std::vector<nas::BenchmarkSpec> suite;
  std::vector<int> scales;
  std::vector<core::PathKind> paths;  // {rtk}
  std::string machine;                // "phi"
};
Fig09Sweep fig09_sweep(bool quick);

struct Fig13Sweep {
  int threads = 0;
  std::vector<core::PathKind> paths;  // {linux, rtk, pik}
  epcc::EpccConfig config;
  std::string machine;                // "8xeon"
};
Fig13Sweep fig13_sweep(bool quick);

}  // namespace kop::harness
