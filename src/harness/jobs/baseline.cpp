#include "harness/jobs/baseline.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/jobs/cache.hpp"
#include "sim/stats.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace kop::harness::jobs {

namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", v * 100.0);
  return buf;
}

}  // namespace

CacheIndex::CacheIndex(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (!e.is_regular_file() || name.rfind("kop-", 0) != 0 ||
        name.size() < 6 || name.compare(name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    std::string text;
    if (!read_file(e.path().string(), &text)) continue;
    telemetry::JsonValue root;
    try {
      root = telemetry::parse_json(text);
    } catch (const telemetry::JsonParseError&) {
      continue;  // corrupt entries are simply not indexed
    }
    const telemetry::JsonValue* side = root.find("x_kop_cache");
    const telemetry::JsonValue* point =
        side != nullptr && side->is_object() ? side->find("point") : nullptr;
    if (point == nullptr || !point->is_string()) continue;
    by_canonical_.emplace(point->string, std::move(text));
  }
}

bool CacheIndex::load(const PointSpec& spec, PointResult* out) const {
  const auto it = by_canonical_.find(spec.canonical());
  if (it == by_canonical_.end()) return false;
  // Fingerprint-agnostic on purpose: a baseline captured under an older
  // calibration must still be readable for shape comparison.
  return ResultCache::decode(it->second, spec, out,
                             /*require_fingerprint=*/false);
}

BaselineVerdict compare_shapes(std::vector<ShapeCell> cells,
                               const BaselineOptions& opts) {
  BaselineVerdict verdict;
  verdict.cells = std::move(cells);

  // Partition by (figure, series), preserving first-seen order.
  std::vector<std::pair<std::string, std::vector<const ShapeCell*>>> groups;
  for (const auto& c : verdict.cells) {
    const std::string key = c.figure + "/" + c.series;
    auto it = groups.begin();
    for (; it != groups.end(); ++it) {
      if (it->first == key) break;
    }
    if (it == groups.end()) {
      groups.push_back({key, {}});
      it = groups.end() - 1;
    }
    it->second.push_back(&c);
  }

  for (const auto& [key, members] : groups) {
    SeriesVerdict sv;
    sv.figure = members.front()->figure;
    sv.series = members.front()->series;

    std::vector<double> base_gains, fresh_gains;
    for (const ShapeCell* c : members) {
      if (c->baseline_gain > 0 && c->fresh_gain > 0) {
        base_gains.push_back(c->baseline_gain);
        fresh_gains.push_back(c->fresh_gain);
      }
      if ((c->baseline_gain >= 1.0) != (c->fresh_gain >= 1.0)) ++sv.flips;
    }
    if (!base_gains.empty()) {
      sv.baseline_geomean = sim::geomean(base_gains);
      sv.fresh_geomean = sim::geomean(fresh_gains);
      sv.drift = std::fabs(sv.fresh_geomean / sv.baseline_geomean - 1.0);
    }

    // Crossover: within each group (one benchmark's CPU sweep, cells
    // in ascending-x order), the first cell where the series loses
    // (gain < 1).  Moving that position changes where the figure's
    // curves cross the baseline -- a shape change even when the
    // geomean barely moves.
    std::vector<std::pair<std::string, std::pair<int, int>>> first_loss;
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      const ShapeCell* c = members[pos];
      auto it = first_loss.begin();
      for (; it != first_loss.end(); ++it) {
        if (it->first == c->group) break;
      }
      if (it == first_loss.end()) {
        first_loss.push_back({c->group, {-1, -1}});
        it = first_loss.end() - 1;
      }
      if (c->baseline_gain < 1.0 && it->second.first < 0)
        it->second.first = static_cast<int>(pos);
      if (c->fresh_gain < 1.0 && it->second.second < 0)
        it->second.second = static_cast<int>(pos);
    }
    for (const auto& [group, positions] : first_loss) {
      (void)group;
      if (positions.first != positions.second) ++sv.crossover_moves;
    }

    sv.ok = sv.drift <= opts.geomean_tolerance && sv.flips == 0 &&
            sv.crossover_moves == 0;
    verdict.series.push_back(std::move(sv));
  }
  return verdict;
}

bool BaselineVerdict::shapes_ok() const {
  for (const auto& s : series) {
    if (!s.ok) return false;
  }
  return true;
}

std::string BaselineVerdict::text(const BaselineOptions& opts) const {
  std::string out;
  out += "compared " + std::to_string(cells.size()) + " cells across " +
         std::to_string(series.size()) + " series (geomean tolerance " +
         pct(opts.geomean_tolerance) + ")\n";
  for (const auto& s : series) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %s/%s: geomean %.3f -> %.3f (drift %s), "
                  "flips %d, crossover moves %d -- %s\n",
                  s.figure.c_str(), s.series.c_str(), s.baseline_geomean,
                  s.fresh_geomean, pct(s.drift).c_str(), s.flips,
                  s.crossover_moves, s.ok ? "ok" : "REGRESSION");
    out += buf;
  }
  if (!incomparable.empty()) {
    out += "  missing from baseline: " + std::to_string(incomparable.size()) +
           " point(s)\n";
    for (const auto& m : incomparable) out += "    " + m + "\n";
  }
  out += std::string("verdict: ") + (ok() ? "OK" : "REGRESSION") + "\n";
  return out;
}

std::string BaselineVerdict::json(const BaselineOptions& opts) const {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("tool").value("kop_baseline");
  w.key("ok").value(ok());
  w.key("shapes_ok").value(shapes_ok());
  w.key("geomean_tolerance").value(opts.geomean_tolerance);
  w.key("series").begin_array();
  for (const auto& s : series) {
    w.begin_object();
    w.key("figure").value(s.figure);
    w.key("series").value(s.series);
    w.key("baseline_geomean").value(s.baseline_geomean);
    w.key("fresh_geomean").value(s.fresh_geomean);
    w.key("drift").value(s.drift);
    w.key("flips").value(s.flips);
    w.key("crossover_moves").value(s.crossover_moves);
    w.key("ok").value(s.ok);
    w.end_object();
  }
  w.end_array();
  w.key("cells").begin_array();
  for (const auto& c : cells) {
    w.begin_object();
    w.key("figure").value(c.figure);
    w.key("series").value(c.series);
    w.key("group").value(c.group);
    w.key("x").value(c.x_label);
    w.key("baseline_gain").value(c.baseline_gain);
    w.key("fresh_gain").value(c.fresh_gain);
    w.end_object();
  }
  w.end_array();
  w.key("incomparable").begin_array();
  for (const auto& m : incomparable) w.value(m);
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

namespace {

// Mirrors of figures.cpp's point builders: the shape extractors must
// walk the exact loop nest build_nas_normalized/build_epcc_figure walk
// so PointMatrix::add doubles as the result-index lookup here too.
PointSpec nas_point(const std::string& machine, core::PathKind path,
                    int threads, const nas::BenchmarkSpec& spec) {
  PointSpec p;
  p.kind = PointSpec::Kind::kNas;
  p.machine = machine;
  p.path = path;
  p.threads = threads;
  p.nas = spec;
  return p;
}

PointSpec epcc_point(const std::string& machine, core::PathKind path,
                     int threads, const epcc::EpccConfig& config) {
  PointSpec p;
  p.kind = PointSpec::Kind::kEpcc;
  p.machine = machine;
  p.path = path;
  p.threads = threads;
  p.epcc_part = EpccPart::kAll;
  p.epcc = config;
  return p;
}

}  // namespace

std::vector<ShapeCell> nas_shape_cells(
    const std::string& figure, const std::string& machine,
    const std::vector<core::PathKind>& paths, const std::vector<int>& scales,
    const std::vector<nas::BenchmarkSpec>& suite,
    const std::vector<PointResult>& baseline, const std::vector<bool>& have,
    const std::vector<PointResult>& fresh, std::vector<std::string>* missing) {
  PointMatrix mx;
  for (const auto& spec : suite) {
    mx.add(nas_point(machine, core::PathKind::kLinuxOmp, 1, spec));
    for (int n : scales) {
      mx.add(nas_point(machine, core::PathKind::kLinuxOmp, n, spec));
      for (auto p : paths) mx.add(nas_point(machine, p, n, spec));
    }
  }

  std::vector<ShapeCell> cells;
  for (const auto& spec : suite) {
    for (int n : scales) {
      const std::size_t i_linux =
          mx.add(nas_point(machine, core::PathKind::kLinuxOmp, n, spec));
      for (auto p : paths) {
        const std::size_t i_path = mx.add(nas_point(machine, p, n, spec));
        if (!have[i_linux] || !have[i_path]) {
          if (missing != nullptr) {
            if (!have[i_linux]) missing->push_back(mx.points()[i_linux].label());
            if (!have[i_path]) missing->push_back(mx.points()[i_path].label());
          }
          continue;
        }
        ShapeCell c;
        c.figure = figure;
        c.series = core::path_name(p);
        c.group = spec.full_name();
        c.x_label = std::to_string(n);
        c.baseline_gain = baseline[i_path].metrics.timed_seconds > 0
                              ? baseline[i_linux].metrics.timed_seconds /
                                    baseline[i_path].metrics.timed_seconds
                              : 0.0;
        c.fresh_gain = fresh[i_path].metrics.timed_seconds > 0
                           ? fresh[i_linux].metrics.timed_seconds /
                                 fresh[i_path].metrics.timed_seconds
                           : 0.0;
        cells.push_back(std::move(c));
      }
    }
  }
  return cells;
}

std::vector<ShapeCell> epcc_shape_cells(
    const std::string& figure, const std::string& machine, int threads,
    const std::vector<core::PathKind>& paths, const epcc::EpccConfig& config,
    const std::vector<PointResult>& baseline, const std::vector<bool>& have,
    const std::vector<PointResult>& fresh, std::vector<std::string>* missing) {
  PointMatrix mx;
  for (auto p : paths) mx.add(epcc_point(machine, p, threads, config));

  std::vector<ShapeCell> cells;
  if (paths.empty()) return cells;
  const std::size_t i_ref = mx.add(epcc_point(machine, paths[0], threads,
                                              config));
  for (std::size_t pi = 1; pi < paths.size(); ++pi) {
    const std::size_t i_path =
        mx.add(epcc_point(machine, paths[pi], threads, config));
    if (!have[i_ref] || !have[i_path]) {
      if (missing != nullptr) {
        if (!have[i_ref] && pi == 1)
          missing->push_back(mx.points()[i_ref].label());
        if (!have[i_path]) missing->push_back(mx.points()[i_path].label());
      }
      continue;
    }
    const auto& ref_base = baseline[i_ref].epcc;
    const auto& path_base = baseline[i_path].epcc;
    const auto& ref_fresh = fresh[i_ref].epcc;
    const auto& path_fresh = fresh[i_path].epcc;
    // All paths measure the same construct list in suite order.
    for (std::size_t i = 0; i < ref_fresh.size(); ++i) {
      if (ref_fresh[i].reference) continue;
      if (i >= ref_base.size() || i >= path_base.size() ||
          i >= path_fresh.size()) {
        break;  // baseline recorded under a different EPCC suite shape
      }
      const double rb = ref_base[i].overhead_us.mean();
      const double pb = path_base[i].overhead_us.mean();
      const double rf = ref_fresh[i].overhead_us.mean();
      const double pf = path_fresh[i].overhead_us.mean();
      // Negative overheads (a path beating its own reference) make
      // the gain ratio meaningless; those cells carry no shape.
      if (rb <= 0 || pb <= 0 || rf <= 0 || pf <= 0) continue;
      ShapeCell c;
      c.figure = figure;
      c.series = core::path_name(paths[pi]);
      c.group = ref_fresh[i].group;
      c.x_label = ref_fresh[i].name;
      c.baseline_gain = rb / pb;
      c.fresh_gain = rf / pf;
      cells.push_back(std::move(c));
    }
  }
  return cells;
}

}  // namespace kop::harness::jobs
