// Baseline shape-diff: compare a freshly regenerated sweep against a
// saved result cache and flag perf-*shape* regressions.
//
// The interesting regressions in this reproduction are rarely "a point
// got slower" (virtual time is deterministic) but "the figure changed
// shape" after a cost-model edit: a path's geomean gain drifted, a
// win/loss cell flipped sides, the thread count where a path starts
// losing moved.  kop_baseline regenerates a figure's points, reads the
// saved baseline for the same points, reduces both to normalized-gain
// cells, and judges the drift -- with a machine-readable JSON verdict
// CI can gate on.
//
// Baselines are read fingerprint-agnostically: a cost-param change
// moves every cache key (the fingerprint is part of the key), which is
// exactly the situation this tool exists for, so lookups go through a
// canonical-form index of the directory rather than ResultCache keys.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/jobs/point.hpp"

namespace kop::harness::jobs {

/// Read-only, fingerprint-agnostic view of a cache directory: every
/// well-formed entry indexed by the canonical point form recorded in
/// its x_kop_cache sidecar.  A missing directory is an empty index.
class CacheIndex {
 public:
  explicit CacheIndex(const std::string& dir);

  /// Load the entry for `spec` if one was recorded under *any*
  /// cost-model fingerprint.  Same corruption semantics as
  /// ResultCache::load: false on missing or undecodable.
  bool load(const PointSpec& spec, PointResult* out) const;

  std::size_t size() const { return by_canonical_.size(); }

 private:
  std::map<std::string, std::string> by_canonical_;  // canonical -> bytes
};

/// One figure cell reduced to its shape: the normalized gain
/// (baseline-path time / path time, or reference overhead / path
/// overhead for EPCC) in the saved baseline and in the fresh rerun.
struct ShapeCell {
  std::string figure;   // "fig09"
  std::string series;   // path under comparison, e.g. "rtk"
  std::string group;    // bench full name, or EPCC construct group
  std::string x_label;  // CPU count or construct name
  double baseline_gain = 0.0;
  double fresh_gain = 0.0;
};

struct BaselineOptions {
  /// Allowed relative drift of a series' geomean gain
  /// (|fresh/baseline - 1|); the default 5% absorbs benign
  /// recalibration while catching shape-level movement.
  double geomean_tolerance = 0.05;
};

/// Judgement for one (figure, series) gain curve.
struct SeriesVerdict {
  std::string figure;
  std::string series;
  double baseline_geomean = 0.0;
  double fresh_geomean = 0.0;
  double drift = 0.0;    // |fresh/baseline - 1|
  int flips = 0;         // cells whose win/loss side changed
  int crossover_moves = 0;  // groups whose first-losing-x moved
  bool ok = false;
};

struct BaselineVerdict {
  std::vector<ShapeCell> cells;
  std::vector<SeriesVerdict> series;
  /// Points absent from the baseline cache (labels); these make the
  /// comparison partial, not failed -- the caller decides (CI passes
  /// --allow-missing on cold caches).
  std::vector<std::string> incomparable;

  bool shapes_ok() const;                       // every series ok
  bool ok() const { return shapes_ok() && incomparable.empty(); }
  std::string text(const BaselineOptions& opts) const;
  std::string json(const BaselineOptions& opts) const;
};

/// Reduce cells to per-series verdicts (geomean drift, win/loss flips,
/// per-group crossover moves).  Cell order within a series must be the
/// figure's enumeration order (ascending x within each group).
BaselineVerdict compare_shapes(std::vector<ShapeCell> cells,
                               const BaselineOptions& opts);

/// Shape cells for the Figs. 9/10/14 NAS-normalized matrix.  `baseline`
/// / `have` / `fresh` align with enumerate_nas_normalized's point
/// order; cells touching a missing baseline point are skipped and the
/// points reported through *missing.
std::vector<ShapeCell> nas_shape_cells(
    const std::string& figure, const std::string& machine,
    const std::vector<core::PathKind>& paths, const std::vector<int>& scales,
    const std::vector<nas::BenchmarkSpec>& suite,
    const std::vector<PointResult>& baseline, const std::vector<bool>& have,
    const std::vector<PointResult>& fresh, std::vector<std::string>* missing);

/// Shape cells for the Figs. 7/8/13 EPCC comparison; paths[0] is the
/// reference series the others normalize against.  Alignment and
/// missing-handling as in nas_shape_cells.
std::vector<ShapeCell> epcc_shape_cells(
    const std::string& figure, const std::string& machine, int threads,
    const std::vector<core::PathKind>& paths, const epcc::EpccConfig& config,
    const std::vector<PointResult>& baseline, const std::vector<bool>& have,
    const std::vector<PointResult>& fresh, std::vector<std::string>* missing);

}  // namespace kop::harness::jobs
