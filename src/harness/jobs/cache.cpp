#include "harness/jobs/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace kop::harness::jobs {

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("cannot create cache directory " + dir_ + ": " +
                             ec.message());
  }
}

std::uint64_t ResultCache::key(const PointSpec& spec, std::uint64_t fingerprint,
                               int schema_version) {
  return key_for(spec.canonical(), fingerprint, schema_version);
}

std::uint64_t ResultCache::key_for(const std::string& canonical,
                                   std::uint64_t fingerprint,
                                   int schema_version) {
  if (schema_version < 0) schema_version = telemetry::kMetricsSchemaVersion;
  std::string s = canonical;
  s += "|fp=" + hex16(fingerprint);
  s += "|schema=" + std::to_string(schema_version);
  return fnv1a64(s);
}

std::string ResultCache::entry_path(const PointSpec& spec) const {
  return dir_ + "/kop-" + hex16(key(spec)) + ".json";
}

std::string ResultCache::encode(const PointSpec& spec,
                                const PointResult& result) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value(telemetry::kMetricsSchemaName);
  w.key("version").value(telemetry::kMetricsSchemaVersion);
  w.key("generator").value("kop-result-cache");
  w.key("runs").begin_array();
  write_run_json(w, result.metrics);
  w.end_array();
  // Sidecar (top-level keys beyond the schema's are tolerated by the
  // validator): identity for collision/staleness detection plus the
  // raw EPCC samples the metrics run does not carry.
  w.key("x_kop_cache").begin_object();
  w.key("point").value(spec.canonical());
  w.key("fingerprint").value(hex16(cost_model_fingerprint()));
  if (!result.epcc.empty()) {
    w.key("epcc").begin_array();
    for (const auto& m : result.epcc) {
      w.begin_object();
      w.key("group").value(m.group);
      w.key("name").value(m.name);
      w.key("reference").value(m.reference);
      w.key("samples").begin_array();
      for (double s : m.overhead_us.samples()) w.value(s);
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

bool ResultCache::decode(const std::string& text, const PointSpec& spec,
                         PointResult* out, bool require_fingerprint) {
  // A cached entry must itself be a valid kop-metrics v1 artifact.
  if (!telemetry::validate_metrics_json(text).empty()) return false;
  telemetry::JsonValue root;
  try {
    root = telemetry::parse_json(text);
  } catch (const telemetry::JsonParseError&) {
    return false;
  }
  const telemetry::JsonValue* side = root.find("x_kop_cache");
  if (side == nullptr || !side->is_object()) return false;
  const telemetry::JsonValue* point = side->find("point");
  if (point == nullptr || !point->is_string() ||
      point->string != spec.canonical()) {
    return false;  // hash collision or stale file: treat as a miss
  }
  if (require_fingerprint) {
    const telemetry::JsonValue* fp = side->find("fingerprint");
    if (fp == nullptr || !fp->is_string() ||
        fp->string != hex16(cost_model_fingerprint())) {
      return false;  // recorded under different calibration: stale
    }
  }
  const telemetry::JsonValue* runs = root.find("runs");
  if (runs == nullptr || runs->array.size() != 1) return false;

  PointResult result;
  if (!parse_run_json(runs->array[0], &result.metrics)) return false;
  if (const telemetry::JsonValue* epcc = side->find("epcc")) {
    if (!epcc->is_array()) return false;
    for (const auto& e : epcc->array) {
      const auto* group = e.find("group");
      const auto* name = e.find("name");
      const auto* reference = e.find("reference");
      const auto* samples = e.find("samples");
      if (group == nullptr || !group->is_string() || name == nullptr ||
          !name->is_string() || samples == nullptr || !samples->is_array()) {
        return false;
      }
      epcc::Measurement m;
      m.group = group->string;
      m.name = name->string;
      m.reference = reference != nullptr && reference->boolean;
      for (const auto& s : samples->array) {
        if (!s.is_number()) return false;
        m.overhead_us.add(s.number);
      }
      result.epcc.push_back(std::move(m));
    }
  }
  result.from_cache = true;
  *out = std::move(result);
  return true;
}

bool ResultCache::load(const PointSpec& spec, PointResult* out) {
  const std::string path = entry_path(spec);
  std::string text;
  if (!read_file(path, &text)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
  }
  if (!decode(text, spec, out)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    ++stats_.corrupt;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  return true;
}

void ResultCache::store(const PointSpec& spec, const PointResult& result) {
  const std::string path = entry_path(spec);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
    if (!outf) return;  // unwritable cache degrades to a miss next run
    outf << encode(spec, result);
    if (!outf) {
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kop::harness::jobs
