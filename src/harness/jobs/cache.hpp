// On-disk content-addressed result cache for experiment points.
//
// Each entry is a self-contained kop-metrics v1 JSON document (one run,
// validated by telemetry::validate_metrics_json, so `metrics_lint
// cache-dir/*.json` passes) plus an `x_kop_cache` sidecar object
// carrying the point's canonical form and, for EPCC points, the raw
// per-construct sample vectors (needed to reprint mean +- sd tables
// byte-identically).  The entry filename is derived from
//
//     key = fnv1a64(canonical point (+) cost-model fingerprint
//                   (+) kop-metrics schema version)
//
// so a rerun hits only while the workload, every cost-model constant,
// and the artifact schema are all unchanged.  Corrupted or stale
// entries count as misses (the point is simply re-simulated).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "harness/jobs/point.hpp"

namespace kop::harness::jobs {

class ResultCache {
 public:
  /// Opens (and creates, if needed) the cache directory.  Throws
  /// std::runtime_error if the directory cannot be created.
  explicit ResultCache(std::string dir);

  /// Cache key: content hash x cost-model fingerprint x schema version.
  /// The fingerprint/version parameters exist for tests; production
  /// callers use the defaults.
  static std::uint64_t key(const PointSpec& spec,
                           std::uint64_t fingerprint = cost_model_fingerprint(),
                           int schema_version = -1 /* kMetricsSchemaVersion */);

  /// The same key from an already-serialized canonical form -- what
  /// kop_merge uses to re-derive an entry's expected filename from the
  /// identity recorded in its x_kop_cache sidecar.
  static std::uint64_t key_for(const std::string& canonical,
                               std::uint64_t fingerprint, int schema_version);

  /// Path of the entry file a spec maps to.
  std::string entry_path(const PointSpec& spec) const;

  /// Load a cached result.  Returns false on miss, on a corrupted or
  /// schema-invalid entry, and on a canonical-form mismatch (hash
  /// collision or stale file) -- never throws for bad entries.
  bool load(const PointSpec& spec, PointResult* out);

  /// Store a successful result.  Writes to a temp file and renames, so
  /// a crashed writer can only leave a *.tmp behind, never a torn entry.
  void store(const PointSpec& spec, const PointResult& result);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t corrupt = 0;  // subset of misses: entry existed, unusable
    std::uint64_t stores = 0;
  };
  Stats stats() const;
  const std::string& dir() const { return dir_; }

  /// Serialize one result as the entry document (exposed for tests).
  static std::string encode(const PointSpec& spec, const PointResult& result);
  /// Parse an entry document; returns false if invalid or not for
  /// `spec`.  Never throws on malformed input.
  /// With `require_fingerprint` (the cache's own loads), the sidecar
  /// fingerprint must equal the live cost_model_fingerprint() -- a file
  /// renamed to the right key but recorded under different calibration
  /// is stale, not a hit.  Fingerprint-agnostic readers (baseline's
  /// CacheIndex, which indexes entries across calibrations) pass false.
  static bool decode(const std::string& text, const PointSpec& spec,
                     PointResult* out, bool require_fingerprint = true);

 private:
  std::string dir_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace kop::harness::jobs
