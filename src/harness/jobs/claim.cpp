#include "harness/jobs/claim.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "harness/jobs/cache.hpp"

namespace kop::harness::jobs {

ClaimDir::ClaimDir(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("claim: cannot create directory " + dir_ + ": " +
                             ec.message());
  }
}

std::string ClaimDir::claim_name(const PointSpec& spec) {
  return "kop-" + hex16(ResultCache::key(spec)) + ".claim";
}

bool ClaimDir::try_claim(const PointSpec& spec) {
  const std::string path = dir_ + "/" + claim_name(spec);
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;  // another worker owns this point
    throw std::runtime_error("claim: cannot create " + path + ": " +
                             std::strerror(errno));
  }
  // Record the owner so a stuck sweep can be diagnosed (`cat *.claim`).
  char host[256] = "?";
  ::gethostname(host, sizeof(host) - 1);
  const std::string owner =
      std::string(host) + ":" + std::to_string(::getpid()) + "\n";
  // Best-effort: the claim is the file's existence, not its contents.
  (void)!::write(fd, owner.c_str(), owner.size());
  ::close(fd);
  return true;
}

}  // namespace kop::harness::jobs
