// Work-stealing point dispatch for distributed sweeps (--shard-claim).
//
// The static --shard K/N partition balances by *count*, not by cost: a
// shard that happens to collect the big EPCC points finishes last and
// anchors the whole sweep.  Claim mode replaces the static partition
// with a shared claim directory: every worker runs the SAME figure
// command with `--shard-claim DIR --cache-dir <own-dir>`, and before
// simulating a point it atomically claims it by creating
//
//     DIR/kop-<cache-key>.claim     (open O_CREAT|O_EXCL)
//
// Exactly one worker wins each creat(2) race -- POSIX guarantees
// O_CREAT|O_EXCL is atomic, including over NFS v3+ -- so every point is
// simulated exactly once across the fleet, and fast workers naturally
// take more points instead of idling.  The claim file records the
// owner (hostname:pid) for post-mortems.  Claim names reuse the result
// cache's entry key, so `ls DIR` doubles as a coverage ledger aligned
// with the `entry=` column of --shard-list manifests, and kop_merge
// --expect verifies the merged caches the same way it does for static
// shards.
//
// A claim directory describes ONE sweep execution: reusing it for a
// second run would see everything already claimed.  Use a fresh DIR
// (or rm it) per distributed run.
#pragma once

#include <string>

#include "harness/jobs/point.hpp"

namespace kop::harness::jobs {

class ClaimDir {
 public:
  /// Opens (and creates, if needed) the claim directory.  Throws
  /// std::runtime_error if the directory cannot be created.
  explicit ClaimDir(std::string dir);

  /// Atomically claim `spec` for this process.  True exactly once per
  /// point across every worker sharing the directory.  Throws on I/O
  /// errors other than "already claimed".
  bool try_claim(const PointSpec& spec);

  /// "kop-<cache-key-hex>.claim" -- aligned with the cache entry name.
  static std::string claim_name(const PointSpec& spec);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace kop::harness::jobs
