#include "harness/jobs/forkrun.hpp"

#include <cstddef>
#include <string>

#include "harness/jobs/cache.hpp"
#include "sim/checkpoint.hpp"

namespace kop::harness::jobs {

bool checkpoint_supported() { return sim::Checkpoint::supported(); }

namespace {

// Child -> parent payload framing: one status line, then the encoded
// cache entry (ok) or the error text (err).
constexpr const char kOkTag[] = "ok\n";
constexpr const char kErrTag[] = "err\n";

// Bind one member's late-binding suffix at the snapshot boundary: the
// rep count through the SnapshotCtl slot the driver exposed, the cost
// scales through a rebound cost sheet.  Exactly what a cold
// run_point() of the member would do at the same instant.
void bind_suffix(const PointSpec& member, core::Stack& stack,
                 SnapshotCtl& ctl) {
  if (member.kind == PointSpec::Kind::kNas) {
    if (ctl.nas_timesteps != nullptr) *ctl.nas_timesteps = member.nas.timesteps;
  } else {
    if (ctl.epcc_reps != nullptr) *ctl.epcc_reps = member.epcc.outer_reps;
  }
  apply_point_scales(stack, member.cost_scales);
}

PointResult safe_run(const PointSpec& spec, const RunHooks& hooks) {
  try {
    return run_point(spec, hooks);
  } catch (const std::exception& e) {
    PointResult failed;
    failed.failed = true;
    failed.error = spec.label() + ": " + e.what();
    return failed;
  } catch (...) {
    PointResult failed;
    failed.failed = true;
    failed.error = spec.label() + ": unknown exception";
    return failed;
  }
}

bool has_prefix(const std::string& s, const char* tag) {
  return s.compare(0, std::char_traits<char>::length(tag), tag) == 0;
}

}  // namespace

std::vector<PointResult> run_prefix_group(const std::vector<PointSpec>& specs) {
  std::vector<PointResult> results(specs.size());
  if (specs.empty()) return results;
  if (specs.size() == 1 || !checkpoint_supported()) {
    for (std::size_t i = 0; i < specs.size(); ++i)
      results[i] = safe_run(specs[i], RunHooks{});
    return results;
  }

  sim::Checkpoint ckpt;
  std::size_t my_member = 0;  // the parent continues as member 0

  RunHooks hooks;
  hooks.at_snapshot = [&](core::Stack& stack, SnapshotCtl& ctl) {
    // Fork every child *before* binding any suffix, so each inherits
    // the identical pre-measurement image.  A child breaks out with its
    // member index; the parent runs the whole loop.
    for (std::size_t m = 1; m < specs.size(); ++m) {
      if (ckpt.fork_child()) {
        my_member = m;
        break;
      }
    }
    bind_suffix(specs[my_member], stack, ctl);
  };

  // The warmup trajectory is prefix-only, so running member 0's spec up
  // to the boundary is running *every* member up to the boundary.
  PointResult own = safe_run(specs[0], hooks);

  if (my_member != 0) {
    // Forked child: ship the result (keyed to *our* member's spec, so
    // the parent can store it under the full point hash) and vanish
    // without touching any parent-owned sink.
    std::string payload;
    int code = 0;
    if (own.failed) {
      payload = kErrTag + own.error;
      code = 1;
    } else {
      payload = kOkTag + ResultCache::encode(specs[my_member], own);
    }
    ckpt.child_exit(payload, code);
  }

  results[0] = std::move(own);
  for (std::size_t m = 1; m < specs.size(); ++m) {
    // Children forked in member order, so pipe m-1 belongs to member m.
    // An exception in the parent's own run can leave fewer children
    // than members; the stragglers report as failed and the caller
    // falls back to cold runs.
    if (m - 1 >= ckpt.children()) {
      results[m].failed = true;
      results[m].error = specs[m].label() + ": checkpoint child never forked";
      continue;
    }
    const sim::Checkpoint::Harvest h = ckpt.harvest(m - 1);
    if (h.ok() && has_prefix(h.payload, kOkTag)) {
      PointResult r;
      const std::string body =
          h.payload.substr(std::char_traits<char>::length(kOkTag));
      if (ResultCache::decode(body, specs[m], &r)) {
        results[m] = std::move(r);
        results[m].from_cache = false;  // simulated, merely piped
        continue;
      }
      results[m].failed = true;
      results[m].error = specs[m].label() + ": checkpoint payload undecodable";
      continue;
    }
    results[m].failed = true;
    if (h.exit_code == sim::Checkpoint::kGuardLostExit) {
      results[m].error =
          specs[m].label() + ": fiber guard page lost across fork";
    } else if (has_prefix(h.payload, kErrTag)) {
      results[m].error =
          h.payload.substr(std::char_traits<char>::length(kErrTag));
    } else {
      results[m].error = specs[m].label() + ": checkpoint child died (exit " +
                         std::to_string(h.exit_code) + ")";
    }
  }
  return results;
}

}  // namespace kop::harness::jobs
