// Checkpointed execution of a prefix-sharing point group.
//
// All members of a group share one canonical *prefix* (equal
// PointSpec::prefix_hash()): the booted machine, workload shape, path,
// scheduler and team size -- everything that determines the simulation
// up to the warmup/measurement boundary.  run_prefix_group() runs that
// warm prefix once in the calling process, then at the boundary
// (Engine::snapshot_point) forks one COW child per extra member.  Each
// process -- parent included -- binds its own member's late-binding
// suffix (timesteps / outer reps via SnapshotCtl, cost scales via
// apply_point_scales), finishes the measurement phase normally, and
// children pipe their encoded result back before _exit()ing.
//
// The parent continues as member 0: no exception-unwound fibers, no
// abandoned stacks, nothing for LeakSanitizer to find.  Children never
// touch the ResultCache, claim files or coordinator leases; the caller
// (JobRunner) stores harvested results itself.
#pragma once

#include <vector>

#include "harness/jobs/point.hpp"

namespace kop::harness::jobs {

/// Whether fork-based checkpointing is available in this build (false
/// under ThreadSanitizer; callers fall back to cold per-point runs).
bool checkpoint_supported();

/// Execute every spec of one prefix group, sharing a single warm
/// prefix.  Results come back in member order and are equal -- byte for
/// byte once serialized -- to cold run_point() runs of the same specs.
/// A member whose child died abnormally comes back with failed=true and
/// an error naming the child's fate; the caller decides whether to fall
/// back to a cold run.  Never throws for per-member simulation
/// failures (they are captured in the member's result).
///
/// Preconditions: specs non-empty, all members share prefix_hash(),
/// checkpoint_supported() (single-member groups are run cold as a
/// convenience).
std::vector<PointResult> run_prefix_group(const std::vector<PointSpec>& specs);

}  // namespace kop::harness::jobs
