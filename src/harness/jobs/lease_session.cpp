#include "harness/jobs/lease_session.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "coord/client.hpp"
#include "harness/jobs/cache.hpp"

namespace kop::harness::jobs {

namespace {

std::string default_worker_id() {
  char host[256] = "?";
  ::gethostname(host, sizeof(host) - 1);
  return std::string(host) + ":" + std::to_string(::getpid());
}

}  // namespace

LeaseSession::LeaseSession(const std::string& socket_path, std::string worker)
    : worker_(worker.empty() ? default_worker_id() : std::move(worker)),
      client_(std::make_unique<coord::Client>(socket_path)) {
  const auto hello = client_->hello(worker_);
  if (hello.ttl_ms > 0) ttl_ms_ = hello.ttl_ms;
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

LeaseSession::~LeaseSession() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  try {
    client_->bye(worker_);
  } catch (...) {
    // The daemon may already be gone; its liveness tracker reclaims.
  }
}

std::size_t LeaseSession::prefetch(const std::vector<PointSpec>& specs) {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(specs.size());
  for (const auto& spec : specs) hashes.push_back(spec.content_hash());
  const auto replies = client_->mget(hashes);
  std::size_t complete = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < replies.size() && i < hashes.size(); ++i) {
    // HIT and COMPLETE are both terminal; PENDING/UNKNOWN points still
    // go through the normal LEASE path (their state can change under
    // us, completion cannot un-happen).
    if (replies[i].status == "HIT" || replies[i].status == "COMPLETE") {
      known_complete_.insert(hashes[i]);
      ++complete;
    }
  }
  return complete;
}

bool LeaseSession::try_acquire(const PointSpec& spec) {
  const std::uint64_t hash = spec.content_hash();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (known_complete_.count(hash) != 0) return false;
  }
  const auto grant = client_->lease(
      worker_, hash, "kop-" + hex16(ResultCache::key(spec)) + ".json");
  if (!grant.granted) return false;  // TAKEN or COMPLETE: someone else's
  std::lock_guard<std::mutex> lock(mu_);
  held_[hash] = grant.lease_id;
  return true;
}

void LeaseSession::complete(const PointSpec& spec) {
  const std::uint64_t hash = spec.content_hash();
  std::uint64_t lease_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = held_.find(hash);
    if (it == held_.end()) return;
    lease_id = it->second;
    held_.erase(it);
  }
  // OK and OK-STALE both mean the completion was recorded; a false
  // return (the point raced to complete elsewhere) needs no action --
  // the entry this worker stored is byte-identical anyway.
  (void)client_->done(worker_, lease_id, hash);
}

void LeaseSession::heartbeat_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval =
      std::chrono::milliseconds(std::max<std::int64_t>(ttl_ms_ / 3, 50));
  while (!stop_cv_.wait_for(lock, interval, [this] { return stop_; })) {
    const std::vector<std::uint64_t> ids = [&] {
      std::vector<std::uint64_t> v;
      v.reserve(held_.size());
      for (const auto& [hash, id] : held_) v.push_back(id);
      return v;
    }();
    lock.unlock();
    try {
      if (ids.empty()) {
        (void)client_->request("PING " + worker_);
      } else {
        // A failed renewal means the lease was reclaimed; the eventual
        // DONE is still accepted (OK-STALE) while the point is open.
        for (const auto id : ids) (void)client_->renew(worker_, id);
      }
    } catch (...) {
      // Connection lost: stop heartbeating, let leases lapse.
      lock.lock();
      return;
    }
    lock.lock();
  }
}

}  // namespace kop::harness::jobs
