// Lease-aware dispatch: the coordinator-backed analogue of ClaimDir.
//
// Where --shard-claim marks ownership with immortal O_EXCL claim files,
// --coord asks a kop_sweepd daemon for a *lease* on each point before
// simulating it.  The session keeps every outstanding lease alive from
// a background heartbeat thread (renewing at TTL/3, piggybacking a PING
// when it holds nothing so liveness never decays to Suspect mid-sweep)
// and reports completions so the coordinator's manifest drains.  If
// this process dies instead, the coordinator reclaims its leases at TTL
// expiry or on the dead-worker transition and re-queues the points --
// no operator cleanup, unlike stranded claim files.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/jobs/point.hpp"

namespace kop::coord {
class Client;
}

namespace kop::harness::jobs {

class LeaseSession {
 public:
  /// Connects to the daemon socket and performs the HELLO handshake.
  /// Throws std::runtime_error when the daemon is unreachable.  The
  /// worker id defaults to "<hostname>:<pid>" (the claim-file owner
  /// convention).
  explicit LeaseSession(const std::string& socket_path,
                        std::string worker = "");
  ~LeaseSession();

  LeaseSession(const LeaseSession&) = delete;
  LeaseSession& operator=(const LeaseSession&) = delete;

  /// Batched cache probe (MGET): ask the coordinator about every point
  /// in one round trip per 64 instead of one LEASE per point.  Hashes
  /// the daemon reports served or complete are remembered, and
  /// try_acquire on them returns false without touching the socket.
  /// Sound because completion is terminal: a point HIT/COMPLETE at
  /// prefetch time can never need re-running.  Returns how many points
  /// were already complete.
  std::size_t prefetch(const std::vector<PointSpec>& specs);

  /// Lease `spec` from the coordinator.  False when another worker
  /// holds it or it is already complete -- the caller skips the point,
  /// exactly like a lost ClaimDir::try_claim.
  bool try_acquire(const PointSpec& spec);

  /// Report the point done (entry stored in the shared cache).  No-op
  /// when this session does not hold its lease.
  void complete(const PointSpec& spec);

  const std::string& worker() const { return worker_; }

 private:
  void heartbeat_loop();

  std::string worker_;
  std::unique_ptr<coord::Client> client_;
  std::int64_t ttl_ms_ = 5000;

  std::mutex mu_;
  std::map<std::uint64_t, std::uint64_t> held_;  // point hash -> lease id
  std::set<std::uint64_t> known_complete_;       // from prefetch()
  bool stop_ = false;
  std::condition_variable stop_cv_;
  std::thread heartbeat_;
};

}  // namespace kop::harness::jobs
