#include "harness/jobs/merge.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "harness/jobs/cache.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace kop::harness::jobs {

namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool is_entry_name(const std::string& name) {
  return name.size() == 4 + 16 + 5 && name.rfind("kop-", 0) == 0 &&
         name.compare(name.size() - 5, 5, ".json") == 0;
}

/// Validate one candidate entry and derive the filename its recorded
/// identity hashes to.  Returns false with *reason set on any problem.
bool check_entry(const std::string& name, const std::string& text,
                 std::uint64_t build_fp, std::string* reason) {
  const auto violations = telemetry::validate_metrics_json(text);
  if (!violations.empty()) {
    *reason = "schema: " + violations.front();
    return false;
  }
  telemetry::JsonValue root;
  try {
    root = telemetry::parse_json(text);
  } catch (const telemetry::JsonParseError& e) {
    *reason = std::string("parse: ") + e.what();
    return false;
  }
  const telemetry::JsonValue* side = root.find("x_kop_cache");
  if (side == nullptr || !side->is_object()) {
    *reason = "not a cache entry (no x_kop_cache sidecar)";
    return false;
  }
  const telemetry::JsonValue* point = side->find("point");
  const telemetry::JsonValue* fp = side->find("fingerprint");
  if (point == nullptr || !point->is_string() || fp == nullptr ||
      !fp->is_string()) {
    *reason = "x_kop_cache sidecar missing point/fingerprint";
    return false;
  }
  const std::uint64_t entry_fp =
      std::strtoull(fp->string.c_str(), nullptr, 16);
  if (entry_fp != build_fp) {
    *reason = "cost-model fingerprint mismatch (entry " + fp->string +
              ", build " + hex16(build_fp) + ")";
    return false;
  }
  const telemetry::JsonValue* version = root.find("version");
  const int entry_schema =
      version != nullptr && version->is_number()
          ? static_cast<int>(version->number)
          : -1;
  if (entry_schema != telemetry::kMetricsSchemaVersion) {
    *reason = "schema version mismatch (entry " +
              std::to_string(entry_schema) + ", build " +
              std::to_string(telemetry::kMetricsSchemaVersion) + ")";
    return false;
  }
  const std::string want =
      "kop-" + hex16(ResultCache::key_for(point->string, entry_fp,
                                          entry_schema)) +
      ".json";
  if (want != name) {
    *reason = "entry name does not match its recorded identity (expected " +
              want + "; stale or renamed file)";
    return false;
  }
  return true;
}

}  // namespace

std::string MergeReport::text() const {
  std::string out;
  out += "scanned " + std::to_string(scanned) + " entries, merged " +
         std::to_string(merged);
  if (identical_duplicates > 0) {
    out += ", " + std::to_string(identical_duplicates) +
           " identical duplicates skipped";
  }
  out += "\n";
  if (!rejected.empty()) {
    out += "rejected " + std::to_string(rejected.size()) + " entries:\n";
    for (const auto& r : rejected) out += "  " + r.file + ": " + r.reason + "\n";
  }
  if (!divergent.empty()) {
    out += "DIVERGENT duplicates (same entry, different results):\n";
    for (const auto& d : divergent) out += "  " + d.file + ": " + d.reason + "\n";
  }
  if (expected > 0) {
    out += "coverage: " + std::to_string(expected - missing.size()) + "/" +
           std::to_string(expected) + " expected entries present\n";
    for (const auto& m : missing) out += "  missing: " + m + "\n";
  }
  out += ok() ? "merge OK\n" : "merge FAILED\n";
  return out;
}

std::string MergeReport::json() const {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("tool").value("kop_merge");
  w.key("ok").value(ok());
  w.key("scanned").value(scanned);
  w.key("merged").value(merged);
  w.key("identical_duplicates").value(identical_duplicates);
  w.key("rejected").begin_array();
  for (const auto& r : rejected) {
    w.begin_object();
    w.key("file").value(r.file);
    w.key("reason").value(r.reason);
    w.end_object();
  }
  w.end_array();
  w.key("divergent").begin_array();
  for (const auto& d : divergent) {
    w.begin_object();
    w.key("file").value(d.file);
    w.key("reason").value(d.reason);
    w.end_object();
  }
  w.end_array();
  w.key("expected").value(static_cast<std::uint64_t>(expected));
  w.key("missing").begin_array();
  for (const auto& m : missing) w.value(m);
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

MergeReport merge_caches(const MergeOptions& opts) {
  MergeReport report;
  const std::uint64_t build_fp = cost_model_fingerprint();

  std::error_code ec;
  fs::create_directories(opts.dest, ec);
  if (ec && !fs::is_directory(opts.dest)) {
    throw std::runtime_error("cannot create merge destination " + opts.dest +
                             ": " + ec.message());
  }

  for (const auto& src : opts.sources) {
    if (!fs::is_directory(src)) {
      throw std::runtime_error("source is not a directory: " + src);
    }
    std::vector<std::string> names;
    for (const auto& e : fs::directory_iterator(src)) {
      if (e.is_regular_file() && is_entry_name(e.path().filename().string()))
        names.push_back(e.path().filename().string());
    }
    // Deterministic scan order so reports are stable across hosts.
    std::sort(names.begin(), names.end());

    for (const auto& name : names) {
      const std::string path = src + "/" + name;
      ++report.scanned;
      std::string text;
      if (!read_file(path, &text)) {
        report.rejected.push_back({path, "cannot read"});
        continue;
      }
      std::string reason;
      if (!check_entry(name, text, build_fp, &reason)) {
        report.rejected.push_back({path, reason});
        continue;
      }
      const std::string dest_path = opts.dest + "/" + name;
      std::string existing;
      if (read_file(dest_path, &existing)) {
        if (existing == text) {
          ++report.identical_duplicates;
        } else {
          report.divergent.push_back(
              {path, "conflicts with already-merged " + dest_path});
        }
        continue;
      }
      const std::string tmp = dest_path + ".tmp";
      {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << text;
        if (!out) {
          std::remove(tmp.c_str());
          throw std::runtime_error("cannot write " + tmp);
        }
      }
      if (std::rename(tmp.c_str(), dest_path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp);
      }
      ++report.merged;
    }
  }

  if (!opts.expect_path.empty()) {
    std::string manifest;
    if (!read_file(opts.expect_path, &manifest)) {
      throw std::runtime_error("cannot read manifest " + opts.expect_path);
    }
    // The manifest is a --shard-list capture: take every `entry=` token
    // (other lines -- headers, ablation banners -- are ignored).
    std::vector<std::string> expected;
    std::istringstream lines(manifest);
    std::string line;
    while (std::getline(lines, line)) {
      std::istringstream tokens(line);
      std::string tok;
      while (tokens >> tok) {
        if (tok.rfind("entry=", 0) == 0 && is_entry_name(tok.substr(6)))
          expected.push_back(tok.substr(6));
      }
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    report.expected = expected.size();
    for (const auto& name : expected) {
      if (!fs::exists(opts.dest + "/" + name)) report.missing.push_back(name);
    }
  }
  return report;
}

namespace {

bool is_claim_name(const std::string& name) {
  return name.size() == 4 + 16 + 6 && name.rfind("kop-", 0) == 0 &&
         name.compare(name.size() - 6, 6, ".claim") == 0;
}

}  // namespace

std::string ClaimAudit::text() const {
  std::string out = "audited " + std::to_string(claims) + " claims, " +
                    std::to_string(covered) + " covered by cache entries\n";
  for (const auto& s : stranded) {
    out += "  STRANDED " + s.file + " (owner " + s.owner + "; expected " +
           s.entry + ")\n";
  }
  out += ok() ? "claims OK\n" : "claims STRANDED\n";
  return out;
}

ClaimAudit audit_claims(const std::string& claim_dir,
                        const std::vector<std::string>& caches) {
  if (!fs::is_directory(claim_dir)) {
    throw std::runtime_error("claim dir is not a directory: " + claim_dir);
  }
  ClaimAudit audit;
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(claim_dir)) {
    if (e.is_regular_file() && is_claim_name(e.path().filename().string()))
      names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());

  for (const auto& name : names) {
    ++audit.claims;
    // kop-<key>.claim promises kop-<key>.json somewhere.
    const std::string entry =
        name.substr(0, name.size() - 6) + ".json";
    bool found = false;
    for (const auto& cache : caches) {
      if (!fs::is_directory(cache)) {
        throw std::runtime_error("cache dir is not a directory: " + cache);
      }
      if (fs::exists(cache + "/" + entry)) {
        found = true;
        break;
      }
    }
    if (found) {
      ++audit.covered;
      continue;
    }
    std::string owner;
    (void)read_file(claim_dir + "/" + name, &owner);
    while (!owner.empty() && (owner.back() == '\n' || owner.back() == '\r')) {
      owner.pop_back();
    }
    audit.stranded.push_back(
        {claim_dir + "/" + name, owner.empty() ? "?" : owner, entry});
  }
  return audit;
}

std::uint64_t cache_digest(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("cache dir is not a directory: " + dir);
  }
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && is_entry_name(e.path().filename().string()))
      names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  std::string fold;
  for (const auto& name : names) {
    std::string text;
    if (!read_file(dir + "/" + name, &text)) {
      throw std::runtime_error("cannot read " + dir + "/" + name);
    }
    fold += name + "\n" + hex16(fnv1a64(text)) + "\n";
  }
  return fnv1a64(fold);
}

}  // namespace kop::harness::jobs
