// Merging shard caches back into one result cache.
//
// Entries are self-contained kop-metrics v1 documents, so merging is
// file copy plus verification.  Every candidate entry must
//
//   1. validate against the kop-metrics v1 schema,
//   2. carry the x_kop_cache sidecar (point canonical form +
//      cost-model fingerprint),
//   3. match this build's cost-model fingerprint and schema version
//      (entries from a different calibration would silently never be
//      hit -- or worse, be trusted by fingerprint-agnostic readers),
//   4. sit under the filename its recorded identity hashes to (a
//      renamed or stale file is indistinguishable from corruption).
//
// Two sources providing the same entry name is fine when the bytes
// agree (shards may overlap); divergent bytes mean two simulations of
// "the same" point disagreed and the merge refuses to pick a winner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kop::harness::jobs {

struct MergeOptions {
  /// Shard cache directories, scanned in order.
  std::vector<std::string> sources;
  /// Destination cache directory (created if needed).  May already
  /// contain entries; they participate in duplicate detection.
  std::string dest;
  /// Optional coverage manifest: a `--shard-list` capture whose
  /// `entry=` column names every cache file the full sweep needs.
  std::string expect_path;
};

struct MergeIssue {
  std::string file;    // source path of the offending entry
  std::string reason;  // human-readable
};

struct MergeReport {
  std::uint64_t scanned = 0;               // candidate entries seen
  std::uint64_t merged = 0;                // entries copied into dest
  std::uint64_t identical_duplicates = 0;  // same name, same bytes
  std::vector<MergeIssue> rejected;        // schema/fingerprint/key
  std::vector<MergeIssue> divergent;       // same name, different bytes
  std::size_t expected = 0;                // manifest size (0 = none)
  std::vector<std::string> missing;        // expected entries not merged

  bool ok() const {
    return rejected.empty() && divergent.empty() && missing.empty();
  }
  /// Human report (what kop_merge prints).
  std::string text() const;
  /// Machine-readable report for CI gating.
  std::string json() const;
};

/// Union the source caches into dest.  Throws std::runtime_error only
/// for setup-level failures (unreadable source directory, uncreatable
/// dest, unreadable manifest); per-entry problems land in the report.
MergeReport merge_caches(const MergeOptions& opts);

}  // namespace kop::harness::jobs
