// Merging shard caches back into one result cache.
//
// Entries are self-contained kop-metrics v1 documents, so merging is
// file copy plus verification.  Every candidate entry must
//
//   1. validate against the kop-metrics v1 schema,
//   2. carry the x_kop_cache sidecar (point canonical form +
//      cost-model fingerprint),
//   3. match this build's cost-model fingerprint and schema version
//      (entries from a different calibration would silently never be
//      hit -- or worse, be trusted by fingerprint-agnostic readers),
//   4. sit under the filename its recorded identity hashes to (a
//      renamed or stale file is indistinguishable from corruption).
//
// Two sources providing the same entry name is fine when the bytes
// agree (shards may overlap); divergent bytes mean two simulations of
// "the same" point disagreed and the merge refuses to pick a winner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kop::harness::jobs {

struct MergeOptions {
  /// Shard cache directories, scanned in order.
  std::vector<std::string> sources;
  /// Destination cache directory (created if needed).  May already
  /// contain entries; they participate in duplicate detection.
  std::string dest;
  /// Optional coverage manifest: a `--shard-list` capture whose
  /// `entry=` column names every cache file the full sweep needs.
  std::string expect_path;
};

struct MergeIssue {
  std::string file;    // source path of the offending entry
  std::string reason;  // human-readable
};

struct MergeReport {
  std::uint64_t scanned = 0;               // candidate entries seen
  std::uint64_t merged = 0;                // entries copied into dest
  std::uint64_t identical_duplicates = 0;  // same name, same bytes
  std::vector<MergeIssue> rejected;        // schema/fingerprint/key
  std::vector<MergeIssue> divergent;       // same name, different bytes
  std::size_t expected = 0;                // manifest size (0 = none)
  std::vector<std::string> missing;        // expected entries not merged

  bool ok() const {
    return rejected.empty() && divergent.empty() && missing.empty();
  }
  /// Human report (what kop_merge prints).
  std::string text() const;
  /// Machine-readable report for CI gating.
  std::string json() const;
};

/// Union the source caches into dest.  Throws std::runtime_error only
/// for setup-level failures (unreadable source directory, uncreatable
/// dest, unreadable manifest); per-entry problems land in the report.
MergeReport merge_caches(const MergeOptions& opts);

/// One claim file with no matching cache entry in any searched cache:
/// a worker claimed the point and then died before storing the result.
/// Unlike coordinator leases, claim files never expire, so the point
/// is stranded until an operator deletes the claim and re-runs.
struct StrandedClaim {
  std::string file;   // claim path
  std::string owner;  // "<hostname>:<pid>" recorded inside the claim
  std::string entry;  // the cache entry the claim promised
};

struct ClaimAudit {
  std::uint64_t claims = 0;    // claim files scanned
  std::uint64_t covered = 0;   // claims whose entry exists somewhere
  std::vector<StrandedClaim> stranded;

  bool ok() const { return stranded.empty(); }
  std::string text() const;
};

/// Cross-check a --shard-claim directory against one or more cache
/// directories: every `kop-<key>.claim` must have `kop-<key>.json` in
/// some cache, else the claim is stranded (worker crashed mid-point).
/// Throws std::runtime_error when a directory cannot be read.
ClaimAudit audit_claims(const std::string& claim_dir,
                        const std::vector<std::string>& caches);

/// Order-independent digest of a cache directory's contents: FNV-1a
/// folded over every entry name and its bytes, in sorted-name order.
/// Two sweeps produced the same results iff their digests match -- the
/// determinism check CI runs between a crash-reclaimed multi-worker
/// sweep and a single-worker reference run.
std::uint64_t cache_digest(const std::string& dir);

}  // namespace kop::harness::jobs
