// Execution options for the experiment job layer.  Lives in its own
// header (no other harness includes) so both the JobRunner and the
// figure-CLI option parser can share it without an include cycle.
#pragma once

#include <string>

namespace kop::harness::jobs {

/// One shard of a hash-partitioned sweep.  The partition is
/// deterministic over point *content hashes* (shard.cpp), so every
/// machine running the same binary with the same flags agrees on the
/// assignment without any coordination.  The CLI form is `--shard K/N`
/// with 1-based K; internally the index is 0-based.
struct ShardSpec {
  int index = 0;
  int count = 1;
  /// --shard-list: print the partition (one point per line, with its
  /// shard, content hash, and cache entry name) instead of executing.
  bool list_only = false;

  bool enabled() const { return count > 1; }
  /// Human/CLI form, 1-based: "2/3".
  std::string label() const {
    return std::to_string(index + 1) + "/" + std::to_string(count);
  }
};

struct JobOptions {
  /// Host worker threads; 0 = std::thread::hardware_concurrency().
  int jobs = 0;
  /// On-disk result cache directory; empty = caching disabled.
  std::string cache_dir;
  /// Force cache off even when cache_dir is set (--no-cache).
  bool no_cache = false;
  /// Bounded dispatch-queue capacity; 0 = 2x the worker count.
  int queue_capacity = 0;
  /// Sweep partition for distributed execution (--shard K/N); the
  /// figure/driver layer filters points, the runner never sees it.
  ShardSpec shard;
  /// Work-stealing alternative to --shard (--shard-claim DIR): every
  /// worker enumerates the full sweep and atomically claims points
  /// from this shared directory before simulating them (claim.hpp).
  /// Unclaimed points come back with PointResult::skipped set.
  std::string claim_dir;
  /// Coordinator-backed alternative to both (--coord ADDR, a unix
  /// socket path or host:port): lease each point from a kop_sweepd
  /// daemon before simulating it (lease_session.hpp).  Crashed workers
  /// need no cleanup -- their leases expire and the daemon re-queues
  /// the points.
  std::string coord_socket;
  /// Checkpointed execution (--checkpoint): points sharing a canonical
  /// prefix run one warm prefix each and fork one COW child per
  /// late-binding suffix at the warmup/measurement boundary
  /// (forkrun.hpp).  Results and cache entries are byte-identical to
  /// cold runs; groups degrade to cold execution where fork is
  /// unavailable (ThreadSanitizer builds) or a child dies.
  bool checkpoint = false;

  bool cache_enabled() const { return !cache_dir.empty() && !no_cache; }
  bool claim_enabled() const { return !claim_dir.empty(); }
  bool coord_enabled() const { return !coord_socket.empty(); }
};

/// Resolved worker count for `n_points` jobs (clamped to [1, n_points]
/// when n_points > 0).
int effective_jobs(const JobOptions& opts, std::size_t n_points);

}  // namespace kop::harness::jobs
