// Execution options for the experiment job layer.  Lives in its own
// header (no other harness includes) so both the JobRunner and the
// figure-CLI option parser can share it without an include cycle.
#pragma once

#include <string>

namespace kop::harness::jobs {

struct JobOptions {
  /// Host worker threads; 0 = std::thread::hardware_concurrency().
  int jobs = 0;
  /// On-disk result cache directory; empty = caching disabled.
  std::string cache_dir;
  /// Force cache off even when cache_dir is set (--no-cache).
  bool no_cache = false;
  /// Bounded dispatch-queue capacity; 0 = 2x the worker count.
  int queue_capacity = 0;

  bool cache_enabled() const { return !cache_dir.empty() && !no_cache; }
};

/// Resolved worker count for `n_points` jobs (clamped to [1, n_points]
/// when n_points > 0).
int effective_jobs(const JobOptions& opts, std::size_t n_points);

}  // namespace kop::harness::jobs
