#include "harness/jobs/point.hpp"

#include <algorithm>
#include <cstdio>

#include "hw/cost_params.hpp"
#include "hw/topology.hpp"

namespace kop::harness::jobs {

namespace {

// All doubles in canonical forms print with %.17g so the serialization
// is exact (round-trips bit-for-bit) and stable across hosts.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt(std::uint64_t v) { return std::to_string(v); }
std::string fmt(std::int64_t v) { return std::to_string(v); }
std::string fmt(int v) { return std::to_string(v); }
std::string fmt(bool v) { return v ? "1" : "0"; }

const char* epcc_part_name(EpccPart p) {
  switch (p) {
    case EpccPart::kSync:  return "sync";
    case EpccPart::kSched: return "sched";
    case EpccPart::kArray: return "array";
    case EpccPart::kTask:  return "task";
    case EpccPart::kAll:   return "all";
  }
  return "?";
}

void append_nas(std::string& out, const nas::BenchmarkSpec& b) {
  out += "|bench=" + b.name + "-" + b.clazz;
  out += "|timesteps=" + fmt(b.timesteps);
  out += "|serial_ns=" + fmt(b.serial_ns_per_step);
  out += "|static=" + fmt(b.static_bytes);
  for (const auto& r : b.regions) {
    out += "|region=" + r.name + ":" + fmt(r.bytes);
  }
  for (const auto& l : b.loops) {
    out += "|loop=" + l.name + "," + l.region + "," + fmt(l.trip) + "," +
           fmt(l.per_iter_ns) + "," + fmt(l.mem_fraction) + "," +
           fmt(l.bytes_per_iter) + "," + fmt(static_cast<int>(l.pattern)) +
           "," + fmt(l.skew) + "," + fmt(l.needs_object_privatization) + "," +
           komp::schedule_name(l.schedule) + "," + fmt(l.chunk);
  }
}

void append_epcc(std::string& out, EpccPart part, const epcc::EpccConfig& c) {
  out += "|part=" + std::string(epcc_part_name(part));
  out += "|reps=" + fmt(c.outer_reps);
  out += "|inner=" + fmt(c.inner_iters);
  out += "|delay=" + fmt(static_cast<std::int64_t>(c.delay_ns));
  out += "|mutex_delay=" + fmt(static_cast<std::int64_t>(c.mutex_delay_ns));
  out += "|sched_iters=" + fmt(c.sched_iters_per_thread);
  out += "|arrays=";
  for (std::size_t i = 0; i < c.array_sizes.size(); ++i) {
    if (i) out += ";";
    out += fmt(c.array_sizes[i]);
  }
  out += "|tasks=" + fmt(c.tasks_per_thread);
  out += "|depth=" + fmt(c.tree_depth);
}

void append_costs(std::string& out, const hw::OsCosts& c) {
  out += "|" + c.personality + "=";
  out += fmt(c.demand_paging) + "," +
         fmt(static_cast<std::int64_t>(c.minor_fault_ns)) + "," +
         fmt(c.thp_2m_fraction) + "," +
         fmt(static_cast<std::uint64_t>(c.mapped_page_size)) + "," +
         fmt(static_cast<std::int64_t>(c.syscall_ns)) + "," +
         fmt(static_cast<std::int64_t>(c.context_switch_ns)) + "," +
         fmt(static_cast<std::int64_t>(c.thread_create_ns)) + "," +
         fmt(static_cast<std::int64_t>(c.wake_latency_ns)) + "," +
         fmt(c.wake_cv) + "," +
         fmt(static_cast<std::int64_t>(c.tick_period_ns)) + "," +
         fmt(static_cast<std::int64_t>(c.tick_cost_ns)) + "," +
         fmt(c.noise_rate_hz) + "," +
         fmt(static_cast<std::int64_t>(c.noise_mean_ns)) + "," +
         fmt(c.noise_cv) + "," +
         fmt(static_cast<std::int64_t>(c.timeslice_ns)) + "," +
         fmt(c.competing_load) + "," +
         fmt(static_cast<std::int64_t>(c.alloc_base_ns)) + "," +
         fmt(c.numa_aware_alloc) + "," + fmt(c.compute_inflation);
}

void append_machine(std::string& out, const hw::MachineConfig& m) {
  out += "|machine=" + m.name + ":" + fmt(m.num_cpus) + "," +
         fmt(m.num_sockets) + "," + fmt(m.cores_per_socket) + "," +
         fmt(m.base_ghz) + "," + fmt(m.tlb.entries_4k) + "," +
         fmt(m.tlb.entries_2m) + "," + fmt(m.tlb.entries_1g) + "," +
         fmt(static_cast<std::int64_t>(m.tlb.miss_walk_ns)) + "," +
         fmt(static_cast<std::int64_t>(m.cacheline_transfer_ns)) + "," +
         fmt(static_cast<std::int64_t>(m.mem_latency_ns)) + "," +
         fmt(m.copy_bytes_per_ns) + "," + fmt(m.perf_factor);
  for (const auto& z : m.zones) {
    out += ";zone" + fmt(z.id) + "=" + fmt(static_cast<int>(z.kind)) + "," +
           fmt(z.bytes) + "," + fmt(static_cast<int>(z.cpus.size()));
  }
}

}  // namespace

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t cost_model_fingerprint() {
  std::string s = "kop-cost-model";
  for (const auto& m : {hw::phi(), hw::xeon8()}) {
    append_machine(s, m);
    append_costs(s, hw::linux_costs(m));
    append_costs(s, hw::nautilus_costs(m));
  }
  return fnv1a64(s);
}

std::string PointSpec::canonical() const {
  std::string out = "point-v1";
  out += "|kind=";
  out += kind == Kind::kNas ? "nas" : "epcc";
  out += "|machine=" + machine;
  out += "|path=" + std::string(core::path_name(path));
  out += "|threads=" + fmt(threads);
  out += "|ft=";
  out += first_touch < 0 ? "auto" : fmt(first_touch);
  out += "|pte=" + fmt(rtk_use_pte);
  out += "|seed=" + fmt(seed);
  if (kind == Kind::kNas) {
    append_nas(out, nas);
  } else {
    append_epcc(out, epcc_part, epcc);
  }
  // NUMA knobs append only when non-default, so flat points keep their
  // historical canonical bytes (and cache identities) -- the same
  // append-when-present rule as cost_scales below.
  if (numa_sched_hier) out += "|numa=hier";
  if (numa_migrate) out += "|migrate=1";
  // Scale entries append only when present, so scale-free points keep
  // their historical canonical bytes (and cache identities).
  for (const auto& s : cost_scales) {
    out += "|scale=" + s.key + ":" + fmt(s.scale);
  }
  return out;
}

std::uint64_t PointSpec::content_hash() const { return fnv1a64(canonical()); }

std::string PointSpec::prefix_canonical() const {
  // Everything the warmup trajectory depends on: the full canonical
  // with the late-binding knobs normalized out.  The rep count pins to
  // 1 (not dropped) so the prefix form stays parseable by the same
  // eyes as canonical().
  PointSpec p = *this;
  p.cost_scales.clear();
  p.nas.timesteps = 1;
  p.epcc.outer_reps = 1;
  return "prefix-v1|" + p.canonical();
}

std::string PointSpec::suffix_canonical() const {
  std::string out = "suffix-v1";
  out += kind == Kind::kNas ? "|timesteps=" + fmt(nas.timesteps)
                            : "|reps=" + fmt(epcc.outer_reps);
  for (const auto& s : cost_scales) {
    out += "|scale=" + s.key + ":" + fmt(s.scale);
  }
  return out;
}

std::uint64_t PointSpec::prefix_hash() const {
  return fnv1a64(prefix_canonical());
}

std::uint64_t PointSpec::suffix_hash() const {
  return fnv1a64(suffix_canonical());
}

std::string PointSpec::label() const {
  std::string out = kind == Kind::kNas
                        ? nas.full_name()
                        : "epcc-" + std::string(epcc_part_name(epcc_part));
  out += " " + machine + "/" + core::path_name(path) + " t" + fmt(threads);
  if (numa_sched_hier) out += " hier";
  if (numa_migrate) out += " migrate";
  return out;
}

core::StackConfig PointSpec::stack_config() const {
  core::StackConfig cfg;
  cfg.machine = machine;
  cfg.path = path;
  cfg.num_threads = threads;
  cfg.seed = seed;
  cfg.rtk_use_pte = rtk_use_pte;
  cfg.nk_first_touch =
      first_touch < 0 ? want_first_touch(machine, threads) : first_touch != 0;
  if (numa_sched_hier) cfg.env.emplace_back("KOMP_NUMA_SCHED", "hier");
  cfg.numa_migrate = numa_migrate;
  return cfg;
}

double cost_estimate(const PointSpec& spec) {
  const double threads = spec.threads < 1 ? 1.0 : spec.threads;
  if (spec.kind == PointSpec::Kind::kNas) {
    // Host cost tracks simulated events: per-thread bookkeeping at
    // every worksharing construct of every timestep, plus the nominal
    // work the loops burn (scaled down so neither term drowns the
    // other on the paper's workloads).
    const double constructs =
        static_cast<double>(spec.nas.loops.size() + 1) * spec.nas.timesteps;
    return threads * constructs + spec.nas.base_work_ns() * 1e-6;
  }
  // Approximate measured-construct counts of each EPCC part.
  const double sync = 10.0, sched = 4.0, task = 5.0;
  const double array = 3.0 * static_cast<double>(spec.epcc.array_sizes.size());
  double constructs = 0.0;
  switch (spec.epcc_part) {
    case EpccPart::kSync:  constructs = sync; break;
    case EpccPart::kSched: constructs = sched; break;
    case EpccPart::kArray: constructs = array; break;
    case EpccPart::kTask:  constructs = task; break;
    case EpccPart::kAll:   constructs = sync + sched + array + task; break;
  }
  return threads * spec.epcc.outer_reps *
         (constructs * spec.epcc.inner_iters +
          spec.epcc.sched_iters_per_thread + spec.epcc.tasks_per_thread);
}

bool apply_point_scales(core::Stack& stack,
                        const std::vector<PointSpec::CostScale>& scales) {
  if (scales.empty()) return false;
  hw::OsCosts costs = stack.os().costs();
  const std::string prefix = costs.personality + ".";
  bool any = false;
  for (const auto& s : scales) {
    if (s.key.compare(0, prefix.size(), prefix) != 0) continue;
    hw::apply_cost_scale(costs, s.key.substr(prefix.size()), s.scale);
    any = true;
  }
  if (any) stack.os().rebind_costs(costs);
  return any;
}

PointResult run_point(const PointSpec& spec) {
  return run_point(spec, RunHooks{});
}

PointResult run_point(const PointSpec& spec, const RunHooks& hooks) {
  PointResult result;
  const core::StackConfig cfg = spec.stack_config();
  RunHooks h = hooks;
  if (!h.at_snapshot) {
    // Default suffix binding: cost scales apply at the boundary, the
    // same instant a checkpointed child would bind them, so cold and
    // checkpointed trajectories match byte for byte.
    h.at_snapshot = [&spec](core::Stack& stack, SnapshotCtl&) {
      apply_point_scales(stack, spec.cost_scales);
    };
  }
  if (spec.kind == PointSpec::Kind::kNas) {
    run_nas(cfg, spec.nas, &result.metrics, h);
  } else {
    result.epcc = run_epcc(cfg, spec.epcc_part, spec.epcc, &result.metrics, h);
  }
  return result;
}

std::size_t PointMatrix::add(PointSpec spec) {
  std::string key = spec.canonical();
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const auto& e, const std::string& k) { return e.first < k; });
  if (it != index_.end() && it->first == key) return it->second;
  const std::size_t idx = points_.size();
  points_.push_back(std::move(spec));
  index_.insert(it, {std::move(key), idx});
  return idx;
}

}  // namespace kop::harness::jobs
