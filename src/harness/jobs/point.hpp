// Declarative experiment points.
//
// Every figure/ablation in the evaluation is a matrix of fully
// independent simulation points -- one booted stack per (machine, path,
// benchmark-or-EPCC-part, thread count) tuple.  A PointSpec describes
// one such point declaratively: enough to (a) execute it on a fresh
// sim::Engine, (b) serialize it canonically, and (c) hash it for the
// content-addressed result cache.
//
// The layering of the job subsystem:
//
//   point.hpp   enumerate -- PointSpec + canonical form + content hash,
//               PointResult, run_point() (one spec -> one engine run)
//   runner.hpp  execute   -- JobRunner host-thread pool, bounded queue,
//               retry, deterministic result ordering
//   cache.hpp   cache     -- on-disk ResultCache keyed by
//               content hash (+) cost-model fingerprint (+) schema version
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"

namespace kop::harness::jobs {

/// FNV-1a 64-bit over a byte string (the content-hash primitive).
std::uint64_t fnv1a64(const std::string& bytes);

/// Zero-padded 16-digit lowercase hex -- the rendering used for cache
/// entry names, fingerprints, and shard listings.
std::string hex16(std::uint64_t v);

/// 64-bit fingerprint of the whole calibration surface: every field of
/// hw::linux_costs()/hw::nautilus_costs() and the cost-relevant machine
/// parameters, for both evaluation platforms.  Changing any constant in
/// hw/cost_params.hpp (or the topology cost sheet) changes this value,
/// which invalidates every cached result.
std::uint64_t cost_model_fingerprint();

/// One simulation point of an experiment matrix.
struct PointSpec {
  enum class Kind { kNas, kEpcc };

  Kind kind = Kind::kNas;
  std::string machine = "phi";
  core::PathKind path = core::PathKind::kLinuxOmp;
  int threads = 1;
  /// First-touch-at-2MB: -1 = paper convention (want_first_touch),
  /// 0 = force off, 1 = force on (the §6.3 ablation forces both).
  int first_touch = -1;
  /// RTK: use the PTE pthread port (Fig. 2a ablation).
  bool rtk_use_pte = false;
  std::uint64_t seed = 42;
  /// Task-steal victim order: false = flat ring, true = hierarchical
  /// (topology-tree outward walk; KOMP_NUMA_SCHED=hier on the stack).
  bool numa_sched_hier = false;
  /// Arm app allocations for migration-on-next-touch placement.
  bool numa_migrate = false;

  /// kNas: the full (possibly scale_suite-adjusted) workload.  The
  /// canonical form covers every loop parameter, so two points at
  /// different --scale factors never alias in the cache.
  nas::BenchmarkSpec nas;

  /// kEpcc: which part and every suite knob.
  EpccPart epcc_part = EpccPart::kAll;
  epcc::EpccConfig epcc;

  /// One late-binding cost-model override: `key` is the registry form
  /// "<personality>.<field>" (hw/cost_params.hpp), applied to this
  /// point's booted stack at the warmup/measurement boundary via
  /// osal::Os::rebind_costs -- never through the process-global
  /// hw::set_cost_scale registry, which concurrent JobRunner workers
  /// would race on.  Keys whose personality does not match the booted
  /// sheet are skipped (a pik stack ignores "linux.*" overrides).
  struct CostScale {
    std::string key;
    double scale = 1.0;
  };
  std::vector<CostScale> cost_scales;

  /// Canonical single-line serialization.  Stable across runs and
  /// hosts; the identity the cache and the deduplication map key on.
  /// Byte-identical to earlier schema versions when cost_scales is
  /// empty (scale entries append only when present).
  std::string canonical() const;
  /// FNV-1a 64 of canonical().
  std::uint64_t content_hash() const;

  /// --- Prefix/suffix split (checkpointed sweeps) ---
  /// The *prefix* is everything that shapes the simulation before the
  /// warmup/measurement boundary: machine, workload shape, path,
  /// scheduler, team size.  The *suffix* is what binds at the boundary:
  /// rep count (nas.timesteps / epcc.outer_reps) and cost_scales.  Two
  /// points with equal prefix_hash() can share one warm prefix run and
  /// fork per suffix; canonical() == prefix + suffix remains the cache
  /// identity, so checkpointed and cold results key identically.
  std::string prefix_canonical() const;
  std::string suffix_canonical() const;
  std::uint64_t prefix_hash() const;
  std::uint64_t suffix_hash() const;

  /// Short human label for logs and error reports.
  std::string label() const;
  /// The stack configuration this point boots.
  core::StackConfig stack_config() const;
};

/// What running a point produces.  `epcc` is filled for kEpcc points
/// (the full per-construct measurement list, in suite order -- the
/// figure tables align measurement indices across paths).
struct PointResult {
  RunMetrics metrics;
  std::vector<epcc::Measurement> epcc;
  bool failed = false;
  std::string error;
  bool from_cache = false;
  /// Claim mode (--shard-claim): another worker owns this point; it was
  /// neither simulated nor loaded, and `metrics` is empty.
  bool skipped = false;
};

/// Execute one point on a freshly booted stack (blocking, this host
/// thread).  Exceptions from the simulation propagate to the caller;
/// the JobRunner turns them into failure capture + one retry.
/// spec.cost_scales bind at the warmup/measurement boundary (identical
/// trajectory to a checkpointed run of the same point).
PointResult run_point(const PointSpec& spec);

/// As above, with observation hooks.  When `hooks.at_snapshot` is set
/// the caller owns *all* suffix binding -- run_point will not apply
/// spec.cost_scales itself (the checkpoint group runner binds each
/// member's suffix, including the representative's, in its own hook).
PointResult run_point(const PointSpec& spec, const RunHooks& hooks);

/// Apply a point's cost-scale suffix to a booted stack: scales whose
/// personality prefix matches the stack's cost sheet are applied to a
/// copy of os().costs() and rebound atomically (osal::Os::rebind_costs);
/// the rest are skipped.  Returns true if any scale applied.  Throws
/// std::invalid_argument for an unknown field or non-positive scale.
bool apply_point_scales(core::Stack& stack,
                        const std::vector<PointSpec::CostScale>& scales);

/// Rough relative host-side cost of simulating a point, in arbitrary
/// monotone units (threads x reps x constructs-style).  The JobRunner
/// dispatches longest-expected-first so big EPCC points at high thread
/// counts don't land last and stretch the parallel tail.
double cost_estimate(const PointSpec& spec);

/// A deduplicating, order-preserving set of points: the enumerate stage
/// of every figure builder.  add() returns the index of the point in
/// points() (existing index if an identical point was already added),
/// which is also the index of its result in JobRunner::run().
class PointMatrix {
 public:
  std::size_t add(PointSpec spec);
  const std::vector<PointSpec>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

 private:
  std::vector<PointSpec> points_;
  std::vector<std::pair<std::string, std::size_t>> index_;  // sorted
};

}  // namespace kop::harness::jobs
