#include "harness/jobs/runner.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

#include <algorithm>
#include <map>
#include <stdexcept>
#include <thread>

#include "harness/jobs/forkrun.hpp"

namespace kop::harness::jobs {

int effective_jobs(const JobOptions& opts, std::size_t n_points) {
  int jobs = opts.jobs;
  if (jobs <= 0) {
    // Respect the affinity mask (containers and batch schedulers often
    // grant fewer CPUs than hardware_concurrency() reports).
#if defined(__linux__)
    cpu_set_t mask;
    if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
      jobs = CPU_COUNT(&mask);
    }
#endif
    if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  if (n_points > 0) {
    jobs = std::min<std::size_t>(static_cast<std::size_t>(jobs), n_points);
  }
  return std::max(jobs, 1);
}

BoundedQueue::BoundedQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void BoundedQueue::push(std::size_t v) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
  if (closed_) return;
  items_.push_back(v);
  not_empty_.notify_one();
}

bool BoundedQueue::pop(std::size_t* v) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return false;
  *v = items_.front();
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

void BoundedQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

JobRunner::JobRunner(JobOptions opts) : opts_(std::move(opts)) {
  if (opts_.cache_enabled()) {
    cache_ = std::make_unique<ResultCache>(opts_.cache_dir);
  }
  if (opts_.claim_enabled()) {
    claim_ = std::make_unique<ClaimDir>(opts_.claim_dir);
  }
  if (opts_.coord_enabled()) {
    lease_ = std::make_unique<LeaseSession>(opts_.coord_socket);
  }
}

PointResult JobRunner::execute_one(const PointSpec& spec) {
  // Claim before the cache lookup: the claim files are the sweep's
  // exactly-once coverage ledger, so a point counts as this worker's
  // even when its result then comes from a warm cache.
  if (claim_ != nullptr && !claim_->try_claim(spec)) {
    PointResult skipped;
    skipped.skipped = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.skipped;
    return skipped;
  }
  // A lease is the coordinator's claim: same exactly-once semantics,
  // but reclaimable if this worker dies.  Completion is reported after
  // the result is in the cache, so a GET served as COMPLETE can always
  // be answered from disk.
  if (lease_ != nullptr && !lease_->try_acquire(spec)) {
    PointResult skipped;
    skipped.skipped = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.skipped;
    return skipped;
  }
  if (cache_ != nullptr) {
    PointResult cached;
    if (cache_->load(spec, &cached)) {
      if (lease_ != nullptr) lease_->complete(spec);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.cache_hits;
      return cached;
    }
  }
  return simulate_point(spec);
}

PointResult JobRunner::simulate_point(const PointSpec& spec) {
  // One retry: the simulation is deterministic, but host-side
  // transients (allocation pressure, a torn cache entry mid-write)
  // deserve a second attempt before the point is declared failed.
  std::string first_error;
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      PointResult result = run_point(spec);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.executed;
        if (attempt > 0) ++stats_.retries;
      }
      if (cache_ != nullptr) cache_->store(spec, result);
      // Store before DONE: once the coordinator calls the point
      // complete, the entry must already be on disk for GET to serve.
      if (lease_ != nullptr) lease_->complete(spec);
      return result;
    } catch (const std::exception& e) {
      if (attempt == 0) {
        first_error = e.what();
      } else {
        PointResult failed;
        failed.failed = true;
        failed.error = spec.label() + ": " + e.what() +
                       (first_error == e.what()
                            ? " (twice)"
                            : " (first attempt: " + first_error + ")");
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.retries;
        ++stats_.failures;
        return failed;
      }
    }
  }
  return {};  // unreachable
}

void JobRunner::execute_group(const std::vector<PointSpec>& points,
                              const std::vector<std::size_t>& members,
                              std::vector<PointResult>& results) {
  // Admission (claims, leases, cache lookups) happens here, in the
  // parent, for every member: forked children must never touch these
  // shared resources.  Whatever survives admission shares one warm
  // prefix.
  std::vector<std::size_t> torun;
  for (std::size_t idx : members) {
    const PointSpec& spec = points[idx];
    if ((claim_ != nullptr && !claim_->try_claim(spec)) ||
        (lease_ != nullptr && !lease_->try_acquire(spec))) {
      results[idx].skipped = true;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.skipped;
      continue;
    }
    if (cache_ != nullptr && cache_->load(spec, &results[idx])) {
      if (lease_ != nullptr) lease_->complete(spec);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.cache_hits;
      continue;
    }
    torun.push_back(idx);
  }
  // A warm prefix pays off only when at least two suffixes share it.
  if (torun.size() < 2) {
    for (std::size_t idx : torun) results[idx] = simulate_point(points[idx]);
    return;
  }

  std::vector<PointSpec> specs;
  specs.reserve(torun.size());
  for (std::size_t idx : torun) specs.push_back(points[idx]);
  std::vector<PointResult> group = run_prefix_group(specs);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.prefixes;
  }
  for (std::size_t i = 0; i < torun.size(); ++i) {
    const std::size_t idx = torun[i];
    if (group[i].failed) {
      // Child fork/pipe mishaps (or a genuine simulation failure) fall
      // back to the cold path, which carries its own retry; a point
      // that fails both ways reports the cold error.
      results[idx] = simulate_point(points[idx]);
      continue;
    }
    results[idx] = std::move(group[i]);
    if (cache_ != nullptr) cache_->store(points[idx], results[idx]);
    if (lease_ != nullptr) lease_->complete(points[idx]);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.executed;
    if (i > 0) ++stats_.forked;
  }
}

std::vector<PointResult> JobRunner::run(const std::vector<PointSpec>& points) {
  std::vector<PointResult> results(points.size());
  if (points.empty()) return results;

  // Batched cache probe: one MGET round trip per 64 points tells us
  // which points the coordinator already considers complete, so their
  // try_acquire calls skip locally instead of issuing a LEASE each.
  // The answer can only under-report (completion is terminal), so a
  // stale probe costs one redundant LEASE, never a missed point.
  if (lease_ != nullptr) {
    try {
      (void)lease_->prefetch(points);
    } catch (const std::exception&) {
      // Probe failure is non-fatal; the per-point LEASE path decides.
    }
  }

  // Dedup: simulate each distinct point once, fan results back out.
  std::map<std::string, std::size_t> first_of;
  std::vector<std::size_t> unique_idx;        // indices into `points`
  std::vector<std::size_t> alias(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto [it, inserted] = first_of.try_emplace(points[i].canonical(), i);
    if (inserted) unique_idx.push_back(i);
    alias[i] = it->second;
  }

  // Longest-expected-first dispatch: big points (EPCC kAll at high
  // thread counts) go out first so they don't land on the tail of the
  // parallel schedule.  Results are collated by input index either
  // way, so tables and --json artifacts stay byte-identical to
  // enumeration-order dispatch.  stable_sort keeps enumeration order
  // among equal-cost points.
  std::vector<double> cost(points.size(), 0.0);
  for (std::size_t i : unique_idx) cost[i] = cost_estimate(points[i]);
  std::stable_sort(
      unique_idx.begin(), unique_idx.end(),
      [&cost](std::size_t a, std::size_t b) { return cost[a] > cost[b]; });

  // Checkpoint mode coalesces prefix-sharing points into one dispatch
  // unit (one warm prefix, one fork per extra suffix); otherwise every
  // unit is a single point.  Unit order follows the cost-sorted first
  // member, so the dispatch heuristic is preserved either way.
  std::vector<std::vector<std::size_t>> units;
  if (opts_.checkpoint && checkpoint_supported()) {
    std::map<std::uint64_t, std::size_t> unit_of;  // prefix hash -> unit
    for (std::size_t i : unique_idx) {
      auto [it, inserted] =
          unit_of.try_emplace(points[i].prefix_hash(), units.size());
      if (inserted) units.emplace_back();
      units[it->second].push_back(i);
    }
  } else {
    units.reserve(unique_idx.size());
    for (std::size_t i : unique_idx) units.push_back({i});
  }

  auto execute_unit = [&](const std::vector<std::size_t>& unit) {
    if (unit.size() == 1) {
      results[unit[0]] = execute_one(points[unit[0]]);
    } else {
      execute_group(points, unit, results);
    }
  };

  const int jobs = effective_jobs(opts_, units.size());
  if (jobs == 1) {
    for (const auto& unit : units) execute_unit(unit);
  } else {
    const std::size_t cap =
        opts_.queue_capacity > 0 ? static_cast<std::size_t>(opts_.queue_capacity)
                                 : static_cast<std::size_t>(jobs) * 2;
    BoundedQueue queue(cap);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      workers.emplace_back([&] {
        std::size_t u;
        while (queue.pop(&u)) execute_unit(units[u]);
      });
    }
    for (std::size_t u = 0; u < units.size(); ++u) queue.push(u);
    queue.close();
    for (auto& t : workers) t.join();
  }

  for (std::size_t i = 0; i < points.size(); ++i) {
    if (alias[i] != i) results[i] = results[alias[i]];
  }
  return results;
}

void JobRunner::run_tasks(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  const int jobs = effective_jobs(opts_, tasks.size());
  if (jobs == 1) {
    for (const auto& task : tasks) task();
    return;
  }
  BoundedQueue queue(static_cast<std::size_t>(jobs) * 2);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      std::size_t i;
      while (queue.pop(&i)) tasks[i]();
    });
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) queue.push(i);
  queue.close();
  for (auto& t : workers) t.join();
}

std::string JobRunner::summary(std::size_t n_points) const {
  std::string out = std::to_string(n_points) + " points: " +
                    std::to_string(stats_.executed) + " simulated";
  if (cache_ != nullptr) {
    out += ", " + std::to_string(stats_.cache_hits) + " cached";
    const auto cs = cache_->stats();
    if (cs.corrupt > 0) {
      out += " (" + std::to_string(cs.corrupt) + " corrupt entries re-run)";
    }
  }
  if (stats_.prefixes > 0) {
    out += ", " + std::to_string(stats_.prefixes) + " warm prefixes (" +
           std::to_string(stats_.forked) + " forked)";
  }
  if (stats_.skipped > 0) {
    out += ", " + std::to_string(stats_.skipped) + " claimed elsewhere";
  }
  if (stats_.retries > 0) out += ", " + std::to_string(stats_.retries) + " retried";
  if (stats_.failures > 0) out += ", " + std::to_string(stats_.failures) + " FAILED";
  out += ", jobs=" + std::to_string(effective_jobs(opts_, n_points));
  return out;
}

void require_ok(const std::vector<PointSpec>& points,
                const std::vector<PointResult>& results) {
  std::string errors;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].failed) continue;
    if (!errors.empty()) errors += "; ";
    errors += results[i].error.empty() ? points[i].label() : results[i].error;
  }
  if (!errors.empty()) {
    throw std::runtime_error("experiment points failed: " + errors);
  }
}

}  // namespace kop::harness::jobs
