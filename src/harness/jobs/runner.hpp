// The execute layer: a host-thread pool that runs experiment points
// concurrently, each on its own sim::Engine.
//
// Guarantees:
//   * results are returned indexed by the input spec order, so callers
//     print tables / JSON artifacts byte-identically at any --jobs N
//   * duplicate specs are simulated once (internal dedup by canonical
//     form) and fanned back out to every requesting slot
//   * a failing point is captured (not thrown from the worker), retried
//     once, and reported in PointResult::{failed,error}
//   * dispatch flows through a bounded queue, so enumerating a huge
//     matrix never builds unbounded in-flight state
//   * distinct points dispatch longest-expected-first (cost_estimate)
//     so the biggest simulations never anchor the parallel tail
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "harness/jobs/cache.hpp"
#include "harness/jobs/claim.hpp"
#include "harness/jobs/lease_session.hpp"
#include "harness/jobs/options.hpp"
#include "harness/jobs/point.hpp"

namespace kop::harness::jobs {

/// Fixed-capacity MPMC queue: push blocks while full, pop blocks while
/// empty until close() is called (pop then drains and returns false).
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity);
  void push(std::size_t v);
  bool pop(std::size_t* v);
  void close();

 private:
  std::size_t capacity_;
  std::deque<std::size_t> items_;
  bool closed_ = false;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

class JobRunner {
 public:
  explicit JobRunner(JobOptions opts = {});

  /// Run every point (cache -> simulate -> store), returning results in
  /// input order.  Failed points come back with failed=true; callers
  /// that need all results use require_ok().
  std::vector<PointResult> run(const std::vector<PointSpec>& points);

  /// Parallel map for ablation matrices whose jobs are not declarative
  /// points (custom engine setups); same pool + bounded queue, no
  /// caching.  Each task must only write state owned by its index.
  void run_tasks(const std::vector<std::function<void()>>& tasks);

  struct Stats {
    std::uint64_t executed = 0;    // points actually simulated
    std::uint64_t cache_hits = 0;
    std::uint64_t retries = 0;
    std::uint64_t failures = 0;    // points failed after the retry
    std::uint64_t skipped = 0;     // claim mode: owned by another worker
    std::uint64_t forked = 0;      // checkpoint mode: members run in a
                                   // forked child of a shared prefix
    std::uint64_t prefixes = 0;    // checkpoint mode: warm prefixes run
  };
  const Stats& stats() const { return stats_; }
  const JobOptions& options() const { return opts_; }
  /// The attached cache, or nullptr when caching is disabled.
  ResultCache* cache() { return cache_.get(); }

  /// One-line execution summary ("N points: X simulated, Y cached...").
  /// Callers print it to stderr so stdout stays byte-identical across
  /// cold and warm runs.
  std::string summary(std::size_t n_points) const;

 private:
  PointResult execute_one(const PointSpec& spec);
  /// The simulate half of execute_one (retry, cache store, lease
  /// completion) without the admission half (claim/lease acquisition,
  /// cache lookup) -- the checkpoint group path admits members itself.
  PointResult simulate_point(const PointSpec& spec);
  /// Checkpoint mode: run the to-run members of one prefix group via
  /// forkrun, falling back to cold simulation per failed member.
  void execute_group(const std::vector<PointSpec>& points,
                     const std::vector<std::size_t>& members,
                     std::vector<PointResult>& results);

  JobOptions opts_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<ClaimDir> claim_;
  std::unique_ptr<LeaseSession> lease_;
  Stats stats_;
  std::mutex stats_mu_;
};

/// Throw std::runtime_error listing every failed point (no-op when all
/// succeeded).
void require_ok(const std::vector<PointSpec>& points,
                const std::vector<PointResult>& results);

}  // namespace kop::harness::jobs
