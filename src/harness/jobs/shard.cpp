#include "harness/jobs/shard.hpp"

#include <cstdlib>

#include "harness/jobs/cache.hpp"
#include "telemetry/metrics.hpp"

namespace kop::harness::jobs {

bool parse_shard(const std::string& text, ShardSpec* out, std::string* error) {
  const auto slash = text.find('/');
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "bad shard '" + text + "': " + why + " (expected K/N, 1<=K<=N)";
    }
    return false;
  };
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return fail("missing K or N");
  }
  char* end = nullptr;
  const long k = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + slash) return fail("K is not a number");
  const long n = std::strtol(text.c_str() + slash + 1, &end, 10);
  if (*end != '\0') return fail("N is not a number");
  if (n < 1) return fail("N must be >= 1");
  if (k < 1 || k > n) return fail("K out of range");
  out->index = static_cast<int>(k - 1);
  out->count = static_cast<int>(n);
  return true;
}

int shard_of(const PointSpec& spec, int count) {
  if (count <= 1) return 0;
  return static_cast<int>(spec.content_hash() %
                          static_cast<std::uint64_t>(count));
}

std::vector<std::size_t> shard_indices(const std::vector<PointSpec>& points,
                                       const ShardSpec& shard) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (shard_of(points[i], shard.count) == shard.index) out.push_back(i);
  }
  return out;
}

std::string shard_list_text(const std::vector<PointSpec>& points,
                            const ShardSpec& shard) {
  std::string out = "# kop-shard-list v1 points=" +
                    std::to_string(points.size()) +
                    " shards=" + std::to_string(shard.count) +
                    " fingerprint=" + hex16(cost_model_fingerprint()) +
                    " schema=" + std::to_string(telemetry::kMetricsSchemaVersion) +
                    "\n";
  for (const auto& p : points) {
    out += std::to_string(shard_of(p, shard.count) + 1) + "/" +
           std::to_string(shard.count);
    out += " point=" + hex16(p.content_hash());
    out += " entry=kop-" + hex16(ResultCache::key(p)) + ".json";
    out += " " + p.label() + "\n";
  }
  return out;
}

}  // namespace kop::harness::jobs
