// Deterministic sweep partitioning for distributed execution.
//
// A figure's point matrix is split across N independent machines by
// hashing each point's canonical form: point p belongs to shard k iff
// content_hash(p) % N == k.  The partition is an exact cover -- every
// point lands in exactly one shard -- and depends only on point
// *content*, so workers need no coordination and re-enumerating the
// same figure anywhere reproduces the same assignment.  Each worker
// runs `fig... --shard K/N --cache-dir shardK/`, ships its cache
// directory back, and `kop_merge` unions the shards into one cache the
// unsharded binary replays from (see docs/PIPELINE.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/jobs/options.hpp"
#include "harness/jobs/point.hpp"

namespace kop::harness::jobs {

/// Parse the CLI form "K/N" (1-based K, 1 <= K <= N) into a 0-based
/// ShardSpec.  Returns false and fills *error on malformed input.
bool parse_shard(const std::string& text, ShardSpec* out, std::string* error);

/// 0-based shard a point belongs to under an N-way partition.
int shard_of(const PointSpec& spec, int count);

/// Indices into `points` owned by `shard`, in enumeration order.
/// A disabled shard (count == 1) owns everything.
std::vector<std::size_t> shard_indices(const std::vector<PointSpec>& points,
                                       const ShardSpec& shard);

/// The --shard-list rendering: a `#`-comment header carrying the
/// partition width, cost-model fingerprint, and schema version, then
/// one line per point:
///
///   <k>/<N> point=<content-hash> entry=kop-<cache-key>.json <label>
///
/// The `entry=` column names the cache file the point will occupy, so
/// the listing doubles as the coverage manifest `kop_merge --expect`
/// checks a merged cache against.
std::string shard_list_text(const std::vector<PointSpec>& points,
                            const ShardSpec& shard);

}  // namespace kop::harness::jobs
