#include "harness/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "harness/jobs/shard.hpp"
#include "hw/topology.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace kop::harness {

void write_run_json(telemetry::JsonWriter& w, const RunMetrics& run) {
  using telemetry::Counter;
  w.begin_object();
  w.key("label").value(run.label);
  w.key("machine").value(run.machine);
  w.key("path").value(run.path);
  w.key("threads").value(run.threads);
  w.key("timing").begin_object();
  w.key("timed_seconds").value(run.timed_seconds);
  w.key("init_seconds").value(run.init_seconds);
  w.end_object();
  w.key("counters").begin_object();
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    w.key(telemetry::counter_name(static_cast<Counter>(c)))
        .value(run.counters.totals[c]);
  }
  w.end_object();
  if (run.include_per_cpu && !run.counters.per_cpu.empty()) {
    w.key("per_cpu").begin_object();
    for (int c = 0; c < telemetry::kNumCounters; ++c) {
      w.key(telemetry::counter_name(static_cast<Counter>(c))).begin_array();
      for (const auto& cpu : run.counters.per_cpu) w.value(cpu[c]);
      w.end_array();
    }
    w.end_object();
    // Per-NUMA-zone aggregation of the same rows.  Derived (never
    // parsed back: parse_run_json rebuilds it from per_cpu on the next
    // serialization), so cache store->load->store stays byte-identical.
    std::vector<int> cpu_zone;
    try {
      const hw::MachineConfig machine = hw::machine_by_name(run.machine);
      if (machine.num_cpus == static_cast<int>(run.counters.per_cpu.size())) {
        cpu_zone.resize(run.counters.per_cpu.size());
        for (std::size_t cpu = 0; cpu < cpu_zone.size(); ++cpu)
          cpu_zone[cpu] = machine.zone_of_cpu(static_cast<int>(cpu));
      }
    } catch (const std::exception&) {
      // Unknown machine name: no topology to aggregate over.
    }
    if (!cpu_zone.empty()) {
      const int nzones =
          1 + *std::max_element(cpu_zone.begin(), cpu_zone.end());
      w.key("zones").begin_object();
      for (int c = 0; c < telemetry::kNumCounters; ++c) {
        std::vector<std::uint64_t> sums(static_cast<std::size_t>(nzones), 0);
        for (std::size_t cpu = 0; cpu < cpu_zone.size(); ++cpu)
          sums[static_cast<std::size_t>(cpu_zone[cpu])] +=
              run.counters.per_cpu[cpu][c];
        w.key(telemetry::counter_name(static_cast<Counter>(c))).begin_array();
        for (std::uint64_t v : sums) w.value(v);
        w.end_array();
      }
      w.end_object();
    }
  }
  if (!run.constructs.empty()) {
    w.key("constructs").begin_object();
    for (const auto& [name, stat] : run.constructs) {
      w.key(name).begin_object();
      w.key("count").value(stat.count);
      w.key("total_us").value(stat.total_us);
      w.key("mean_us").value(stat.mean_us);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
}

bool parse_run_json(const telemetry::JsonValue& run, RunMetrics* out) {
  using telemetry::Counter;
  using telemetry::JsonValue;
  if (!run.is_object()) return false;
  const JsonValue* label = run.find("label");
  const JsonValue* machine = run.find("machine");
  const JsonValue* path = run.find("path");
  const JsonValue* threads = run.find("threads");
  const JsonValue* timing = run.find("timing");
  const JsonValue* counters = run.find("counters");
  if (label == nullptr || !label->is_string() || machine == nullptr ||
      !machine->is_string() || path == nullptr || !path->is_string() ||
      threads == nullptr || !threads->is_number() || timing == nullptr ||
      !timing->is_object() || counters == nullptr || !counters->is_object()) {
    return false;
  }
  RunMetrics m;
  m.label = label->string;
  m.machine = machine->string;
  m.path = path->string;
  m.threads = static_cast<int>(threads->number);
  const JsonValue* timed = timing->find("timed_seconds");
  const JsonValue* init = timing->find("init_seconds");
  if (timed == nullptr || !timed->is_number() || init == nullptr ||
      !init->is_number()) {
    return false;
  }
  m.timed_seconds = timed->number;
  m.init_seconds = init->number;
  if (counters->object.size() !=
      static_cast<std::size_t>(telemetry::kNumCounters)) {
    return false;
  }
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    const auto& [key, val] = counters->object[static_cast<std::size_t>(c)];
    if (key != telemetry::counter_name(static_cast<Counter>(c)) ||
        !val.is_number()) {
      return false;
    }
    m.counters.totals[c] = static_cast<std::uint64_t>(val.number);
  }
  if (const JsonValue* per_cpu = run.find("per_cpu")) {
    if (!per_cpu->is_object() || per_cpu->object.empty() ||
        !per_cpu->object[0].second.is_array()) {
      return false;
    }
    const std::size_t cpus = per_cpu->object[0].second.array.size();
    m.counters.per_cpu.resize(cpus);
    for (int c = 0; c < telemetry::kNumCounters; ++c) {
      const JsonValue* arr =
          per_cpu->find(telemetry::counter_name(static_cast<Counter>(c)));
      if (arr == nullptr || !arr->is_array() || arr->array.size() != cpus) {
        return false;
      }
      for (std::size_t cpu = 0; cpu < cpus; ++cpu) {
        m.counters.per_cpu[cpu][c] =
            static_cast<std::uint64_t>(arr->array[cpu].number);
      }
    }
    m.include_per_cpu = true;
  }
  if (const JsonValue* constructs = run.find("constructs")) {
    if (!constructs->is_object()) return false;
    for (const auto& [name, c] : constructs->object) {
      const JsonValue* count = c.find("count");
      const JsonValue* total = c.find("total_us");
      const JsonValue* mean = c.find("mean_us");
      if (count == nullptr || !count->is_number() || total == nullptr ||
          !total->is_number() || mean == nullptr || !mean->is_number()) {
        return false;
      }
      ConstructStat stat;
      stat.count = static_cast<std::uint64_t>(count->number);
      stat.total_us = total->number;
      stat.mean_us = mean->number;
      m.constructs[name] = stat;
    }
  }
  *out = std::move(m);
  return true;
}

std::string MetricsSink::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value(telemetry::kMetricsSchemaName);
  w.key("version").value(telemetry::kMetricsSchemaVersion);
  w.key("generator").value(generator_);
  w.key("runs").begin_array();
  for (const auto& run : runs_) write_run_json(w, run);
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void MetricsSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << to_json();
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string format_counters_table(const telemetry::Snapshot& snap) {
  std::string out;
  char line[96];
  std::snprintf(line, sizeof(line), "%-22s %14s\n", "event", "count");
  out += line;
  out += std::string(37, '-') + "\n";
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    if (snap.totals[c] == 0) continue;
    std::snprintf(line, sizeof(line), "%-22s %14" PRIu64 "\n",
                  telemetry::counter_name(static_cast<telemetry::Counter>(c)),
                  snap.totals[c]);
    out += line;
  }
  return out;
}

FigOptions parse_fig_options(int argc, char** argv) {
  FigOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs.jobs = std::atoi(argv[++i]);
      if (opts.jobs.jobs < 1) {
        std::fprintf(stderr, "--jobs needs a positive integer\n");
        opts.ok = false;
        return opts;
      }
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      opts.jobs.cache_dir = argv[++i];
    } else if (arg == "--no-cache") {
      opts.jobs.no_cache = true;
    } else if (arg == "--shard" && i + 1 < argc) {
      std::string error;
      if (!jobs::parse_shard(argv[++i], &opts.jobs.shard, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        opts.ok = false;
        return opts;
      }
    } else if (arg == "--shard-list") {
      opts.jobs.shard.list_only = true;
    } else if (arg == "--shard-claim" && i + 1 < argc) {
      opts.jobs.claim_dir = argv[++i];
    } else if (arg == "--coord" && i + 1 < argc) {
      opts.jobs.coord_socket = argv[++i];
    } else if (arg == "--checkpoint") {
      opts.jobs.checkpoint = true;
    } else if (arg == "--no-checkpoint") {
      opts.jobs.checkpoint = false;
    } else if (arg == "--numa-sched" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "hier") {
        opts.numa_sched_hier = true;
      } else if (v == "flat") {
        opts.numa_sched_hier = false;
      } else {
        std::fprintf(stderr, "--numa-sched needs flat or hier\n");
        opts.ok = false;
        return opts;
      }
    } else if (arg == "--numa-migrate") {
      opts.numa_migrate = true;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--json <path>] [--quick] [--jobs N]\n"
          "          [--cache-dir <dir>] [--no-cache]\n"
          "          [--shard K/N] [--shard-list] [--shard-claim <dir>]\n"
          "          [--coord <addr>] [--checkpoint | --no-checkpoint]\n"
          "          [--numa-sched flat|hier] [--numa-migrate]\n"
          "  --json <path>    write a kop-metrics v1 JSON artifact\n"
          "  --quick          reduced problem sizes (CI smoke)\n"
          "  --jobs N         host worker threads (default: all cores)\n"
          "  --cache-dir <d>  content-addressed result cache directory\n"
          "  --no-cache       ignore --cache-dir, force re-simulation\n"
          "  --shard K/N      run only shard K of an N-way hash partition\n"
          "                   of the sweep (use with --cache-dir; merge\n"
          "                   shard caches with kop_merge)\n"
          "  --shard-list     print the point partition and exit\n"
          "  --shard-claim <d>  work-stealing partition: claim points\n"
          "                   from shared dir <d> before simulating them\n"
          "                   (every worker runs the same command; merge\n"
          "                   worker caches with kop_merge)\n"
          "  --coord <addr>   lease points from a kop_sweepd daemon at\n"
          "                   <addr> -- unix socket path or host:port --\n"
          "                   instead of claim files (crashed workers are\n"
          "                   reclaimed by lease expiry; merge worker\n"
          "                   caches with kop_merge)\n"
          "  --checkpoint     share one warm prefix across points that\n"
          "                   differ only in reps/cost scales: fork one\n"
          "                   COW child per suffix at the warmup end\n"
          "                   (results byte-identical to cold runs)\n"
          "  --no-checkpoint  force cold per-point runs (default)\n"
          "  --numa-sched <m> task-steal victim order on komp paths:\n"
          "                   flat (default ring) or hier (topology-tree\n"
          "                   walk, same zone first then ascending SLIT\n"
          "                   distance; KOMP_NUMA_SCHED=hier)\n"
          "  --numa-migrate   migration-on-next-touch placement: each\n"
          "                   allocation's first access per slice\n"
          "                   re-homes the slice to the toucher's\n"
          "                   preferred DRAM zone\n",
          argv[0]);
      opts.ok = false;
      return opts;
    }
  }
  return opts;
}

int finish_figure(const FigOptions& opts, const MetricsSink& sink) {
  if (!opts.ok) return 2;
  if (opts.json_path.empty()) return 0;
  try {
    sink.write_file(opts.json_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("wrote %s (%zu runs)\n", opts.json_path.c_str(),
              sink.runs().size());
  return 0;
}

}  // namespace kop::harness
