#include "harness/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace kop::harness {

namespace {

void write_run(telemetry::JsonWriter& w, const RunMetrics& run) {
  using telemetry::Counter;
  w.begin_object();
  w.key("label").value(run.label);
  w.key("machine").value(run.machine);
  w.key("path").value(run.path);
  w.key("threads").value(run.threads);
  w.key("timing").begin_object();
  w.key("timed_seconds").value(run.timed_seconds);
  w.key("init_seconds").value(run.init_seconds);
  w.end_object();
  w.key("counters").begin_object();
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    w.key(telemetry::counter_name(static_cast<Counter>(c)))
        .value(run.counters.totals[c]);
  }
  w.end_object();
  if (run.include_per_cpu && !run.counters.per_cpu.empty()) {
    w.key("per_cpu").begin_object();
    for (int c = 0; c < telemetry::kNumCounters; ++c) {
      w.key(telemetry::counter_name(static_cast<Counter>(c))).begin_array();
      for (const auto& cpu : run.counters.per_cpu) w.value(cpu[c]);
      w.end_array();
    }
    w.end_object();
  }
  if (!run.constructs.empty()) {
    w.key("constructs").begin_object();
    for (const auto& [name, stat] : run.constructs) {
      w.key(name).begin_object();
      w.key("count").value(stat.count);
      w.key("total_us").value(stat.total_us);
      w.key("mean_us").value(stat.mean_us);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string MetricsSink::to_json() const {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value(telemetry::kMetricsSchemaName);
  w.key("version").value(telemetry::kMetricsSchemaVersion);
  w.key("generator").value(generator_);
  w.key("runs").begin_array();
  for (const auto& run : runs_) write_run(w, run);
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void MetricsSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << to_json();
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string format_counters_table(const telemetry::Snapshot& snap) {
  std::string out;
  char line[96];
  std::snprintf(line, sizeof(line), "%-22s %14s\n", "event", "count");
  out += line;
  out += std::string(37, '-') + "\n";
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    if (snap.totals[c] == 0) continue;
    std::snprintf(line, sizeof(line), "%-22s %14" PRIu64 "\n",
                  telemetry::counter_name(static_cast<telemetry::Counter>(c)),
                  snap.totals[c]);
    out += line;
  }
  return out;
}

FigOptions parse_fig_options(int argc, char** argv) {
  FigOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (arg == "--quick") {
      opts.quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--quick]\n"
                   "  --json <path>  write a kop-metrics v1 JSON artifact\n"
                   "  --quick        reduced problem sizes (CI smoke)\n",
                   argv[0]);
      opts.ok = false;
      return opts;
    }
  }
  return opts;
}

int finish_figure(const FigOptions& opts, const MetricsSink& sink) {
  if (!opts.ok) return 2;
  if (opts.json_path.empty()) return 0;
  try {
    sink.write_file(opts.json_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("wrote %s (%zu runs)\n", opts.json_path.c_str(),
              sink.runs().size());
  return 0;
}

}  // namespace kop::harness
