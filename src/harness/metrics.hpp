// Metrics collection for experiment drivers: every run_nas/run_epcc
// call can snapshot the booted stack's counter fabric into a RunMetrics
// record, and a MetricsSink turns a batch of records into a kop-metrics
// v1 JSON document (the one schema shared by run_experiment --json, the
// bench/fig* binaries, and examples/omp_profiler -- see
// telemetry/metrics.hpp for the schema).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/counters.hpp"

namespace kop::harness {

/// Per-construct aggregate (from the OMPT ConstructProfiler or from
/// EPCC measurements).
struct ConstructStat {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double mean_us = 0.0;
};

/// One experiment run: identity, timing, event counters, optional
/// per-construct breakdown.
struct RunMetrics {
  std::string label;    // e.g. "cg.S" or "syncbench"
  std::string machine;  // e.g. "phi" | "8xeon"
  std::string path;     // core::path_name() of the stack
  int threads = 1;
  double timed_seconds = 0.0;
  double init_seconds = 0.0;
  telemetry::Snapshot counters;
  /// std::map so the JSON field order is stable (sorted by name).
  std::map<std::string, ConstructStat> constructs;
  /// Emit the per_cpu breakdown (off by default: figure sweeps would
  /// bloat the artifact; omp_profiler turns it on).
  bool include_per_cpu = false;
};

/// Accumulates runs and renders the kop-metrics v1 document.
class MetricsSink {
 public:
  explicit MetricsSink(std::string generator) : generator_(std::move(generator)) {}

  void add(RunMetrics run) { runs_.push_back(std::move(run)); }
  bool empty() const { return runs_.empty(); }
  const std::vector<RunMetrics>& runs() const { return runs_; }

  /// Render the kop-metrics v1 JSON document (validates against
  /// telemetry::validate_metrics_json by construction).
  std::string to_json() const;

  /// Write to_json() to `path`; throws std::runtime_error on I/O error.
  void write_file(const std::string& path) const;

 private:
  std::string generator_;
  std::vector<RunMetrics> runs_;
};

/// Human-readable table of an event-counter snapshot (totals only,
/// zero rows skipped).
std::string format_counters_table(const telemetry::Snapshot& snap);

/// Common CLI handling for the figure/bench binaries:
///   --json <path>   write a kop-metrics v1 artifact
///   --quick         reduced problem sizes (CI bench-smoke)
struct FigOptions {
  std::string json_path;
  bool quick = false;
  bool ok = true;  // false: bad usage, caller should exit non-zero
};

FigOptions parse_fig_options(int argc, char** argv);

/// Write the sink to opts.json_path (if set) and return the process
/// exit code (non-zero on bad usage or I/O failure).
int finish_figure(const FigOptions& opts, const MetricsSink& sink);

}  // namespace kop::harness
