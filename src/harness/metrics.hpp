// Metrics collection for experiment drivers: every run_nas/run_epcc
// call can snapshot the booted stack's counter fabric into a RunMetrics
// record, and a MetricsSink turns a batch of records into a kop-metrics
// v1 JSON document (the one schema shared by run_experiment --json, the
// bench/fig* binaries, and examples/omp_profiler -- see
// telemetry/metrics.hpp for the schema).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/jobs/options.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/json.hpp"

namespace kop::harness {

/// Per-construct aggregate (from the OMPT ConstructProfiler or from
/// EPCC measurements).
struct ConstructStat {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double mean_us = 0.0;
};

/// One experiment run: identity, timing, event counters, optional
/// per-construct breakdown.
struct RunMetrics {
  std::string label;    // e.g. "cg.S" or "syncbench"
  std::string machine;  // e.g. "phi" | "8xeon"
  std::string path;     // core::path_name() of the stack
  int threads = 1;
  double timed_seconds = 0.0;
  double init_seconds = 0.0;
  telemetry::Snapshot counters;
  /// std::map so the JSON field order is stable (sorted by name).
  std::map<std::string, ConstructStat> constructs;
  /// Emit the per_cpu breakdown (off by default: figure sweeps would
  /// bloat the artifact; omp_profiler turns it on).
  bool include_per_cpu = false;
};

/// Serialize one run entry of the kop-metrics v1 document (shared by
/// MetricsSink and the jobs::ResultCache entry format).
void write_run_json(telemetry::JsonWriter& w, const RunMetrics& run);

/// Parse one run entry back into a RunMetrics; returns false when the
/// value does not have the v1 run shape.  Exact for everything the
/// writer emits (doubles round-trip via %.17g).
bool parse_run_json(const telemetry::JsonValue& run, RunMetrics* out);

/// Accumulates runs and renders the kop-metrics v1 document.
/// Thread-safe: concurrent experiment runs (jobs::JobRunner workers, or
/// direct run_nas calls from several host threads) may add() into one
/// sink; rendering snapshots under the same lock.  runs() returns a
/// reference and is only safe once all writers have joined.
class MetricsSink {
 public:
  explicit MetricsSink(std::string generator) : generator_(std::move(generator)) {}

  void add(RunMetrics run) {
    std::lock_guard<std::mutex> lock(mu_);
    runs_.push_back(std::move(run));
  }
  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return runs_.empty();
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return runs_.size();
  }
  const std::vector<RunMetrics>& runs() const { return runs_; }

  /// Render the kop-metrics v1 JSON document (validates against
  /// telemetry::validate_metrics_json by construction).
  std::string to_json() const;

  /// Write to_json() to `path`; throws std::runtime_error on I/O error.
  void write_file(const std::string& path) const;

 private:
  std::string generator_;
  std::vector<RunMetrics> runs_;
  mutable std::mutex mu_;
};

/// Human-readable table of an event-counter snapshot (totals only,
/// zero rows skipped).
std::string format_counters_table(const telemetry::Snapshot& snap);

/// Common CLI handling for the figure/bench binaries:
///   --json <path>      write a kop-metrics v1 artifact
///   --quick            reduced problem sizes (CI bench-smoke)
///   --jobs N           host worker threads (default: all cores)
///   --cache-dir <dir>  content-addressed result cache directory
///   --no-cache         ignore --cache-dir (force re-simulation)
///   --checkpoint       fork-share warm prefixes across suffix points
///   --no-checkpoint    force cold per-point runs (the default)
///   --numa-sched <m>   flat | hier task-steal victim order
///   --numa-migrate     migration-on-next-touch placement
struct FigOptions {
  std::string json_path;
  bool quick = false;
  bool ok = true;  // false: bad usage, caller should exit non-zero
  /// --numa-sched: task-steal victim order (flat ring vs hierarchical
  /// topology walk); binaries that compare both in one run ignore it.
  bool numa_sched_hier = false;
  /// --numa-migrate: arm app allocations for migration-on-next-touch.
  bool numa_migrate = false;
  jobs::JobOptions jobs;
};

FigOptions parse_fig_options(int argc, char** argv);

/// Write the sink to opts.json_path (if set) and return the process
/// exit code (non-zero on bad usage or I/O failure).
int finish_figure(const FigOptions& opts, const MetricsSink& sink);

}  // namespace kop::harness
