// The invariant registry: everything propcheck asserts about one run.
//
// One TraceRecorder (an ompt::Tool) observes the whole run through the
// experiment RunHooks; check_case() runs the point twice and evaluates
// each named invariant against the recordings.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <utility>

#include "coord/coordinator.hpp"
#include "harness/jobs/cache.hpp"
#include "harness/jobs/forkrun.hpp"
#include "harness/jobs/merge.hpp"
#include "harness/propcheck/propcheck.hpp"
#include "ompt/ompt.hpp"
#include "sim/checkpoint.hpp"
#include "telemetry/counters.hpp"

namespace kop::harness::propcheck {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

// One thread's open worksharing bracket (between its on_work begin and
// end); dispatched chunks attach to the innermost open bracket.
struct Bracket {
  ompt::WorkKind kind = ompt::WorkKind::kLoopStatic;
  std::int64_t iterations = 0;
  std::vector<Interval> intervals;
};

// All threads' closed brackets for the k-th construct of a given kind.
// Worksharing is SPMD: every team member reaches the same constructs in
// the same order, so (kind, per-thread close index) identifies one
// construct instance across threads.
struct Instance {
  std::int64_t iterations = -1;
  bool iterations_agree = true;
  int begins = 0;
  std::vector<Interval> intervals;
};

bool is_dispatching(ompt::WorkKind k) {
  // kStatic splits proportionally with no per-chunk dispatch events,
  // and kSingle/kOrdered never chunk; everything that goes through a
  // shared grab-loop dispatches and must conserve.
  return k == ompt::WorkKind::kLoopStaticChunked ||
         k == ompt::WorkKind::kLoopDynamic ||
         k == ompt::WorkKind::kLoopGuided || k == ompt::WorkKind::kSections;
}

class TraceRecorder : public ompt::Tool {
 public:
  // --- the recordings check_case consumes -----------------------------
  std::uint64_t digest = kFnvOffset;
  bool mono_ok = true;
  std::string mono_detail;
  std::uint64_t task_creates = 0;
  std::uint64_t task_begins = 0;
  std::uint64_t task_ends = 0;
  std::uint64_t task_stolen = 0;
  std::uint64_t rt_submits[2] = {0, 0};
  std::uint64_t rt_begins[2] = {0, 0};
  std::uint64_t rt_ends[2] = {0, 0};
  std::uint64_t rt_stolen = 0;
  std::vector<std::string> work_errors;  // malformed bracket structure
  std::map<std::pair<int, int>, Instance> instances;  // (kind, index)

  // --- ompt::Tool ------------------------------------------------------
  void on_parallel(ompt::Endpoint e, sim::Time t, int team_size) override {
    note(1, e, t, 0, static_cast<std::uint64_t>(team_size));
  }
  void on_implicit_task(ompt::Endpoint e, sim::Time t, int tid,
                        int team_size) override {
    note(2, e, t, tid, static_cast<std::uint64_t>(team_size));
  }
  void on_work(ompt::WorkKind k, ompt::Endpoint e, sim::Time t, int tid,
               std::int64_t iterations) override {
    note(3, e, t, tid,
         fold(static_cast<std::uint64_t>(k),
              static_cast<std::uint64_t>(iterations)));
    auto& stack = open_[tid];
    if (e == ompt::Endpoint::kBegin) {
      stack.push_back(Bracket{k, iterations, {}});
      return;
    }
    if (stack.empty() || stack.back().kind != k) {
      record_work_error("work end without matching begin (tid " +
                        std::to_string(tid) + ", kind " +
                        ompt::work_kind_name(k) + ")");
      return;
    }
    Bracket done = std::move(stack.back());
    stack.pop_back();
    const int idx = closed_[tid][static_cast<int>(k)]++;
    Instance& inst = instances[{static_cast<int>(k), idx}];
    ++inst.begins;
    if (inst.iterations < 0) {
      inst.iterations = done.iterations;
    } else if (inst.iterations != done.iterations) {
      inst.iterations_agree = false;
    }
    inst.intervals.insert(inst.intervals.end(), done.intervals.begin(),
                          done.intervals.end());
  }
  void on_dispatch(sim::Time t, int tid, std::int64_t lo,
                   std::int64_t hi) override {
    note(4, ompt::Endpoint::kBegin, t, tid,
         fold(static_cast<std::uint64_t>(lo), static_cast<std::uint64_t>(hi)));
    auto& stack = open_[tid];
    if (stack.empty()) {
      record_work_error("dispatch outside any worksharing bracket (tid " +
                        std::to_string(tid) + ")");
      return;
    }
    stack.back().intervals.push_back(Interval{lo, hi});
  }
  void on_sync_region(ompt::SyncRegion s, ompt::Endpoint e, sim::Time t,
                      int tid) override {
    note(5, e, t, tid, static_cast<std::uint64_t>(s));
  }
  void on_sync_wait(ompt::Endpoint e, sim::Time t, int tid) override {
    note(6, e, t, tid, 0);
  }
  void on_mutex(ompt::MutexKind k, ompt::MutexEvent ev, sim::Time t,
                const void*) override {
    // The lock address is host-specific; fold only the stable identity.
    note(7, ompt::Endpoint::kBegin, t, 0,
         fold(static_cast<std::uint64_t>(k), static_cast<std::uint64_t>(ev)));
  }
  void on_task_create(sim::Time t, int tid) override {
    note(8, ompt::Endpoint::kBegin, t, tid, 0);
    ++task_creates;
  }
  void on_task_schedule(ompt::Endpoint e, sim::Time t, int tid,
                        bool stolen) override {
    note(9, e, t, tid, stolen ? 1 : 0);
    if (e == ompt::Endpoint::kBegin) {
      ++task_begins;
      if (stolen) ++task_stolen;
    } else {
      ++task_ends;
    }
  }
  void on_rt_task_submit(ompt::TaskRuntimeKind k, sim::Time t,
                         int lane) override {
    note(10, ompt::Endpoint::kBegin, t, lane, static_cast<std::uint64_t>(k));
    ++rt_submits[static_cast<int>(k)];
  }
  void on_rt_task_execute(ompt::TaskRuntimeKind k, ompt::Endpoint e,
                          sim::Time t, int lane, bool stolen) override {
    note(11, e, t, lane,
         fold(static_cast<std::uint64_t>(k), stolen ? 1 : 0));
    if (e == ompt::Endpoint::kBegin) {
      ++rt_begins[static_cast<int>(k)];
      if (stolen) ++rt_stolen;
    } else {
      ++rt_ends[static_cast<int>(k)];
    }
  }

 private:
  void note(int tag, ompt::Endpoint e, sim::Time t, int tid,
            std::uint64_t payload) {
    if (t < last_time_ && mono_ok) {
      mono_ok = false;
      std::ostringstream d;
      d << "event (tag " << tag << ", tid " << tid << ") at t=" << t
        << "ns after an event at t=" << last_time_ << "ns";
      mono_detail = d.str();
    }
    last_time_ = std::max(last_time_, t);
    std::uint64_t h = digest;
    h = fold(h, static_cast<std::uint64_t>(tag) * 2 +
                    (e == ompt::Endpoint::kEnd ? 1 : 0));
    h = fold(h, static_cast<std::uint64_t>(t));
    h = fold(h, static_cast<std::uint64_t>(tid));
    h = fold(h, payload);
    digest = h;
  }

  void record_work_error(std::string msg) {
    if (work_errors.size() < 8) work_errors.push_back(std::move(msg));
  }

  sim::Time last_time_ = 0;
  std::map<int, std::vector<Bracket>> open_;
  std::map<int, std::map<int, int>> closed_;
};

// Everything observable about one run of one case.
struct Observation {
  TraceRecorder trace;
  std::uint64_t engine_digest = 0;
  std::uint64_t events_dispatched = 0;
  sim::Time end_time = 0;
  jobs::PointResult result;
  bool threw = false;
  std::string error;
};

// Run one case and record everything observable.  When `ckpt` is
// non-null, the snapshot hook COW-forks one child at the warmup/
// measurement boundary (exactly what a --checkpoint sweep does); both
// processes then bind the same suffix and finish the run, and the child
// returns with *is_child set (the caller must child_exit, never unwind).
void observe(const CaseParams& params, Observation* obs,
             sim::Checkpoint* ckpt = nullptr, bool* is_child = nullptr) {
  RunHooks hooks;
  hooks.on_boot = [obs](core::Stack& s) { s.os().tools().attach(&obs->trace); };
  hooks.on_done = [obs](core::Stack& s) {
    obs->engine_digest = s.engine().stats().dispatch_digest;
    obs->events_dispatched = s.engine().stats().events_dispatched;
    obs->end_time = s.engine().now();
  };
  const jobs::PointSpec spec = params.point();
  hooks.at_snapshot = [&spec, ckpt, is_child](core::Stack& s, SnapshotCtl&) {
    if (ckpt != nullptr && ckpt->fork_child()) *is_child = true;
    jobs::apply_point_scales(s, spec.cost_scales);
  };
  core::StackConfig cfg = spec.stack_config();
  cfg.sched.policy = params.policy;
  cfg.sched.seed = params.sched_seed;
  try {
    if (params.kind == jobs::PointSpec::Kind::kNas) {
      run_nas(cfg, spec.nas, &obs->result.metrics, hooks);
    } else {
      obs->result.epcc =
          run_epcc(cfg, spec.epcc_part, spec.epcc, &obs->result.metrics, hooks);
    }
  } catch (const std::exception& e) {
    obs->threw = true;
    obs->error = e.what();
  }
}

void check_work_conservation(const TraceRecorder& trace,
                             std::vector<Violation>* out) {
  for (const auto& err : trace.work_errors) {
    out->push_back({"work-conservation", err});
  }
  for (const auto& [key, inst] : trace.instances) {
    const ompt::WorkKind kind = static_cast<ompt::WorkKind>(key.first);
    const std::string where = std::string(ompt::work_kind_name(kind)) +
                              " instance " + std::to_string(key.second);
    if (!inst.iterations_agree) {
      out->push_back({"work-conservation",
                      where + ": threads disagree on the iteration count"});
      continue;
    }
    if (!is_dispatching(kind)) continue;
    std::vector<Interval> ivs = inst.intervals;
    std::sort(ivs.begin(), ivs.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    std::int64_t covered = 0;
    bool overlap = false;
    for (std::size_t i = 0; i < ivs.size(); ++i) {
      covered += ivs[i].hi - ivs[i].lo;
      if (i > 0 && ivs[i].lo < ivs[i - 1].hi) overlap = true;
    }
    const std::int64_t span =
        ivs.empty() ? 0 : ivs.back().hi - ivs.front().lo;
    if (overlap) {
      out->push_back({"work-conservation",
                      where + ": dispatched chunks overlap (an iteration "
                              "would execute twice)"});
    } else if (covered != inst.iterations || span != inst.iterations) {
      std::ostringstream d;
      d << where << ": " << covered << " of " << inst.iterations
        << " iterations dispatched (span " << span << ")";
      out->push_back({"work-conservation", d.str()});
    }
  }
}

void check_task_balance(const TraceRecorder& t, std::vector<Violation>* out) {
  if (t.task_creates != t.task_begins || t.task_begins != t.task_ends) {
    std::ostringstream d;
    d << "komp tasks: created " << t.task_creates << ", schedule-begin "
      << t.task_begins << ", schedule-end " << t.task_ends;
    out->push_back({"task-balance", d.str()});
  }
  const char* rt_names[] = {"virgil", "nautilus"};
  for (int k = 0; k < 2; ++k) {
    if (t.rt_submits[k] != t.rt_begins[k] || t.rt_begins[k] != t.rt_ends[k]) {
      std::ostringstream d;
      d << rt_names[k] << " runtime tasks: submitted " << t.rt_submits[k]
        << ", execute-begin " << t.rt_begins[k] << ", execute-end "
        << t.rt_ends[k];
      out->push_back({"task-balance", d.str()});
    }
  }
}

void check_cache_roundtrip(const CaseParams& params, const jobs::PointSpec& spec,
                           const jobs::PointResult& result,
                           const std::string& scratch_dir,
                           std::vector<Violation>* out) {
  namespace fs = std::filesystem;
  const std::string dir =
      scratch_dir + "/case-" + jobs::hex16(jobs::fnv1a64(params.token()));
  const std::string expect = jobs::ResultCache::encode(spec, result);
  auto fail = [&](const std::string& d) {
    out->push_back({"cache-roundtrip", d});
  };
  {
    jobs::ResultCache first(dir + "/a");
    first.store(spec, result);
    jobs::PointResult loaded;
    if (!first.load(spec, &loaded)) {
      fail("load immediately after store missed");
    } else if (jobs::ResultCache::encode(spec, loaded) != expect) {
      fail("entry decoded from the cache re-encodes differently");
    }
    jobs::MergeOptions mopts;
    mopts.sources = {dir + "/a"};
    mopts.dest = dir + "/b";
    try {
      const jobs::MergeReport rep = jobs::merge_caches(mopts);
      if (!rep.ok() || rep.merged != 1) {
        fail("merge of a freshly stored entry failed: " + rep.text());
      } else {
        jobs::ResultCache merged(dir + "/b");
        jobs::PointResult reloaded;
        if (!merged.load(spec, &reloaded)) {
          fail("load from the merged cache missed");
        } else if (jobs::ResultCache::encode(spec, reloaded) != expect) {
          fail("entry surviving a merge re-encodes differently");
        }
      }
    } catch (const std::exception& e) {
      fail(std::string("merge threw: ") + e.what());
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);  // best-effort scratch hygiene
}

// Exactly-once dispatch under the sweep coordinator: drive the
// clockless Coordinator through a full synthetic sweep with a random
// worker-crash schedule (all derived from the case token, so replaying
// the token replays the exact schedule) and assert that the sweep
// drains and every point is completed exactly once -- crashes and lease
// expiries may re-*dispatch* a point, but only one completion is ever
// accepted, and re-dispatch only happens after a reclaim.
void check_exactly_once_dispatch(const CaseParams& params,
                                 std::vector<Violation>* out) {
  const std::uint64_t seed = jobs::fnv1a64(params.token());
  std::mt19937_64 rng(seed);
  auto rand_in = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  auto violate = [out](std::string detail) {
    out->push_back({"exactly-once-dispatch", std::move(detail)});
  };

  // Short synthetic timescales: leases expire mid-point, Suspect and
  // Dead are reachable, yet one immortal worker drains any schedule.
  coord::CoordinatorOptions copt;
  copt.lease_ttl_ms = 120;
  copt.liveness.suspect_after_ms = 180;
  copt.liveness.dead_after_ms = 420;
  coord::Coordinator coordinator(copt, {});

  const int n_points = rand_in(3, 10);
  std::vector<std::uint64_t> hashes;
  for (int i = 0; i < n_points; ++i) {
    std::uint64_t h = fold(seed, static_cast<std::uint64_t>(i) + 1);
    while (h == 0 ||
           std::find(hashes.begin(), hashes.end(), h) != hashes.end()) {
      ++h;
    }
    hashes.push_back(h);
    coord::PointInfo info;
    info.hash = h;
    info.label = "synthetic-" + std::to_string(i);
    coordinator.add_point(std::move(info));
  }

  constexpr std::int64_t kStepMs = 25;
  constexpr int kMaxSteps = 4000;

  struct SimWorker {
    std::string name;
    std::int64_t crash_at = -1;  // silent SIGKILL; -1 = immortal
    bool crashed = false;
    bool helloed = false;
    bool holding = false;
    std::uint64_t lease_id = 0;
    std::uint64_t point = 0;
    std::int64_t finish_at = 0;
  };
  std::vector<SimWorker> workers(static_cast<std::size_t>(rand_in(2, 4)));
  for (std::size_t w = 0; w < workers.size(); ++w) {
    workers[w].name = "w" + std::to_string(w);
    // Worker 0 never crashes, so every schedule eventually drains.
    if (w > 0) workers[w].crash_at = rand_in(0, 2000);
  }

  std::map<std::uint64_t, int> accepted;  // hash -> OK/OK-STALE completions
  auto send = [&coordinator](const std::string& line, std::int64_t now) {
    return coordinator.handle_line(line, now);
  };

  std::int64_t now = 0;
  for (int step = 0; step < kMaxSteps && !coordinator.drained(); ++step) {
    now = step * kStepMs;
    coordinator.tick(now);
    for (auto& w : workers) {
      if (w.crashed) continue;
      if (w.crash_at >= 0 && now >= w.crash_at) {
        w.crashed = true;  // vanishes mid-lease: reclaim must cover it
        continue;
      }
      if (!w.helloed) {
        send("HELLO " + w.name, now);
        w.helloed = true;
        continue;
      }
      if (w.holding) {
        if (now >= w.finish_at) {
          const std::string r = send("DONE " + w.name + " " +
                                         coord::to_hex16(w.lease_id) + " " +
                                         coord::to_hex16(w.point),
                                     now);
          if (r == "OK" || r == "OK-STALE") ++accepted[w.point];
          w.holding = false;
        } else if (rand_in(0, 9) < 7) {
          // A missed renewal now and then: lets leases expire mid-point
          // so the stale-completion path is actually exercised.
          (void)send("RENEW " + w.name + " " + coord::to_hex16(w.lease_id),
                     now);
        }
        continue;
      }
      const std::string r = send("NEXT " + w.name, now);
      const auto toks = coord::split_tokens(r);
      if (!toks.empty() && toks[0] == "GRANT") {
        coord::parse_hex16(toks[1], &w.point);
        coord::parse_hex16(toks[2], &w.lease_id);
        w.holding = true;
        // Some points outlive the TTL several times over.
        w.finish_at = now + rand_in(20, 300);
      } else if (!toks.empty() && (toks[0] == "DEAD" || toks[0] == "NOHELLO")) {
        w.helloed = false;  // come back as a new incarnation
      }
    }
  }

  if (!coordinator.drained()) {
    violate("sweep did not drain in " + std::to_string(kMaxSteps) +
            " steps: " + coordinator.stats_json());
    return;
  }
  for (const std::uint64_t h : hashes) {
    const int n = accepted.count(h) ? accepted.at(h) : 0;
    // 0 accepted worker completions is legal only via mark_complete
    // paths the coordinator itself counts; here every completion comes
    // from a DONE, so the count must be exactly 1.
    if (n != 1) {
      violate("point " + coord::to_hex16(h) + " had " + std::to_string(n) +
              " accepted completions (want exactly 1)");
    }
  }
  const auto& counters = coordinator.counters();
  if (counters.get("completions") != static_cast<std::uint64_t>(n_points)) {
    violate("coordinator counted " +
            std::to_string(counters.get("completions")) + " completions for " +
            std::to_string(n_points) + " points");
  }
  // Every grant beyond the first per point must be justified by a
  // reclaim (expiry, death, or BYE) -- dispatch is never duplicated
  // while a live lease exists.
  if (counters.get("leases_granted") >
      static_cast<std::uint64_t>(n_points) + counters.get("points_requeued")) {
    violate("granted " + std::to_string(counters.get("leases_granted")) +
            " leases for " + std::to_string(n_points) + " points with only " +
            std::to_string(counters.get("points_requeued")) + " requeues");
  }
}

// Journal replay: a journaled coordinator killed at an arbitrary
// committed moment must be reconstructible from its journal file alone.
// Drive a journaled Coordinator through a random schedule (same
// synthetic-time machinery as exactly-once-dispatch, seed-derived so
// the token replays the exact crash), stop at a random step, and replay
// the journal into a fresh coordinator: the lease tables -- queue
// order, live leases with exact expiries, the id counter -- must render
// identically.  A torn tail appended to the file (the crash-mid-append
// artifact) must be tolerated without changing the replayed state, and
// a checksum-corrupted *terminated* record must be rejected.
void check_journal_replay(const CaseParams& params,
                          const std::string& scratch_dir,
                          std::vector<Violation>* out) {
  namespace fs = std::filesystem;
  const std::uint64_t seed =
      fold(jobs::fnv1a64(params.token()), 0x6a6f75726e616cULL);
  std::mt19937_64 rng(seed);
  auto rand_in = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  auto violate = [out](std::string detail) {
    out->push_back({"journal-replay", std::move(detail)});
  };

  const std::string dir = scratch_dir + "/journal-" + jobs::hex16(seed);
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = dir + "/queue.journal";

  coord::CoordinatorOptions copt;
  copt.lease_ttl_ms = 120;
  copt.liveness.suspect_after_ms = 180;
  copt.liveness.dead_after_ms = 420;
  // Half the schedules compact aggressively so replay also covers the
  // canonical-snapshot encoding, not just the incremental records.
  copt.journal_compact_after =
      rand_in(0, 1) == 0 ? static_cast<std::size_t>(rand_in(4, 12)) : 65536;

  std::string expected;
  try {
    coord::Coordinator live(copt, {});
    coord::Journal journal(path);
    live.attach_journal(&journal);

    const int n_points = rand_in(3, 8);
    for (int i = 0; i < n_points; ++i) {
      std::uint64_t h = fold(seed, static_cast<std::uint64_t>(i) + 0x51);
      if (h == 0) ++h;
      coord::PointInfo info;
      info.hash = h;
      info.label = "journal-" + std::to_string(i);
      info.payload = "tok" + std::to_string(i);
      live.add_point(std::move(info));
    }

    struct SimWorker {
      std::string name;
      bool helloed = false;
      bool holding = false;
      std::uint64_t lease_id = 0;
      std::uint64_t point = 0;
      std::int64_t finish_at = 0;
    };
    std::vector<SimWorker> workers(static_cast<std::size_t>(rand_in(1, 3)));
    for (std::size_t w = 0; w < workers.size(); ++w) {
      workers[w].name = "jw" + std::to_string(w);
    }

    constexpr std::int64_t kStepMs = 25;
    const int stop_step = rand_in(4, 120);  // the "SIGKILL" moment
    for (int step = 0; step < stop_step && !live.drained(); ++step) {
      const std::int64_t now = step * kStepMs;
      live.tick(now);
      for (auto& w : workers) {
        if (!w.helloed) {
          (void)live.handle_line("HELLO " + w.name, now);
          w.helloed = true;
          continue;
        }
        if (w.holding) {
          if (now >= w.finish_at) {
            (void)live.handle_line("DONE " + w.name + " " +
                                       coord::to_hex16(w.lease_id) + " " +
                                       coord::to_hex16(w.point),
                                   now);
            w.holding = false;
          } else if (rand_in(0, 9) < 6) {
            (void)live.handle_line(
                "RENEW " + w.name + " " + coord::to_hex16(w.lease_id), now);
          }
          continue;
        }
        const std::string r = live.handle_line("NEXT " + w.name, now);
        const auto toks = coord::split_tokens(r);
        if (!toks.empty() && toks[0] == "GRANT") {
          coord::parse_hex16(toks[1], &w.point);
          coord::parse_hex16(toks[2], &w.lease_id);
          w.holding = true;
          w.finish_at = now + rand_in(20, 260);
        }
      }
    }
    // The durability boundary: everything committed is replayable,
    // anything after this commit would be re-derivable loss (not
    // exercised here -- this invariant checks exactness *of the file*).
    journal.commit();
    expected = live.debug_state();
  } catch (const std::exception& e) {
    violate(std::string("journaled schedule threw: ") + e.what());
    fs::remove_all(dir, ec);
    return;
  }

  const auto replay_into = [&copt](const std::string& file, std::string* state,
                                   coord::ReplayStats* stats,
                                   std::string* error) {
    coord::Coordinator fresh(copt, {});
    if (!fresh.recover_from_journal(file, stats, error)) return false;
    *state = fresh.debug_state();
    return true;
  };

  coord::ReplayStats stats;
  std::string err, replayed;
  if (!replay_into(path, &replayed, &stats, &err)) {
    violate("clean journal failed to replay: " + err);
  } else if (replayed != expected) {
    violate("replayed table differs from the live table\n--- live ---\n" +
            expected + "--- replayed ---\n" + replayed);
  } else if (stats.truncated_bytes != 0) {
    violate("clean journal reported " + std::to_string(stats.truncated_bytes) +
            " truncated bytes");
  }

  // Crash-mid-append artifact: an unterminated partial record at the
  // tail is dropped and reported, and the replayed state is unchanged.
  {
    const std::string torn = dir + "/torn.journal";
    fs::copy_file(path, torn, fs::copy_options::overwrite_existing, ec);
    std::ofstream app(torn, std::ios::binary | std::ios::app);
    app << "G 00000000000000";  // no '\n': a torn write
    app.close();
    coord::ReplayStats tstats;
    std::string terr, tstate;
    if (!replay_into(torn, &tstate, &tstats, &terr)) {
      violate("torn tail rejected instead of tolerated: " + terr);
    } else {
      if (tstats.truncated_bytes == 0) {
        violate("torn tail was not reported as truncated");
      }
      if (tstate != expected) {
        violate("torn tail changed the replayed table");
      }
    }
  }

  // A *terminated* record with a broken checksum is corruption and must
  // be a hard error, never silently skipped.
  {
    const std::string bad = dir + "/corrupt.journal";
    fs::copy_file(path, bad, fs::copy_options::overwrite_existing, ec);
    std::ofstream app(bad, std::ios::binary | std::ios::app);
    app << "D 00000000000000aa !0000000000000bad\n";
    app.close();
    coord::ReplayStats bstats;
    std::string berr, bstate;
    if (replay_into(bad, &bstate, &bstats, &berr)) {
      violate("checksum-corrupt record was accepted");
    } else if (berr.find("checksum") == std::string::npos) {
      violate("corrupt-record error does not name the checksum: " + berr);
    }
  }

  fs::remove_all(dir, ec);  // best-effort scratch hygiene
}

// Checkpoint equivalence: COW-forking at the warmup/measurement
// boundary (the --checkpoint fast path) must not change the observable
// run.  Replay the case with a fork at the snapshot: the forked child
// and the continuing parent must both reproduce the cold run's engine
// dispatch digest, OMPT trace digest, and encoded metrics document
// bit-for-bit.  Skipped when fork is unsafe (TSan builds).
void check_checkpoint_equivalence(const CaseParams& params,
                                  const Observation& cold,
                                  const std::string& cold_encoded,
                                  std::vector<Violation>* out) {
  if (!jobs::checkpoint_supported()) return;
  auto violate = [out](std::string detail) {
    out->push_back({"checkpoint-equivalence", std::move(detail)});
  };
  sim::Checkpoint ckpt;
  bool is_child = false;
  Observation forked;
  observe(params, &forked, &ckpt, &is_child);
  if (is_child) {
    // Forked child: pipe the observation back and _exit -- never unwind
    // into the surrounding suite (hygiene rules in sim/checkpoint.hpp).
    std::string payload;
    if (forked.threw) {
      payload = "threw " + forked.error;
    } else {
      payload = jobs::hex16(forked.engine_digest) + " " +
                jobs::hex16(forked.trace.digest) + "\n" +
                jobs::ResultCache::encode(params.point(), forked.result);
    }
    ckpt.child_exit(payload, 0);
  }
  if (ckpt.children() != 1) {
    violate("snapshot hook never fired: no child was forked");
    return;
  }
  if (forked.threw) {
    violate("parent run threw after the fork: " + forked.error);
  } else {
    if (forked.engine_digest != cold.engine_digest) {
      violate("parent engine digest " + jobs::hex16(forked.engine_digest) +
              " vs cold " + jobs::hex16(cold.engine_digest));
    }
    if (forked.trace.digest != cold.trace.digest) {
      violate("parent OMPT digest " + jobs::hex16(forked.trace.digest) +
              " vs cold " + jobs::hex16(cold.trace.digest));
    }
    if (jobs::ResultCache::encode(params.point(), forked.result) !=
        cold_encoded) {
      violate("parent metrics document differs from the cold run");
    }
  }
  const sim::Checkpoint::Harvest h = ckpt.harvest(0);
  if (h.exit_code == sim::Checkpoint::kGuardLostExit) {
    violate("fiber guard page lost across the fork");
    return;
  }
  if (!h.ok()) {
    violate("forked child died (exit " + std::to_string(h.exit_code) + ")");
    return;
  }
  const std::size_t nl = h.payload.find('\n');
  if (h.payload.compare(0, 6, "threw ") == 0) {
    violate("forked child threw: " + h.payload.substr(6));
    return;
  }
  if (nl == std::string::npos || nl != 33) {
    violate("malformed child payload (" + std::to_string(h.payload.size()) +
            " bytes)");
    return;
  }
  const std::string child_engine = h.payload.substr(0, 16);
  const std::string child_trace = h.payload.substr(17, 16);
  if (child_engine != jobs::hex16(cold.engine_digest)) {
    violate("child engine digest " + child_engine + " vs cold " +
            jobs::hex16(cold.engine_digest));
  }
  if (child_trace != jobs::hex16(cold.trace.digest)) {
    violate("child OMPT digest " + child_trace + " vs cold " +
            jobs::hex16(cold.trace.digest));
  }
  if (h.payload.substr(nl + 1) != cold_encoded) {
    violate("child metrics document differs from the cold run");
  }
}

}  // namespace

std::vector<std::string> invariant_names() {
  return {"run-completes",    "time-monotonic",       "work-conservation",
          "task-balance",     "steal-accounting",     "counter-conservation",
          "determinism",      "cache-roundtrip",      "exactly-once-dispatch",
          "journal-replay",   "checkpoint-equivalence"};
}

CaseOutcome check_case(const CaseParams& params, const CheckOptions& opt) {
  CaseOutcome out;
  out.params = params;
  auto violate = [&](const char* inv, std::string detail) {
    out.violations.push_back({inv, std::move(detail)});
  };

  Observation a;
  observe(params, &a);
  if (a.threw) {
    violate("run-completes", a.error);
    out.digest = fold(kFnvOffset, jobs::fnv1a64(a.error));
    return out;
  }
  const jobs::PointSpec spec = params.point();
  const std::string encoded = jobs::ResultCache::encode(spec, a.result);
  out.digest = fold(fold(fold(kFnvOffset, a.engine_digest), a.trace.digest),
                    jobs::fnv1a64(encoded));

  if (!a.trace.mono_ok) violate("time-monotonic", a.trace.mono_detail);
  check_work_conservation(a.trace, &out.violations);
  check_task_balance(a.trace, &out.violations);

  const std::uint64_t observed_steals = a.trace.task_stolen + a.trace.rt_stolen;
  const std::uint64_t counted_steals =
      a.result.metrics.counters.total(telemetry::Counter::kTaskSteals);
  if (observed_steals != counted_steals) {
    std::ostringstream d;
    d << "OMPT observed " << observed_steals
      << " stolen executions but telemetry counted " << counted_steals;
    violate("steal-accounting", d.str());
  }
  for (const auto& msg :
       telemetry::check_conservation(a.result.metrics.counters)) {
    violate("counter-conservation", msg);
  }

  // Determinism: the second run must replay the first bit-for-bit.
  Observation b;
  observe(params, &b);
  if (b.threw) {
    violate("determinism", "second run threw: " + b.error);
  } else {
    if (a.engine_digest != b.engine_digest ||
        a.events_dispatched != b.events_dispatched) {
      std::ostringstream d;
      d << "engine dispatch digest " << jobs::hex16(a.engine_digest) << " ("
        << a.events_dispatched << " events) vs "
        << jobs::hex16(b.engine_digest) << " (" << b.events_dispatched
        << " events)";
      violate("determinism", d.str());
    }
    if (a.trace.digest != b.trace.digest) {
      violate("determinism",
              "OMPT trace digest " + jobs::hex16(a.trace.digest) + " vs " +
                  jobs::hex16(b.trace.digest));
    }
    if (a.end_time != b.end_time) {
      violate("determinism", "final virtual time " +
                                 std::to_string(a.end_time) + "ns vs " +
                                 std::to_string(b.end_time) + "ns");
    }
    if (jobs::ResultCache::encode(spec, b.result) != encoded) {
      violate("determinism", "metrics documents differ between runs");
    }
  }

  if (!opt.scratch_dir.empty()) {
    check_cache_roundtrip(params, spec, a.result, opt.scratch_dir,
                          &out.violations);
    check_journal_replay(params, opt.scratch_dir, &out.violations);
  }
  check_exactly_once_dispatch(params, &out.violations);
  check_checkpoint_equivalence(params, a, encoded, &out.violations);
  return out;
}

}  // namespace kop::harness::propcheck
