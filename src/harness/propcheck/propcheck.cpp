#include "harness/propcheck/propcheck.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "harness/figures.hpp"
#include "hw/cost_params.hpp"
#include "nas/specs.hpp"
#include "sim/rng.hpp"

namespace kop::harness::propcheck {

namespace {

const char* part_token(EpccPart p) {
  switch (p) {
    case EpccPart::kSync:  return "sync";
    case EpccPart::kSched: return "sched";
    case EpccPart::kArray: return "array";
    case EpccPart::kTask:  return "task";
    case EpccPart::kAll:   return "all";
  }
  return "?";
}

bool parse_part(const std::string& s, EpccPart* out) {
  if (s == "sync") *out = EpccPart::kSync;
  else if (s == "sched") *out = EpccPart::kSched;
  else if (s == "array") *out = EpccPart::kArray;
  else if (s == "task") *out = EpccPart::kTask;
  else if (s == "all") *out = EpccPart::kAll;
  else return false;
  return true;
}

bool parse_path(const std::string& s, core::PathKind* out) {
  for (core::PathKind p :
       {core::PathKind::kLinuxOmp, core::PathKind::kRtk, core::PathKind::kPik,
        core::PathKind::kAutoMpLinux, core::PathKind::kAutoMpNautilus}) {
    if (s == core::path_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

bool parse_policy(const std::string& s, sim::SchedPolicy* out) {
  for (sim::SchedPolicy p : {sim::SchedPolicy::kFifo, sim::SchedPolicy::kRandom,
                             sim::SchedPolicy::kPct}) {
    if (s == sim::sched_policy_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

std::string fmt_scale(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// strtoll/strtod wrappers that reject trailing garbage and throw-free.
bool to_i64(const std::string& s, long long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool to_f64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// "pers.field:scale" -- one entry of the cs= token field.  Scales come
// from the exact-decimal generator palette, so %.3f round-trips them.
bool parse_cost_scale(const std::string& s, jobs::PointSpec::CostScale* out) {
  const std::size_t colon = s.rfind(':');
  const std::size_t dot = s.find('.');
  if (colon == std::string::npos || dot == std::string::npos || dot > colon)
    return false;
  const std::string pers = s.substr(0, dot);
  if (pers != "linux" && pers != "nautilus" && pers != "pik") return false;
  if (!hw::is_cost_field(s.substr(dot + 1, colon - dot - 1))) return false;
  double scale = 0.0;
  if (!to_f64(s.substr(colon + 1), &scale) || !(scale > 0.0) || scale > 16.0)
    return false;
  out->key = s.substr(0, colon);
  out->scale = scale;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

jobs::PointSpec CaseParams::point() const {
  jobs::PointSpec p;
  p.kind = kind;
  p.machine = machine;
  p.path = path;
  p.threads = threads;
  p.first_touch = first_touch;
  p.rtk_use_pte = rtk_use_pte;
  p.seed = point_seed;
  if (kind == jobs::PointSpec::Kind::kNas) {
    auto scaled = scale_suite({nas::by_name(bench)}, scale, timesteps);
    p.nas = std::move(scaled[0]);
  } else {
    p.epcc_part = part;
    p.epcc.outer_reps = reps;
    p.epcc.inner_iters = inner;
    p.epcc.sched_iters_per_thread = 8;
    p.epcc.array_sizes = {2187};
    p.epcc.tasks_per_thread = tasks_per_thread;
    p.epcc.tree_depth = tree_depth;
  }
  p.numa_sched_hier = numa_sched_hier;
  p.cost_scales = cost_scales;
  return p;
}

core::StackConfig CaseParams::stack_config() const {
  core::StackConfig cfg = point().stack_config();
  cfg.sched.policy = policy;
  cfg.sched.seed = sched_seed;
  return cfg;
}

std::string CaseParams::token() const {
  std::ostringstream t;
  t << "v1;" << (kind == jobs::PointSpec::Kind::kNas ? "nas" : "epcc")
    << ";m=" << machine << ";path=" << core::path_name(path)
    << ";thr=" << threads << ";ft=" << first_touch
    << ";pte=" << (rtk_use_pte ? 1 : 0) << ";seed=" << point_seed
    << ";pol=" << sim::sched_policy_name(policy) << ";ss=" << sched_seed;
  if (kind == jobs::PointSpec::Kind::kNas) {
    t << ";bench=" << bench << ";ts=" << timesteps
      << ";sc=" << fmt_scale(scale);
  } else {
    t << ";part=" << part_token(part) << ";reps=" << reps
      << ";inner=" << inner << ";tasks=" << tasks_per_thread
      << ";depth=" << tree_depth;
  }
  // Emitted only when hier, so flat tokens keep their historical bytes
  // (pinned regression lines stay replayable byte-for-byte).
  if (numa_sched_hier) t << ";ns=hier";
  if (!cost_scales.empty()) {
    // ',' separates entries inside the one cs= field (';' separates
    // fields); old tokens simply have no cs= field.
    t << ";cs=";
    for (std::size_t i = 0; i < cost_scales.size(); ++i) {
      if (i > 0) t << ',';
      t << cost_scales[i].key << ':' << fmt_scale(cost_scales[i].scale);
    }
  }
  return t.str();
}

bool CaseParams::parse(const std::string& token, CaseParams* out) {
  const std::vector<std::string> fields = split(token, ';');
  if (fields.size() < 3 || fields[0] != "v1") return false;
  CaseParams p;
  if (fields[1] == "nas") {
    p.kind = jobs::PointSpec::Kind::kNas;
  } else if (fields[1] == "epcc") {
    p.kind = jobs::PointSpec::Kind::kEpcc;
  } else {
    return false;
  }
  for (std::size_t i = 2; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    const std::size_t eq = f.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = f.substr(0, eq);
    const std::string val = f.substr(eq + 1);
    long long n = 0;
    if (key == "m") {
      if (val != "phi" && val != "8xeon") return false;
      p.machine = val;
    } else if (key == "path") {
      if (!parse_path(val, &p.path)) return false;
    } else if (key == "thr") {
      if (!to_i64(val, &n) || n < 1 || n > 1024) return false;
      p.threads = static_cast<int>(n);
    } else if (key == "ft") {
      if (!to_i64(val, &n) || n < -1 || n > 1) return false;
      p.first_touch = static_cast<int>(n);
    } else if (key == "pte") {
      if (!to_i64(val, &n) || (n != 0 && n != 1)) return false;
      p.rtk_use_pte = n == 1;
    } else if (key == "seed") {
      if (!to_i64(val, &n) || n < 0) return false;
      p.point_seed = static_cast<std::uint64_t>(n);
    } else if (key == "pol") {
      if (!parse_policy(val, &p.policy)) return false;
    } else if (key == "ss") {
      if (!to_i64(val, &n) || n < 0) return false;
      p.sched_seed = static_cast<std::uint64_t>(n);
    } else if (key == "bench") {
      try {
        nas::by_name(val);
      } catch (const std::exception&) {
        return false;
      }
      p.bench = val;
    } else if (key == "ts") {
      if (!to_i64(val, &n) || n < 1 || n > 64) return false;
      p.timesteps = static_cast<int>(n);
    } else if (key == "sc") {
      double d = 0.0;
      if (!to_f64(val, &d) || !(d > 0.0) || d > 16.0) return false;
      p.scale = d;
    } else if (key == "part") {
      if (!parse_part(val, &p.part)) return false;
    } else if (key == "reps") {
      if (!to_i64(val, &n) || n < 1 || n > 64) return false;
      p.reps = static_cast<int>(n);
    } else if (key == "inner") {
      if (!to_i64(val, &n) || n < 1 || n > 256) return false;
      p.inner = static_cast<int>(n);
    } else if (key == "tasks") {
      if (!to_i64(val, &n) || n < 1 || n > 256) return false;
      p.tasks_per_thread = static_cast<int>(n);
    } else if (key == "depth") {
      if (!to_i64(val, &n) || n < 1 || n > 16) return false;
      p.tree_depth = static_cast<int>(n);
    } else if (key == "ns") {
      if (val == "hier") p.numa_sched_hier = true;
      else if (val == "flat") p.numa_sched_hier = false;
      else return false;
    } else if (key == "cs") {
      p.cost_scales.clear();
      for (const std::string& entry : split(val, ',')) {
        jobs::PointSpec::CostScale cs;
        if (!parse_cost_scale(entry, &cs)) return false;
        p.cost_scales.push_back(std::move(cs));
      }
    } else {
      return false;  // unknown key: a typo must not silently pass
    }
  }
  // EPCC cannot run on CCK paths; reject rather than blow up later.
  if (p.kind == jobs::PointSpec::Kind::kEpcc &&
      (p.path == core::PathKind::kAutoMpLinux ||
       p.path == core::PathKind::kAutoMpNautilus)) {
    return false;
  }
  *out = p;
  return true;
}

std::string CaseParams::describe() const {
  std::string out = point().label();
  out += " [";
  out += sim::sched_policy_name(policy);
  if (policy != sim::SchedPolicy::kFifo)
    out += " ss=" + std::to_string(sched_seed);
  for (const auto& cs : cost_scales)
    out += " " + cs.key + "x" + fmt_scale(cs.scale);
  out += "]";
  return out;
}

std::vector<CaseParams> generate(const GenOptions& opt) {
  sim::Rng rng(opt.seed ^ 0x70726f70636865ULL);  // decorrelate from sim seeds
  std::vector<CaseParams> cases;
  cases.reserve(static_cast<std::size_t>(opt.count));

  // CCK-convertible NAS benchmarks (cck_suite elides IS: AutoMP extracts
  // no parallelism from it, §6.2).
  const std::vector<std::string> all_benches = {"BT", "SP", "LU", "FT",
                                                "EP", "CG", "MG", "IS"};
  const std::vector<std::string> cck_benches = {"BT", "SP", "LU", "FT",
                                                "EP", "CG", "MG"};
  const std::vector<core::PathKind> omp_paths = {
      core::PathKind::kLinuxOmp, core::PathKind::kRtk, core::PathKind::kPik};
  const std::vector<core::PathKind> all_paths = {
      core::PathKind::kLinuxOmp, core::PathKind::kRtk, core::PathKind::kPik,
      core::PathKind::kAutoMpLinux, core::PathKind::kAutoMpNautilus};

  for (int i = 0; i < opt.count; ++i) {
    CaseParams p;
    p.kind = rng.bernoulli(0.6) ? jobs::PointSpec::Kind::kNas
                                : jobs::PointSpec::Kind::kEpcc;
    // 8XEON boots a much larger topology; sample it but keep PHI the
    // workhorse so 200 cases stay minutes-scale.
    p.machine = rng.bernoulli(0.15) ? "8xeon" : "phi";
    p.threads = static_cast<int>(rng.uniform_int(1, 6));
    if (rng.bernoulli(0.1)) p.threads = 8;
    p.point_seed = rng.bernoulli(0.5)
                       ? 42
                       : static_cast<std::uint64_t>(rng.uniform_int(1, 100000));
    // Schedule: keep a healthy share of non-FIFO interleavings (that is
    // where ordering bugs live) but sweep FIFO too -- the calibrated
    // figure pipelines run FIFO, so its invariants matter most.
    const double roll = rng.uniform();
    if (roll < 0.35) {
      p.policy = sim::SchedPolicy::kFifo;
      p.sched_seed = 0;
    } else if (roll < 0.70) {
      p.policy = sim::SchedPolicy::kRandom;
      p.sched_seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000000));
    } else {
      p.policy = sim::SchedPolicy::kPct;
      p.sched_seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000000));
    }
    if (p.kind == jobs::PointSpec::Kind::kNas) {
      p.path = all_paths[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(all_paths.size()) - 1))];
      const bool automp = p.path == core::PathKind::kAutoMpLinux ||
                          p.path == core::PathKind::kAutoMpNautilus;
      const auto& benches = automp ? cck_benches : all_benches;
      p.bench = benches[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(benches.size()) - 1))];
      p.timesteps = static_cast<int>(rng.uniform_int(1, 2));
      const double scales[] = {0.05, 0.1, 0.2};
      p.scale = scales[rng.uniform_int(0, 2)];
    } else {
      p.path = omp_paths[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(omp_paths.size()) - 1))];
      const double pr = rng.uniform();
      p.part = pr < 0.35   ? EpccPart::kSync
               : pr < 0.60 ? EpccPart::kSched
               : pr < 0.85 ? EpccPart::kTask
                           : EpccPart::kArray;
      p.reps = static_cast<int>(rng.uniform_int(2, 3));
      p.inner = static_cast<int>(rng.uniform_int(2, 8));
      p.tasks_per_thread = static_cast<int>(rng.uniform_int(2, 6));
      p.tree_depth = static_cast<int>(rng.uniform_int(1, 3));
    }
    p.rtk_use_pte =
        p.path == core::PathKind::kRtk ? rng.bernoulli(0.25) : false;
    // First-touch ablation: only meaningful on Nautilus-backed paths,
    // but cheap to sample everywhere (the flag is ignored elsewhere).
    const double ft = rng.uniform();
    p.first_touch = ft < 0.7 ? -1 : (ft < 0.85 ? 0 : 1);
    // Late-binding cost-scale suffix (drawn last so the prefix draws
    // above stay stable for a given generator seed).  Personality
    // matched to the path so the scales actually bind; values from an
    // exact-decimal palette so tokens replay them bit-for-bit.
    if (rng.bernoulli(0.25)) {
      const char* pers = "linux";
      if (p.path == core::PathKind::kRtk ||
          p.path == core::PathKind::kAutoMpNautilus) {
        pers = "nautilus";
      } else if (p.path == core::PathKind::kPik) {
        pers = "pik";
      }
      const char* fields[] = {"syscall_ns",     "context_switch_ns",
                              "wake_latency_ns", "tick_cost_ns",
                              "alloc_base_ns",   "minor_fault_ns"};
      const double palette[] = {0.25, 0.5, 2.0, 4.0};
      const int n_scales = rng.bernoulli(0.25) ? 2 : 1;
      for (int s = 0; s < n_scales; ++s) {
        jobs::PointSpec::CostScale cs;
        cs.key = std::string(pers) + "." + fields[rng.uniform_int(0, 5)];
        cs.scale = palette[rng.uniform_int(0, 3)];
        // Duplicate keys would compose multiplicatively but serialize
        // ambiguously for a human; keep one entry per field.
        bool dup = false;
        for (const auto& prev : p.cost_scales) dup |= prev.key == cs.key;
        if (!dup) p.cost_scales.push_back(std::move(cs));
      }
    }
    // Hierarchical NUMA stealing: drawn after every existing knob so a
    // given generator seed reproduces the pre-knob draws exactly.  Only
    // meaningful on komp paths (the CCK task system has its own pools),
    // but cheap to sample everywhere -- the env var is simply unread.
    p.numa_sched_hier = rng.bernoulli(0.2);
    cases.push_back(std::move(p));
  }
  return cases;
}

std::string SuiteReport::summary() const {
  std::ostringstream out;
  out << "propcheck: " << cases << " cases, suite digest "
      << jobs::hex16(suite_digest);
  if (failures.empty()) {
    out << ", all invariants hold";
  } else {
    out << ", " << failures.size() << " FAILING (shrunk):";
    for (const auto& f : failures) {
      out << "\n  " << f.params.token();
      for (const auto& v : f.violations) {
        out << "\n    [" << v.invariant << "] " << v.detail;
      }
    }
  }
  return out.str();
}

SuiteReport run_suite(const SuiteOptions& opt) {
  SuiteReport report;
  report.suite_digest = 0xcbf29ce484222325ULL;
  const std::vector<CaseParams> cases = generate(opt.gen);
  for (const CaseParams& params : cases) {
    CaseOutcome outcome = check_case(params, opt.check);
    ++report.cases;
    report.suite_digest =
        (report.suite_digest ^ outcome.digest) * 0x100000001b3ULL;
    if (!outcome.ok() &&
        report.failures.size() < static_cast<std::size_t>(opt.max_failures)) {
      CaseOutcome shrunk;
      shrink(params, opt.check, &shrunk);
      report.failures.push_back(std::move(shrunk));
    }
  }
  return report;
}

schedfuzz::Scenario scenario_from_token(const std::string& token) {
  schedfuzz::Scenario s;
  s.name = "propcheck:" + token;
  s.run = [token](const schedfuzz::FuzzConfig& cfg) -> schedfuzz::Outcome {
    schedfuzz::Outcome out;
    CaseParams params;
    if (!CaseParams::parse(token, &params)) {
      out.wrong = "unparseable propcheck token: " + token;
      return out;
    }
    // The regression line's policy/seed columns are authoritative, as
    // for every other schedfuzz scenario.
    params.policy = cfg.sched.policy;
    params.sched_seed = cfg.sched.seed;
    // Filesystem-free replay: the cache-roundtrip invariant is covered
    // by the propcheck suite itself, not by regression replays.
    const CaseOutcome outcome = check_case(params, CheckOptions{});
    for (const auto& v : outcome.violations) {
      if (!out.wrong.empty()) out.wrong += "; ";
      out.wrong += "[" + v.invariant + "] " + v.detail;
    }
    return out;
  };
  return s;
}

}  // namespace kop::harness::propcheck
