// Property-based invariant testing over random experiment points.
//
// The figure pipelines pin *specific* goldens; propcheck instead draws
// random PointSpecs -- machines x workloads x paths x schedulers x team
// sizes -- from a seeded generator and asserts machine-checkable
// invariants on every one (ek-kor2-style test pyramid, SNIPPETS.md):
//
//   time-monotonic       virtual time never runs backwards across the
//                        run's observed event stream (calendar-queue
//                        ordering, including the overflow heap)
//   work-conservation    every iteration of every dispatching
//                        worksharing construct executes exactly once
//                        (chunk intervals disjoint + exact coverage)
//   determinism          the same (point, policy, seed) replayed twice
//                        produces identical engine dispatch digests,
//                        OMPT trace digests, and metrics
//   task-balance         tasks created == scheduled begin == end;
//                        runtime-task submits == executes (komp,
//                        VIRGIL, and the Nautilus task system)
//   steal-accounting     OMPT-observed steals == the telemetry
//                        kTaskSteals total
//   counter-conservation per-CPU counter attributions never exceed
//                        their totals (telemetry::check_conservation)
//   cache-roundtrip      store -> load -> merge -> load returns the
//                        byte-identical entry document
//   exactly-once-dispatch  a full coordinator-arbitrated sweep under a
//                        case-derived random worker-crash schedule
//                        drains with exactly one accepted completion
//                        per point (src/coord, driven clocklessly)
//   journal-replay       a journaled coordinator killed at a random
//                        committed moment replays its queue journal
//                        into an identical lease table; torn tails are
//                        tolerated, checksum corruption is rejected
//                        (needs scratch_dir, like cache-roundtrip)
//   checkpoint-equivalence  a run that COW-forks at the warmup/
//                        measurement boundary (the --checkpoint fast
//                        path) reproduces the cold run exactly, in both
//                        the forked child and the continuing parent
//                        (skipped under TSan, where fork is unsafe)
//
// A failing case is shrunk to a minimal failing CaseParams; its token
// is a single space-free string that replays from the CLI
// (examples/propcheck --replay <token>) and pins as a schedfuzz
// regression line ("propcheck:<token> <policy> <seed>").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/jobs/point.hpp"
#include "harness/schedfuzz.hpp"
#include "sim/engine.hpp"

namespace kop::harness::propcheck {

/// One generated test case: a PointSpec plus the engine schedule the
/// point runs under (PointSpec itself is schedule-agnostic -- the cache
/// keys on workload identity, not interleaving).
struct CaseParams {
  jobs::PointSpec::Kind kind = jobs::PointSpec::Kind::kNas;
  std::string machine = "phi";  // "phi" | "8xeon"
  core::PathKind path = core::PathKind::kLinuxOmp;
  int threads = 1;
  int first_touch = -1;  // PointSpec convention: -1 auto, 0 off, 1 on
  bool rtk_use_pte = false;
  std::uint64_t point_seed = 42;  // cost-model RNG seed
  /// Hierarchical NUMA stealing (KOMP_NUMA_SCHED=hier) on komp paths.
  bool numa_sched_hier = false;

  // kNas: workload = by_name(bench), scaled.
  std::string bench = "EP";
  int timesteps = 1;
  double scale = 0.05;  // scale_suite work factor

  // kEpcc: suite part + the knobs that dominate its runtime.
  EpccPart part = EpccPart::kSync;
  int reps = 2;
  int inner = 4;
  int tasks_per_thread = 4;
  int tree_depth = 2;

  // Late-binding cost-scale suffix: random hw.apply_cost_scale
  // overrides, applied at the warmup/measurement boundary exactly as a
  // sweep's --checkpoint path would.  The generator draws scales from
  // an exact-decimal palette with the personality matched to the
  // case's path, so tokens round-trip the drawn values bit-for-bit.
  std::vector<jobs::PointSpec::CostScale> cost_scales;

  // Engine ready-queue schedule.
  sim::SchedPolicy policy = sim::SchedPolicy::kFifo;
  std::uint64_t sched_seed = 0;

  /// Materialize the PointSpec this case runs.
  jobs::PointSpec point() const;
  /// The point's StackConfig with the schedule applied.
  core::StackConfig stack_config() const;
  /// Space-free replay token ("v1;nas;bench=EP;...").  Round-trips
  /// through parse() exactly; safe in the space-tokenized schedfuzz
  /// regression format.
  std::string token() const;
  /// Parse a token; returns false (leaving *out untouched) on any
  /// malformed input.
  static bool parse(const std::string& token, CaseParams* out);
  /// Short human description for reports.
  std::string describe() const;
};

/// Deterministic case generator: same (seed, count) => same cases, on
/// any host.  Draws are constrained to valid combinations (EPCC only on
/// libomp paths, AutoMP only on CCK-convertible benchmarks) and sized
/// for sub-second simulation per case.
struct GenOptions {
  std::uint64_t seed = 1;
  int count = 200;
};
std::vector<CaseParams> generate(const GenOptions& opt);

/// One invariant violation (invariant registry name + evidence).
struct Violation {
  std::string invariant;
  std::string detail;
};

struct CheckOptions {
  /// Scratch directory for the cache-roundtrip and journal-replay
  /// invariants.  Each checked case uses fresh subdirectories.  Empty
  /// disables both (the others never touch the filesystem).
  std::string scratch_dir;
};

/// Outcome of checking every invariant against one case.
struct CaseOutcome {
  CaseParams params;
  std::vector<Violation> violations;
  /// Digest of the first run's observable behavior (engine dispatch
  /// digest + OMPT trace digest + metrics bytes): the value the
  /// determinism acceptance criterion folds across the suite.
  std::uint64_t digest = 0;
  bool ok() const { return violations.empty(); }
};

/// Names of every registered invariant, in evaluation order.
std::vector<std::string> invariant_names();

/// Run one case under the full invariant registry (simulates the point
/// twice for the determinism check).  Exceptions from the simulation
/// itself are converted into a "run-completes" violation.
CaseOutcome check_case(const CaseParams& params, const CheckOptions& opt);

/// Greedy shrink: repeatedly applies simplifying transformations
/// (fewer threads, smaller workload, simpler machine/policy/seed) while
/// the case keeps failing.  Returns the minimal still-failing case; the
/// result of check_case on it is in *final if non-null.
CaseParams shrink(const CaseParams& failing, const CheckOptions& opt,
                  CaseOutcome* final = nullptr, int max_checks = 48);

/// --- Suite driver (what examples/propcheck and the test run) ---------

struct SuiteOptions {
  GenOptions gen;
  CheckOptions check;
  /// Stop after this many failing cases (each is shrunk; shrinking is
  /// the expensive part).
  int max_failures = 3;
};

struct SuiteReport {
  int cases = 0;
  /// FNV-1a fold of every case digest, in generation order: the suite's
  /// whole observable behavior as one number.  Pinned-seed CI runs
  /// compare it across invocations.
  std::uint64_t suite_digest = 0;
  /// Failing cases, already shrunk to minimal form.
  std::vector<CaseOutcome> failures;
  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

SuiteReport run_suite(const SuiteOptions& opt);

/// Wrap a replay token as a schedfuzz scenario named
/// "propcheck:<token>".  The scenario runs the full invariant registry
/// on the case with the *caller's* FuzzConfig schedule (the regression
/// line's policy/seed columns override the token's own), reporting any
/// violation as a wrong-answer outcome.  Used by
/// schedfuzz::replay_regressions to honor pinned propcheck shrink
/// results.
schedfuzz::Scenario scenario_from_token(const std::string& token);

}  // namespace kop::harness::propcheck
