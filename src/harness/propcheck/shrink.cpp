// Greedy shrinking of a failing case to a minimal failing case.
//
// Classic property-testing shrink loop: propose simplifying
// transformations in a fixed order, keep any candidate that still
// fails, restart from the simplified case, stop when no transformation
// applies (a local minimum) or the check budget runs out.  Every
// candidate check re-simulates the point twice (the determinism
// invariant), so the budget is in check_case() calls, not transforms.

#include <utility>
#include <vector>

#include "harness/propcheck/propcheck.hpp"

namespace kop::harness::propcheck {

namespace {

// Candidate simplifications of `p`, most aggressive first: dropping
// threads and workload size shrinks the trace the debugger has to read
// far more than normalizing a seed does.
std::vector<CaseParams> candidates(const CaseParams& p) {
  std::vector<CaseParams> out;
  auto with = [&](auto&& mutate) {
    CaseParams c = p;
    mutate(c);
    out.push_back(std::move(c));
  };
  if (p.threads > 1) with([](CaseParams& c) { c.threads = 1; });
  if (p.threads > 2) with([](CaseParams& c) { c.threads /= 2; });
  if (p.machine != "phi") with([](CaseParams& c) { c.machine = "phi"; });
  if (p.kind == jobs::PointSpec::Kind::kNas) {
    if (p.bench != "EP") with([](CaseParams& c) { c.bench = "EP"; });
    if (p.timesteps > 1) with([](CaseParams& c) { c.timesteps = 1; });
    if (p.scale > 0.05) with([](CaseParams& c) { c.scale = 0.05; });
  } else {
    if (p.part != EpccPart::kSync)
      with([](CaseParams& c) { c.part = EpccPart::kSync; });
    if (p.reps > 2) with([](CaseParams& c) { c.reps = 2; });
    if (p.inner > 2) with([](CaseParams& c) { c.inner = 2; });
    if (p.tasks_per_thread > 2)
      with([](CaseParams& c) { c.tasks_per_thread = 2; });
    if (p.tree_depth > 1) with([](CaseParams& c) { c.tree_depth = 1; });
  }
  // The cost-scale suffix rarely causes a failure by itself; dropping
  // it early keeps shrunk tokens free of cs= noise when it is inert.
  if (!p.cost_scales.empty()) {
    with([](CaseParams& c) { c.cost_scales.clear(); });
    if (p.cost_scales.size() > 1)
      with([](CaseParams& c) { c.cost_scales.resize(1); });
  }
  if (p.path != core::PathKind::kLinuxOmp)
    with([](CaseParams& c) { c.path = core::PathKind::kLinuxOmp; });
  if (p.policy != sim::SchedPolicy::kFifo)
    with([](CaseParams& c) {
      c.policy = sim::SchedPolicy::kFifo;
      c.sched_seed = 0;
    });
  if (p.rtk_use_pte) with([](CaseParams& c) { c.rtk_use_pte = false; });
  if (p.numa_sched_hier)
    with([](CaseParams& c) { c.numa_sched_hier = false; });
  if (p.first_touch != -1) with([](CaseParams& c) { c.first_touch = -1; });
  if (p.point_seed != 42) with([](CaseParams& c) { c.point_seed = 42; });
  return out;
}

}  // namespace

CaseParams shrink(const CaseParams& failing, const CheckOptions& opt,
                  CaseOutcome* final, int max_checks) {
  CaseParams current = failing;
  CaseOutcome current_outcome = check_case(current, opt);
  int checks = 1;
  if (current_outcome.ok()) {
    // The failure did not reproduce (it should: every invariant is
    // deterministic).  Report the passing outcome rather than looping.
    if (final != nullptr) *final = std::move(current_outcome);
    return current;
  }
  bool improved = true;
  while (improved && checks < max_checks) {
    improved = false;
    for (const CaseParams& cand : candidates(current)) {
      if (checks >= max_checks) break;
      CaseOutcome outcome = check_case(cand, opt);
      ++checks;
      if (!outcome.ok()) {
        current = cand;
        current_outcome = std::move(outcome);
        improved = true;
        break;  // restart from the simplified case
      }
    }
  }
  if (final != nullptr) *final = std::move(current_outcome);
  return current;
}

}  // namespace kop::harness::propcheck
