#include "harness/schedfuzz.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "epcc/epcc.hpp"
#include "harness/propcheck/propcheck.hpp"
#include "hw/topology.hpp"
#include "komp/runtime.hpp"
#include "komp/team.hpp"
#include "linuxmodel/linux_os.hpp"
#include "nas/functional.hpp"
#include "osal/sync.hpp"
#include "sim/racecheck.hpp"
#include "virgil/virgil.hpp"

namespace kop::harness::schedfuzz {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kRace: return "race";
    case Verdict::kDeadlock: return "deadlock";
    case Verdict::kException: return "exception";
    case Verdict::kWrongAnswer: return "wrong-answer";
  }
  return "?";
}

core::StackConfig FuzzConfig::stack(int num_threads) const {
  core::StackConfig cfg;
  cfg.machine = "phi";
  cfg.path = core::PathKind::kLinuxOmp;
  cfg.num_threads = num_threads;
  apply(cfg);
  return cfg;
}

void FuzzConfig::apply(core::StackConfig& cfg) const {
  cfg.sched = sched;
  cfg.racecheck = racecheck;
}

std::unique_ptr<sim::Engine> FuzzConfig::make_engine(
    std::uint64_t rng_seed) const {
  auto engine = std::make_unique<sim::Engine>(rng_seed, sched);
  if (racecheck) engine->enable_racecheck();
  return engine;
}

std::vector<std::string> collect_races(sim::Engine& engine) {
  std::vector<std::string> out;
  if (const sim::RaceChecker* rc = engine.racecheck())
    for (const auto& r : rc->reports()) out.push_back(r.to_string());
  return out;
}

namespace {

// --- scenario plumbing ----------------------------------------------

/// Run `body` on a raw engine+OS; body spawns threads and returns a
/// checker evaluated after the engine drains.  Race reports are
/// harvested even when the run dies (deadlocks rethrow afterwards).
Outcome run_osal_scenario(
    const FuzzConfig& cfg,
    const std::function<std::function<std::string()>(osal::Os&)>& body) {
  Outcome out;
  auto engine = cfg.make_engine();
  linuxmodel::LinuxOs os(*engine, hw::machine_by_name("phi"));
  auto check = body(os);
  try {
    engine->run();
  } catch (...) {
    out.races = collect_races(*engine);
    if (out.races.empty()) throw;
    return out;  // a race explains the blow-up better than the symptom
  }
  out.races = collect_races(*engine);
  if (out.races.empty()) out.wrong = check();
  return out;
}

/// Run `body` as an OpenMP app on a stack built from an explicit
/// config (scenarios that need a non-default machine or environment).
Outcome run_stack_omp_scenario(
    const core::StackConfig& sc,
    const std::function<std::string(komp::Runtime&)>& body) {
  Outcome out;
  auto stack = core::Stack::create(sc);
  std::string wrong;
  try {
    stack->run_omp_app([&body, &wrong](komp::Runtime& rt) {
      wrong = body(rt);
      return wrong.empty() ? 0 : 1;
    });
  } catch (...) {
    out.races = collect_races(stack->engine());
    if (out.races.empty()) throw;
    return out;
  }
  out.races = collect_races(stack->engine());
  if (out.races.empty()) out.wrong = wrong;
  return out;
}

/// Run `body` as an OpenMP app on a freshly booted linux-omp stack.
Outcome run_omp_scenario(
    const FuzzConfig& cfg, int threads,
    const std::function<std::string(komp::Runtime&)>& body) {
  return run_stack_omp_scenario(cfg.stack(threads), body);
}

std::string expect_eq(const char* what, long long got, long long want) {
  if (got == want) return {};
  std::ostringstream oss;
  oss << what << ": got " << got << ", want " << want;
  return oss.str();
}

// --- osal-level scenarios -------------------------------------------

Scenario osal_mutex_counter() {
  return {"osal-mutex-counter", [](const FuzzConfig& cfg) {
    return run_osal_scenario(cfg, [](osal::Os& os) {
      auto mu = std::make_shared<osal::Mutex>(os, 1000);
      auto counter = std::make_shared<long long>(0);
      constexpr int kThreads = 4, kIters = 8;
      for (int t = 0; t < kThreads; ++t) {
        os.spawn_thread("inc" + std::to_string(t), [&os, mu, counter]() {
          for (int i = 0; i < kIters; ++i) {
            mu->lock();
            sim::race::plain_read(os.engine(), counter.get(), "fuzz counter");
            const long long v = *counter;
            os.compute_ns(50);
            sim::race::plain_write(os.engine(), counter.get(), "fuzz counter");
            *counter = v + 1;
            mu->unlock();
            os.compute_ns(20);
          }
        }, t % os.machine().num_cpus);
      }
      return [counter]() {
        return expect_eq("mutex counter", *counter, kThreads * kIters);
      };
    });
  }};
}

Scenario osal_sem_pingpong() {
  return {"osal-sem-pingpong", [](const FuzzConfig& cfg) {
    return run_osal_scenario(cfg, [](osal::Os& os) {
      auto empty = std::make_shared<osal::Semaphore>(os, 1, 1000);
      auto full = std::make_shared<osal::Semaphore>(os, 0, 1000);
      auto mailbox = std::make_shared<long long>(0);
      auto sum = std::make_shared<long long>(0);
      constexpr int kItems = 12;
      os.spawn_thread("producer", [&os, empty, full, mailbox]() {
        for (int i = 1; i <= kItems; ++i) {
          empty->wait();
          sim::race::plain_write(os.engine(), mailbox.get(), "fuzz mailbox");
          *mailbox = i;
          os.compute_ns(30);
          full->post();
        }
      }, 0);
      os.spawn_thread("consumer", [&os, empty, full, mailbox, sum]() {
        for (int i = 0; i < kItems; ++i) {
          full->wait();
          sim::race::plain_read(os.engine(), mailbox.get(), "fuzz mailbox");
          *sum += *mailbox;
          os.compute_ns(40);
          empty->post();
        }
      }, 1);
      return [sum]() {
        return expect_eq("pingpong sum", *sum, kItems * (kItems + 1) / 2);
      };
    });
  }};
}

Scenario osal_condvar_queue() {
  return {"osal-condvar-queue", [](const FuzzConfig& cfg) {
    return run_osal_scenario(cfg, [](osal::Os& os) {
      struct Shared {
        osal::Mutex mu;
        osal::CondVar cv;
        std::vector<int> queue;
        long long sum = 0;
        explicit Shared(osal::Os& o) : mu(o, 1000), cv(o, 1000) {}
      };
      auto sh = std::make_shared<Shared>(os);
      constexpr int kProducers = 2, kItems = 6;
      for (int p = 0; p < kProducers; ++p) {
        os.spawn_thread("prod" + std::to_string(p), [&os, sh, p]() {
          for (int i = 0; i < kItems; ++i) {
            os.compute_ns(35);
            sh->mu.lock();
            sim::race::plain_write(os.engine(), &sh->queue, "fuzz queue");
            sh->queue.push_back(p * kItems + i + 1);
            sh->mu.unlock();
            sh->cv.signal();
          }
        }, p);
      }
      os.spawn_thread("cons", [&os, sh]() {
        int popped = 0;
        sh->mu.lock();
        while (popped < kProducers * kItems) {
          while (sh->queue.empty()) sh->cv.wait(sh->mu);
          sim::race::plain_write(os.engine(), &sh->queue, "fuzz queue");
          sh->sum += sh->queue.back();
          sh->queue.pop_back();
          ++popped;
        }
        sh->mu.unlock();
      }, 2);
      const long long n = kProducers * kItems;
      return [sh, n]() { return expect_eq("cv queue sum", sh->sum, n * (n + 1) / 2); };
    });
  }};
}

Scenario osal_barrier_rounds() {
  return {"osal-barrier-rounds", [](const FuzzConfig& cfg) {
    return run_osal_scenario(cfg, [](osal::Os& os) {
      constexpr int kThreads = 4, kRounds = 5;
      struct Shared {
        osal::Barrier bar;
        long long value = 0;
        long long sum = 0;  // thread 0's accumulator of observed values
        explicit Shared(osal::Os& o) : bar(o, kThreads, 1000) {}
      };
      auto sh = std::make_shared<Shared>(os);
      for (int t = 0; t < kThreads; ++t) {
        os.spawn_thread("bt" + std::to_string(t), [&os, sh, t]() {
          for (int r = 0; r < kRounds; ++r) {
            if (r % kThreads == t) {
              sim::race::plain_write(os.engine(), &sh->value, "fuzz round value");
              sh->value = r + 1;
            }
            os.compute_ns(25 + 10 * t);
            sh->bar.arrive_and_wait();
            sim::race::plain_read(os.engine(), &sh->value, "fuzz round value");
            if (t == 0) sh->sum += sh->value;
            sh->bar.arrive_and_wait();
          }
        }, t);
      }
      return [sh]() {
        return expect_eq("barrier sum", sh->sum, kRounds * (kRounds + 1) / 2);
      };
    });
  }};
}

// --- komp scenarios -------------------------------------------------

Scenario komp_barrier() {
  return {"komp-barrier", [](const FuzzConfig& cfg) {
    return run_omp_scenario(cfg, 4, [](komp::Runtime& rt) {
      sim::Engine& eng = rt.os().engine();
      long long value = 0, sum = 0;
      constexpr int kRounds = 4;
      rt.parallel(4, [&](komp::TeamThread& tt) {
        for (int r = 0; r < kRounds; ++r) {
          if (tt.id() == r % tt.nthreads()) {
            sim::race::plain_write(eng, &value, "fuzz team value");
            value = r + 1;
          }
          tt.compute_ns(30 + 7 * tt.id());
          tt.barrier();
          sim::race::plain_read(eng, &value, "fuzz team value");
          const long long seen = value;
          tt.barrier();
          tt.master([&]() { sum += seen; });
          tt.barrier();
        }
      });
      return expect_eq("komp barrier sum", sum, kRounds * (kRounds + 1) / 2);
    });
  }};
}

Scenario komp_lock() {
  return {"komp-lock", [](const FuzzConfig& cfg) {
    return run_omp_scenario(cfg, 4, [](komp::Runtime& rt) {
      sim::Engine& eng = rt.os().engine();
      long long crit_counter = 0, lock_counter = 0;
      auto lock = rt.make_lock();
      constexpr int kIters = 6;
      rt.parallel(4, [&](komp::TeamThread& tt) {
        for (int i = 0; i < kIters; ++i) {
          tt.critical("fuzz", [&]() {
            sim::race::plain_write(eng, &crit_counter, "fuzz crit counter");
            ++crit_counter;
          });
          tt.compute_ns(20);
          lock->set();
          sim::race::plain_write(eng, &lock_counter, "fuzz lock counter");
          ++lock_counter;
          lock->unset();
        }
      });
      std::string err = expect_eq("critical counter", crit_counter, 4 * kIters);
      if (err.empty()) err = expect_eq("omp-lock counter", lock_counter, 4 * kIters);
      return err;
    });
  }};
}

Scenario komp_workshare() {
  return {"komp-workshare", [](const FuzzConfig& cfg) {
    return run_omp_scenario(cfg, 4, [](komp::Runtime& rt) {
      constexpr std::int64_t kN = 96;
      double total = 0.0;
      rt.parallel(4, [&](komp::TeamThread& tt) {
        double local = 0.0;
        tt.for_loop(komp::Schedule::kDynamic, 4, 0, kN,
                    [&](std::int64_t b, std::int64_t e) {
                      for (std::int64_t i = b; i < e; ++i) local += double(i);
                      tt.compute_ns(15);
                    });
        tt.for_loop(komp::Schedule::kGuided, 2, 0, kN,
                    [&](std::int64_t b, std::int64_t e) {
                      for (std::int64_t i = b; i < e; ++i) local += double(i);
                      tt.compute_ns(15);
                    });
        const double got = tt.reduce(local, komp::ReduceOp::kSum);
        tt.master([&]() { total = got; });
      });
      const double want = double(kN * (kN - 1));  // both loops sum 0..N-1
      if (total != want) {
        std::ostringstream oss;
        oss << "workshare reduce: got " << total << ", want " << want;
        return oss.str();
      }
      return std::string();
    });
  }};
}

Scenario komp_tasking() {
  return {"komp-tasking", [](const FuzzConfig& cfg) {
    return run_omp_scenario(cfg, 4, [](komp::Runtime& rt) {
      sim::Engine& eng = rt.os().engine();
      long long counter = 0;
      constexpr int kTasks = 24;
      rt.parallel(4, [&](komp::TeamThread& tt) {
        tt.single([&]() {
          for (int i = 0; i < kTasks; ++i) {
            tt.task([&eng, &counter](komp::TeamThread& ex) {
              ex.compute_ns(40);
              ex.critical("fuzz-task", [&]() {
                sim::race::plain_write(eng, &counter, "fuzz task counter");
                ++counter;
              });
            });
          }
        });
        // The single's closing barrier drains the pool.
      });
      return expect_eq("task counter", counter, kTasks);
    });
  }};
}

Scenario komp_hier_tasking() {
  return {"komp-hier-tasking", [](const FuzzConfig& cfg) {
    // Hierarchical stealing on a multi-zone machine: 16 threads spread
    // over 8XEON's 8 sockets (OMP_PROC_BIND=spread pins two per zone),
    // every task spawned on one deque.  Each execution is a steal --
    // the same-zone sibling raids locally, the other zones walk the
    // topology tree -- so the schedule fuzzer shakes the victim-order,
    // threshold-gating, and batch re-queue paths under random and PCT
    // preemption.
    core::StackConfig sc = cfg.stack(16);
    sc.machine = "8xeon";
    sc.env.emplace_back("KOMP_NUMA_SCHED", "hier");
    sc.env.emplace_back("OMP_PROC_BIND", "spread");
    return run_stack_omp_scenario(sc, [](komp::Runtime& rt) {
      sim::Engine& eng = rt.os().engine();
      long long counter = 0;
      constexpr int kTasks = 48;
      rt.parallel(16, [&](komp::TeamThread& tt) {
        tt.single([&]() {
          for (int i = 0; i < kTasks; ++i) {
            tt.task([&eng, &counter](komp::TeamThread& ex) {
              ex.compute_ns(40);
              ex.critical("fuzz-hier-task", [&]() {
                sim::race::plain_write(eng, &counter, "fuzz hier counter");
                ++counter;
              });
            });
          }
        });
        // The single's closing barrier drains the pool.
      });
      return expect_eq("hier task counter", counter, kTasks);
    });
  }};
}

// --- EPCC / NAS scenarios -------------------------------------------

Scenario epcc_sync_small() {
  return {"epcc-sync-small", [](const FuzzConfig& cfg) {
    return run_omp_scenario(cfg, 4, [](komp::Runtime& rt) {
      epcc::EpccConfig ecfg;
      ecfg.outer_reps = 2;
      ecfg.inner_iters = 2;
      ecfg.delay_ns = 200;
      ecfg.mutex_delay_ns = 50;
      epcc::Suite suite(rt, ecfg);
      auto ms = suite.run_syncbench();
      return ms.empty() ? std::string("syncbench produced no measurements")
                        : std::string();
    });
  }};
}

Scenario epcc_task_small() {
  return {"epcc-task-small", [](const FuzzConfig& cfg) {
    return run_omp_scenario(cfg, 4, [](komp::Runtime& rt) {
      epcc::EpccConfig ecfg;
      ecfg.outer_reps = 2;
      ecfg.inner_iters = 2;
      ecfg.delay_ns = 200;
      ecfg.tasks_per_thread = 2;
      ecfg.tree_depth = 3;
      epcc::Suite suite(rt, ecfg);
      auto ms = suite.run_taskbench();
      return ms.empty() ? std::string("taskbench produced no measurements")
                        : std::string();
    });
  }};
}

// --- VIRGIL scenarios -----------------------------------------------

/// Run `body` as a CCK app on an AutoMP stack (user- or kernel-level
/// VIRGIL); same failure harvesting as the other stack runners.
Outcome run_virgil_scenario(
    const FuzzConfig& cfg, core::PathKind path, int lanes,
    const std::function<std::string(osal::Os&, virgil::Virgil&)>& body) {
  Outcome out;
  core::StackConfig sc;
  sc.machine = "phi";
  sc.path = path;
  sc.num_threads = lanes;
  cfg.apply(sc);
  auto stack = core::Stack::create(sc);
  std::string wrong;
  try {
    stack->run_cck_app([&body, &wrong](osal::Os& os, virgil::Virgil& vg) {
      wrong = body(os, vg);
      return wrong.empty() ? 0 : 1;
    });
  } catch (...) {
    out.races = collect_races(stack->engine());
    if (out.races.empty()) throw;
    return out;
  }
  out.races = collect_races(stack->engine());
  if (out.races.empty()) out.wrong = wrong;
  return out;
}

/// Shared body for both VIRGIL flavors: a burst of independent tasks
/// incrementing a spinlock-guarded counter, joined by the
/// CountdownLatch compiler-generated code uses, then a second wave
/// submitted *from inside a task* (submit is documented to be legal
/// from any sim thread, including a running task).
std::string virgil_task_burst(osal::Os& os, virgil::Virgil& vg) {
  sim::Engine& eng = os.engine();
  constexpr int kTasks = 16, kNested = 4;
  long long counter = 0;
  osal::Spinlock lock(os);
  virgil::CountdownLatch latch(os, kTasks + kNested);
  for (int i = 0; i < kTasks; ++i) {
    vg.submit([&os, &eng, &vg, &lock, &latch, &counter, i]() {
      os.compute_ns(30 + 5 * i);
      lock.lock();
      sim::race::plain_write(eng, &counter, "virgil fuzz counter");
      ++counter;
      lock.unlock();
      if (i < kNested) {
        vg.submit([&os, &eng, &lock, &latch, &counter]() {
          os.compute_ns(25);
          lock.lock();
          sim::race::plain_write(eng, &counter, "virgil fuzz counter");
          ++counter;
          lock.unlock();
          latch.count_down();
        });
      }
      latch.count_down();
    });
  }
  latch.wait();
  return expect_eq("virgil task counter", counter, kTasks + kNested);
}

Scenario virgil_user_tasks() {
  return {"virgil-user-tasks", [](const FuzzConfig& cfg) {
    return run_virgil_scenario(cfg, core::PathKind::kAutoMpLinux, 3,
                               virgil_task_burst);
  }};
}

Scenario virgil_kernel_tasks() {
  return {"virgil-kernel-tasks", [](const FuzzConfig& cfg) {
    return run_virgil_scenario(cfg, core::PathKind::kAutoMpNautilus, 3,
                               virgil_task_burst);
  }};
}

Scenario nas_functional(const std::string& bench) {
  std::string lower = bench;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  return {"nas-" + lower + "-s", [bench](const FuzzConfig& cfg) {
    return run_omp_scenario(cfg, 4, [bench](komp::Runtime& rt) {
      auto v = nas::functional::verify(rt, bench);
      return v.passed ? std::string() : bench + " verification: " + v.detail;
    });
  }};
}

}  // namespace

std::vector<Scenario> core_scenarios() {
  return {komp_barrier(), komp_lock(), komp_workshare(), komp_tasking(),
          nas_functional("CG"), nas_functional("IS")};
}

std::vector<Scenario> default_scenarios() {
  std::vector<Scenario> all = {osal_mutex_counter(), osal_sem_pingpong(),
                               osal_condvar_queue(), osal_barrier_rounds()};
  for (auto& s : core_scenarios()) all.push_back(std::move(s));
  all.push_back(virgil_user_tasks());
  all.push_back(virgil_kernel_tasks());
  all.push_back(komp_hier_tasking());
  all.push_back(epcc_sync_small());
  all.push_back(epcc_task_small());
  return all;
}

Scenario buggy_unlock_scenario() {
  return {"buggy-unlock", [](const FuzzConfig& cfg) {
    return run_osal_scenario(cfg, [](osal::Os& os) {
      auto mu = std::make_shared<osal::Mutex>(os, 1000);
      auto balance = std::make_shared<long long>(0);
      constexpr int kThreads = 2, kIters = 3;
      for (int t = 0; t < kThreads; ++t) {
        os.spawn_thread("acct" + std::to_string(t), [&os, mu, balance]() {
          for (int i = 0; i < kIters; ++i) {
            mu->lock();
            sim::race::plain_read(os.engine(), balance.get(), "account balance");
            const long long v = *balance;
            // BUG (deliberate): the lock is dropped before the deposit
            // lands, so the write is outside the critical section.
            mu->unlock();
            os.compute_ns(60);
            sim::race::plain_write(os.engine(), balance.get(), "account balance");
            *balance = v + 1;
          }
        }, t);
      }
      return [balance]() {
        return expect_eq("account balance", *balance, kThreads * kIters);
      };
    });
  }};
}

const Scenario* find_scenario(const std::vector<Scenario>& list,
                              const std::string& name) {
  for (const auto& s : list)
    if (s.name == name) return &s;
  return nullptr;
}

std::string Failure::replay() const {
  std::ostringstream oss;
  oss << "schedfuzz --scenario=" << scenario
      << " --policy=" << sim::sched_policy_name(sched.policy)
      << " --sched-seed=" << sched.seed;
  return oss.str();
}

std::string Report::summary() const {
  std::ostringstream oss;
  oss << "schedfuzz: " << runs << " runs, " << failures.size() << " failure"
      << (failures.size() == 1 ? "" : "s");
  for (const auto& f : failures) {
    oss << "\n  [" << verdict_name(f.verdict) << "] " << f.scenario
        << " (policy=" << sim::sched_policy_name(f.sched.policy)
        << " seed=" << f.sched.seed << ")\n    " << f.detail
        << "\n    replay: " << f.replay();
  }
  return oss.str();
}

Failure run_one(const Scenario& scenario, sim::SchedConfig sched,
                bool racecheck) {
  Failure f;
  f.scenario = scenario.name;
  f.sched = sched;
  FuzzConfig cfg;
  cfg.sched = sched;
  cfg.racecheck = racecheck;
  try {
    Outcome out = scenario.run(cfg);
    if (!out.races.empty()) {
      f.verdict = Verdict::kRace;
      std::ostringstream oss;
      for (std::size_t i = 0; i < out.races.size(); ++i)
        oss << (i ? "\n    " : "") << out.races[i];
      f.detail = oss.str();
    } else if (!out.wrong.empty()) {
      f.verdict = Verdict::kWrongAnswer;
      f.detail = out.wrong;
    }
  } catch (const sim::SimDeadlock& e) {
    f.verdict = Verdict::kDeadlock;
    f.detail = e.what();
  } catch (const std::exception& e) {
    f.verdict = Verdict::kException;
    f.detail = e.what();
  }
  return f;
}

Report sweep(const std::vector<Scenario>& scenarios, const Options& opt) {
  Report report;
  for (const auto& scenario : scenarios) {
    bool failed = false;
    for (sim::SchedPolicy policy : opt.policies) {
      if (failed && opt.stop_on_failure) break;
      for (int i = 0; i < opt.seeds_per_policy; ++i) {
        sim::SchedConfig sched;
        sched.policy = policy;
        sched.seed = opt.seed_begin + static_cast<std::uint64_t>(i);
        Failure f = run_one(scenario, sched, opt.racecheck);
        ++report.runs;
        if (f.verdict != Verdict::kOk) {
          report.failures.push_back(std::move(f));
          failed = true;
          if (opt.stop_on_failure) break;
        }
      }
    }
  }
  return report;
}

namespace {

bool parse_policy(const std::string& s, sim::SchedPolicy& out) {
  if (s == "fifo") out = sim::SchedPolicy::kFifo;
  else if (s == "random") out = sim::SchedPolicy::kRandom;
  else if (s == "pct") out = sim::SchedPolicy::kPct;
  else return false;
  return true;
}

}  // namespace

std::vector<RegressionEntry> load_regressions(const std::string& path) {
  std::vector<RegressionEntry> entries;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream iss(line);
    std::string name, policy;
    std::uint64_t seed = 0;
    if (!(iss >> name >> policy >> seed)) continue;  // blank / comment
    RegressionEntry e;
    e.scenario = name;
    if (!parse_policy(policy, e.sched.policy))
      throw std::runtime_error("bad policy '" + policy + "' in " +
                               path);
    e.sched.seed = seed;
    entries.push_back(std::move(e));
  }
  return entries;
}

Report replay_regressions(const std::vector<Scenario>& scenarios,
                          const std::string& path, bool racecheck) {
  Report report;
  for (const auto& e : load_regressions(path)) {
    const Scenario* s = find_scenario(scenarios, e.scenario);
    // Shrunk propcheck cases pin as "propcheck:<token>" lines; the
    // scenario is synthesized from the token instead of looked up (the
    // propcheck invariant registry is its own correctness check, so it
    // replays without the race detector).
    Scenario synthesized;
    if (s == nullptr && e.scenario.rfind("propcheck:", 0) == 0) {
      synthesized =
          propcheck::scenario_from_token(e.scenario.substr(10));
      s = &synthesized;
    }
    if (s == nullptr) {
      Failure f;
      f.scenario = e.scenario;
      f.sched = e.sched;
      f.verdict = Verdict::kException;
      f.detail = "regression list names an unknown scenario";
      report.failures.push_back(std::move(f));
      continue;
    }
    const bool is_propcheck = e.scenario.rfind("propcheck:", 0) == 0;
    Failure f = run_one(*s, e.sched, racecheck && !is_propcheck);
    ++report.runs;
    if (f.verdict != Verdict::kOk) report.failures.push_back(std::move(f));
  }
  return report;
}

}  // namespace kop::harness::schedfuzz
