// Schedule-exploration fuzzing for the simulated OpenMP stack.
//
// The engine's ready-queue policy (sim::SchedConfig) turns one seed
// into one deterministic interleaving.  schedfuzz sweeps many seeds
// under the random and PCT policies over a set of schedule-sensitive
// *scenarios* -- osal primitives, komp barrier/lock/tasking, EPCC
// microbenchmarks, NAS class-S functional kernels -- with the
// vector-clock race detector attached, and classifies every run:
//
//   kOk           clean finish, correct answer, no races
//   kRace         the detector reported an unordered access pair
//   kDeadlock     Engine::run() threw SimDeadlock
//   kException    any other exception escaped the workload
//   kWrongAnswer  the scenario's own result check failed
//
// A failure carries the exact (scenario, policy, seed) triple, so it
// replays verbatim:  schedfuzz --scenario=<name> --policy=<p>
// --sched-seed=<s>  (examples/schedfuzz.cpp) or run_one() in code.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/stack.hpp"
#include "sim/engine.hpp"

namespace kop::harness::schedfuzz {

enum class Verdict { kOk, kRace, kDeadlock, kException, kWrongAnswer };
const char* verdict_name(Verdict v);

/// What one scenario run hands back to the driver.  Scenarios harvest
/// race reports themselves (the engine dies with the scenario's stack).
struct Outcome {
  std::string wrong;               // non-empty = wrong answer
  std::vector<std::string> races;  // detector reports, if any
};

/// Knobs the driver passes into a scenario run.
struct FuzzConfig {
  sim::SchedConfig sched;
  bool racecheck = true;

  /// A ready-to-use StackConfig (linux-omp path, small thread count)
  /// with the schedule policy and detector applied.
  core::StackConfig stack(int num_threads = 4) const;
  /// Apply just the schedule/detector knobs to an existing config.
  void apply(core::StackConfig& cfg) const;
  /// A raw engine for osal-level scenarios.
  std::unique_ptr<sim::Engine> make_engine(std::uint64_t rng_seed = 42) const;
};

/// Pull the detector's reports out of an engine (empty if disabled).
std::vector<std::string> collect_races(sim::Engine& engine);

struct Scenario {
  std::string name;
  std::function<Outcome(const FuzzConfig&)> run;
};

/// The standard sweep set: osal primitives, komp barrier / locks /
/// worksharing / tasking, EPCC sync+task (small), NAS CG/IS class S.
std::vector<Scenario> default_scenarios();
/// The subset touching the komp runtime and NAS kernels (the
/// acceptance sweep: cheap enough for many seeds).
std::vector<Scenario> core_scenarios();
/// Test fixture: a shared balance updated *after* the lock protecting
/// it is released.  The detector must name the racy pair on any seed.
Scenario buggy_unlock_scenario();
/// Look up a scenario by name in a list (nullptr if absent).
const Scenario* find_scenario(const std::vector<Scenario>& list,
                              const std::string& name);

struct Options {
  std::uint64_t seed_begin = 1;
  /// Seeds swept per (scenario, policy) pair.
  int seeds_per_policy = 8;
  std::vector<sim::SchedPolicy> policies = {sim::SchedPolicy::kRandom,
                                            sim::SchedPolicy::kPct};
  bool racecheck = true;
  bool stop_on_failure = true;
};

struct Failure {
  std::string scenario;
  sim::SchedConfig sched;
  Verdict verdict = Verdict::kOk;
  std::string detail;
  /// The exact CLI invocation that reproduces this run.
  std::string replay() const;
};

struct Report {
  int runs = 0;  // schedule seeds executed
  std::vector<Failure> failures;
  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

/// One deterministic run: same (scenario, sched) => same verdict.
Failure run_one(const Scenario& scenario, sim::SchedConfig sched,
                bool racecheck = true);

/// seeds x policies x scenarios; first failure per scenario is kept.
Report sweep(const std::vector<Scenario>& scenarios, const Options& opt);

/// Regression list: one "scenario policy seed" triple per line ('#'
/// starts a comment).  Unknown scenario names are reported as failures
/// (a renamed scenario must not silently drop its pinned seeds).
struct RegressionEntry {
  std::string scenario;
  sim::SchedConfig sched;
};
std::vector<RegressionEntry> load_regressions(const std::string& path);
Report replay_regressions(const std::vector<Scenario>& scenarios,
                          const std::string& path, bool racecheck = true);

}  // namespace kop::harness::schedfuzz
