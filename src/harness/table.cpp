#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace kop::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::seconds(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fs", v);
  return buf;
}

namespace {
void append_csv_field(std::ostringstream& oss, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    oss << s;
    return;
  }
  oss << '"';
  for (char c : s) {
    if (c == '"') oss << '"';
    oss << c;
  }
  oss << '"';
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) oss << ',';
      append_csv_field(oss, c < cells.size() ? cells[c] : "");
    }
    oss << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      oss << "  ";
      oss << cells[c];
      oss << std::string(width[c] - cells[c].size(), ' ');
    }
    oss << "\n";
  };
  emit(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule.push_back(std::string(width[c], '-'));
  emit(rule);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

}  // namespace kop::harness
