// Minimal aligned-table printer for the figure reproductions.
#pragma once

#include <string>
#include <vector>

namespace kop::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;
  /// RFC-4180-style CSV (quotes fields containing commas/quotes), for
  /// piping figure data into plotting tools.
  std::string to_csv() const;

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string seconds(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kop::harness
