#include "hw/cost_params.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace kop::hw {

namespace {

// Scalable fields of OsCosts.  Booleans, enums and the personality
// string are structural switches, not calibration knobs, so they are
// deliberately not override-able.
struct Field {
  const char* name;
  // Multiplies the field by `scale`, rounding times to whole ns.
  void (*apply)(OsCosts&, double);
};

void scale_time(sim::Time& t, double s) {
  if (t == sim::kTimeNever) return;  // "never" stays never at any scale
  const double v = static_cast<double>(t) * s;
  t = static_cast<sim::Time>(std::llround(v));
}

constexpr Field kFields[] = {
    {"minor_fault_ns", [](OsCosts& c, double s) { scale_time(c.minor_fault_ns, s); }},
    {"thp_2m_fraction", [](OsCosts& c, double s) { c.thp_2m_fraction = std::min(1.0, c.thp_2m_fraction * s); }},
    {"syscall_ns", [](OsCosts& c, double s) { scale_time(c.syscall_ns, s); }},
    {"context_switch_ns", [](OsCosts& c, double s) { scale_time(c.context_switch_ns, s); }},
    {"thread_create_ns", [](OsCosts& c, double s) { scale_time(c.thread_create_ns, s); }},
    {"wake_latency_ns", [](OsCosts& c, double s) { scale_time(c.wake_latency_ns, s); }},
    {"wake_cv", [](OsCosts& c, double s) { c.wake_cv *= s; }},
    {"tick_period_ns", [](OsCosts& c, double s) { scale_time(c.tick_period_ns, s); }},
    {"tick_cost_ns", [](OsCosts& c, double s) { scale_time(c.tick_cost_ns, s); }},
    {"noise_rate_hz", [](OsCosts& c, double s) { c.noise_rate_hz *= s; }},
    {"noise_mean_ns", [](OsCosts& c, double s) { scale_time(c.noise_mean_ns, s); }},
    {"noise_cv", [](OsCosts& c, double s) { c.noise_cv *= s; }},
    {"timeslice_ns", [](OsCosts& c, double s) { scale_time(c.timeslice_ns, s); }},
    {"competing_load", [](OsCosts& c, double s) { c.competing_load *= s; }},
    {"alloc_base_ns", [](OsCosts& c, double s) { scale_time(c.alloc_base_ns, s); }},
    {"compute_inflation", [](OsCosts& c, double s) { c.compute_inflation *= s; }},
};

const Field* find_field(const std::string& name) {
  for (const Field& f : kFields) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

// Active overrides: "personality.field" -> scale.  Ordered map so the
// application order (and thus float rounding) is deterministic.
std::map<std::string, double>& overrides() {
  static std::map<std::string, double> o;
  return o;
}

}  // namespace

void set_cost_scale(const std::string& key, double scale) {
  const auto dot = key.find('.');
  const std::string personality = key.substr(0, dot);
  if (dot == std::string::npos ||
      (personality != "linux" && personality != "nautilus") ||
      find_field(key.substr(dot + 1)) == nullptr) {
    throw std::invalid_argument("unknown cost parameter: " + key +
                                " (expected <linux|nautilus>.<field>)");
  }
  if (!(scale > 0.0) || !std::isfinite(scale))
    throw std::invalid_argument("cost scale must be finite and > 0");
  if (scale == 1.0) {
    overrides().erase(key);
  } else {
    overrides()[key] = scale;
  }
}

void clear_cost_scales() { overrides().clear(); }

std::vector<std::string> cost_param_names() {
  std::vector<std::string> names;
  for (const char* p : {"linux", "nautilus"}) {
    for (const Field& f : kFields) {
      names.push_back(std::string(p) + "." + f.name);
    }
  }
  return names;
}

bool is_cost_field(const std::string& field) {
  return find_field(field) != nullptr;
}

void apply_cost_scale(OsCosts& c, const std::string& field, double scale) {
  const Field* f = find_field(field);
  if (f == nullptr)
    throw std::invalid_argument("unknown cost field: " + field);
  if (!(scale > 0.0) || !std::isfinite(scale))
    throw std::invalid_argument("cost scale must be finite and > 0");
  f->apply(c, scale);
}

void apply_cost_overrides(OsCosts& c) {
  if (overrides().empty()) return;
  const std::string prefix = c.personality + ".";
  for (const auto& [key, scale] : overrides()) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    find_field(key.substr(prefix.size()))->apply(c, scale);
  }
}

}  // namespace kop::hw
