// Per-OS-personality cost parameters.
//
// These constants are the calibration surface of the whole reproduction:
// every Linux-vs-kernel performance difference the paper reports flows
// from the differences between linux_costs() and nautilus_costs().
// Provenance notes are attached to each default.  EXPERIMENTS.md records
// how the calibrated values map onto the paper's measurements.
#pragma once

#include <string>
#include <vector>

#include "hw/memory.hpp"
#include "hw/topology.hpp"
#include "sim/time.hpp"

namespace kop::hw {

struct OsCosts {
  std::string personality;  // "linux", "nautilus"

  // --- paging ---
  /// Demand paging: anonymous memory faults on first touch (Linux).
  /// Nautilus identity-maps everything at boot: no faults, ever (§2.1).
  bool demand_paging = false;
  /// Cost of one minor fault (allocate + zero + map).  ~2-4us on Linux
  /// for 4K; THP faults cost more but amortize over 512x coverage.
  sim::Time minor_fault_ns = 2500;
  /// Fraction of a large anonymous allocation that THP=madvise manages
  /// to back with 2M pages; the rest stays 4K (alignment heads/tails,
  /// fragmentation).  Nautilus: not applicable (always large pages).
  double thp_2m_fraction = 0.0;
  /// Page size the OS maps memory with when not demand-paged
  /// (Nautilus: largest possible, §2.1).
  PageSize mapped_page_size = PageSize::k4K;

  // --- control transfers ---
  /// User->kernel->user syscall round trip (Linux, with mitigations).
  /// PIK's same-privilege, same-address-space "syscall" is far cheaper.
  sim::Time syscall_ns = 450;
  /// Thread context switch (save/restore, runqueue ops, [Linux] paging
  /// structures).
  sim::Time context_switch_ns = 1200;
  /// Kernel-side cost of creating a thread.
  sim::Time thread_create_ns = 12'000;

  // --- blocking wake latency (futex on Linux; direct scheduler poke in
  // the kernel).  Applied when a sleeping (not spinning) thread is
  // woken; cv models the jitter of the wake path. ---
  sim::Time wake_latency_ns = 3500;
  double wake_cv = 0.40;

  // --- periodic interference while a CPU is busy ---
  /// Scheduler-tick period while a runnable task occupies the CPU
  /// (both kernels are "tickless" when idle, not when busy).
  sim::Time tick_period_ns = sim::kMillisecond;
  /// CPU time stolen per tick.  Nautilus's one-shot LAPIC path with
  /// deterministic handlers is much cheaper than Linux's tick work.
  sim::Time tick_cost_ns = 2000;
  /// Asynchronous OS noise (daemons, RCU, IRQs steered to this CPU):
  /// mean events per second per busy CPU, mean stolen time per event,
  /// and jitter.  Nautilus steers interrupts away and runs nothing
  /// else: effectively zero (§2.1, §6.2 "greatly diminished OS noise").
  double noise_rate_hz = 0.0;
  sim::Time noise_mean_ns = 0;
  double noise_cv = 1.0;

  // --- scheduling ---
  /// Preemption timeslice when CPUs are oversubscribed (Linux CFS-ish).
  /// Kernel threads in Nautilus cooperate; slice is effectively infinite.
  sim::Time timeslice_ns = 6 * sim::kMillisecond;
  /// Competing runnable threads per CPU (Linux background load).  The
  /// paper stresses Nautilus has "precisely zero competitive
  /// threads/processes" (§6.2).
  double competing_load = 0.0;

  // --- memory allocation path ---
  /// Fixed cost of a large allocation request (mmap vs buddy).
  sim::Time alloc_base_ns = 2000;
  /// Whether allocation placement is NUMA-cognizant at allocation time
  /// (Nautilus buddy per-zone) or deferred to first touch (Linux).
  bool numa_aware_alloc = false;

  /// Code-generation penalty of compiling without x64 red-zone support
  /// (§3.1: kernel-linked code must not use the red zone; leaf
  /// functions lose a small amount of performance).  Multiplies the
  /// compute portion of work blocks.  PIK keeps the red zone (IST
  /// trampoline on interrupts instead, §4.2) so it stays at 1.0.
  double compute_inflation = 1.0;
};

/// --- Calibration override surface (bisection) -------------------------
///
/// The bisection driver (examples/kop_bisect) perturbs one calibrated
/// constant at a time to find where the paper's shapes break.  Overrides
/// are multiplicative scales keyed "personality.field" (e.g.
/// "linux.minor_fault_ns"); they are applied inside linux_costs() /
/// nautilus_costs(), *before* the values are serialized into
/// cost_model_fingerprint() -- so every cache key automatically moves
/// with the override and stale entries can never be served.
///
/// Set a scale of 1.0 (or clear) to restore defaults.  Not thread-safe:
/// configure before launching a JobRunner sweep.

/// Multiply parameter `key` by `scale` in all subsequently constructed
/// OsCosts.  Throws std::invalid_argument for an unknown key.
void set_cost_scale(const std::string& key, double scale);
/// Drop all active overrides.
void clear_cost_scales();
/// Every valid override key, sorted ("linux.*" then "nautilus.*").
std::vector<std::string> cost_param_names();
/// Applies active overrides for `c.personality` in place.  Called by the
/// factories below; not usually called directly.
void apply_cost_overrides(OsCosts& c);

/// --- Late binding (checkpointed sweeps) -------------------------------
///
/// Per-point overrides must not go through the global registry above --
/// concurrent JobRunner workers would race on it and cross-contaminate
/// points.  Instead a sweep applies its scale directly to one stack's
/// already-built cost sheet at the warmup/measurement boundary
/// (osal::Os::rebind_costs), in both cold and checkpointed runs.

/// True iff `field` names a scalable OsCosts field (the per-personality
/// field set cost_param_names() enumerates).
bool is_cost_field(const std::string& field);
/// Multiply one field of `c` by `scale` in place.  Throws
/// std::invalid_argument for an unknown field or a non-positive scale.
void apply_cost_scale(OsCosts& c, const std::string& field, double scale);

/// Linux 5.x, CentOS/Ubuntu, huge pages on, THP=madvise (paper §2.2).
inline OsCosts linux_costs(const MachineConfig& m) {
  OsCosts c;
  c.personality = "linux";
  c.demand_paging = true;
  c.minor_fault_ns = (m.name == "phi") ? 6000 : 2500;  // slow Phi cores
  c.thp_2m_fraction = 0.80;
  c.mapped_page_size = PageSize::k2M;  // what THP gives when it works
  c.syscall_ns = (m.name == "phi") ? 1400 : 450;
  c.context_switch_ns = (m.name == "phi") ? 4200 : 1300;
  c.thread_create_ns = (m.name == "phi") ? 45'000 : 14'000;
  c.wake_latency_ns = (m.name == "phi") ? 9000 : 3000;
  c.wake_cv = 0.45;
  c.tick_period_ns = 4 * sim::kMillisecond;  // CONFIG_HZ=250
  c.tick_cost_ns = (m.name == "phi") ? 7000 : 2200;
  // OS noise (kworkers, RCU, IRQs, cpuidle transitions).  The slow
  // in-order Phi cores lose far more overall; the aggregate fraction
  // is calibrated against the compute-bound EP gains (~5% on PHI, ~1%
  // on 8XEON, Figs. 9/14), spread over frequent small events.
  c.noise_rate_hz = (m.name == "phi") ? 2000.0 : 800.0;
  c.noise_mean_ns = (m.name == "phi") ? 28'000 : 15'000;
  c.noise_cv = 1.0;
  c.timeslice_ns = 6 * sim::kMillisecond;
  c.alloc_base_ns = 3000;
  c.numa_aware_alloc = false;  // first-touch policy
  apply_cost_overrides(c);
  return c;
}

/// Nautilus HRT environment (paper §2.1): identity-mapped largest-size
/// pages, no faults, steered interrupts, buddy-per-zone allocation.
inline OsCosts nautilus_costs(const MachineConfig& m) {
  OsCosts c;
  c.personality = "nautilus";
  c.demand_paging = false;
  c.thp_2m_fraction = 0.0;
  c.mapped_page_size = PageSize::k1G;
  c.syscall_ns = 0;  // there are no syscalls in RTK: direct calls
  c.context_switch_ns = (m.name == "phi") ? 1100 : 400;
  c.thread_create_ns = (m.name == "phi") ? 6000 : 2500;
  c.wake_latency_ns = (m.name == "phi") ? 2500 : 900;
  c.wake_cv = 0.10;
  c.tick_period_ns = sim::kTimeNever;  // one-shot timer, no periodic tick
  c.tick_cost_ns = 0;
  c.noise_rate_hz = 0.0;
  c.noise_mean_ns = 0;
  c.timeslice_ns = sim::kTimeNever;  // cooperative kernel threads
  c.alloc_base_ns = 900;  // buddy allocator hit
  c.numa_aware_alloc = true;
  c.compute_inflation = 1.01;  // -mno-red-zone code generation
  apply_cost_overrides(c);
  return c;
}

}  // namespace kop::hw
