#include "hw/cpu.hpp"

#include <algorithm>

namespace kop::hw {

void Cpu::acquire() {
  if (!held_ && wait_queue_.empty()) {
    held_ = true;
    return;
  }
  // FIFO with direct handoff: release() transfers ownership to the
  // woken waiter, so the releaser cannot barge back in front of it.
  wait_queue_.push_back(engine_->arm_wake_token());
  engine_->block();
  // Woken by release(): we own the CPU now (held_ stayed true).
}

void Cpu::release() {
  if (!wait_queue_.empty()) {
    sim::WakeToken next = wait_queue_.front();
    wait_queue_.pop_front();
    engine_->wake_token_at(next, engine_->now());
    return;  // ownership passed to the woken thread
  }
  held_ = false;
}

void Cpu::occupy(sim::Time duration) {
  if (duration <= 0) return;
  sim::Time remaining = duration;
  acquire();
  while (remaining > 0) {
    const bool sliced = timeslice_ns_ != sim::kTimeNever && timeslice_ns_ > 0;
    const sim::Time slice =
        sliced ? std::min(remaining, timeslice_ns_) : remaining;
    engine_->sleep_for(slice);
    busy_time_ += slice;
    remaining -= slice;
    if (remaining > 0 && !wait_queue_.empty()) {
      // Preempted: pay a context switch, go to the back of the queue.
      if (counters_) {
        counters_->add_on(id_, telemetry::Counter::kCpuPreemptions);
        counters_->add_on(id_, telemetry::Counter::kContextSwitches, 2);
      }
      engine_->sleep_for(context_switch_ns_);
      busy_time_ += context_switch_ns_;
      release();
      acquire();
      engine_->sleep_for(context_switch_ns_);
      busy_time_ += context_switch_ns_;
    }
  }
  release();
}

}  // namespace kop::hw
