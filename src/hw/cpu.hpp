// A simulated CPU as an exclusive, FIFO-queued time resource.
//
// Both OS models funnel thread execution through Cpu::occupy(): if the
// CPU is free the calling sim-thread holds it for the duration; if not,
// the caller queues.  When a timeslice is configured (Linux) long
// occupations are chopped into slices and requeued behind waiters,
// charging a context switch each preemption -- which is how
// oversubscription and competing background load degrade Linux runs.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "telemetry/counters.hpp"

namespace kop::hw {

class Cpu {
 public:
  Cpu(sim::Engine& engine, int id, sim::Time timeslice_ns,
      sim::Time context_switch_ns,
      telemetry::CounterFabric* counters = nullptr)
      : engine_(&engine),
        id_(id),
        timeslice_ns_(timeslice_ns),
        context_switch_ns_(context_switch_ns),
        counters_(counters) {}

  int id() const { return id_; }

  /// Execute for `duration` of CPU time on this CPU, queueing and
  /// timeslicing as needed.  Must be called from a sim thread.
  void occupy(sim::Time duration);

  /// Busy virtual time accumulated (for utilization reports).
  sim::Time busy_time() const { return busy_time_; }

  /// Number of threads currently waiting for this CPU.
  std::size_t waiters() const { return wait_queue_.size(); }

  bool held() const { return held_; }

  /// Rebind the scheduling parameters (checkpoint late binding); takes
  /// effect from the next occupy() slice.
  void set_sched_costs(sim::Time timeslice_ns, sim::Time context_switch_ns) {
    timeslice_ns_ = timeslice_ns;
    context_switch_ns_ = context_switch_ns;
  }

 private:
  void acquire();
  void release();

  sim::Engine* engine_;
  int id_;
  sim::Time timeslice_ns_;
  sim::Time context_switch_ns_;
  telemetry::CounterFabric* counters_;
  bool held_ = false;
  std::deque<sim::WakeToken> wait_queue_;
  sim::Time busy_time_ = 0;
};

}  // namespace kop::hw
