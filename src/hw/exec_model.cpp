#include "hw/exec_model.hpp"

#include <algorithm>
#include <cmath>

namespace kop::hw {

BlockCharge ExecModel::charge(const WorkBlock& block, int cpu, int data_zone,
                              sim::Rng& rng) const {
  BlockCharge out;
  const double mem_frac = std::clamp(block.mem_fraction, 0.0, 1.0);
  // Nominal time is calibrated on the reference core; faster machines
  // divide it down, and no-red-zone code generation inflates the
  // compute portion.
  const double nominal =
      static_cast<double>(block.cpu_ns) / machine_.perf_factor;
  out.compute_ns = static_cast<sim::Time>(nominal * (1.0 - mem_frac) *
                                          costs_.compute_inflation);
  sim::Time mem_base = static_cast<sim::Time>(nominal * mem_frac);

  if (block.region != nullptr && mem_base > 0) {
    // NUMA placement penalty.
    const int cpu_zone = machine_.zone_of_cpu(cpu);
    int zone = data_zone >= 0 ? data_zone : block.region->home_zone();
    if (zone < 0) zone = cpu_zone;  // sliced without override: assume local
    double penalty = machine_.numa_penalty(cpu_zone, zone);
    const double mix = block.region->remote_mix();
    if (mix > 0.0) {
      // A slice of the region's pages sits on other nodes regardless
      // of policy; blend in the average remote latency.
      double remote_sum = 0.0;
      int remote_n = 0;
      for (const auto& z : machine_.zones) {
        if (z.kind != ZoneKind::kDram || z.id == cpu_zone) continue;
        remote_sum += machine_.numa_penalty(cpu_zone, z.id);
        ++remote_n;
      }
      if (remote_n > 0)
        penalty = (1.0 - mix) * penalty + mix * (remote_sum / remote_n);
    }
    out.memory_ns =
        static_cast<sim::Time>(static_cast<double>(mem_base) * penalty);

    // Translation stalls: one memory access per cacheline touched.
    const TranslationCost tc = translation_cost(
        machine_.tlb, *block.region, block.working_set_bytes, block.pattern);
    const double accesses = static_cast<double>(block.bytes_touched) / 64.0;
    const double misses = accesses * tc.tlb_miss_rate;
    out.tlb_ns = static_cast<sim::Time>(
        misses * static_cast<double>(machine_.tlb.miss_walk_ns));
    out.tlb_misses = static_cast<std::uint64_t>(misses);

    // Demand-paging faults on first touch.
    if (costs_.demand_paging) {
      const std::uint64_t faults = block.region->touch_new(block.bytes_touched);
      out.fault_ns = static_cast<sim::Time>(faults) * costs_.minor_fault_ns;
      out.fault_count = faults;
    }
  } else {
    out.memory_ns = mem_base;
  }

  const sim::Time busy = out.compute_ns + out.memory_ns + out.tlb_ns + out.fault_ns;

  // Periodic tick interference while busy.
  if (costs_.tick_period_ns != sim::kTimeNever && costs_.tick_period_ns > 0 &&
      costs_.tick_cost_ns > 0) {
    const double ticks = static_cast<double>(busy) /
                         static_cast<double>(costs_.tick_period_ns);
    out.tick_ns = static_cast<sim::Time>(ticks * static_cast<double>(costs_.tick_cost_ns));
    out.tick_count = static_cast<std::uint64_t>(ticks);
  }

  // Asynchronous noise: expected stolen time over the interval with
  // lognormal jitter; small intervals see occasional large events,
  // which is exactly the jitter the EPCC variance columns show.
  if (costs_.noise_rate_hz > 0.0 && costs_.noise_mean_ns > 0) {
    const double expected_events =
        costs_.noise_rate_hz * sim::to_seconds(busy);
    double stolen = 0.0;
    if (expected_events >= 8.0) {
      // Long block: law of large numbers, jitter the aggregate.
      stolen = rng.lognormal_mean_cv(
          expected_events * static_cast<double>(costs_.noise_mean_ns), 0.05);
      out.noise_events = static_cast<std::uint64_t>(expected_events);
    } else {
      // Short block: draw discrete events.
      const double lam = expected_events;
      // Poisson via exponential gaps (lam is tiny here).
      double t = rng.exponential(1.0);
      while (t < lam) {
        stolen += rng.lognormal_mean_cv(
            static_cast<double>(costs_.noise_mean_ns), costs_.noise_cv);
        t += rng.exponential(1.0);
        ++out.noise_events;
      }
    }
    out.noise_ns = static_cast<sim::Time>(stolen);
  }

  return out;
}

}  // namespace kop::hw
