// Converts WorkBlocks into effective virtual durations under a given
// machine + OS personality.  This is where the paper's §6.2 effects are
// realized: page faults, TLB misses, NUMA placement penalties, timer
// ticks and OS noise all inflate the nominal compute time.
#pragma once

#include <cstdint>

#include "hw/cost_params.hpp"
#include "hw/memory.hpp"
#include "hw/topology.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace kop::hw {

/// Breakdown of one block's effective duration (for tests and traces).
/// The *_count fields are the discrete events behind each charge so the
/// telemetry fabric can report §6.2-style counters, not just times.
struct BlockCharge {
  sim::Time compute_ns = 0;      // nominal compute (non-mem part)
  sim::Time memory_ns = 0;       // memory-bound part after NUMA scaling
  sim::Time tlb_ns = 0;          // translation stalls
  sim::Time fault_ns = 0;        // demand-paging faults
  sim::Time tick_ns = 0;         // periodic tick interference
  sim::Time noise_ns = 0;        // asynchronous OS noise
  std::uint64_t fault_count = 0;  // demand-paging faults taken
  std::uint64_t tlb_misses = 0;   // modelled TLB misses (walks)
  std::uint64_t tick_count = 0;   // timer interrupts during the block
  std::uint64_t noise_events = 0; // discrete noise preemptions
  sim::Time total() const {
    return compute_ns + memory_ns + tlb_ns + fault_ns + tick_ns + noise_ns;
  }
};

class ExecModel {
 public:
  /// Stores copies: an ExecModel may outlive the arguments it was
  /// built from (cost sheets are often built inline).
  ExecModel(MachineConfig machine, OsCosts costs)
      : machine_(std::move(machine)), costs_(std::move(costs)) {}

  const MachineConfig& machine() const { return machine_; }
  const OsCosts& costs() const { return costs_; }

  /// Cost of executing `block` on `cpu`.  `data_zone` overrides the
  /// region's home zone when the caller knows which slice is touched
  /// (-1: derive from the region).  Mutates the region's fault
  /// bookkeeping.  `rng` drives the stochastic noise terms.
  BlockCharge charge(const WorkBlock& block, int cpu, int data_zone,
                     sim::Rng& rng) const;

 private:
  MachineConfig machine_;
  OsCosts costs_;
};

}  // namespace kop::hw
