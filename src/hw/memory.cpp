#include "hw/memory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace kop::hw {

int MemRegion::zone_for_partition(int part, int nparts) const {
  if (!is_sliced()) return home_zone_;
  if (nparts <= 0) throw std::invalid_argument("zone_for_partition: nparts <= 0");
  const auto n = static_cast<std::uint64_t>(slice_zones_.size());
  const auto idx = static_cast<std::uint64_t>(part) * n / static_cast<std::uint64_t>(nparts);
  return slice_zones_[static_cast<std::size_t>(std::min(idx, n - 1))];
}

bool MemRegion::next_touch_claim(int slice, int nslices) {
  if (!next_touch_armed_) return false;
  if (slice < 0 || nslices <= 0 || slice >= nslices) return false;
  if (next_touch_done_.size() != static_cast<std::size_t>(nslices))
    next_touch_done_.assign(static_cast<std::size_t>(nslices), 0);
  auto& done = next_touch_done_[static_cast<std::size_t>(slice)];
  if (done) return false;
  done = 1;
  return true;
}

std::uint64_t MemRegion::touch_new(std::uint64_t bytes) {
  if (!demand_paged_) return 0;
  const std::uint64_t before = faulted_bytes_;
  faulted_bytes_ = std::min(bytes_, faulted_bytes_ + bytes);
  const std::uint64_t newly = faulted_bytes_ - before;
  if (newly == 0) return 0;
  // Faults happen at the granularity of the *backing* pages: mostly the
  // THP size, with the small-page residue faulting 4K at a time.
  const double pg = static_cast<double>(bytes_of(page_size_));
  const double big_pages = static_cast<double>(newly) * (1.0 - small_page_fraction_) / pg;
  const double small_pages =
      static_cast<double>(newly) * small_page_fraction_ / static_cast<double>(bytes_of(PageSize::k4K));
  return static_cast<std::uint64_t>(std::ceil(big_pages + small_pages));
}

namespace {

double pattern_factor(AccessPattern p, PageSize page) {
  switch (p) {
    case AccessPattern::kStreaming:
      // Sequential sweeps take one miss per page, i.e. one miss per
      // page/64B accesses.
      return 64.0 / static_cast<double>(bytes_of(page));
    case AccessPattern::kRandom:
      return 1.0;
    case AccessPattern::kBlocked:
      // Tiled kernels revisit each tile many times; misses amortize.
      return 0.05;
  }
  return 1.0;
}

double miss_rate_for(int entries, PageSize page, std::uint64_t working_set,
                     AccessPattern pattern) {
  if (working_set == 0) return 0.0;
  const double reach = static_cast<double>(entries) * static_cast<double>(bytes_of(page));
  const double covered = std::min(1.0, reach / static_cast<double>(working_set));
  return (1.0 - covered) * pattern_factor(pattern, page);
}

}  // namespace

TranslationCost translation_cost(const TlbConfig& tlb, const MemRegion& region,
                                 std::uint64_t working_set_bytes,
                                 AccessPattern pattern) {
  TranslationCost out;
  if (working_set_bytes == 0) return out;

  const double small_frac = region.small_page_fraction();
  const auto ws_small =
      static_cast<std::uint64_t>(static_cast<double>(working_set_bytes) * small_frac);
  const std::uint64_t ws_big = working_set_bytes - ws_small;

  int big_entries = tlb.entries_2m;
  PageSize big_page = region.page_size();
  if (big_page == PageSize::k1G) big_entries = tlb.entries_1g;
  if (big_page == PageSize::k4K) {
    // Whole region on small pages.
    out.tlb_miss_rate = miss_rate_for(tlb.entries_4k, PageSize::k4K,
                                      working_set_bytes, pattern);
  } else {
    const double big_rate = miss_rate_for(big_entries, big_page, ws_big, pattern);
    const double small_rate =
        miss_rate_for(tlb.entries_4k, PageSize::k4K, ws_small, pattern);
    out.tlb_miss_rate = big_rate * (1.0 - small_frac) + small_rate * small_frac;
  }
  out.stall_per_access_ns = static_cast<sim::Time>(
      out.tlb_miss_rate * static_cast<double>(tlb.miss_walk_ns));
  return out;
}

}  // namespace kop::hw
