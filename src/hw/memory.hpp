// Memory regions and the address-translation cost model.
//
// A MemRegion stands for one logical allocation of a simulated program
// (e.g., one of a NAS benchmark's global arrays).  The OS substrate
// decides its page size, NUMA placement (possibly striped), and whether
// it is demand-paged; the execution engine then charges TLB-miss and
// page-fault time when work blocks touch it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/topology.hpp"
#include "sim/time.hpp"

namespace kop::hw {

enum class PageSize : std::uint64_t {
  k4K = 4ULL * 1024,
  k2M = 2ULL * 1024 * 1024,
  k1G = 1024ULL * 1024 * 1024,
};

constexpr std::uint64_t bytes_of(PageSize p) { return static_cast<std::uint64_t>(p); }

/// How a work block walks a region; drives the TLB model.
enum class AccessPattern {
  kStreaming,  // sequential sweep: ~1 TLB miss per page not covered
  kRandom,     // uniform random touches over the working set
  kBlocked,    // cache/TLB-blocked tiles: strong reuse, few misses
};

/// One logical allocation.  NUMA placement may be a single zone or a
/// per-slice assignment (first-touch / interleave produce slices).
class MemRegion {
 public:
  MemRegion(std::string name, std::uint64_t bytes)
      : name_(std::move(name)), bytes_(bytes) {}

  const std::string& name() const { return name_; }
  std::uint64_t bytes() const { return bytes_; }

  PageSize page_size() const { return page_size_; }
  void set_page_size(PageSize p) { page_size_ = p; }

  /// Fraction of the region that ended up on 4K pages despite THP
  /// (Linux with `madvise` leaves unaligned heads/tails and
  /// fragmentation residue on small pages; identity-mapped kernels
  /// have none).
  double small_page_fraction() const { return small_page_fraction_; }
  void set_small_page_fraction(double f) { small_page_fraction_ = f; }

  bool demand_paged() const { return demand_paged_; }
  void set_demand_paged(bool v) { demand_paged_ = v; }

  /// Fraction of the region's pages that ended up on the *wrong* NUMA
  /// node despite the placement policy (khugepaged collapse, automatic
  /// NUMA balancing, reclaim).  Applied as a smooth mix into the
  /// access-latency multiplier; exact kernel allocators keep 0.
  double remote_mix() const { return remote_mix_; }
  void set_remote_mix(double m) { remote_mix_ = m; }

  /// Zone placement: single home zone, or -1 if sliced.
  int home_zone() const { return home_zone_; }
  void set_home_zone(int z) { home_zone_ = z; slice_zones_.clear(); }

  /// Striped placement: slice i of n covers bytes [i*B/n,(i+1)*B/n).
  void set_slice_zones(std::vector<int> zones) { slice_zones_ = std::move(zones); home_zone_ = -1; }
  const std::vector<int>& slice_zones() const { return slice_zones_; }
  bool is_sliced() const { return !slice_zones_.empty(); }

  /// Zone holding the slice a CPU working on partition `part` of
  /// `nparts` equal partitions would touch.
  int zone_for_partition(int part, int nparts) const;

  /// --- demand-paging bookkeeping (reset per process run) ---
  std::uint64_t faulted_bytes() const { return faulted_bytes_; }
  /// Record that `bytes` previously-untouched bytes were touched;
  /// returns the number of *new pages* faulted in (0 if not demand
  /// paged or already fully resident).
  std::uint64_t touch_new(std::uint64_t bytes);
  void reset_faults() { faulted_bytes_ = 0; }

  /// --- migration-on-next-touch ---
  /// Arm the region: the next access to each slice re-homes it to the
  /// toucher's preferred DRAM zone (the OS substrate performs the
  /// re-homing when it resolves the toucher's zone).  Mirrors Solaris/
  /// ForestGOMP `madvise(MADV_ACCESS_LWP)`-style next-touch migration.
  void arm_next_touch() {
    next_touch_armed_ = true;
    next_touch_done_.clear();
  }
  void disarm_next_touch() { next_touch_armed_ = false; }
  bool next_touch_armed() const { return next_touch_armed_; }
  /// One-shot claim: true exactly once per slice while armed -- the
  /// caller then applies next-touch placement for that slice.  Each
  /// slice migrates at most once per arming (no ping-pong between
  /// touchers).
  bool next_touch_claim(int slice, int nslices);

  /// --- placement-quality bookkeeping (touch accounting) ---
  /// Record one resolved touch of a slice whose home was `zone` by a
  /// toucher preferring `preferred_zone`.
  void record_touch(int zone, int preferred_zone) {
    ++touches_;
    if (zone != preferred_zone) ++misplaced_touches_;
  }
  void reset_touch_stats() { touches_ = misplaced_touches_ = 0; }
  std::uint64_t touches() const { return touches_; }
  /// Fraction of recorded touches that landed on a remote zone
  /// (0 when nothing was recorded).
  double misplaced_fraction() const {
    return touches_ == 0 ? 0.0
                         : static_cast<double>(misplaced_touches_) /
                               static_cast<double>(touches_);
  }

 private:
  std::string name_;
  std::uint64_t bytes_;
  PageSize page_size_ = PageSize::k4K;
  double small_page_fraction_ = 0.0;
  double remote_mix_ = 0.0;
  bool demand_paged_ = false;
  int home_zone_ = 0;
  std::vector<int> slice_zones_;
  std::uint64_t faulted_bytes_ = 0;
  bool next_touch_armed_ = false;
  std::vector<std::uint8_t> next_touch_done_;
  std::uint64_t touches_ = 0;
  std::uint64_t misplaced_touches_ = 0;
};

/// Result of the translation model for one work block.
struct TranslationCost {
  double tlb_miss_rate = 0.0;  // misses per memory access
  sim::Time stall_per_access_ns = 0;
};

/// Estimate the TLB behaviour of touching a working set of
/// `working_set_bytes` from `region` with the given pattern on a
/// machine with `tlb` capacities.  The model:
///   reach = entries(page size) * page bytes (per page-size class)
///   covered = min(1, reach / working_set)
///   miss probability per access = (1 - covered) * pattern_factor
/// where pattern_factor reflects reuse (streaming ~ 64B/page per
/// access, random ~ full probability, blocked ~ heavy reuse).
TranslationCost translation_cost(const TlbConfig& tlb, const MemRegion& region,
                                 std::uint64_t working_set_bytes,
                                 AccessPattern pattern);

/// One contiguous chunk of simulated execution, produced by the
/// runtimes when they run application code.  The OS execution context
/// turns this into virtual time.
struct WorkBlock {
  /// Pure-compute time at nominal core speed with all data in cache.
  sim::Time cpu_ns = 0;
  /// Fraction of cpu_ns that is memory-bound (subject to NUMA and
  /// translation multipliers).
  double mem_fraction = 0.0;
  /// Bytes of `region` this block touches (drives fault accounting).
  std::uint64_t bytes_touched = 0;
  /// Per-thread working set during the block (drives TLB model).
  std::uint64_t working_set_bytes = 0;
  AccessPattern pattern = AccessPattern::kStreaming;
  MemRegion* region = nullptr;  // may be null for pure compute
};

}  // namespace kop::hw
