#include "hw/topo_tree.hpp"

#include <algorithm>

namespace kop::hw {

TopoTree::TopoTree(const MachineConfig& machine) {
  machine.validate();
  num_cpus_ = machine.num_cpus;
  const auto nz = machine.zones.size();
  zone_cpus_.assign(nz, {});
  cpu_zone_.assign(static_cast<std::size_t>(num_cpus_), -1);
  for (const auto& z : machine.zones) {
    auto cpus = z.cpus;
    std::sort(cpus.begin(), cpus.end());
    for (int c : cpus) cpu_zone_[static_cast<std::size_t>(c)] = z.id;
    zone_cpus_[static_cast<std::size_t>(z.id)] = std::move(cpus);
  }
  zones_by_distance_.assign(nz, {});
  for (std::size_t from = 0; from < nz; ++from) {
    auto& order = zones_by_distance_[from];
    order.resize(nz);
    for (std::size_t i = 0; i < nz; ++i) order[i] = static_cast<int>(i);
    const int self = static_cast<int>(from);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      // The zone itself always sorts first, even if the matrix gives
      // some other zone an equal distance.
      if ((a == self) != (b == self)) return a == self;
      const int da = machine.distance(self, a);
      const int db = machine.distance(self, b);
      if (da != db) return da < db;
      return a < b;
    });
  }
}

}  // namespace kop::hw
