// Topology tree for hierarchical scheduling: the machine -> NUMA zone
// -> core hierarchy flattened into lookup tables that schedulers can
// walk deterministically.  ForestGOMP (Thibault et al.) maps nested
// "bubbles" of threads onto exactly this tree; here TaskPool shards and
// steal orders map onto it.
#pragma once

#include <vector>

#include "hw/topology.hpp"

namespace kop::hw {

/// Deterministic, immutable view of a MachineConfig as a three-level
/// tree (machine -> zone -> core).  All orderings are fixed by the
/// config (zone ids ascending, SLIT distance ascending with zone-id
/// tiebreak), so two TopoTrees built from the same MachineConfig are
/// identical -- a requirement for schedule-replay determinism.
class TopoTree {
 public:
  explicit TopoTree(const MachineConfig& machine);

  int num_zones() const { return static_cast<int>(zone_cpus_.size()); }
  int num_cpus() const { return num_cpus_; }

  /// Zone owning `cpu` (same as MachineConfig::zone_of_cpu, but O(1)).
  int zone_of_cpu(int cpu) const {
    return cpu_zone_.at(static_cast<std::size_t>(cpu));
  }

  /// CPUs local to `zone`, ascending (empty for CPU-less zones).
  const std::vector<int>& cpus_of_zone(int zone) const {
    return zone_cpus_.at(static_cast<std::size_t>(zone));
  }

  /// Every zone reachable from `zone`, nearest first: the zone itself,
  /// then the rest ascending by SLIT distance, ties broken by zone id.
  /// CPU-less zones are included (they can hold memory, not threads).
  const std::vector<int>& zones_by_distance(int zone) const {
    return zones_by_distance_.at(static_cast<std::size_t>(zone));
  }

 private:
  int num_cpus_ = 0;
  std::vector<int> cpu_zone_;                     // cpu -> zone id
  std::vector<std::vector<int>> zone_cpus_;       // zone -> local cpus
  std::vector<std::vector<int>> zones_by_distance_;
};

}  // namespace kop::hw
