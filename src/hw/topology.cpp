#include "hw/topology.hpp"

#include <stdexcept>

namespace kop::hw {

int MachineConfig::zone_of_cpu(int cpu) const {
  for (const auto& z : zones) {
    for (int c : z.cpus) {
      if (c == cpu) return z.id;
    }
  }
  throw std::out_of_range("MachineConfig: cpu " + std::to_string(cpu) +
                          " not in any zone on " + name);
}

int MachineConfig::distance(int from_zone, int to_zone) const {
  return zone_distance.at(static_cast<std::size_t>(from_zone))
      .at(static_cast<std::size_t>(to_zone));
}

double MachineConfig::numa_penalty(int cpu_zone, int mem_zone) const {
  // SLIT distances are scaled so that 10 == local.  A distance of 21
  // (typical remote socket) yields a 2.1x latency multiplier, which
  // matches measured local/remote DRAM ratios on Skylake-SP.
  return static_cast<double>(distance(cpu_zone, mem_zone)) / 10.0;
}

int MachineConfig::preferred_dram_zone(int cpu) const {
  const int cz = zone_of_cpu(cpu);
  int best = -1;
  int best_dist = 1 << 30;
  for (const auto& z : zones) {
    if (z.kind != ZoneKind::kDram) continue;
    const int d = distance(cz, z.id);
    if (d < best_dist) {
      best_dist = d;
      best = z.id;
    }
  }
  if (best < 0) throw std::logic_error("MachineConfig: no DRAM zone on " + name);
  return best;
}

void MachineConfig::validate() const {
  if (num_cpus <= 0) throw std::invalid_argument(name + ": num_cpus must be > 0");
  if (zones.empty()) throw std::invalid_argument(name + ": no NUMA zones");
  if (zone_distance.size() != zones.size())
    throw std::invalid_argument(name + ": distance matrix row count != zones");
  for (const auto& row : zone_distance) {
    if (row.size() != zones.size())
      throw std::invalid_argument(name + ": distance matrix not square");
  }
  // SLIT matrices are symmetric by construction (ACPI 5.2.17); an
  // asymmetric one would make the hierarchical steal order depend on
  // which end of the pair asks, so reject it outright.
  for (std::size_t i = 0; i < zone_distance.size(); ++i) {
    for (std::size_t j = i + 1; j < zone_distance.size(); ++j) {
      if (zone_distance[i][j] != zone_distance[j][i])
        throw std::invalid_argument(name + ": distance matrix asymmetric");
    }
  }
  std::vector<bool> seen(static_cast<std::size_t>(num_cpus), false);
  for (const auto& z : zones) {
    for (int c : z.cpus) {
      if (c < 0 || c >= num_cpus)
        throw std::invalid_argument(name + ": zone cpu out of range");
      if (seen[static_cast<std::size_t>(c)])
        throw std::invalid_argument(name + ": cpu in two zones");
      seen[static_cast<std::size_t>(c)] = true;
    }
  }
  for (int c = 0; c < num_cpus; ++c) {
    if (!seen[static_cast<std::size_t>(c)])
      throw std::invalid_argument(name + ": cpu not covered by any zone");
  }
}

MachineConfig phi() {
  MachineConfig m;
  m.name = "phi";
  m.num_cpus = 64;
  m.num_sockets = 1;
  m.cores_per_socket = 64;
  m.base_ghz = 1.3;

  NumaZone dram;
  dram.id = 0;
  dram.kind = ZoneKind::kDram;
  dram.bytes = 96ULL << 30;
  for (int c = 0; c < 64; ++c) dram.cpus.push_back(c);

  NumaZone mcdram;
  mcdram.id = 1;
  mcdram.kind = ZoneKind::kMcdram;
  mcdram.bytes = 16ULL << 30;
  // Flat mode: no CPUs local to MCDRAM; distance is high so a
  // NUMA-aware OS prefers DRAM (paper §2.2).

  m.zones = {dram, mcdram};
  m.zone_distance = {{10, 31}, {31, 10}};

  // Phi 7210: 64-entry L1 dTLB (4K), small 2M TLB, slow (in-order)
  // page walks -- translation overhead matters a lot on this machine.
  m.tlb.entries_4k = 64;
  m.tlb.entries_2m = 32;
  m.tlb.entries_1g = 4;
  m.tlb.miss_walk_ns = 180;
  m.cacheline_transfer_ns = 170;  // slow mesh
  m.copy_bytes_per_ns = 5.0;
  m.mem_latency_ns = 150;
  m.validate();
  return m;
}

MachineConfig xeon8() {
  MachineConfig m;
  m.name = "8xeon";
  m.num_cpus = 192;
  m.num_sockets = 8;
  m.cores_per_socket = 24;
  m.base_ghz = 2.1;

  m.zones.reserve(8);
  m.zone_distance.assign(8, std::vector<int>(8, 21));
  for (int s = 0; s < 8; ++s) {
    NumaZone z;
    z.id = s;
    z.kind = ZoneKind::kDram;
    z.bytes = 96ULL << 30;
    for (int c = 0; c < 24; ++c) z.cpus.push_back(s * 24 + c);
    m.zones.push_back(std::move(z));
    m.zone_distance[static_cast<std::size_t>(s)][static_cast<std::size_t>(s)] = 10;
  }

  // Skylake-SP: 64-entry L1 dTLB + 1536-entry STLB; fast walks.
  m.tlb.entries_4k = 1536;
  m.tlb.entries_2m = 1536;
  m.tlb.entries_1g = 16;
  m.tlb.miss_walk_ns = 60;
  m.cacheline_transfer_ns = 80;
  m.mem_latency_ns = 90;
  m.copy_bytes_per_ns = 12.0;
  // Skylake-SP at 2.1 GHz vs Phi's in-order 1.3 GHz: ~3.5x per core on
  // the NAS mix (paper t-value ratios run 1.8x-4.8x).
  m.perf_factor = 3.5;
  m.validate();
  return m;
}

MachineConfig machine_by_name(const std::string& name) {
  if (name == "phi") return phi();
  if (name == "8xeon") return xeon8();
  throw std::invalid_argument("unknown machine: " + name);
}

}  // namespace kop::hw
