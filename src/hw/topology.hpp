// Machine topology descriptions for the two evaluation platforms of the
// paper (§2.2): PHI (Colfax Ninja, Xeon Phi 7210) and 8XEON (SuperMicro
// 8-socket Xeon Platinum 8160).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace kop::hw {

/// Kind of memory backing a NUMA zone.
enum class ZoneKind {
  kDram,
  kMcdram,  // Xeon Phi on-package memory; in flat mode it is a distinct
            // zone with a high SLIT distance so NUMA-aware OSes avoid it
};

struct NumaZone {
  int id = 0;
  ZoneKind kind = ZoneKind::kDram;
  std::uint64_t bytes = 0;
  /// CPUs local to this zone (empty for CPU-less zones like flat MCDRAM).
  std::vector<int> cpus;
};

/// Per-level TLB capacity, used by the address-translation cost model.
struct TlbConfig {
  int entries_4k = 64;
  int entries_2m = 32;
  int entries_1g = 4;
  sim::Time miss_walk_ns = 70;  // cost of one page walk
};

struct MachineConfig {
  std::string name;
  int num_cpus = 0;
  int num_sockets = 1;
  int cores_per_socket = 0;
  double base_ghz = 1.0;
  std::vector<NumaZone> zones;
  /// SLIT-style distance matrix, zone x zone (10 = local).
  std::vector<std::vector<int>> zone_distance;
  TlbConfig tlb;
  /// Uncontended remote-cacheline transfer latency; the synchronization
  /// cost models scale contention penalties off this.
  sim::Time cacheline_transfer_ns = 80;
  /// Local DRAM access latency.
  sim::Time mem_latency_ns = 90;
  /// Sustained single-core memcpy bandwidth, bytes per nanosecond.
  double copy_bytes_per_ns = 8.0;
  /// Single-core speed relative to PHI's in-order 1.3 GHz cores (the
  /// reference the workload per-iteration costs are calibrated on).
  /// Nominal compute time divides by this.
  double perf_factor = 1.0;
  /// MMIO hole below 4 GB that the boot image must not overlap
  /// (relevant to RTK/CCK gigabyte-size static arrays, §6.2).
  std::uint64_t mmio_base = 0xc000'0000ULL;  // 3 GB
  std::uint64_t mmio_bytes = 0x4000'0000ULL; // 1 GB hole up to 4 GB

  /// NUMA zone that CPU `cpu` belongs to.
  int zone_of_cpu(int cpu) const;
  /// SLIT distance between two zones (10 = local).
  int distance(int from_zone, int to_zone) const;
  /// Multiplier applied to memory-bound time for an access from
  /// `cpu_zone` to data in `mem_zone` (1.0 when local).
  double numa_penalty(int cpu_zone, int mem_zone) const;
  /// The DRAM zone with the most free affinity to `cpu` (used by the
  /// NUMA-aware allocators).
  int preferred_dram_zone(int cpu) const;

  /// Validity checks (zone/CPU coverage, square distance matrix).
  void validate() const;
};

/// PHI: 1.3 GHz Xeon Phi 7210, 64 cores (HT off), 96 GB DRAM (6-way
/// interleaved, one zone) + 16 GB MCDRAM in flat mode (CPU-less zone,
/// high distance).  Phi's small TLB and in-order cores make address
/// translation overheads pronounced.
MachineConfig phi();

/// 8XEON: 8x 2.1 GHz Xeon Platinum 8160, 24 cores per socket (HT off),
/// 768 GB DRAM spread over 8 NUMA zones (96 GB each).
MachineConfig xeon8();

/// Look up by name ("phi" / "8xeon"); throws on unknown names.
MachineConfig machine_by_name(const std::string& name);

}  // namespace kop::hw
