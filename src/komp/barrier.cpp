#include "komp/barrier.hpp"

#include <stdexcept>

#include "sim/racecheck.hpp"

namespace kop::komp {

TeamBarrier::TeamBarrier(osal::Os& os, int parties,
                         RuntimeTuning::BarrierAlgo algo, sim::Time spin_ns,
                         sim::Time step_extra_ns)
    : os_(&os), parties_(parties), algo_(algo), spin_ns_(spin_ns),
      step_extra_ns_(step_extra_ns) {
  if (parties <= 0) throw std::invalid_argument("TeamBarrier: parties <= 0");
  slots_.resize(static_cast<std::size_t>(parties));
  for (auto& s : slots_) s.gate = os.make_wait_queue();
  central_gate_ = os.make_wait_queue();
}

void TeamBarrier::charge_step() {
  const sim::Time cost =
      os_->machine().cacheline_transfer_ns / 2 + step_extra_ns_;
  if (cost > 0) os_->engine().sleep_for(cost);
}

void TeamBarrier::park_until(int tid, osal::WaitQueue& gate,
                             const std::function<bool()>& ready) {
  while (!ready()) {
    // Execute pending explicit tasks instead of idling (and re-check:
    // running a task yields, during which the release may arrive).
    if (while_waiting_ && while_waiting_(tid)) continue;
    if (ready()) return;
    gate.wait(spin_ns_);
  }
}

void TeamBarrier::wait(int tid) {
  if (parties_ == 1) {
    ++completed_;
    return;
  }
  os_->tools().emit([&](ompt::Tool& t) {
    t.on_sync_wait(ompt::Endpoint::kBegin, os_->engine().now(), tid);
  });
  // Happens-before: entering the barrier publishes everything this
  // thread did before it; leaving joins every other party's arrival
  // (the generation counters below additionally model the hardware
  // atomics the spin-poll paths read).
  sim::race::release(os_->engine(), this);
  if (algo_ == RuntimeTuning::BarrierAlgo::kCentralized) {
    wait_centralized(tid);
  } else {
    wait_tree(tid);
  }
  sim::race::acquire(os_->engine(), this);
  os_->tools().emit([&](ompt::Tool& t) {
    t.on_sync_wait(ompt::Endpoint::kEnd, os_->engine().now(), tid);
  });
}

void TeamBarrier::wait_centralized(int tid) {
  Slot& me = slots_[static_cast<std::size_t>(tid)];
  const std::uint64_t gen = ++me.local_gen;
  // Arrival: one contended RMW on the shared counter.
  os_->atomic_op(static_cast<int>(central_gate_->waiters()));
  sim::race::atomic_rmw(os_->engine(), &arrived_, "TeamBarrier::arrived_");
  ++arrived_;
  if (arrived_ == parties_) {
    arrived_ = 0;
    ++completed_;
    sim::race::atomic_store(os_->engine(), &central_release_gen_,
                            "TeamBarrier::central_release_gen_");
    central_release_gen_ = gen;
    central_gate_->notify_all();
    return;
  }
  park_until(tid, *central_gate_, [&] {
    sim::race::atomic_load(os_->engine(), &central_release_gen_);
    return central_release_gen_ >= gen;
  });
}

void TeamBarrier::wait_tree(int tid) {
  Slot& me = slots_[static_cast<std::size_t>(tid)];
  const std::uint64_t gen = ++me.local_gen;

  // --- gather: wait for children, then signal the parent ---
  int signal_bit = 0;  // the s at which we signal (0 for the root)
  for (int s = 1; s < parties_; s <<= 1) {
    if ((tid & s) != 0) {
      signal_bit = s;
      break;
    }
    const int child = tid + s;
    if (child >= parties_) continue;
    Slot& ch = slots_[static_cast<std::size_t>(child)];
    park_until(tid, *ch.gate, [&] {
      sim::race::atomic_load(os_->engine(), &ch.arrive_gen);
      return ch.arrive_gen >= gen;
    });
    charge_step();
  }
  if (signal_bit != 0) {
    sim::race::atomic_store(os_->engine(), &me.arrive_gen,
                            "TeamBarrier::Slot::arrive_gen");
    me.arrive_gen = gen;
    charge_step();
    me.gate->notify_one();  // wake the parent if it sleeps on our slot
    // --- wait for our release ---
    park_until(tid, *me.gate, [&] {
      sim::race::atomic_load(os_->engine(), &me.release_gen);
      return me.release_gen >= gen;
    });
  } else {
    ++completed_;
  }

  // --- release our subtree, largest child first ---
  const int limit = signal_bit == 0 ? parties_ : signal_bit;
  int top = 1;
  while (top < limit && tid + top < parties_) top <<= 1;
  for (int s = top; s >= 1; s >>= 1) {
    if (s >= limit) continue;
    const int child = tid + s;
    if (child >= parties_) continue;
    Slot& ch = slots_[static_cast<std::size_t>(child)];
    sim::race::atomic_store(os_->engine(), &ch.release_gen,
                            "TeamBarrier::Slot::release_gen");
    ch.release_gen = gen;
    charge_step();
    ch.gate->notify_one();
  }
}

}  // namespace kop::komp
