// Team barriers: centralized (single counter + broadcast) and a
// radix-2 combining tree that stands in for libomp's default hyper
// barrier.  The tree's O(log n) critical path vs the centralized
// O(n) serialization is measurable with bench/abl_barrier.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "komp/tuning.hpp"
#include "osal/osal.hpp"

namespace kop::komp {

class TeamBarrier {
 public:
  TeamBarrier(osal::Os& os, int parties, RuntimeTuning::BarrierAlgo algo,
              sim::Time spin_ns, sim::Time step_extra_ns);

  /// Rendezvous for thread `tid` (0-based, dense).  Every team thread
  /// must call wait() the same number of times.
  void wait(int tid);

  /// Hook invoked while a thread waits inside the barrier; returns
  /// true if it made progress (it is polled again before sleeping).
  /// komp wires the task pool in here so threads waiting at a barrier
  /// execute pending explicit tasks, as the OpenMP spec requires.
  using WhileWaiting = std::function<bool(int tid)>;
  void set_while_waiting(WhileWaiting fn) { while_waiting_ = std::move(fn); }

  std::uint64_t completed() const { return completed_; }

 private:
  void wait_centralized(int tid);
  void wait_tree(int tid);
  /// Busy bookkeeping charged per tree hop.
  void charge_step();
  /// Park on `gate` until `ready` holds, polling the while-waiting
  /// hook between sleeps.
  void park_until(int tid, osal::WaitQueue& gate,
                  const std::function<bool()>& ready);

  struct Slot {
    std::uint64_t arrive_gen = 0;
    std::uint64_t release_gen = 0;
    std::unique_ptr<osal::WaitQueue> gate;
    std::uint64_t local_gen = 0;  // this thread's barrier count
  };

  osal::Os* os_;
  int parties_;
  RuntimeTuning::BarrierAlgo algo_;
  sim::Time spin_ns_;
  sim::Time step_extra_ns_;
  std::vector<Slot> slots_;
  // centralized state
  int arrived_ = 0;
  std::uint64_t central_release_gen_ = 0;
  std::unique_ptr<osal::WaitQueue> central_gate_;
  std::uint64_t completed_ = 0;
  WhileWaiting while_waiting_;
};

}  // namespace kop::komp
