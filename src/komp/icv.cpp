#include "komp/icv.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace kop::komp {

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kStaticChunked: return "static-chunked";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
    case Schedule::kRuntime: return "runtime";
  }
  return "?";
}

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool parse_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

}  // namespace

bool parse_omp_schedule(const std::string& text, Schedule& sched, int& chunk) {
  std::string kind = lower(text);
  int parsed_chunk = 0;
  const auto comma = kind.find(',');
  if (comma != std::string::npos) {
    if (!parse_int(kind.substr(comma + 1), parsed_chunk) || parsed_chunk <= 0)
      return false;
    kind = kind.substr(0, comma);
  }
  if (kind == "static") {
    sched = parsed_chunk > 0 ? Schedule::kStaticChunked : Schedule::kStatic;
  } else if (kind == "dynamic") {
    sched = Schedule::kDynamic;
  } else if (kind == "guided") {
    sched = Schedule::kGuided;
  } else {
    return false;
  }
  chunk = parsed_chunk;
  return true;
}

bool parse_blocktime(const std::string& text, sim::Time& out) {
  const std::string t = lower(text);
  if (t == "infinite") {
    out = sim::kTimeNever;
    return true;
  }
  int ms = 0;
  if (!parse_int(t, ms) || ms < 0) return false;
  out = static_cast<sim::Time>(ms) * sim::kMillisecond;
  return true;
}

Icv icv_from_environment(osal::Os& os) {
  Icv icv;
  icv.nthreads_var =
      static_cast<int>(os.sys_conf(osal::SysConfKey::kNumProcessors));

  if (auto v = os.get_env("OMP_NUM_THREADS")) {
    int n = 0;
    if (parse_int(*v, n) && n > 0)
      icv.nthreads_var = std::min(n, static_cast<int>(os.sys_conf(
                                          osal::SysConfKey::kNumProcessors)));
  }
  if (auto v = os.get_env("OMP_DYNAMIC")) {
    icv.dyn_var = lower(*v) == "true" || *v == "1";
  }
  if (auto v = os.get_env("OMP_SCHEDULE")) {
    parse_omp_schedule(*v, icv.run_sched_var, icv.run_sched_chunk);
  }
  if (auto v = os.get_env("KMP_BLOCKTIME")) {
    parse_blocktime(*v, icv.blocktime_ns);
  }
  if (auto v = os.get_env("OMP_PROC_BIND")) {
    const std::string b = lower(*v);
    if (b == "spread") icv.proc_bind = ProcBind::kSpread;
    else if (b == "close" || b == "true") icv.proc_bind = ProcBind::kClose;
    // "master"/"false"/garbage: keep the default, as libomp does.
  }
  if (auto v = os.get_env("KOMP_NUMA_SCHED")) {
    const std::string s = lower(*v);
    if (s == "hier") icv.numa_sched = NumaSched::kHier;
    else if (s == "flat") icv.numa_sched = NumaSched::kFlat;
    // garbage: keep the flat default.
  }
  return icv;
}

}  // namespace kop::komp
