// OpenMP internal control variables (ICVs) and their environment
// parsing (OMP_NUM_THREADS, OMP_SCHEDULE, OMP_DYNAMIC, KMP_BLOCKTIME).
//
// The env-var and sysconf plumbing is exactly the libc dependency
// surface §3.4 says libomp needs from the kernel: "access to
// environment variables, and use of the Linux sysconf() call ...
// essential for correctness and to manipulate the application".
#pragma once

#include <string>

#include "osal/osal.hpp"
#include "sim/time.hpp"

namespace kop::komp {

enum class Schedule {
  kStatic,         // one contiguous block per thread
  kStaticChunked,  // round-robin chunks of fixed size
  kDynamic,        // first-come-first-served chunks
  kGuided,         // exponentially decreasing chunks
  kRuntime,        // defer to the run-sched ICV (OMP_SCHEDULE)
};

const char* schedule_name(Schedule s);

/// OMP_PROC_BIND placement policy (the subset the benchmarks use).
enum class ProcBind {
  kClose,   // pack team threads onto consecutive CPUs
  kSpread,  // stride them across the machine (one per socket first)
};

/// KOMP_NUMA_SCHED: how TaskPool picks steal victims.
enum class NumaSched {
  kFlat,  // legacy ring order, topology-blind (the default)
  kHier,  // walk the topology tree outward: own zone first, then
          // remote zones ascending SLIT distance
};

struct Icv {
  int nthreads_var = 1;
  bool dyn_var = false;
  Schedule run_sched_var = Schedule::kStatic;
  int run_sched_chunk = 0;  // 0: default for the kind
  ProcBind proc_bind = ProcBind::kClose;
  /// KMP_BLOCKTIME: how long idle threads spin before sleeping.
  /// libomp default is 200 ms.
  sim::Time blocktime_ns = 200 * sim::kMillisecond;
  NumaSched numa_sched = NumaSched::kFlat;
};

/// Build the initial ICVs for a runtime: defaults from the machine,
/// overridden by OMP_* / KMP_* variables read through `os`.
/// Unparsable values fall back to defaults (as libomp does), never throw.
Icv icv_from_environment(osal::Os& os);

/// Parse "static", "dynamic,4", "guided,2" etc.  Returns false (and
/// leaves outputs alone) if malformed.
bool parse_omp_schedule(const std::string& text, Schedule& sched, int& chunk);

/// Parse KMP_BLOCKTIME: milliseconds, or "infinite".
bool parse_blocktime(const std::string& text, sim::Time& out);

}  // namespace kop::komp
