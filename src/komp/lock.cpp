#include "komp/lock.hpp"

// Header-only today; TU anchors the target.
