// omp_lock_t analog (EPCC LOCK/UNLOCK measures this construct).
#pragma once

#include "ompt/ompt.hpp"
#include "osal/sync.hpp"

namespace kop::komp {

class OmpLock {
 public:
  OmpLock(osal::Os& os, sim::Time spin_ns,
          ompt::MutexKind kind = ompt::MutexKind::kLock)
      : os_(&os), kind_(kind), impl_(os, spin_ns) {}

  void set() {  // omp_set_lock
    emit(ompt::MutexEvent::kAcquire);
    impl_.lock();
    emit(ompt::MutexEvent::kAcquired);
  }
  void unset() {  // omp_unset_lock
    impl_.unlock();
    emit(ompt::MutexEvent::kReleased);
  }
  bool test() {  // omp_test_lock
    const bool got = impl_.try_lock();
    if (got) emit(ompt::MutexEvent::kAcquired);
    return got;
  }

 private:
  void emit(ompt::MutexEvent ev) {
    os_->tools().emit([&](ompt::Tool& t) {
      t.on_mutex(kind_, ev, os_->engine().now(), this);
    });
  }

  osal::Os* os_;
  ompt::MutexKind kind_;
  osal::Mutex impl_;
};

}  // namespace kop::komp
