// omp_lock_t analog (EPCC LOCK/UNLOCK measures this construct).
#pragma once

#include "osal/sync.hpp"

namespace kop::komp {

class OmpLock {
 public:
  OmpLock(osal::Os& os, sim::Time spin_ns) : impl_(os, spin_ns) {}

  void set() { impl_.lock(); }      // omp_set_lock
  void unset() { impl_.unlock(); }  // omp_unset_lock
  bool test() { return impl_.try_lock(); }

 private:
  osal::Mutex impl_;
};

}  // namespace kop::komp
