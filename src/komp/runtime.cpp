#include "komp/runtime.hpp"

#include <stdexcept>

#include "sim/racecheck.hpp"

namespace kop::komp {

// The fork/join protocol is published through epoch_: the master writes
// current_team_/current_body_ *before* the release-store to epoch_, and
// a worker only dereferences them after the acquire-load that saw the
// new epoch.  The race detector checks exactly that discipline (the
// team pointers are plain data; epoch_, shutdown_ and departed_ model
// the runtime's atomics).

Runtime::Runtime(pthread_compat::Pthreads& pthreads, RuntimeTuning tuning)
    : pthreads_(&pthreads),
      os_(&pthreads.os()),
      tuning_(tuning),
      icv_(icv_from_environment(pthreads.os())) {}

Runtime::~Runtime() {
  if (workers_.empty()) return;
  sim::race::atomic_store(os_->engine(), &shutdown_, "Runtime::shutdown_");
  shutdown_ = true;
  for (auto& w : workers_) w->gate->notify_all();
  for (auto& w : workers_) pthreads_->join(w->thread);
}

void Runtime::set_num_threads(int n) {
  if (n <= 0) throw std::invalid_argument("set_num_threads: n <= 0");
  sim::race::plain_write(os_->engine(), &icv_.nthreads_var,
                         "Icv::nthreads_var");
  icv_.nthreads_var = std::min(
      n, static_cast<int>(os_->sys_conf(osal::SysConfKey::kNumProcessors)));
}

double Runtime::wtime() const {
  return sim::to_seconds(os_->engine().now());
}

std::unique_ptr<OmpLock> Runtime::make_lock() {
  return std::make_unique<OmpLock>(*os_, icv_.blocktime_ns,
                                   ompt::MutexKind::kLock);
}

OmpLock& Runtime::critical_lock(const std::string& name) {
  auto& slot = critical_locks_[name];
  if (slot == nullptr)
    slot = std::make_unique<OmpLock>(*os_, icv_.blocktime_ns,
                                     ompt::MutexKind::kCritical);
  return *slot;
}

int Runtime::cpu_for_team_thread(int tid) const {
  const int ncpus = os_->machine().num_cpus;
  if (icv_.proc_bind == ProcBind::kSpread) {
    // Stride team threads across the machine (thread 0 stays on CPU 0,
    // matching the master's placement).
    const int team = std::max(1, icv_.nthreads_var);
    return static_cast<int>((static_cast<long>(tid) * ncpus) / team) % ncpus;
  }
  return tid % ncpus;  // close: consecutive CPUs
}

void Runtime::ensure_pool(int nthreads) {
  const int needed = nthreads - 1;
  while (pool_size() < needed) {
    const int index = pool_size();
    auto w = std::make_unique<Worker>();
    w->gate = os_->make_wait_queue();
    workers_.push_back(std::move(w));
    // Worker i serves team thread id i+1; placement follows
    // OMP_PROC_BIND.
    pthread_compat::PthreadAttr attr;
    attr.bound_cpu = cpu_for_team_thread(index + 1);
    workers_.back()->thread = pthreads_->create(
        &attr, [this, index](void*) -> void* {
          worker_main(index);
          return nullptr;
        },
        nullptr);
  }
}

void Runtime::run_region_body(Team& team, int tid, const RegionBody& body) {
  ompt::Registry& tools = os_->tools();
  tools.emit([&](ompt::Tool& t) {
    t.on_implicit_task(ompt::Endpoint::kBegin, os_->engine().now(), tid,
                       team.size());
  });
  TeamThread tt(team, tid);
  body(tt);
  // Implicit end-of-region barrier (with task draining).
  tt.region_end_barrier();
  tools.emit([&](ompt::Tool& t) {
    t.on_implicit_task(ompt::Endpoint::kEnd, os_->engine().now(), tid,
                       team.size());
  });
}

void Runtime::worker_main(int worker_index) {
  Worker& me = *workers_[static_cast<std::size_t>(worker_index)];
  for (;;) {
    sim::race::atomic_load(os_->engine(), &shutdown_);
    sim::race::atomic_load(os_->engine(), &epoch_);
    while (!shutdown_ && me.seen_epoch == epoch_) {
      me.gate->wait(icv_.blocktime_ns);
      sim::race::atomic_load(os_->engine(), &shutdown_);
      sim::race::atomic_load(os_->engine(), &epoch_);
    }
    if (shutdown_) return;
    me.seen_epoch = epoch_;
    sim::race::plain_read(os_->engine(), &current_team_,
                          "Runtime::current_team_");
    Team* team = current_team_;
    sim::race::plain_read(os_->engine(), &current_body_,
                          "Runtime::current_body_");
    const RegionBody* body = current_body_;
    const int tid = worker_index + 1;
    if (team != nullptr && tid < team->size()) {
      run_region_body(*team, tid, *body);
      // Fully out of the region: the master can retire the team once
      // everyone has checked out.
      sim::race::atomic_rmw(os_->engine(), &team->departed_,
                            "Team::departed_");
      ++team->departed_;
      team->exit_gate_->notify_one();
    }
  }
}

void Runtime::parallel(int nthreads, const RegionBody& body) {
  if (os_->current_thread() == nullptr)
    throw std::logic_error("komp: parallel() outside an OS thread");
  sim::race::plain_read(os_->engine(), &icv_.nthreads_var,
                        "Icv::nthreads_var");
  int n = nthreads > 0 ? nthreads : icv_.nthreads_var;
  n = std::min(n, os_->machine().num_cpus);

  if (in_parallel_ || n == 1) {
    // Nested or single-thread region: serialize onto the caller.
    os_->tools().emit([&](ompt::Tool& t) {
      t.on_parallel(ompt::Endpoint::kBegin, os_->engine().now(), 1);
    });
    Team team(*this, 1);
    run_region_body(team, 0, body);
    os_->tools().emit([&](ompt::Tool& t) {
      t.on_parallel(ompt::Endpoint::kEnd, os_->engine().now(), 1);
    });
    return;
  }

  // __kmpc_fork_call bookkeeping.
  os_->tools().emit([&](ompt::Tool& t) {
    t.on_parallel(ompt::Endpoint::kBegin, os_->engine().now(), n);
  });
  os_->compute_ns(tuning_.fork_base_ns +
                  static_cast<sim::Time>(n) * tuning_.fork_per_thread_ns);
  ensure_pool(n);

  Team team(*this, n);
  in_parallel_ = true;
  sim::race::plain_write(os_->engine(), &current_team_,
                         "Runtime::current_team_");
  current_team_ = &team;
  sim::race::plain_write(os_->engine(), &current_body_,
                         "Runtime::current_body_");
  current_body_ = &body;
  sim::race::atomic_store(os_->engine(), &epoch_, "Runtime::epoch_");
  ++epoch_;
  for (int i = 0; i < n - 1; ++i)
    workers_[static_cast<std::size_t>(i)]->gate->notify_one();

  // The master is team thread 0.
  run_region_body(team, 0, body);

  // Wait for every worker to leave the region before the Team (and its
  // barrier gates) is destroyed; their post-barrier wakes may still be
  // in flight.
  sim::race::atomic_load(os_->engine(), &team.departed_);
  while (team.departed_ < n - 1) {
    team.exit_gate_->wait(icv_.blocktime_ns);
    sim::race::atomic_load(os_->engine(), &team.departed_);
  }

  sim::race::plain_write(os_->engine(), &current_team_,
                         "Runtime::current_team_");
  current_team_ = nullptr;
  sim::race::plain_write(os_->engine(), &current_body_,
                         "Runtime::current_body_");
  current_body_ = nullptr;
  in_parallel_ = false;
  os_->compute_ns(tuning_.join_base_ns);
  os_->tools().emit([&](ompt::Tool& t) {
    t.on_parallel(ompt::Endpoint::kEnd, os_->engine().now(), n);
  });
}

}  // namespace kop::komp
