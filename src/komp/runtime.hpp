// The komp OpenMP runtime: thread pool, fork/join, ICVs, locks.
//
// Mirrors libomp's role in the paper: code "compiled" against OpenMP
// calls Runtime::parallel() the way Clang-lowered code calls
// __kmpc_fork_call.  The runtime is written purely against the
// pthread_compat API plus the env/sysconf services -- exactly the
// dependency surface §3 says libomp needs -- so the same runtime runs
// on Linux (baseline), in RTK (ported, PTE or native pthreads), and in
// PIK (unchanged binary over emulated syscalls).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "komp/icv.hpp"
#include "komp/lock.hpp"
#include "komp/team.hpp"
#include "komp/tuning.hpp"
#include "pthread_compat/pthreads.hpp"

namespace kop::komp {

class Runtime {
 public:
  /// `pthreads` supplies threading; its Os supplies everything else.
  /// ICVs are initialized from the environment (OMP_NUM_THREADS, ...).
  Runtime(pthread_compat::Pthreads& pthreads, RuntimeTuning tuning = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- the fork/join entry point ---
  using RegionBody = std::function<void(TeamThread&)>;
  /// #pragma omp parallel num_threads(n); n <= 0 uses nthreads-var.
  /// Must be called from an OS thread (the application's initial
  /// thread); nested calls serialize onto a team of one.
  void parallel(int nthreads, const RegionBody& body);
  void parallel(const RegionBody& body) { parallel(0, body); }

  // --- omp_* API surface ---
  int max_threads() const { return icv_.nthreads_var; }
  void set_num_threads(int n);
  double wtime() const;
  std::unique_ptr<OmpLock> make_lock();
  const Icv& icv() const { return icv_; }
  const RuntimeTuning& tuning() const { return tuning_; }

  osal::Os& os() { return *os_; }
  pthread_compat::Pthreads& pthreads() { return *pthreads_; }

  /// Named-critical lock (shared across teams, as in libomp).
  OmpLock& critical_lock(const std::string& name);

  /// Workers currently in the pool (grows on demand).
  int pool_size() const { return static_cast<int>(workers_.size()); }
  bool in_parallel() const { return in_parallel_; }

 private:
  friend class Team;
  friend class TeamThread;

  struct Worker {
    pthread_compat::Pthread* thread = nullptr;
    std::uint64_t seen_epoch = 0;
    std::unique_ptr<osal::WaitQueue> gate;
  };

  void ensure_pool(int nthreads);
  /// OMP_PROC_BIND placement: which CPU team thread `tid` runs on.
  int cpu_for_team_thread(int tid) const;
  void worker_main(int worker_index);
  /// Run `body` for `tid` with the implicit end-of-region barrier.
  void run_region_body(Team& team, int tid, const RegionBody& body);

  pthread_compat::Pthreads* pthreads_;
  osal::Os* os_;
  RuntimeTuning tuning_;
  Icv icv_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool shutdown_ = false;
  bool in_parallel_ = false;
  std::uint64_t epoch_ = 0;
  Team* current_team_ = nullptr;
  const RegionBody* current_body_ = nullptr;
  std::map<std::string, std::unique_ptr<OmpLock>> critical_locks_;
};

}  // namespace kop::komp
