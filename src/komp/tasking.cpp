#include "komp/tasking.hpp"

#include "hw/topo_tree.hpp"
#include "sim/racecheck.hpp"

namespace kop::komp {

// Shared-access annotations: the deque contents are guarded by the
// per-deque spinlocks (plain accesses -- the detector verifies the lock
// discipline); the counters model the runtime's atomics (hb edges, so
// task completion is visible to scheduling-point polls).
//
// Annotation addresses use the slab slots, which are stable for the
// pool's lifetime and recycled through the freelist -- the same address
// reuse discipline the old per-task heap allocations had.

TaskPool::TaskPool(osal::Os& os, int nthreads, const RuntimeTuning& tuning,
                   sim::Time spin_ns, NumaSched numa_sched,
                   std::vector<int> cpu_of_tid)
    : os_(&os), tuning_(&tuning), spin_ns_(spin_ns), numa_sched_(numa_sched) {
  deques_.resize(static_cast<std::size_t>(nthreads));
  locks_.reserve(static_cast<std::size_t>(nthreads));
  implicit_.reserve(static_cast<std::size_t>(nthreads));
  current_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    locks_.push_back(std::make_unique<osal::Spinlock>(os));
    const TaskHandle imp = alloc_task();
    implicit_.push_back(imp);
    current_.push_back(imp);
  }
  idle_gate_ = os.make_wait_queue();

  // Topology mapping: zone per tid for steal classification, plus the
  // hierarchical victim orders.  Pools without a CPU map (direct
  // construction in tests) stay flat and count every steal as local.
  if (cpu_of_tid.size() == static_cast<std::size_t>(nthreads) &&
      nthreads > 0) {
    const hw::TopoTree tree(os.machine());
    tid_zone_.resize(static_cast<std::size_t>(nthreads));
    for (int i = 0; i < nthreads; ++i)
      tid_zone_[static_cast<std::size_t>(i)] =
          tree.zone_of_cpu(cpu_of_tid[static_cast<std::size_t>(i)]);
    if (numa_sched_ == NumaSched::kHier) {
      steal_order_.resize(static_cast<std::size_t>(nthreads));
      local_victims_.resize(static_cast<std::size_t>(nthreads));
      for (int tid = 0; tid < nthreads; ++tid) {
        auto& order = steal_order_[static_cast<std::size_t>(tid)];
        const int my_zone = tid_zone_[static_cast<std::size_t>(tid)];
        // Same-zone victims keep the flat ring order (from tid+1), so a
        // single-zone team steals in exactly the flat sequence.
        for (int i = 1; i < nthreads; ++i) {
          const int v = (tid + i) % nthreads;
          if (tid_zone_[static_cast<std::size_t>(v)] == my_zone)
            order.push_back(v);
        }
        local_victims_[static_cast<std::size_t>(tid)] =
            static_cast<int>(order.size());
        // Remote zones ascending SLIT distance (tie: zone id); victims
        // within a zone ascending by tid.
        for (int z : tree.zones_by_distance(my_zone)) {
          if (z == my_zone) continue;
          for (int v = 0; v < nthreads; ++v) {
            if (v != tid && tid_zone_[static_cast<std::size_t>(v)] == z)
              order.push_back(v);
          }
        }
      }
    }
  }
}

TaskPool::TaskHandle TaskPool::alloc_task() {
  TaskHandle h;
  if (!free_.empty()) {
    h = free_.back();
    free_.pop_back();
  } else {
    h = static_cast<TaskHandle>(slab_.size());
    slab_.emplace_back();
  }
  Task& t = slab_[h];
  t.parent = kNoTask;
  t.pending_children = 0;
  t.pins = 1;
  return h;
}

void TaskPool::unpin(TaskHandle h) {
  while (h != kNoTask) {
    Task& t = slab_[h];
    if (--t.pins != 0) return;
    const TaskHandle parent = t.parent;
    t.body = nullptr;
    t.parent = kNoTask;
    free_.push_back(h);
    h = parent;  // the recycled child releases its pin on the parent
  }
}

void TaskPool::spawn(int tid, TaskBody body) {
  os_->compute_ns(tuning_->task_spawn_ns);
  os_->tools().emit([&](ompt::Tool& t) {
    t.on_task_create(os_->engine().now(), tid);
  });
  const TaskHandle h = alloc_task();
  const TaskHandle parent = current_[static_cast<std::size_t>(tid)];
  slab_[h].body = std::move(body);
  slab_[h].parent = parent;
  slab_[parent].pins++;  // the child slot pins its parent's slot
  sim::race::atomic_rmw(os_->engine(), &slab_[parent].pending_children,
                        "Task::pending_children");
  slab_[parent].pending_children++;
  sim::race::atomic_rmw(os_->engine(), &incomplete_, "TaskPool::incomplete_");
  ++incomplete_;
  sim::race::atomic_rmw(os_->engine(), &queued_, "TaskPool::queued_");
  ++queued_;
  auto& lock = *locks_[static_cast<std::size_t>(tid)];
  lock.lock();
  sim::race::plain_write(os_->engine(), &deques_[static_cast<std::size_t>(tid)],
                         "TaskPool task deque");
  deques_[static_cast<std::size_t>(tid)].push_back(h);
  lock.unlock();
  // Poke one idle helper (threads waiting at a scheduling point).
  idle_gate_->notify_one();
}

TaskPool::TaskHandle TaskPool::pop_or_steal(int tid, StealKind* steal) {
  *steal = StealKind::kNone;
  sim::race::atomic_load(os_->engine(), &queued_);
  if (queued_ == 0) return kNoTask;  // O(1) bail-out for idle polls
  const auto n = static_cast<int>(deques_.size());
  // Own deque: LIFO (depth-first, cache-friendly).
  {
    auto& lock = *locks_[static_cast<std::size_t>(tid)];
    lock.lock();
    auto& dq = deques_[static_cast<std::size_t>(tid)];
    sim::race::plain_read(os_->engine(), &dq, "TaskPool task deque");
    if (!dq.empty()) {
      sim::race::plain_write(os_->engine(), &dq, "TaskPool task deque");
      const TaskHandle t = dq.back();
      dq.pop_back();
      sim::race::atomic_rmw(os_->engine(), &queued_, "TaskPool::queued_");
      --queued_;
      lock.unlock();
      return t;
    }
    lock.unlock();
  }
  if (!steal_order_.empty()) return steal_hier(tid, steal);
  // Flat steal: FIFO from a victim (breadth-first, big chunks of work).
  for (int i = 1; i < n; ++i) {
    const int victim = (tid + i) % n;
    auto& lock = *locks_[static_cast<std::size_t>(victim)];
    if (!lock.try_lock()) continue;
    auto& dq = deques_[static_cast<std::size_t>(victim)];
    sim::race::plain_read(os_->engine(), &dq, "TaskPool task deque");
    if (!dq.empty()) {
      sim::race::plain_write(os_->engine(), &dq, "TaskPool task deque");
      const TaskHandle t = dq.front();
      dq.pop_front();
      sim::race::atomic_rmw(os_->engine(), &queued_, "TaskPool::queued_");
      --queued_;
      lock.unlock();
      ++steals_;
      *steal = tid_zone_.empty() ||
                       tid_zone_[static_cast<std::size_t>(victim)] ==
                           tid_zone_[static_cast<std::size_t>(tid)]
                   ? StealKind::kLocal
                   : StealKind::kRemote;
      return t;
    }
    lock.unlock();
  }
  return kNoTask;
}

// Hierarchical steal: same-zone victims first (flat ring order), then
// remote zones ascending SLIT distance.  Pass 0 only raids a remote
// deque holding >= remote_steal_min_queue tasks; if that gate starved
// the thief while remote work existed, pass 1 retries remote victims
// ungated so the pool can never wedge with work outstanding.  A remote
// hit takes a batch: the front task executes as the stolen one, up to
// remote_steal_batch-1 followers are re-queued on the thief's own deque
// so same-zone neighbours find them locally.
TaskPool::TaskHandle TaskPool::steal_hier(int tid, StealKind* steal) {
  const auto& order = steal_order_[static_cast<std::size_t>(tid)];
  const int local_n = local_victims_[static_cast<std::size_t>(tid)];
  bool gated_remote = false;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      const bool remote = static_cast<int>(i) >= local_n;
      if (pass == 1 && !remote) continue;
      const int victim = order[i];
      auto& lock = *locks_[static_cast<std::size_t>(victim)];
      if (!lock.try_lock()) continue;
      auto& dq = deques_[static_cast<std::size_t>(victim)];
      sim::race::plain_read(os_->engine(), &dq, "TaskPool task deque");
      if (dq.empty()) {
        lock.unlock();
        continue;
      }
      if (pass == 0 && remote &&
          dq.size() <
              static_cast<std::size_t>(tuning_->remote_steal_min_queue)) {
        gated_remote = true;
        lock.unlock();
        continue;
      }
      sim::race::plain_write(os_->engine(), &dq, "TaskPool task deque");
      const TaskHandle t = dq.front();
      dq.pop_front();
      sim::race::atomic_rmw(os_->engine(), &queued_, "TaskPool::queued_");
      --queued_;
      std::vector<TaskHandle> batch;
      if (remote) {
        for (int k = 1; k < tuning_->remote_steal_batch && !dq.empty(); ++k) {
          batch.push_back(dq.front());
          dq.pop_front();
        }
      }
      lock.unlock();
      if (!batch.empty()) {
        // Re-home the followers on the thief's deque (they stay counted
        // in queued_: still unstarted, just parked elsewhere).  The
        // victim's lock is released first -- blocking on the own lock
        // while holding a victim's could cross-deadlock two thieves.
        auto& own = *locks_[static_cast<std::size_t>(tid)];
        own.lock();
        auto& mine = deques_[static_cast<std::size_t>(tid)];
        sim::race::plain_write(os_->engine(), &mine, "TaskPool task deque");
        for (TaskHandle h : batch) mine.push_back(h);
        own.unlock();
        idle_gate_->notify_one();
      }
      ++steals_;
      *steal = remote ? StealKind::kRemote : StealKind::kLocal;
      return t;
    }
    if (!gated_remote) break;
  }
  return kNoTask;
}

void TaskPool::run(int tid, TaskHandle task, StealKind steal) {
  const bool stolen = steal != StealKind::kNone;
  if (stolen) {
    const int cpu = os_->current_cpu();
    os_->counters().add_on(cpu, telemetry::Counter::kTaskSteals);
    os_->counters().add_on(cpu, steal == StealKind::kRemote
                                    ? telemetry::Counter::kTaskStealsRemote
                                    : telemetry::Counter::kTaskStealsLocal);
  }
  os_->tools().emit([&](ompt::Tool& t) {
    t.on_task_schedule(ompt::Endpoint::kBegin, os_->engine().now(), tid,
                       stolen);
  });
  os_->compute_ns(tuning_->task_exec_ns);
  auto& cur = current_[static_cast<std::size_t>(tid)];
  const TaskHandle saved = cur;
  cur = task;
  // The body may spawn (growing the slab's chunk map), so move it out
  // rather than holding a reference across the call.
  TaskBody body = std::move(slab_[task].body);
  if (body) body(tid);
  cur = saved;
  os_->tools().emit([&](ompt::Tool& t) {
    t.on_task_schedule(ompt::Endpoint::kEnd, os_->engine().now(), tid,
                       stolen);
  });
  const TaskHandle parent = slab_[task].parent;
  sim::race::atomic_rmw(os_->engine(), &slab_[parent].pending_children,
                        "Task::pending_children");
  slab_[parent].pending_children--;
  sim::race::atomic_rmw(os_->engine(), &incomplete_, "TaskPool::incomplete_");
  --incomplete_;
  ++executed_;
  const bool parent_drained = slab_[parent].pending_children == 0;
  unpin(task);  // finished: drop the task's own pin (children may remain)
  // Wake waiters only when a predicate could have flipped: a taskwait
  // waits for its task's last child, drain_all for pool exhaustion.
  // (Broadcasting on every completion makes task-heavy regions
  // quadratic in wakeups.)
  if (parent_drained || incomplete_ == 0)
    idle_gate_->notify_all();
}

bool TaskPool::try_run_one(int tid) {
  StealKind steal = StealKind::kNone;
  const TaskHandle t = pop_or_steal(tid, &steal);
  if (t == kNoTask) return false;
  run(tid, t, steal);
  return true;
}

void TaskPool::taskwait(int tid) {
  const TaskHandle cur = current_[static_cast<std::size_t>(tid)];
  for (;;) {
    sim::race::atomic_load(os_->engine(), &slab_[cur].pending_children);
    if (slab_[cur].pending_children == 0) return;
    if (try_run_one(tid)) continue;
    // try_run_one yields inside its lock ops, so the last child may
    // have completed meanwhile; recheck right before parking (no yield
    // can occur between this check and the wait registration).
    sim::race::atomic_load(os_->engine(), &slab_[cur].pending_children);
    if (slab_[cur].pending_children == 0) return;
    idle_gate_->wait(spin_ns_);
  }
}

void TaskPool::drain_all(int tid) {
  for (;;) {
    sim::race::atomic_load(os_->engine(), &incomplete_);
    if (incomplete_ == 0) return;
    if (try_run_one(tid)) continue;
    sim::race::atomic_load(os_->engine(), &incomplete_);
    if (incomplete_ == 0) return;
    idle_gate_->wait(spin_ns_);
  }
}

}  // namespace kop::komp
