// Explicit-task support: per-thread deques with LIFO pop / FIFO steal,
// tied-task semantics, nesting, and taskwait/barrier scheduling points.
// This is the part of libomp the EPCC taskbench exercises.
//
// Tasks live in a slab (std::deque<Task>: stable addresses, chunked
// growth) and are passed around as 32-bit slot handles through
// RingDeque work queues -- no shared_ptr control blocks or per-spawn
// heap traffic.  A slot is recycled through the freelist once its task
// has finished *and* every child slot has been recycled (children pin
// their parent, mirroring the old parent shared_ptr chain, so
// `pending_children` stays valid for taskwait however long the
// subtree runs).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "komp/icv.hpp"
#include "komp/tuning.hpp"
#include "osal/sync.hpp"
#include "sim/ring_deque.hpp"

namespace kop::komp {

/// Task body; receives the id of the thread that executes it.
using TaskBody = std::function<void(int exec_tid)>;

class TaskPool {
 public:
  /// `cpu_of_tid` maps team thread ids to their bound CPUs; when given,
  /// steals are classified local/remote by NUMA zone, and under
  /// NumaSched::kHier the victim order walks the topology tree outward
  /// (same zone first, then remote zones ascending SLIT distance)
  /// instead of the flat thread-id ring.
  TaskPool(osal::Os& os, int nthreads, const RuntimeTuning& tuning,
           sim::Time spin_ns, NumaSched numa_sched = NumaSched::kFlat,
           std::vector<int> cpu_of_tid = {});

  /// Spawn a task as a child of `tid`'s current task.
  void spawn(int tid, TaskBody body);

  /// Scheduling point: execute tasks until the current task of `tid`
  /// has no pending children (taskwait semantics).
  void taskwait(int tid);

  /// Scheduling point: execute tasks until no explicit task in the
  /// team is incomplete (the task-draining part of a barrier).
  void drain_all(int tid);

  /// Try to run one task (own deque LIFO, then steal FIFO).
  bool try_run_one(int tid);

  std::size_t incomplete() const { return incomplete_; }
  std::uint64_t executed() const { return executed_; }
  std::uint64_t steals() const { return steals_; }

 private:
  using TaskHandle = std::uint32_t;
  static constexpr TaskHandle kNoTask = ~0u;

  /// How a task reached its executor (NUMA zone of thief vs victim).
  enum class StealKind { kNone, kLocal, kRemote };

  struct Task {
    TaskBody body;
    TaskHandle parent = kNoTask;
    int pending_children = 0;  // incomplete children (taskwait predicate)
    /// Slot pins: 1 for the task itself until it finishes, plus one per
    /// child slot not yet recycled.  Slot returns to the freelist at 0.
    std::uint32_t pins = 0;
  };

  void run(int tid, TaskHandle task, StealKind steal);
  TaskHandle pop_or_steal(int tid, StealKind* steal);
  TaskHandle steal_hier(int tid, StealKind* steal);
  TaskHandle alloc_task();
  /// Drop one pin; recycles the slot (and unpins ancestors) at zero.
  void unpin(TaskHandle h);

  osal::Os* os_;
  const RuntimeTuning* tuning_;
  sim::Time spin_ns_;
  NumaSched numa_sched_ = NumaSched::kFlat;
  /// NUMA zone of each team thread's bound CPU (empty: unclassified;
  /// such pools count every steal as local and always steal flat).
  std::vector<int> tid_zone_;
  /// Hier mode only: per-tid victim order (same-zone ring first, then
  /// remote zones ascending SLIT distance) and the index where the
  /// remote victims start.
  std::vector<std::vector<int>> steal_order_;
  std::vector<int> local_victims_;
  std::deque<Task> slab_;
  std::vector<TaskHandle> free_;
  std::vector<sim::RingDeque<TaskHandle>> deques_;
  std::vector<std::unique_ptr<osal::Spinlock>> locks_;
  /// The implicit task of each team thread (children bookkeeping for
  /// top-level taskwait); slots 0..nthreads-1, pinned for the pool's
  /// lifetime.
  std::vector<TaskHandle> implicit_;
  /// Task currently executing on each thread (the implicit task when
  /// no explicit task is running).
  std::vector<TaskHandle> current_;
  std::unique_ptr<osal::WaitQueue> idle_gate_;
  std::size_t incomplete_ = 0;
  /// Tasks sitting in deques (not yet started).  Lets scheduling-point
  /// polls bail out in O(1) instead of scanning every deque.
  std::size_t queued_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t steals_ = 0;
};

}  // namespace kop::komp
