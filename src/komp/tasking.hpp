// Explicit-task support: per-thread deques with LIFO pop / FIFO steal,
// tied-task semantics, nesting, and taskwait/barrier scheduling points.
// This is the part of libomp the EPCC taskbench exercises.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "komp/tuning.hpp"
#include "osal/sync.hpp"

namespace kop::komp {

/// Task body; receives the id of the thread that executes it.
using TaskBody = std::function<void(int exec_tid)>;

class TaskPool {
 public:
  TaskPool(osal::Os& os, int nthreads, const RuntimeTuning& tuning,
           sim::Time spin_ns);

  /// Spawn a task as a child of `tid`'s current task.
  void spawn(int tid, TaskBody body);

  /// Scheduling point: execute tasks until the current task of `tid`
  /// has no pending children (taskwait semantics).
  void taskwait(int tid);

  /// Scheduling point: execute tasks until no explicit task in the
  /// team is incomplete (the task-draining part of a barrier).
  void drain_all(int tid);

  /// Try to run one task (own deque LIFO, then steal FIFO).
  bool try_run_one(int tid);

  std::size_t incomplete() const { return incomplete_; }
  std::uint64_t executed() const { return executed_; }
  std::uint64_t steals() const { return steals_; }

 private:
  struct Task {
    TaskBody body;
    std::shared_ptr<Task> parent;  // keeps ancestors alive for counts
    int pending_children = 0;
  };

  void run(int tid, std::shared_ptr<Task> task, bool stolen);
  std::shared_ptr<Task> pop_or_steal(int tid, bool* stolen);

  osal::Os* os_;
  const RuntimeTuning* tuning_;
  sim::Time spin_ns_;
  std::vector<std::deque<std::shared_ptr<Task>>> deques_;
  std::vector<std::unique_ptr<osal::Spinlock>> locks_;
  /// The implicit task of each team thread (children bookkeeping for
  /// top-level taskwait).
  std::vector<std::shared_ptr<Task>> implicit_;
  /// Task currently executing on each thread (the implicit task when
  /// no explicit task is running).
  std::vector<std::shared_ptr<Task>> current_;
  std::unique_ptr<osal::WaitQueue> idle_gate_;
  std::size_t incomplete_ = 0;
  /// Tasks sitting in deques (not yet started).  Lets scheduling-point
  /// polls bail out in O(1) instead of scanning every deque.
  std::size_t queued_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t steals_ = 0;
};

}  // namespace kop::komp
