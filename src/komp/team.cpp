#include "komp/team.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "komp/runtime.hpp"
#include "sim/racecheck.hpp"

namespace kop::komp {

// Worksharing state is annotated for the race detector the way the
// modelled runtime would implement it: dispatch-buffer init is an
// acquire/release-published claim, grab counters are hardware atomics,
// and payload fields (bounds, accumulators) are plain data whose
// ordering must come from those edges or from the team barrier.

std::vector<int> Team::cpu_map(const Runtime& rt, int size) {
  std::vector<int> cpus(static_cast<std::size_t>(size));
  for (int tid = 0; tid < size; ++tid)
    cpus[static_cast<std::size_t>(tid)] = rt.cpu_for_team_thread(tid);
  return cpus;
}

Team::Team(Runtime& rt, int size)
    : rt_(&rt),
      size_(size),
      barrier_(rt.os(), size, rt.tuning().barrier_algo, rt.icv().blocktime_ns,
               rt.tuning().barrier_step_extra_ns),
      pool_(rt.os(), size, rt.tuning(), rt.icv().blocktime_ns,
            rt.icv().numa_sched, cpu_map(rt, size)),
      members_(static_cast<std::size_t>(size), nullptr),
      exit_gate_(rt.os().make_wait_queue()) {
  // Threads waiting at a barrier execute pending explicit tasks.
  barrier_.set_while_waiting([this](int tid) { return pool_.try_run_one(tid); });
}

TeamThread& Team::member(int tid) {
  TeamThread* t = members_.at(static_cast<std::size_t>(tid));
  if (t == nullptr) throw std::logic_error("Team::member: thread not active");
  return *t;
}

std::shared_ptr<Team::LoopState> Team::loop_state(std::uint64_t gen) {
  auto& slot = loops_[gen];
  if (slot == nullptr) slot = std::make_shared<LoopState>();
  return slot;
}

void Team::finish_loop(std::uint64_t gen, LoopState& st) {
  sim::race::atomic_rmw(rt_->os().engine(), &st.done_count,
                        "LoopState::done_count");
  ++st.done_count;
  if (st.done_count == size_) loops_.erase(gen);
}

TeamThread::TeamThread(Team& team, int tid) : team_(&team), tid_(tid) {
  team.members_.at(static_cast<std::size_t>(tid)) = this;
}

TeamThread::~TeamThread() {
  team_->members_.at(static_cast<std::size_t>(tid_)) = nullptr;
}

int TeamThread::nthreads() const { return team_->size(); }

Runtime& TeamThread::runtime() { return team_->runtime(); }

osal::Os& TeamThread::os() { return team_->runtime().os(); }

void TeamThread::compute(const hw::WorkBlock& block, int data_zone) {
  os().compute(block, data_zone);
}

void TeamThread::compute_ns(sim::Time ns) { os().compute_ns(ns); }

void TeamThread::compute_partitioned(const hw::WorkBlock& block, int part,
                                     int nparts) {
  const int zone = os().resolve_data_zone(block.region, part, nparts);
  os().compute(block, zone);
}

void TeamThread::charge_memcpy(std::uint64_t bytes) {
  const double bw = os().machine().copy_bytes_per_ns;
  hw::WorkBlock b;
  b.cpu_ns = static_cast<sim::Time>(static_cast<double>(bytes) / bw);
  b.mem_fraction = 0.9;
  os().compute(b);
}

namespace {

ompt::WorkKind work_kind_for(Schedule sched) {
  switch (sched) {
    case Schedule::kStaticChunked: return ompt::WorkKind::kLoopStaticChunked;
    case Schedule::kDynamic:       return ompt::WorkKind::kLoopDynamic;
    case Schedule::kGuided:        return ompt::WorkKind::kLoopGuided;
    case Schedule::kRuntime:
    case Schedule::kStatic:        break;
  }
  return ompt::WorkKind::kLoopStatic;
}

}  // namespace

void TeamThread::for_loop(Schedule sched, int chunk, std::int64_t lo,
                          std::int64_t hi, const RangeBody& body, bool nowait) {
  if (sched == Schedule::kRuntime) {
    // schedule(runtime): resolve against the run-sched ICV.
    sched = runtime().icv().run_sched_var;
    if (chunk <= 0) chunk = runtime().icv().run_sched_chunk;
  }
  for_loop_impl(sched, chunk, lo, hi, body, nowait, work_kind_for(sched));
}

void TeamThread::for_loop_impl(Schedule sched, int chunk, std::int64_t lo,
                               std::int64_t hi, const RangeBody& body,
                               bool nowait, ompt::WorkKind kind) {
  const RuntimeTuning& tune = runtime().tuning();
  os().compute_ns(tune.dispatch_init_ns);
  if (sched == Schedule::kRuntime) {
    sched = runtime().icv().run_sched_var;
    if (chunk <= 0) chunk = runtime().icv().run_sched_chunk;
  }
  ompt::Registry& tools = os().tools();
  tools.emit([&](ompt::Tool& t) {
    t.on_work(kind, ompt::Endpoint::kBegin, os().engine().now(), tid_,
              std::max<std::int64_t>(0, hi - lo));
  });
  const std::uint64_t gen = ++loop_gen_;
  const int n = nthreads();
  const std::int64_t total = std::max<std::int64_t>(0, hi - lo);

  switch (sched) {
    case Schedule::kRuntime:  // resolved above; fall through to static
    case Schedule::kStatic: {
      // One contiguous block per thread, split *proportionally*
      // (thread t gets [t*total/n, (t+1)*total/n)).  Proportional
      // splitting keeps the block boundaries of loops with different
      // trip counts over the same data aligned -- which is what makes
      // first-touch NUMA placement from the init loops land local for
      // the compute loops, as in the real NAS codes.
      const std::int64_t b = lo + tid_ * total / n;
      const std::int64_t e = lo + (tid_ + 1) * total / n;
      if (b < e) body(b, e);
      break;
    }
    case Schedule::kStaticChunked: {
      const std::int64_t c = std::max<std::int64_t>(1, chunk);
      for (std::int64_t b = lo + tid_ * c; b < hi; b += c * n) {
        os().compute_ns(tune.dispatch_next_ns);
        const std::int64_t e = std::min(hi, b + c);
        tools.emit([&](ompt::Tool& t) {
          t.on_dispatch(os().engine().now(), tid_, b, e);
        });
        body(b, e);
      }
      break;
    }
    case Schedule::kDynamic: {
      auto st = team_->loop_state(gen);
      sim::race::atomic_load(os().engine(), &st->init);
      if (!st->init) {
        st->init = true;
        st->next = lo;
        st->hi = hi;
        st->chunk = std::max<std::int64_t>(1, chunk);
        sim::race::atomic_store(os().engine(), &st->init, "LoopState::init");
      }
      for (;;) {
        os().compute_ns(tune.dispatch_next_ns);
        ++st->grabbers;
        os().atomic_op(st->grabbers - 1);
        --st->grabbers;
        sim::race::atomic_rmw(os().engine(), &st->next, "LoopState::next");
        sim::race::plain_read(os().engine(), &st->hi, "LoopState::hi");
        if (st->next >= st->hi) break;
        const std::int64_t b = st->next;
        const std::int64_t e = std::min(st->hi, b + st->chunk);
        st->next = e;
        tools.emit([&](ompt::Tool& t) {
          t.on_dispatch(os().engine().now(), tid_, b, e);
        });
        body(b, e);
      }
      team_->finish_loop(gen, *st);
      break;
    }
    case Schedule::kGuided: {
      auto st = team_->loop_state(gen);
      sim::race::atomic_load(os().engine(), &st->init);
      if (!st->init) {
        st->init = true;
        st->next = lo;
        st->hi = hi;
        st->chunk = std::max<std::int64_t>(1, chunk);  // minimum chunk
        sim::race::atomic_store(os().engine(), &st->init, "LoopState::init");
      }
      for (;;) {
        os().compute_ns(tune.dispatch_next_ns);
        ++st->grabbers;
        os().atomic_op(st->grabbers - 1);
        --st->grabbers;
        sim::race::atomic_rmw(os().engine(), &st->next, "LoopState::next");
        sim::race::plain_read(os().engine(), &st->hi, "LoopState::hi");
        const std::int64_t remaining = st->hi - st->next;
        if (remaining <= 0) break;
        const std::int64_t c =
            std::max(st->chunk, remaining / (2 * static_cast<std::int64_t>(n)));
        const std::int64_t b = st->next;
        const std::int64_t e = std::min(st->hi, b + c);
        st->next = e;
        tools.emit([&](ompt::Tool& t) {
          t.on_dispatch(os().engine().now(), tid_, b, e);
        });
        body(b, e);
      }
      team_->finish_loop(gen, *st);
      break;
    }
  }
  tools.emit([&](ompt::Tool& t) {
    t.on_work(kind, ompt::Endpoint::kEnd, os().engine().now(), tid_,
              std::max<std::int64_t>(0, hi - lo));
  });
  if (!nowait) barrier_internal(ompt::SyncRegion::kBarrierImplicit);
}

void TeamThread::for_ordered(std::int64_t lo, std::int64_t hi,
                             const std::function<void(std::int64_t)>& body) {
  const RuntimeTuning& tune = runtime().tuning();
  os().compute_ns(tune.dispatch_init_ns);
  ompt::Registry& tools = os().tools();
  tools.emit([&](ompt::Tool& t) {
    t.on_work(ompt::WorkKind::kOrdered, ompt::Endpoint::kBegin,
              os().engine().now(), tid_, std::max<std::int64_t>(0, hi - lo));
  });
  const std::uint64_t gen = ++loop_gen_;
  const int n = nthreads();
  auto st = team_->loop_state(gen);
  sim::race::atomic_load(os().engine(), &st->init);
  if (!st->init) {
    st->init = true;
    st->ordered_next = lo;
    st->ordered_gate = os().make_wait_queue();
    sim::race::atomic_store(os().engine(), &st->init, "LoopState::init");
  }
  // schedule(static,1): iteration i on thread i % n; each iteration
  // waits its turn (ordered-section semantics over the whole body).
  for (std::int64_t i = lo + tid_; i < hi; i += n) {
    sim::race::atomic_load(os().engine(), &st->ordered_next);
    while (st->ordered_next < i) {
      st->ordered_gate->wait(runtime().icv().blocktime_ns);
      sim::race::atomic_load(os().engine(), &st->ordered_next);
    }
    body(i);
    sim::race::atomic_store(os().engine(), &st->ordered_next,
                            "LoopState::ordered_next");
    st->ordered_next = i + 1;
    st->ordered_gate->notify_all();
  }
  team_->finish_loop(gen, *st);
  tools.emit([&](ompt::Tool& t) {
    t.on_work(ompt::WorkKind::kOrdered, ompt::Endpoint::kEnd,
              os().engine().now(), tid_, std::max<std::int64_t>(0, hi - lo));
  });
  barrier_internal(ompt::SyncRegion::kBarrierImplicit);
}

void TeamThread::sections(const std::vector<std::function<void()>>& bodies,
                          bool nowait) {
  // Lowered exactly like libomp: a dynamic worksharing loop over the
  // section indices (tools see it as a sections construct).
  for_loop_impl(Schedule::kDynamic, 1, 0,
                static_cast<std::int64_t>(bodies.size()),
                [&](std::int64_t b, std::int64_t e) {
                  for (std::int64_t i = b; i < e; ++i)
                    bodies[static_cast<std::size_t>(i)]();
                },
                nowait, ompt::WorkKind::kSections);
}

void TeamThread::barrier_internal(ompt::SyncRegion kind) {
  ompt::Registry& tools = os().tools();
  tools.emit([&](ompt::Tool& t) {
    t.on_sync_region(kind, ompt::Endpoint::kBegin, os().engine().now(), tid_);
  });
  // Scheduling point: explicit tasks must complete before release.
  if (team_->pool_.incomplete() > 0) team_->pool_.drain_all(tid_);
  team_->barrier_.wait(tid_);
  tools.emit([&](ompt::Tool& t) {
    t.on_sync_region(kind, ompt::Endpoint::kEnd, os().engine().now(), tid_);
  });
}

void TeamThread::barrier() {
  barrier_internal(ompt::SyncRegion::kBarrierExplicit);
}

void TeamThread::region_end_barrier() {
  barrier_internal(ompt::SyncRegion::kBarrierImplicit);
}

bool TeamThread::single(const std::function<void()>& body, bool nowait) {
  const RuntimeTuning& tune = runtime().tuning();
  ompt::Registry& tools = os().tools();
  tools.emit([&](ompt::Tool& t) {
    t.on_work(ompt::WorkKind::kSingle, ompt::Endpoint::kBegin,
              os().engine().now(), tid_, 1);
  });
  os().compute_ns(tune.single_ns);
  os().atomic_op(0);
  const std::uint64_t my_gen = single_seen_++;
  bool executed = false;
  sim::race::atomic_rmw(os().engine(), &team_->single_claims_,
                        "Team::single_claims_");
  if (team_->single_claims_ <= my_gen) {
    team_->single_claims_ = my_gen + 1;
    executed = true;
    body();
  }
  tools.emit([&](ompt::Tool& t) {
    t.on_work(ompt::WorkKind::kSingle, ompt::Endpoint::kEnd,
              os().engine().now(), tid_, 1);
  });
  if (!nowait) barrier_internal(ompt::SyncRegion::kBarrierImplicit);
  return executed;
}

void TeamThread::master(const std::function<void()>& body) {
  if (tid_ == 0) body();
}

void TeamThread::critical(const std::string& name,
                          const std::function<void()>& body) {
  OmpLock& lock = runtime().critical_lock(name);
  lock.set();
  body();
  lock.unset();
}

void TeamThread::atomic_update() {
  // A team hammering one scalar: contention scales with team size.
  os().atomic_op(nthreads() - 1);
}

void TeamThread::copyprivate(std::uint64_t bytes,
                             const std::function<void()>& body) {
  const bool executed = single(body, /*nowait=*/false);
  if (!executed) charge_memcpy(bytes);
  barrier_internal(ompt::SyncRegion::kBarrierImplicit);
}

double TeamThread::reduce(double value, ReduceOp op) {
  const RuntimeTuning& tune = runtime().tuning();
  os().compute_ns(tune.reduction_leaf_ns);
  const std::uint64_t gen = ++reduce_gen_;
  auto& slot = team_->reduces_[gen];
  if (slot == nullptr) slot = std::make_shared<Team::ReduceState>();
  auto st = slot;
  sim::race::atomic_load(os().engine(), &st->init);
  if (!st->init) {
    st->init = true;
    switch (op) {
      case ReduceOp::kSum: st->acc = 0.0; break;
      case ReduceOp::kProd: st->acc = 1.0; break;
      case ReduceOp::kMin: st->acc = std::numeric_limits<double>::infinity(); break;
      case ReduceOp::kMax: st->acc = -std::numeric_limits<double>::infinity(); break;
    }
    sim::race::atomic_store(os().engine(), &st->acc, "ReduceState::acc");
    sim::race::atomic_store(os().engine(), &st->init, "ReduceState::init");
  }
  os().atomic_op(st->arrived);
  sim::race::atomic_rmw(os().engine(), &st->arrived, "ReduceState::arrived");
  ++st->arrived;
  sim::race::atomic_rmw(os().engine(), &st->acc, "ReduceState::acc");
  switch (op) {
    case ReduceOp::kSum: st->acc += value; break;
    case ReduceOp::kProd: st->acc *= value; break;
    case ReduceOp::kMin: st->acc = std::min(st->acc, value); break;
    case ReduceOp::kMax: st->acc = std::max(st->acc, value); break;
  }
  barrier_internal(ompt::SyncRegion::kBarrierImplicit);
  // The combined value is read plainly: the barrier's release/acquire
  // edges are the only thing making this safe, which is exactly what
  // the detector verifies here.
  sim::race::plain_read(os().engine(), &st->acc, "ReduceState::acc");
  const double result = st->acc;
  // Second rendezvous so the slot can be retired exactly once.
  barrier_internal(ompt::SyncRegion::kBarrierImplicit);
  if (tid_ == 0) team_->reduces_.erase(gen);
  return result;
}

void TeamThread::task(const std::function<void(TeamThread&)>& body) {
  Team* team = team_;
  team_->pool_.spawn(tid_, [team, body](int exec_tid) {
    body(team->member(exec_tid));
  });
}

void TeamThread::task_if(bool cond,
                         const std::function<void(TeamThread&)>& body) {
  if (cond) {
    task(body);
    return;
  }
  // Undeferred: allocation + immediate execution on this thread.
  os().compute_ns(runtime().tuning().task_spawn_ns +
                  runtime().tuning().task_exec_ns);
  body(*this);
}

void TeamThread::taskwait() {
  ompt::Registry& tools = os().tools();
  tools.emit([&](ompt::Tool& t) {
    t.on_sync_region(ompt::SyncRegion::kTaskwait, ompt::Endpoint::kBegin,
                     os().engine().now(), tid_);
  });
  team_->pool_.taskwait(tid_);
  tools.emit([&](ompt::Tool& t) {
    t.on_sync_region(ompt::SyncRegion::kTaskwait, ompt::Endpoint::kEnd,
                     os().engine().now(), tid_);
  });
}

void TeamThread::taskloop(std::int64_t lo, std::int64_t hi,
                          std::int64_t grainsize,
                          const std::function<void(TeamThread&, std::int64_t,
                                                   std::int64_t)>& body) {
  const std::int64_t total = std::max<std::int64_t>(0, hi - lo);
  if (total == 0) return;
  std::int64_t grain = grainsize;
  if (grain <= 0) {
    grain = std::max<std::int64_t>(
        1, total / (8 * static_cast<std::int64_t>(nthreads())));
  }
  for (std::int64_t b = lo; b < hi; b += grain) {
    const std::int64_t e = std::min(hi, b + grain);
    task([body, b, e](TeamThread& ex) { body(ex, b, e); });
  }
  taskwait();
}

}  // namespace kop::komp
