// Teams and the per-thread view of a parallel region.
//
// TeamThread is what Clang-lowered code sees through __kmpc_* entry
// points: worksharing-loop dispatch (static / static-chunked / dynamic
// / guided), barriers (with task draining), single / master / critical
// / ordered / atomic, reductions, and explicit tasks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "komp/barrier.hpp"
#include "komp/icv.hpp"
#include "komp/tasking.hpp"
#include "komp/tuning.hpp"
#include "ompt/ompt.hpp"

namespace kop::komp {

class Runtime;
class Team;

enum class ReduceOp { kSum, kProd, kMin, kMax };

class TeamThread {
 public:
  TeamThread(Team& team, int tid);
  ~TeamThread();

  TeamThread(const TeamThread&) = delete;
  TeamThread& operator=(const TeamThread&) = delete;

  int id() const { return tid_; }
  int nthreads() const;
  Team& team() { return *team_; }
  Runtime& runtime();
  osal::Os& os();

  // --- executing application work ---
  void compute(const hw::WorkBlock& block, int data_zone = -1);
  void compute_ns(sim::Time ns);
  /// Work touching partition `part` of `nparts` of `region` (resolves
  /// the NUMA zone, applying first-touch if the OS deferred placement).
  void compute_partitioned(const hw::WorkBlock& block, int part, int nparts);
  /// Cost of copying `bytes` (private-array init, copyin, copyprivate).
  void charge_memcpy(std::uint64_t bytes);

  // --- worksharing ---
  using RangeBody = std::function<void(std::int64_t begin, std::int64_t end)>;
  /// #pragma omp for schedule(...) [nowait]
  void for_loop(Schedule sched, int chunk, std::int64_t lo, std::int64_t hi,
                const RangeBody& body, bool nowait = false);
  /// #pragma omp for ordered schedule(static,1): `body(i)` runs with
  /// ordered-section semantics (iteration order preserved).
  void for_ordered(std::int64_t lo, std::int64_t hi,
                   const std::function<void(std::int64_t)>& body);
  /// #pragma omp sections: each body runs exactly once, distributed
  /// over the team first-come-first-served; implicit barrier unless
  /// nowait.
  void sections(const std::vector<std::function<void()>>& bodies,
                bool nowait = false);

  // --- synchronization ---
  void barrier();
  /// The implicit barrier closing a parallel region (fired by the
  /// runtime, not user code; reported to tools as barrier-implicit).
  void region_end_barrier();
  /// Returns true on the thread that executed the body.
  bool single(const std::function<void()>& body, bool nowait = false);
  void master(const std::function<void()>& body);
  void critical(const std::string& name, const std::function<void()>& body);
  /// #pragma omp atomic on a shared scalar contended by the team.
  void atomic_update();
  /// single copyprivate(buf): executor runs body; everyone else copies
  /// `bytes` out of the executor's buffer.
  void copyprivate(std::uint64_t bytes, const std::function<void()>& body);
  double reduce(double value, ReduceOp op);

  // --- tasks ---
  void task(const std::function<void(TeamThread&)>& body);
  /// #pragma omp task if(cond): when cond is false the task is
  /// undeferred -- executed immediately by the encountering thread
  /// (still paying the task bookkeeping).
  void task_if(bool cond, const std::function<void(TeamThread&)>& body);
  void taskwait();
  /// #pragma omp taskloop grainsize(g): the encountering thread slices
  /// [lo, hi) into tasks of ~g iterations and waits for them (no
  /// nogroup support).  g <= 0 picks a default aiming at ~8 tasks per
  /// team thread.
  void taskloop(std::int64_t lo, std::int64_t hi, std::int64_t grainsize,
                const std::function<void(TeamThread&, std::int64_t,
                                         std::int64_t)>& body);

 private:
  friend class Team;

  void barrier_internal(ompt::SyncRegion kind);
  /// Worksharing core; `kind` is what tools see (sections are lowered
  /// onto a dynamic loop but must report as sections).
  void for_loop_impl(Schedule sched, int chunk, std::int64_t lo,
                     std::int64_t hi, const RangeBody& body, bool nowait,
                     ompt::WorkKind kind);

  Team* team_;
  int tid_;
  std::uint64_t loop_gen_ = 0;
  std::uint64_t single_seen_ = 0;
  std::uint64_t reduce_gen_ = 0;
};

class Team {
 public:
  Team(Runtime& rt, int size);

  int size() const { return size_; }
  Runtime& runtime() { return *rt_; }
  TaskPool& tasks() { return pool_; }
  TeamBarrier& barrier_impl() { return barrier_; }

  /// TeamThread for a live member (used by task execution to give the
  /// executing thread its own context).
  TeamThread& member(int tid);

 private:
  friend class TeamThread;

  struct LoopState {
    bool init = false;
    std::int64_t next = 0;
    std::int64_t hi = 0;
    std::int64_t chunk = 1;
    int grabbers = 0;    // threads concurrently hitting the counter
    int done_count = 0;  // threads finished with this loop
    // ordered support
    std::int64_t ordered_next = 0;
    std::unique_ptr<osal::WaitQueue> ordered_gate;
  };
  struct ReduceState {
    bool init = false;
    double acc = 0.0;
    int arrived = 0;
  };

  std::shared_ptr<LoopState> loop_state(std::uint64_t gen);
  void finish_loop(std::uint64_t gen, LoopState& st);
  /// Where each team thread runs (per OMP_PROC_BIND), so the task pool
  /// can map the team onto the NUMA topology.
  static std::vector<int> cpu_map(const Runtime& rt, int size);

  Runtime* rt_;
  int size_;
  TeamBarrier barrier_;
  TaskPool pool_;
  std::uint64_t single_claims_ = 0;
  std::map<std::uint64_t, std::shared_ptr<LoopState>> loops_;
  std::map<std::uint64_t, std::shared_ptr<ReduceState>> reduces_;
  std::vector<TeamThread*> members_;

  // Region-exit rendezvous: the master may not destroy the Team until
  // every worker has fully left the region (their delayed barrier
  // wakes still reference the team's gates).
  friend class Runtime;
  int departed_ = 0;
  std::unique_ptr<osal::WaitQueue> exit_gate_;
};

}  // namespace kop::komp
