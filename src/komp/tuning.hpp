// Per-build tuning of the komp runtime: which "libomp binary" this is.
//
// PIK runs the pristine user-level binary; RTK runs the port, whose
// pthread-compat layer and kernel allocation paths show up as slightly
// higher per-primitive overheads (what Fig. 7 vs Fig. 8 measures);
// Linux is the stock baseline.  The numbers are bookkeeping costs of
// the runtime itself, charged on the executing CPU.
#pragma once

#include "sim/time.hpp"

namespace kop::komp {

struct RuntimeTuning {
  enum class BarrierAlgo {
    kCentralized,  // single counter + broadcast (O(n) serialization)
    kTree,         // radix-2 gather/release (O(log n) depth); stands in
                   // for libomp's hyper barrier
  };

  /// __kmpc_fork_call bookkeeping before workers are woken.
  sim::Time fork_base_ns = 900;
  /// Additional fork bookkeeping per team thread (argument marshalling,
  /// per-thread state setup).
  sim::Time fork_per_thread_ns = 110;
  /// Master-side join bookkeeping after the join barrier.
  sim::Time join_base_ns = 500;
  /// Worksharing-loop init (__kmpc_for_static_init / dispatch_init).
  sim::Time dispatch_init_ns = 260;
  /// Per-chunk-grab bookkeeping, excluding the shared-counter atomic.
  sim::Time dispatch_next_ns = 120;
  /// Explicit-task allocation + enqueue (__kmpc_omp_task_alloc+task).
  sim::Time task_spawn_ns = 650;
  /// Per-task execution bookkeeping (dequeue, frame switch).
  sim::Time task_exec_ns = 250;
  /// single/master construct bookkeeping.
  sim::Time single_ns = 180;
  /// Per-thread leaf cost of a reduction (combining into the tree).
  sim::Time reduction_leaf_ns = 150;
  /// Per-step cost multiplier applied on top of hardware cacheline
  /// transfers inside the barrier (models the port's extra layers).
  sim::Time barrier_step_extra_ns = 0;
  BarrierAlgo barrier_algo = BarrierAlgo::kTree;
  /// Hierarchical stealing (KOMP_NUMA_SCHED=hier) only raids a remote
  /// zone's victim when that victim holds at least this many queued
  /// tasks -- shallow remote deques are not worth the SLIT hop.  A
  /// liveness pass ignores the threshold when no candidate clears it.
  int remote_steal_min_queue = 4;
  /// Tasks taken per successful remote steal: the first executes as the
  /// stolen task, the rest are re-queued on the thief's own deque so
  /// followers find them locally (amortizes the remote transfer).
  int remote_steal_batch = 4;
};

/// Stock libomp on Linux.
inline RuntimeTuning linux_libomp_tuning() { return {}; }

/// PIK: the very same binary as Linux -- identical runtime tuning
/// (§6.1: "precisely the same OpenMP runtime, pthread library, and
/// libc/libm are used as with the Linux version").
inline RuntimeTuning pik_libomp_tuning() { return {}; }

/// RTK: the ported runtime.  The pthread compatibility layer and
/// direct kernel memory allocation add small per-primitive overheads
/// (§6.1: "RTK shows slightly higher overhead than the Linux
/// implementation").
inline RuntimeTuning rtk_libomp_tuning() {
  RuntimeTuning t;
  t.fork_base_ns += 600;
  t.fork_per_thread_ns += 60;
  t.join_base_ns += 300;
  t.dispatch_init_ns += 120;
  t.dispatch_next_ns += 60;
  t.task_spawn_ns += 250;
  t.task_exec_ns += 100;
  t.single_ns += 80;
  t.reduction_leaf_ns += 70;
  t.barrier_step_extra_ns = 90;
  return t;
}

}  // namespace kop::komp
