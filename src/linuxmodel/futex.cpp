#include "linuxmodel/futex.hpp"

#include <algorithm>

namespace kop::linuxmodel {

osal::WaitQueue& FutexTable::queue_for(std::uint64_t addr) {
  auto it = queues_.find(addr);
  if (it == queues_.end()) {
    it = queues_.emplace(addr, os_->make_wait_queue()).first;
  }
  return *it->second;
}

void FutexTable::wait(std::uint64_t addr, sim::Time spin_ns) {
  os_->counters().add_on(os_->current_cpu(), telemetry::Counter::kFutexWaits);
  queue_for(addr).wait(spin_ns);
}

bool FutexTable::wait_until(std::uint64_t addr, sim::Time deadline,
                            sim::Time spin_ns) {
  os_->counters().add_on(os_->current_cpu(), telemetry::Counter::kFutexWaits);
  return queue_for(addr).wait_until(deadline, spin_ns);
}

int FutexTable::wake(std::uint64_t addr, int count) {
  auto it = queues_.find(addr);
  if (it == queues_.end()) return 0;
  int woken = 0;
  while (count-- > 0 && it->second->waiters() > 0) {
    it->second->notify_one();
    ++woken;
  }
  if (woken > 0) {
    os_->counters().add_on(os_->current_cpu(),
                           telemetry::Counter::kFutexWakes,
                           static_cast<std::uint64_t>(woken));
  }
  return woken;
}

std::size_t FutexTable::waiters(std::uint64_t addr) const {
  auto it = queues_.find(addr);
  return it == queues_.end() ? 0 : it->second->waiters();
}

}  // namespace kop::linuxmodel
