// Address-keyed futex table, the blocking primitive under Linux
// pthreads (and the thing PIK's syscall layer must emulate, §4.3).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "osal/osal.hpp"

namespace kop::linuxmodel {

class FutexTable {
 public:
  explicit FutexTable(osal::Os& os) : os_(&os) {}

  /// FUTEX_WAIT: block on `addr` (the caller has already checked the
  /// userspace value).  `spin_ns` models the glibc adaptive pre-spin.
  void wait(std::uint64_t addr, sim::Time spin_ns = 0);

  /// FUTEX_WAIT with absolute timeout; false on timeout.
  bool wait_until(std::uint64_t addr, sim::Time deadline, sim::Time spin_ns = 0);

  /// FUTEX_WAKE: wake up to `count` waiters; returns number woken.
  int wake(std::uint64_t addr, int count);

  std::size_t waiters(std::uint64_t addr) const;

 private:
  osal::WaitQueue& queue_for(std::uint64_t addr);

  osal::Os* os_;
  std::unordered_map<std::uint64_t, std::unique_ptr<osal::WaitQueue>> queues_;
};

}  // namespace kop::linuxmodel
