#include "linuxmodel/linux_os.hpp"

#include "hw/cost_params.hpp"

namespace kop::linuxmodel {

LinuxOs::LinuxOs(sim::Engine& engine, hw::MachineConfig machine)
    : LinuxOs(engine, machine, hw::linux_costs(machine)) {}

LinuxOs::LinuxOs(sim::Engine& engine, hw::MachineConfig machine,
                 hw::OsCosts costs)
    : BaseOs(engine, std::move(machine), std::move(costs)) {
  futex_ = std::make_unique<FutexTable>(*this);
}

LinuxOs::~LinuxOs() = default;

void LinuxOs::charge_syscall() {
  if (engine_->current() != nullptr && costs_.syscall_ns > 0) {
    counters().add_on(current_cpu(), telemetry::Counter::kSyscalls);
    engine_->sleep_for(costs_.syscall_ns);
  }
}

Process* LinuxOs::create_process(std::string name) {
  processes_.push_back(std::make_unique<Process>(next_pid_++, std::move(name)));
  return processes_.back().get();
}

int LinuxOs::first_touch_zone(int preferred) { return preferred; }

void LinuxOs::place_region(hw::MemRegion& region, osal::AllocPolicy policy) {
  // Anonymous memory: demand paged; THP=madvise backs most of a large
  // region with 2M pages but leaves a 4K residue (§2.2 testbed config).
  region.set_demand_paged(true);
  region.set_page_size(hw::PageSize::k2M);
  region.set_small_page_fraction(1.0 - costs_.thp_2m_fraction);
  // First touch is the *policy*, but on a busy multi-socket box a
  // slice of a large allocation ends up off-node anyway: khugepaged
  // collapses ranges wherever huge pages are free, automatic NUMA
  // balancing migrates pages mid-run, reclaim breaks locality.
  // Nautilus's per-zone buddy allocation has none of these (§6.2 gain
  // (c): "NUMA-cognizant memory allocations").
  int dram_zones = 0;
  for (const auto& z : machine_.zones)
    if (z.kind == hw::ZoneKind::kDram) ++dram_zones;
  region.set_remote_mix(dram_zones > 1 ? 0.28 : 0.0);

  using Kind = osal::AllocPolicy::Kind;
  switch (policy.kind) {
    case Kind::kZone:
      region.set_home_zone(policy.zone);  // numactl --membind
      break;
    case Kind::kInterleave: {
      std::vector<int> zones;
      for (const auto& z : machine_.zones) {
        if (z.kind == hw::ZoneKind::kDram) zones.push_back(z.id);
      }
      std::vector<int> slices(kFirstTouchSlices);
      for (int i = 0; i < kFirstTouchSlices; ++i)
        slices[static_cast<std::size_t>(i)] =
            zones[static_cast<std::size_t>((interleave_next_ + i) % zones.size())];
      interleave_next_ =
          (interleave_next_ + kFirstTouchSlices) % static_cast<int>(zones.size());
      region.set_slice_zones(std::move(slices));
      break;
    }
    case Kind::kLocal:
    case Kind::kFirstTouch:
      // Default Linux policy: placement deferred to first touch.
      defer_placement(region);
      break;
  }
}

}  // namespace kop::linuxmodel
