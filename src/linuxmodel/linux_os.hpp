// The Linux-like substrate the user-level baseline runs on: demand
// paging with THP=madvise, first-touch NUMA, futexes, syscall costs,
// timer ticks and background noise (all via hw::linux_costs).
#pragma once

#include <memory>

#include "linuxmodel/futex.hpp"
#include "linuxmodel/process.hpp"
#include "osal/base_os.hpp"

namespace kop::linuxmodel {

class LinuxOs final : public osal::BaseOs {
 public:
  LinuxOs(sim::Engine& engine, hw::MachineConfig machine);
  /// Variant with an explicit cost sheet (for ablations).
  LinuxOs(sim::Engine& engine, hw::MachineConfig machine, hw::OsCosts costs);
  ~LinuxOs() override;

  FutexTable& futex() { return *futex_; }

  /// Charge one user->kernel->user crossing to the calling thread.
  void charge_syscall();

  Process* create_process(std::string name);
  const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

 protected:
  void place_region(hw::MemRegion& region, osal::AllocPolicy policy) override;
  int first_touch_zone(int preferred) override;

 private:
  std::unique_ptr<FutexTable> futex_;
  std::vector<std::unique_ptr<Process>> processes_;
  int next_pid_ = 1000;
  int interleave_next_ = 0;
};

}  // namespace kop::linuxmodel
