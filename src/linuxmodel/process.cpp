#include "linuxmodel/process.hpp"

// Process is header-only today; this TU anchors the library and leaves
// room for /proc-style reporting to grow without touching headers.
