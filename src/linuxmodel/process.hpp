// Minimal Linux process bookkeeping: a pid, its threads, and its
// mapped regions.  Exists so the baseline stack mirrors the paper's
// framing ("the OpenMP application becomes a multithreaded Linux
// process") and so tests can assert process-level invariants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/memory.hpp"
#include "osal/osal.hpp"

namespace kop::linuxmodel {

class Process {
 public:
  Process(int pid, std::string name) : pid_(pid), name_(std::move(name)) {}

  int pid() const { return pid_; }
  const std::string& name() const { return name_; }

  void add_thread(osal::Thread* t) { threads_.push_back(t); }
  const std::vector<osal::Thread*>& threads() const { return threads_; }

  void add_region(hw::MemRegion* r) { regions_.push_back(r); }
  const std::vector<hw::MemRegion*>& regions() const { return regions_; }

  std::uint64_t mapped_bytes() const {
    std::uint64_t n = 0;
    for (const auto* r : regions_) n += r->bytes();
    return n;
  }

 private:
  int pid_;
  std::string name_;
  std::vector<osal::Thread*> threads_;
  std::vector<hw::MemRegion*> regions_;
};

}  // namespace kop::linuxmodel
