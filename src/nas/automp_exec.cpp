#include "nas/exec.hpp"

namespace kop::nas {

namespace {
constexpr int kParts = 64;
}

RunResult run_automp(osal::Os& os, virgil::Virgil& vg,
                     const BenchmarkSpec& spec) {
  RunResult out;
  auto regions = alloc_regions(os, spec);

  // --- untimed init: first touch via VIRGIL tasks (the CCK-compiled
  // initialization loop is a DOALL too) ---
  const sim::Time init_start = os.engine().now();
  {
    virgil::CountdownLatch latch(
        os, static_cast<int>(regions.size()) * kParts);
    for (auto& [name, region] : regions) {
      hw::MemRegion* r = region;
      for (int p = 0; p < kParts; ++p) {
        vg.submit([&os, &latch, r, p]() {
          const std::uint64_t slice = r->bytes() / kParts;
          hw::WorkBlock b;
          b.cpu_ns = static_cast<sim::Time>(static_cast<double>(slice) / 16.0);
          b.mem_fraction = 0.9;
          b.bytes_touched = slice;
          b.working_set_bytes = slice;
          b.pattern = hw::AccessPattern::kStreaming;
          b.region = r;
          const int zone = os.resolve_data_zone(r, p, kParts);
          os.compute(b, zone);
          latch.count_down();
        });
      }
    }
    latch.wait();
  }
  out.init_seconds = sim::to_seconds(os.engine().now() - init_start);

  // --- compile (front end + AutoMP middle end + backend) ---
  const cck::Module module = to_cck_module(spec, regions);
  cck::CompilerOptions copts;
  copts.width = vg.width();
  copts.kernel_target = std::string(vg.flavor()) == "virgil-kernel";
  const cck::Compiler compiler(copts);
  const cck::CompiledProgram program = compiler.compile(module);
  out.compile_report = program.report;

  // --- timed section ---
  cck::ProgramRunner runner(os, vg);
  os.engine().snapshot_point();
  const sim::Time t0 = os.engine().now();
  for (int step = 0; step < spec.timesteps; ++step) runner.run(program);
  out.timed_seconds = sim::to_seconds(os.engine().now() - t0);

  for (auto& [name, region] : regions) os.free_region(region);
  return out;
}

}  // namespace kop::nas
