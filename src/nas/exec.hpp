// NAS executors: run a BenchmarkSpec through the libomp path (komp
// runtime -- Linux / RTK / PIK) or through the CCK/AutoMP path
// (compile to tasks, execute on VIRGIL).
//
// Both paths follow the NAS protocol: an *untimed* initialization
// phase touches every region in parallel (demand-paged OSes fault
// here; first-touch placement happens here), then the timed section
// runs `timesteps` iterations of the benchmark's loops.
#pragma once

#include <map>
#include <string>

#include "cck/codegen.hpp"
#include "cck/program.hpp"
#include "komp/runtime.hpp"
#include "nas/specs.hpp"
#include "virgil/virgil.hpp"

namespace kop::nas {

struct RunResult {
  double timed_seconds = 0.0;
  double init_seconds = 0.0;
  /// AutoMP runs carry the compile report (empty for libomp runs).
  cck::CompileReport compile_report;
};

/// Convert a workload loop into its IR form, bound to a live region.
cck::Loop to_cck_loop(const LoopSpec& spec, hw::MemRegion* region);

/// Build the full IR module of a benchmark timestep (what the CCK
/// front end would produce from the annotated source).
cck::Module to_cck_module(const BenchmarkSpec& spec,
                          const std::map<std::string, hw::MemRegion*>& regions);

/// Allocate the benchmark's regions with default (local/first-touch)
/// policy.
std::map<std::string, hw::MemRegion*> alloc_regions(osal::Os& os,
                                                    const BenchmarkSpec& spec);

/// libomp path.  Must be called from the app main thread.
RunResult run_openmp(komp::Runtime& rt, const BenchmarkSpec& spec);

/// AutoMP path (user or kernel VIRGIL).  Must be called from the app
/// main thread; `vg` must be started.
RunResult run_automp(osal::Os& os, virgil::Virgil& vg,
                     const BenchmarkSpec& spec);

}  // namespace kop::nas
