#include "nas/functional.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <stdexcept>

namespace kop::nas::functional {

namespace {

/// 5-point Laplacian matvec y = A*x on an n x n grid (Dirichlet).
void spmv_range(const std::vector<double>& x, std::vector<double>& y, int n,
                std::int64_t row_begin, std::int64_t row_end) {
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    const int i = static_cast<int>(r) / n;
    const int j = static_cast<int>(r) % n;
    double v = 4.0 * x[static_cast<std::size_t>(r)];
    if (i > 0) v -= x[static_cast<std::size_t>(r - n)];
    if (i < n - 1) v -= x[static_cast<std::size_t>(r + n)];
    if (j > 0) v -= x[static_cast<std::size_t>(r - 1)];
    if (j < n - 1) v -= x[static_cast<std::size_t>(r + 1)];
    y[static_cast<std::size_t>(r)] = v;
  }
}

std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CgResult cg_kernel(komp::Runtime& rt, int n, int iterations) {
  const auto size = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<double> x(size, 0.0), b(size, 1.0);
  std::vector<double> r = b, p = b, ap(size, 0.0);

  CgResult out;
  out.iterations = iterations;

  double rr = 0.0;
  rt.parallel([&](komp::TeamThread& tt) {
    double local = 0.0;
    tt.for_loop(komp::Schedule::kStatic, 0, 0,
                static_cast<std::int64_t>(size),
                [&](std::int64_t lo, std::int64_t hi) {
                  for (std::int64_t k = lo; k < hi; ++k)
                    local += r[static_cast<std::size_t>(k)] *
                             r[static_cast<std::size_t>(k)];
                },
                /*nowait=*/true);
    const double total = tt.reduce(local, komp::ReduceOp::kSum);
    tt.master([&] { rr = total; });
    tt.barrier();
  });
  out.initial_residual = std::sqrt(rr);

  for (int it = 0; it < iterations; ++it) {
    double pap = 0.0;
    rt.parallel([&](komp::TeamThread& tt) {
      double local = 0.0;
      tt.for_loop(komp::Schedule::kStatic, 0, 0,
                  static_cast<std::int64_t>(size),
                  [&](std::int64_t lo, std::int64_t hi) {
                    spmv_range(p, ap, n, lo, hi);
                    for (std::int64_t k = lo; k < hi; ++k)
                      local += p[static_cast<std::size_t>(k)] *
                               ap[static_cast<std::size_t>(k)];
                  },
                  /*nowait=*/true);
      const double total = tt.reduce(local, komp::ReduceOp::kSum);
      tt.master([&] { pap = total; });
      tt.barrier();
    });

    const double alpha = rr / pap;
    double rr_new = 0.0;
    rt.parallel([&](komp::TeamThread& tt) {
      double local = 0.0;
      tt.for_loop(komp::Schedule::kStatic, 0, 0,
                  static_cast<std::int64_t>(size),
                  [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t k = lo; k < hi; ++k) {
                      const auto s = static_cast<std::size_t>(k);
                      x[s] += alpha * p[s];
                      r[s] -= alpha * ap[s];
                      local += r[s] * r[s];
                    }
                  },
                  /*nowait=*/true);
      const double total = tt.reduce(local, komp::ReduceOp::kSum);
      tt.master([&] { rr_new = total; });
      tt.barrier();
    });

    const double beta = rr_new / rr;
    rr = rr_new;
    rt.parallel([&](komp::TeamThread& tt) {
      tt.for_loop(komp::Schedule::kStatic, 0, 0,
                  static_cast<std::int64_t>(size),
                  [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t k = lo; k < hi; ++k) {
                      const auto s = static_cast<std::size_t>(k);
                      p[s] = r[s] + beta * p[s];
                    }
                  });
    });
  }
  out.final_residual = std::sqrt(rr);
  return out;
}

EpResult ep_reference(std::uint64_t samples) {
  EpResult out;
  out.total = samples;
  for (std::uint64_t k = 0; k < samples; ++k) {
    const double u = static_cast<double>(hash64(2 * k) >> 11) * 0x1.0p-53;
    const double v = static_cast<double>(hash64(2 * k + 1) >> 11) * 0x1.0p-53;
    if (u * u + v * v <= 1.0) ++out.inside;
  }
  return out;
}

EpResult ep_kernel(komp::Runtime& rt, std::uint64_t samples) {
  EpResult out;
  out.total = samples;
  std::uint64_t inside = 0;
  rt.parallel([&](komp::TeamThread& tt) {
    std::uint64_t local = 0;
    tt.for_loop(komp::Schedule::kGuided, 1, 0,
                static_cast<std::int64_t>(samples),
                [&](std::int64_t lo, std::int64_t hi) {
                  for (std::int64_t k = lo; k < hi; ++k) {
                    const auto kk = static_cast<std::uint64_t>(k);
                    const double u =
                        static_cast<double>(hash64(2 * kk) >> 11) * 0x1.0p-53;
                    const double v =
                        static_cast<double>(hash64(2 * kk + 1) >> 11) * 0x1.0p-53;
                    if (u * u + v * v <= 1.0) ++local;
                  }
                },
                /*nowait=*/true);
    const double total =
        tt.reduce(static_cast<double>(local), komp::ReduceOp::kSum);
    tt.master([&] { inside = static_cast<std::uint64_t>(total + 0.5); });
    tt.barrier();
  });
  out.inside = inside;
  return out;
}

std::vector<std::uint32_t> is_kernel(komp::Runtime& rt,
                                     const std::vector<std::uint32_t>& keys,
                                     int num_buckets) {
  // Keys are bucketed by value range, histogrammed with per-thread
  // counts (merged under critical), then written to their slots.
  const std::uint64_t max_key =
      keys.empty() ? 1
                   : static_cast<std::uint64_t>(
                         *std::max_element(keys.begin(), keys.end())) + 1;
  const auto nb = static_cast<std::uint64_t>(num_buckets);
  auto bucket_of = [&](std::uint32_t k) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(k) * nb / max_key);
  };

  std::vector<std::uint64_t> counts(static_cast<std::size_t>(num_buckets), 0);
  rt.parallel([&](komp::TeamThread& tt) {
    std::vector<std::uint64_t> local(static_cast<std::size_t>(num_buckets), 0);
    tt.for_loop(komp::Schedule::kStatic, 0, 0,
                static_cast<std::int64_t>(keys.size()),
                [&](std::int64_t lo, std::int64_t hi) {
                  for (std::int64_t k = lo; k < hi; ++k)
                    ++local[bucket_of(keys[static_cast<std::size_t>(k)])];
                },
                /*nowait=*/true);
    tt.critical("is_merge", [&] {
      for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += local[i];
    });
    tt.barrier();
  });

  // Exclusive prefix sum (serial; it is tiny).
  std::vector<std::uint64_t> offsets(counts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i)
    offsets[i + 1] = offsets[i] + counts[i];

  // Scatter into buckets, then sort each bucket in parallel.
  std::vector<std::uint32_t> out(keys.size());
  std::vector<std::uint64_t> cursor = offsets;
  for (const std::uint32_t k : keys) out[cursor[bucket_of(k)]++] = k;

  rt.parallel([&](komp::TeamThread& tt) {
    tt.for_loop(komp::Schedule::kDynamic, 1, 0,
                static_cast<std::int64_t>(num_buckets),
                [&](std::int64_t lo, std::int64_t hi) {
                  for (std::int64_t bkt = lo; bkt < hi; ++bkt) {
                    const auto s = static_cast<std::size_t>(bkt);
                    std::sort(out.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
                              out.begin() + static_cast<std::ptrdiff_t>(offsets[s + 1]));
                  }
                });
  });
  return out;
}

double mg_kernel(komp::Runtime& rt, int n, int sweeps) {
  const auto size = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<double> u(size, 0.0), next(size, 0.0), f(size, 1.0);

  auto idx = [n](int i, int j) {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(j);
  };

  for (int s = 0; s < sweeps; ++s) {
    rt.parallel([&](komp::TeamThread& tt) {
      tt.for_loop(komp::Schedule::kStatic, 0, 1, n - 1,
                  [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i) {
                      for (int j = 1; j < n - 1; ++j) {
                        const int ii = static_cast<int>(i);
                        next[idx(ii, j)] =
                            0.25 * (u[idx(ii - 1, j)] + u[idx(ii + 1, j)] +
                                    u[idx(ii, j - 1)] + u[idx(ii, j + 1)] +
                                    f[idx(ii, j)]);
                      }
                    }
                  });
    });
    std::swap(u, next);
  }

  // Residual ||f - A u||_2 over interior points.
  double norm = 0.0;
  rt.parallel([&](komp::TeamThread& tt) {
    double local = 0.0;
    tt.for_loop(komp::Schedule::kStatic, 0, 1, n - 1,
                [&](std::int64_t lo, std::int64_t hi) {
                  for (std::int64_t i = lo; i < hi; ++i) {
                    for (int j = 1; j < n - 1; ++j) {
                      const int ii = static_cast<int>(i);
                      const double au =
                          4.0 * u[idx(ii, j)] - u[idx(ii - 1, j)] -
                          u[idx(ii + 1, j)] - u[idx(ii, j - 1)] -
                          u[idx(ii, j + 1)];
                      const double d = f[idx(ii, j)] - au;
                      local += d * d;
                    }
                  }
                },
                /*nowait=*/true);
    const double total = tt.reduce(local, komp::ReduceOp::kSum);
    tt.master([&] { norm = total; });
    tt.barrier();
  });
  return std::sqrt(norm);
}

namespace {

using Cplx = std::complex<double>;

/// One direction of an iterative radix-2 FFT with the butterflies of
/// each stage distributed over the team.
void fft_inplace(komp::Runtime& rt, std::vector<Cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation (serial; O(n)).
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? -1.0 : 1.0);
    const Cplx wlen(std::cos(ang), std::sin(ang));
    const std::size_t blocks = n / len;
    rt.parallel([&](komp::TeamThread& tt) {
      tt.for_loop(komp::Schedule::kStatic, 0, 0,
                  static_cast<std::int64_t>(blocks),
                  [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t blk = lo; blk < hi; ++blk) {
                      const std::size_t base =
                          static_cast<std::size_t>(blk) * len;
                      Cplx w(1.0, 0.0);
                      for (std::size_t k = 0; k < len / 2; ++k) {
                        const Cplx u = a[base + k];
                        const Cplx v = a[base + k + len / 2] * w;
                        a[base + k] = u + v;
                        a[base + k + len / 2] = u - v;
                        w *= wlen;
                      }
                    }
                  });
    });
  }
  if (inverse) {
    rt.parallel([&](komp::TeamThread& tt) {
      tt.for_loop(komp::Schedule::kStatic, 0, 0,
                  static_cast<std::int64_t>(n),
                  [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                      a[static_cast<std::size_t>(i)] /=
                          static_cast<double>(n);
                  });
    });
  }
}

}  // namespace

double ft_kernel(komp::Runtime& rt, std::size_t n, unsigned seed) {
  std::vector<Cplx> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t h = hash64(seed + i);
    signal[i] = Cplx(static_cast<double>(h >> 40) / (1 << 24),
                     static_cast<double>(h & 0xffffff) / (1 << 24));
  }
  std::vector<Cplx> work = signal;
  fft_inplace(rt, work, /*inverse=*/false);
  fft_inplace(rt, work, /*inverse=*/true);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_err = std::max(max_err, std::abs(work[i] - signal[i]));
  return max_err;
}


VerifyResult verify(komp::Runtime& rt, const std::string& benchmark) {
  VerifyResult out;
  char buf[160];
  if (benchmark == "CG") {
    const CgResult r = cg_kernel(rt, 24, 40);
    out.passed = r.final_residual < r.initial_residual * 1e-3;
    std::snprintf(buf, sizeof(buf), "CG residual %.3e -> %.3e (40 iters)",
                  r.initial_residual, r.final_residual);
  } else if (benchmark == "EP") {
    const EpResult par = ep_kernel(rt, 50'000);
    const EpResult ser = ep_reference(50'000);
    out.passed = par.inside == ser.inside;
    std::snprintf(buf, sizeof(buf), "EP acceptance %llu/%llu (serial %llu)",
                  static_cast<unsigned long long>(par.inside),
                  static_cast<unsigned long long>(par.total),
                  static_cast<unsigned long long>(ser.inside));
  } else if (benchmark == "FT") {
    const double err = ft_kernel(rt, 1024, 11);
    out.passed = err < 1e-10;
    std::snprintf(buf, sizeof(buf), "FT round-trip max error %.3e", err);
  } else if (benchmark == "MG") {
    const double r5 = mg_kernel(rt, 32, 5);
    const double r20 = mg_kernel(rt, 32, 20);
    out.passed = r20 < r5 && r20 > 0.0;
    std::snprintf(buf, sizeof(buf), "MG residual %.3e (5 sweeps) -> %.3e (20)",
                  r5, r20);
  } else if (benchmark == "IS") {
    std::vector<std::uint32_t> keys;
    std::uint64_t state = 99;
    for (int i = 0; i < 4096; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      keys.push_back(static_cast<std::uint32_t>(state >> 40));
    }
    const auto sorted = is_kernel(rt, keys, 32);
    auto ref = keys;
    std::sort(ref.begin(), ref.end());
    out.passed = sorted == ref;
    std::snprintf(buf, sizeof(buf), "IS sorted %zu keys (%s)", keys.size(),
                  out.passed ? "match" : "MISMATCH");
  } else if (benchmark == "BT" || benchmark == "SP" || benchmark == "LU") {
    // The three solvers share a verification proxy: the linear-system
    // CG kernel (they all check a solved system's residual).
    const CgResult r = cg_kernel(rt, 16, 30);
    out.passed = r.final_residual < r.initial_residual * 1e-2;
    std::snprintf(buf, sizeof(buf),
                  "%s solver proxy residual %.3e -> %.3e",
                  benchmark.c_str(), r.initial_residual, r.final_residual);
  } else {
    throw std::invalid_argument("nas::functional::verify: unknown benchmark " +
                                benchmark);
  }
  out.detail = buf;
  return out;
}

}  // namespace kop::nas::functional
