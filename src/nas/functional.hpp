// Functional mini-kernels: real numerics executed *through* the komp
// runtime (worksharing, reductions, barriers, critical sections), at
// class-S-like sizes.  They validate that the runtime executes real
// OpenMP patterns correctly -- the timing model is exercised by the
// workload descriptors, correctness by these.
#pragma once

#include <cstdint>
#include <vector>

#include "komp/runtime.hpp"

namespace kop::nas::functional {

struct CgResult {
  double initial_residual = 0.0;
  double final_residual = 0.0;
  int iterations = 0;
};

/// Conjugate-gradient on the 2-D 5-point Laplacian over an n x n grid.
/// Parallel SpMV + dot products via worksharing and reductions.
CgResult cg_kernel(komp::Runtime& rt, int n, int iterations);

struct EpResult {
  std::uint64_t inside = 0;  // points inside the unit circle
  std::uint64_t total = 0;
};

/// EP-style Monte Carlo with a deterministic per-index generator:
/// results are independent of the schedule and thread count.
EpResult ep_kernel(komp::Runtime& rt, std::uint64_t samples);

/// Serial reference for ep_kernel.
EpResult ep_reference(std::uint64_t samples);

/// IS-style parallel bucket sort: per-thread histograms merged under
/// critical, then a parallel permutation.  Returns the sorted keys.
std::vector<std::uint32_t> is_kernel(komp::Runtime& rt,
                                     const std::vector<std::uint32_t>& keys,
                                     int num_buckets);

/// MG-style Jacobi smoothing on an n x n grid; returns the residual
/// 2-norm after `sweeps` sweeps (must decrease monotonically).
double mg_kernel(komp::Runtime& rt, int n, int sweeps);

/// FT-style kernel: parallel radix-2 FFT (butterfly stages as
/// worksharing loops) of a size-n signal (n a power of two), followed
/// by the inverse; returns the max round-trip reconstruction error
/// (should be ~1e-12 -- validates stage barriers and worksharing on
/// strided access).
double ft_kernel(komp::Runtime& rt, std::size_t n, unsigned seed);

struct VerifyResult {
  bool passed = false;
  std::string detail;  // human-readable check summary
};

/// NAS-style class-S verification for a benchmark by name ("BT", "FT",
/// ...): runs the matching functional mini-kernel through the runtime
/// and checks its numerical result, like the real suite's
/// "VERIFICATION SUCCESSFUL" stage.  Throws on unknown names.
VerifyResult verify(komp::Runtime& rt, const std::string& benchmark);

}  // namespace kop::nas::functional
