#include <algorithm>

#include "nas/exec.hpp"

namespace kop::nas {

namespace {
constexpr int kParts = 64;  // first-touch partition granularity
}

cck::Loop to_cck_loop(const LoopSpec& spec, hw::MemRegion* region) {
  cck::Loop l;
  l.name = spec.name;
  l.trip = spec.trip;
  l.omp.parallel_for = true;
  l.omp.schedule = spec.schedule;
  l.omp.chunk = spec.chunk;
  if (spec.needs_object_privatization)
    l.omp.private_vars.push_back("work_" + spec.name);

  cck::Stmt body;
  body.label = spec.name + ".body";
  body.est_cost_ns = spec.per_iter_ns;
  body.accesses.push_back(cck::read(spec.region));
  body.accesses.push_back(cck::write(spec.region));
  if (spec.needs_object_privatization) {
    // The per-thread work array: whole-object accesses every
    // iteration (not elementwise) -- carried unless privatized.
    body.accesses.push_back(
        cck::Access{"work_" + spec.name, /*write=*/true,
                    /*per_iteration=*/false, /*carried=*/false});
    body.accesses.push_back(
        cck::Access{"work_" + spec.name, /*write=*/false,
                    /*per_iteration=*/false, /*carried=*/false});
  }
  l.body.push_back(std::move(body));

  l.exec.region = region;
  l.exec.per_iter_ns = spec.per_iter_ns;
  l.exec.mem_fraction = spec.mem_fraction;
  l.exec.bytes_per_iter = spec.bytes_per_iter;
  l.exec.pattern = spec.pattern;
  l.exec.skew = spec.skew;
  return l;
}

cck::Module to_cck_module(
    const BenchmarkSpec& spec,
    const std::map<std::string, hw::MemRegion*>& regions) {
  cck::Module m;
  cck::Function fn;
  fn.name = "main";
  for (const auto& r : spec.regions)
    fn.declare(cck::Var{r.name, r.bytes, /*is_object=*/true});
  for (const auto& l : spec.loops) {
    if (l.needs_object_privatization)
      fn.declare(cck::Var{"work_" + l.name, 1ULL << 20, /*is_object=*/true});
  }
  if (spec.serial_ns_per_step > 0)
    fn.items.push_back(cck::Item::make_serial(spec.serial_ns_per_step));
  for (const auto& l : spec.loops)
    fn.items.push_back(cck::Item::make_loop(to_cck_loop(l, regions.at(l.region))));
  m.functions["main"] = std::move(fn);
  return m;
}

std::map<std::string, hw::MemRegion*> alloc_regions(osal::Os& os,
                                                    const BenchmarkSpec& spec) {
  std::map<std::string, hw::MemRegion*> out;
  for (const auto& r : spec.regions) {
    out[r.name] =
        os.alloc_region(spec.full_name() + "/" + r.name, r.bytes,
                        osal::AllocPolicy::local());
  }
  return out;
}

namespace {

/// Streaming touch of one partition of a region: the init loop body.
hw::WorkBlock touch_block(hw::MemRegion* region, int part) {
  const std::uint64_t slice = region->bytes() / kParts;
  hw::WorkBlock b;
  b.cpu_ns = static_cast<sim::Time>(static_cast<double>(slice) / 16.0);
  b.mem_fraction = 0.9;
  b.bytes_touched = slice;
  b.working_set_bytes = slice;
  b.pattern = hw::AccessPattern::kStreaming;
  b.region = region;
  (void)part;
  return b;
}

}  // namespace

RunResult run_openmp(komp::Runtime& rt, const BenchmarkSpec& spec) {
  RunResult out;
  osal::Os& os = rt.os();
  auto regions = alloc_regions(os, spec);

  // --- untimed init: parallel first touch of every region ---
  // Each thread touches the same slice of the index space the timed
  // loops will assign to it (NAS init loops mirror the compute loops'
  // static distribution), so first-touch placement lands local.
  const double init_start = rt.wtime();
  rt.parallel([&](komp::TeamThread& tt) {
    const int n = tt.nthreads();
    const int lo = tt.id() * kParts / n;
    const int hi = (tt.id() + 1) * kParts / n;
    for (auto& [name, region] : regions) {
      for (int p = lo; p < hi; ++p)
        tt.compute_partitioned(touch_block(region, p), p, kParts);
      // n > kParts: threads sharing a slice skip re-touching.
    }
    tt.barrier();
  });
  out.init_seconds = rt.wtime() - init_start;

  // Pre-build the IR loop shells once (chunk cost helper reuse).
  std::vector<cck::Loop> loops;
  loops.reserve(spec.loops.size());
  for (const auto& l : spec.loops)
    loops.push_back(to_cck_loop(l, regions.at(l.region)));

  // --- timed section ---
  // Warmup/measurement boundary: nothing above reads spec.timesteps,
  // so a snapshot hook may fork here and late-bind the step count (the
  // loop bound is re-read every iteration).
  rt.os().engine().snapshot_point();
  const double t0 = rt.wtime();
  for (int step = 0; step < spec.timesteps; ++step) {
    rt.parallel([&](komp::TeamThread& tt) {
      for (std::size_t li = 0; li < spec.loops.size(); ++li) {
        const LoopSpec& ls = spec.loops[li];
        const cck::Loop& cl = loops[li];
        tt.for_loop(ls.schedule, ls.chunk, 0, ls.trip,
                    [&](std::int64_t b, std::int64_t e) {
                      // Split the block at partition boundaries: NUMA
                      // placement is page-granular, so a thread whose
                      // range straddles two zones pays remote latency
                      // only for the straddling slice, not for its
                      // whole block.
                      std::int64_t sb = b;
                      while (sb < e) {
                        const int part =
                            cck::chunk_partition(cl, sb, sb + 1, kParts);
                        std::int64_t se =
                            (static_cast<std::int64_t>(part) + 1) * ls.trip /
                            kParts;
                        se = std::max(sb + 1, std::min(se, e));
                        const hw::WorkBlock wb =
                            cck::chunk_work(cl, sb, se, tt.nthreads());
                        tt.compute_partitioned(wb, part, kParts);
                        sb = se;
                      }
                    });
      }
      tt.master([&] {
        if (spec.serial_ns_per_step > 0)
          tt.compute_ns(static_cast<sim::Time>(spec.serial_ns_per_step));
      });
      tt.barrier();
    });
  }
  out.timed_seconds = rt.wtime() - t0;

  for (auto& [name, region] : regions) os.free_region(region);
  return out;
}

}  // namespace kop::nas
