#include "nas/spec_parser.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

namespace kop::nas {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string tok;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!tok.empty()) out.push_back(tok);
      tok.clear();
    } else {
      tok.push_back(c);
    }
  }
  if (!tok.empty()) out.push_back(tok);
  return out;
}

double parse_number(const std::string& s, int line, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw SpecParseError(line, std::string("bad ") + what + ": '" + s + "'");
  }
}

std::uint64_t parse_bytes(const std::string& s, int line) {
  if (s.empty()) throw SpecParseError(line, "empty size");
  std::uint64_t mult = 1;
  std::string num = s;
  switch (std::toupper(static_cast<unsigned char>(s.back()))) {
    case 'K': mult = 1ULL << 10; num.pop_back(); break;
    case 'M': mult = 1ULL << 20; num.pop_back(); break;
    case 'G': mult = 1ULL << 30; num.pop_back(); break;
    default: break;
  }
  return static_cast<std::uint64_t>(parse_number(num, line, "size") *
                                    static_cast<double>(mult));
}

double parse_duration_ns(const std::string& s, int line) {
  double mult = 1.0;
  std::string num = s;
  auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return s.size() > n && lower(s.substr(s.size() - n)) == suffix;
  };
  if (ends_with("ns")) {
    num = s.substr(0, s.size() - 2);
  } else if (ends_with("us")) {
    mult = 1e3;
    num = s.substr(0, s.size() - 2);
  } else if (ends_with("ms")) {
    mult = 1e6;
    num = s.substr(0, s.size() - 2);
  } else if (s.size() > 1 &&
             std::tolower(static_cast<unsigned char>(s.back())) == 's' &&
             !std::isalpha(static_cast<unsigned char>(s[s.size() - 2]))) {
    mult = 1e9;
    num = s.substr(0, s.size() - 1);
  }
  return parse_number(num, line, "duration") * mult;
}

hw::AccessPattern parse_pattern(const std::string& s, int line) {
  const std::string p = lower(s);
  if (p == "streaming") return hw::AccessPattern::kStreaming;
  if (p == "random") return hw::AccessPattern::kRandom;
  if (p == "blocked") return hw::AccessPattern::kBlocked;
  throw SpecParseError(line, "unknown pattern '" + s + "'");
}

bool parse_bool(const std::string& s, int line) {
  const std::string b = lower(s);
  if (b == "true" || b == "1" || b == "yes") return true;
  if (b == "false" || b == "0" || b == "no") return false;
  throw SpecParseError(line, "bad boolean '" + s + "'");
}

}  // namespace

BenchmarkSpec parse_spec(std::istream& in) {
  BenchmarkSpec spec;
  spec.timesteps = 1;
  bool saw_benchmark = false;
  LoopSpec* current_loop = nullptr;
  LoopSpec pending;
  std::map<std::string, std::uint64_t> region_bytes;
  /// accesses_per_ns values deferred until per_iter is known.
  double pending_apn = -1.0;

  std::string line;
  int lineno = 0;

  auto finish_loop = [&](int at_line) {
    if (current_loop == nullptr) return;
    if (pending.region.empty())
      throw SpecParseError(at_line, "loop '" + pending.name + "' has no region");
    if (region_bytes.count(pending.region) == 0)
      throw SpecParseError(at_line, "loop '" + pending.name +
                                        "' references unknown region '" +
                                        pending.region + "'");
    if (pending.per_iter_ns <= 0)
      throw SpecParseError(at_line,
                           "loop '" + pending.name + "' needs per_iter > 0");
    if (pending_apn >= 0) {
      pending.bytes_per_iter = static_cast<std::uint64_t>(
          pending_apn * pending.per_iter_ns * 64.0);
    }
    spec.loops.push_back(pending);
    current_loop = nullptr;
    pending = LoopSpec{};
    pending_apn = -1.0;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const auto tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string key = lower(tok[0]);

    if (current_loop != nullptr) {
      if (key == "end") {
        finish_loop(lineno);
        continue;
      }
      if (tok.size() < 2)
        throw SpecParseError(lineno, "loop attribute '" + key + "' needs a value");
      if (key == "region") pending.region = tok[1];
      else if (key == "trip")
        pending.trip = static_cast<std::int64_t>(parse_number(tok[1], lineno, "trip"));
      else if (key == "per_iter")
        pending.per_iter_ns = parse_duration_ns(tok[1], lineno);
      else if (key == "mem_fraction")
        pending.mem_fraction = parse_number(tok[1], lineno, "mem_fraction");
      else if (key == "bytes_per_iter")
        pending.bytes_per_iter = parse_bytes(tok[1], lineno);
      else if (key == "accesses_per_ns")
        pending_apn = parse_number(tok[1], lineno, "accesses_per_ns");
      else if (key == "pattern")
        pending.pattern = parse_pattern(tok[1], lineno);
      else if (key == "skew")
        pending.skew = parse_number(tok[1], lineno, "skew");
      else if (key == "privatized_object")
        pending.needs_object_privatization = parse_bool(tok[1], lineno);
      else if (key == "schedule") {
        std::string sched_text = tok[1];
        if (tok.size() >= 3) sched_text += "," + tok[2];
        if (lower(tok[1]) == "runtime") {
          pending.schedule = komp::Schedule::kRuntime;
        } else if (!komp::parse_omp_schedule(sched_text, pending.schedule,
                                             pending.chunk)) {
          throw SpecParseError(lineno, "bad schedule '" + sched_text + "'");
        }
      } else {
        throw SpecParseError(lineno, "unknown loop attribute '" + key + "'");
      }
      continue;
    }

    if (key == "benchmark") {
      if (tok.size() < 2) throw SpecParseError(lineno, "benchmark needs a name");
      spec.name = tok[1];
      saw_benchmark = true;
      if (tok.size() >= 4 && lower(tok[2]) == "class" && tok[3].size() == 1)
        spec.clazz = tok[3][0];
    } else if (key == "timesteps") {
      if (tok.size() < 2) throw SpecParseError(lineno, "timesteps needs a value");
      spec.timesteps =
          static_cast<int>(parse_number(tok[1], lineno, "timesteps"));
    } else if (key == "region") {
      if (tok.size() < 3)
        throw SpecParseError(lineno, "region needs a name and a size");
      const std::uint64_t bytes = parse_bytes(tok[2], lineno);
      spec.regions.push_back(RegionSpec{tok[1], bytes});
      region_bytes[tok[1]] = bytes;
    } else if (key == "static_bytes") {
      if (tok.size() < 2) throw SpecParseError(lineno, "static_bytes needs a value");
      spec.static_bytes = parse_bytes(tok[1], lineno);
    } else if (key == "serial_per_step") {
      if (tok.size() < 2)
        throw SpecParseError(lineno, "serial_per_step needs a value");
      spec.serial_ns_per_step = parse_duration_ns(tok[1], lineno);
    } else if (key == "loop") {
      if (tok.size() < 2) throw SpecParseError(lineno, "loop needs a name");
      pending = LoopSpec{};
      pending.name = tok[1];
      pending_apn = -1.0;
      current_loop = &pending;
    } else if (key == "end") {
      throw SpecParseError(lineno, "'end' outside a loop block");
    } else {
      throw SpecParseError(lineno, "unknown directive '" + key + "'");
    }
  }
  if (current_loop != nullptr)
    throw SpecParseError(lineno, "unterminated loop '" + pending.name + "'");
  if (!saw_benchmark) throw SpecParseError(lineno, "missing 'benchmark' line");
  if (spec.regions.empty()) throw SpecParseError(lineno, "no regions declared");
  if (spec.loops.empty()) throw SpecParseError(lineno, "no loops declared");
  return spec;
}

BenchmarkSpec parse_spec(const std::string& text) {
  std::istringstream in(text);
  return parse_spec(in);
}

std::string format_spec(const BenchmarkSpec& spec) {
  std::ostringstream oss;
  oss << std::setprecision(17);
  oss << "benchmark " << spec.name << " class " << spec.clazz << "\n";
  oss << "timesteps " << spec.timesteps << "\n";
  for (const auto& r : spec.regions)
    oss << "region " << r.name << " " << r.bytes << "\n";
  oss << "static_bytes " << spec.static_bytes << "\n";
  if (spec.serial_ns_per_step > 0)
    oss << "serial_per_step " << spec.serial_ns_per_step << "ns\n";
  for (const auto& l : spec.loops) {
    oss << "loop " << l.name << "\n";
    oss << "  region " << l.region << "\n";
    oss << "  trip " << l.trip << "\n";
    oss << "  per_iter " << l.per_iter_ns << "ns\n";
    oss << "  mem_fraction " << l.mem_fraction << "\n";
    oss << "  bytes_per_iter " << l.bytes_per_iter << "\n";
    const char* pattern =
        l.pattern == hw::AccessPattern::kStreaming  ? "streaming"
        : l.pattern == hw::AccessPattern::kRandom   ? "random"
                                                    : "blocked";
    oss << "  pattern " << pattern << "\n";
    if (l.skew != 0.0) oss << "  skew " << l.skew << "\n";
    if (l.needs_object_privatization) oss << "  privatized_object true\n";
    if (l.schedule != komp::Schedule::kStatic || l.chunk > 0) {
      oss << "  schedule ";
      switch (l.schedule) {
        case komp::Schedule::kStatic:
        case komp::Schedule::kStaticChunked: oss << "static"; break;
        case komp::Schedule::kDynamic: oss << "dynamic"; break;
        case komp::Schedule::kGuided: oss << "guided"; break;
        case komp::Schedule::kRuntime: oss << "runtime"; break;
      }
      if (l.chunk > 0) oss << " " << l.chunk;
      oss << "\n";
    }
    oss << "end\n";
  }
  return oss.str();
}

}  // namespace kop::nas
