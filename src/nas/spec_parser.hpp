// Text format for workload descriptors, so downstream users can define
// and sweep their own benchmarks without recompiling.
//
//   benchmark WAVE class B
//   timesteps 8
//   region field 512M
//   static_bytes 512M
//   serial_per_step 2ms
//   loop stencil
//     region field
//     trip 2048
//     per_iter 2ms            # ns / us / ms / s suffixes
//     mem_fraction 0.55
//     accesses_per_ns 0.004   # alternative: bytes_per_iter 500K
//     pattern streaming       # streaming | random | blocked
//     skew 0.5
//     privatized_object true
//     schedule dynamic 4      # static | static,N | dynamic | guided | runtime
//   end
//
// '#' starts a comment; sizes accept K/M/G suffixes.  Errors carry the
// line number.
#pragma once

#include <istream>
#include <stdexcept>
#include <string>

#include "nas/specs.hpp"

namespace kop::nas {

class SpecParseError : public std::runtime_error {
 public:
  SpecParseError(int line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse one benchmark description.  Throws SpecParseError on malformed
/// input (unknown keys, bad numbers, loops without regions, ...).
BenchmarkSpec parse_spec(std::istream& in);
BenchmarkSpec parse_spec(const std::string& text);

/// Render a spec back to the text format (round-trips through
/// parse_spec).
std::string format_spec(const BenchmarkSpec& spec);

}  // namespace kop::nas
