#include "nas/specs.hpp"

#include <stdexcept>

namespace kop::nas {

std::uint64_t BenchmarkSpec::total_region_bytes() const {
  std::uint64_t n = 0;
  for (const auto& r : regions) n += r.bytes;
  return n;
}

double BenchmarkSpec::base_work_ns() const {
  double ns = serial_ns_per_step;
  for (const auto& l : loops) ns += l.per_iter_ns * static_cast<double>(l.trip);
  return ns * timesteps;
}

namespace {

constexpr double kSec = 1e9;

/// Build one loop: `step_share_ns` of nominal work per timestep spread
/// over `trip` iterations; `accesses_per_ns` is the TLB-relevant
/// cacheline-touch intensity.
LoopSpec loop(std::string name, std::string region, double step_share_ns,
              std::int64_t trip, double mem_fraction, double accesses_per_ns,
              hw::AccessPattern pattern, double skew = 0.0,
              bool priv = false) {
  LoopSpec l;
  l.name = std::move(name);
  l.region = std::move(region);
  l.trip = trip;
  l.per_iter_ns = step_share_ns / static_cast<double>(trip);
  l.mem_fraction = mem_fraction;
  l.bytes_per_iter =
      static_cast<std::uint64_t>(accesses_per_ns * l.per_iter_ns * 64.0);
  l.pattern = pattern;
  l.skew = skew;
  l.needs_object_privatization = priv;
  return l;
}

}  // namespace

BenchmarkSpec bt() {
  // BT-B: block-tridiagonal solver.  The x/y/z line solves stride
  // across planes (translation-hostile) and privatize per-thread
  // work arrays (lhs/rhs blocks) -- AutoMP leaves them sequential.
  BenchmarkSpec b;
  b.name = "BT";
  b.clazz = 'B';
  b.regions = {{"fields", 420ULL << 20}};
  b.static_bytes = 420ULL << 20;  // class-B globals fit the boot image
  b.timesteps = 8;
  const double step = 950.0 * kSec / b.timesteps;
  b.loops = {
      loop("compute_rhs", "fields", step * 0.24, 1024, 0.45, 0.0040,
           hw::AccessPattern::kStreaming),
      loop("x_solve", "fields", step * 0.23, 1024, 0.50, 0.0073,
           hw::AccessPattern::kRandom),
      loop("y_solve", "fields", step * 0.23, 1024, 0.50, 0.0073,
           hw::AccessPattern::kRandom),
      loop("z_solve", "fields", step * 0.23, 1024, 0.50, 0.0073,
           hw::AccessPattern::kRandom),
      // lhs factorization: per-thread work-array blocks (privatized
      // objects) -- the slice AutoMP must leave sequential (SS6.2).
      loop("lhs_factor", "fields", step * 0.07, 1024, 0.50, 0.0073,
           hw::AccessPattern::kRandom, 0.0, /*priv=*/true),
  };
  b.serial_ns_per_step = step * 0.0004;
  return b;
}

BenchmarkSpec sp() {
  // SP-C: scalar pentadiagonal solver, same structure as BT with
  // lighter per-plane work.
  BenchmarkSpec b;
  b.name = "SP";
  b.clazz = 'C';
  b.regions = {{"fields", 1100ULL << 20}};
  b.static_bytes = 1100ULL << 20;
  b.timesteps = 8;
  const double step = 2390.0 * kSec / b.timesteps;
  b.loops = {
      loop("compute_rhs", "fields", step * 0.28, 1024, 0.45, 0.0035,
           hw::AccessPattern::kStreaming),
      loop("x_solve", "fields", step * 0.22, 1024, 0.50, 0.0049,
           hw::AccessPattern::kRandom),
      loop("y_solve", "fields", step * 0.22, 1024, 0.50, 0.0049,
           hw::AccessPattern::kRandom),
      loop("z_solve", "fields", step * 0.22, 1024, 0.50, 0.0049,
           hw::AccessPattern::kRandom),
      loop("lhs_factor", "fields", step * 0.06, 1024, 0.50, 0.0049,
           hw::AccessPattern::kRandom, 0.0, /*priv=*/true),
  };
  b.serial_ns_per_step = step * 0.0004;
  return b;
}

BenchmarkSpec lu() {
  // LU-C: SSOR.  blts/buts sweep wavefronts with per-thread temporary
  // blocks (privatized objects); many synchronization points per step.
  BenchmarkSpec b;
  b.name = "LU";
  b.clazz = 'C';
  b.regions = {{"fields", 600ULL << 20}};
  b.static_bytes = 600ULL << 20;
  b.timesteps = 8;
  const double step = 4150.0 * kSec / b.timesteps;
  b.loops = {
      loop("rhs", "fields", step * 0.40, 2048, 0.45, 0.0030,
           hw::AccessPattern::kStreaming),
      loop("blts", "fields", step * 0.27, 2048, 0.50, 0.0014,
           hw::AccessPattern::kRandom),
      loop("buts", "fields", step * 0.27, 2048, 0.50, 0.0014,
           hw::AccessPattern::kRandom),
      loop("jac_blocks", "fields", step * 0.06, 2048, 0.50, 0.0014,
           hw::AccessPattern::kRandom, 0.0, /*priv=*/true),
  };
  b.serial_ns_per_step = step * 0.0003;
  return b;
}

BenchmarkSpec ft() {
  // FT-B: 3-D FFT; the dimension passes stride across the whole
  // volume (random at page granularity), no object privatization.
  BenchmarkSpec b;
  b.name = "FT";
  b.clazz = 'B';
  b.regions = {{"cmplx", 640ULL << 20}};
  b.static_bytes = 640ULL << 20;
  b.timesteps = 8;
  const double step = 205.0 * kSec / b.timesteps;
  b.loops = {
      loop("evolve", "cmplx", step * 0.28, 1024, 0.50, 0.0040,
           hw::AccessPattern::kStreaming),
      loop("fft_x", "cmplx", step * 0.24, 1024, 0.55, 0.0011,
           hw::AccessPattern::kRandom),
      loop("fft_y", "cmplx", step * 0.24, 1024, 0.55, 0.0011,
           hw::AccessPattern::kRandom),
      loop("fft_z", "cmplx", step * 0.24, 1024, 0.55, 0.0011,
           hw::AccessPattern::kRandom),
  };
  b.serial_ns_per_step = step * 0.0004;
  return b;
}

BenchmarkSpec ep() {
  // EP-C: embarrassingly parallel Gaussian pairs; compute-bound, tiny
  // working set -- only the OS-noise/tick difference shows.
  BenchmarkSpec b;
  b.name = "EP";
  b.clazz = 'C';
  b.regions = {{"tables", 16ULL << 20}};
  b.static_bytes = 16ULL << 20;
  b.timesteps = 8;
  const double step = 2030.0 * kSec / b.timesteps;
  b.loops = {
      loop("gauss", "tables", step, 4096, 0.05, 0.0002,
           hw::AccessPattern::kBlocked),
  };
  b.serial_ns_per_step = step * 0.0002;
  return b;
}

BenchmarkSpec cg() {
  // CG-C: sparse matvec with irregular row lengths (skewed) dominates;
  // the OpenMP source uses coarse static chunking, which is exactly
  // where AutoMP's latency-aware chunking wins (§6.2).
  BenchmarkSpec b;
  b.name = "CG";
  b.clazz = 'C';
  b.regions = {{"matrix", 700ULL << 20}};
  b.static_bytes = 700ULL << 20;
  b.timesteps = 8;
  const double step = 915.0 * kSec / b.timesteps;
  b.loops = {
      loop("spmv", "matrix", step * 0.70, 4096, 0.60, 0.0003,
           hw::AccessPattern::kRandom, /*skew=*/0.60),
      loop("dot", "matrix", step * 0.15, 1024, 0.40, 0.0030,
           hw::AccessPattern::kStreaming),
      loop("axpy", "matrix", step * 0.15, 1024, 0.40, 0.0040,
           hw::AccessPattern::kStreaming),
  };
  b.serial_ns_per_step = step * 0.0003;
  return b;
}

BenchmarkSpec mg() {
  // MG-C: multigrid V-cycles; coarse levels have few, uneven
  // iterations (skew), and restriction/prolongation is latency-varied.
  BenchmarkSpec b;
  b.name = "MG";
  b.clazz = 'C';
  b.regions = {{"grids", 450ULL << 20}};
  b.static_bytes = 450ULL << 20;
  b.timesteps = 8;
  const double step = 387.0 * kSec / b.timesteps;
  b.loops = {
      loop("resid", "grids", step * 0.35, 2048, 0.55, 0.0010,
           hw::AccessPattern::kRandom),
      loop("psinv", "grids", step * 0.25, 2048, 0.55, 0.0040,
           hw::AccessPattern::kStreaming, /*skew=*/0.60),
      loop("rprj3", "grids", step * 0.20, 1024, 0.50, 0.0030,
           hw::AccessPattern::kStreaming, /*skew=*/0.85),
      loop("interp", "grids", step * 0.20, 1024, 0.50, 0.0030,
           hw::AccessPattern::kStreaming, /*skew=*/0.85),
  };
  b.serial_ns_per_step = step * 0.0004;
  return b;
}

BenchmarkSpec is() {
  // IS-C: integer bucket sort.  Both phases rely on per-thread bucket
  // count arrays (privatized objects): AutoMP extracts *no*
  // parallelism here, the paper's extreme case.
  BenchmarkSpec b;
  b.name = "IS";
  b.clazz = 'C';
  b.regions = {{"keys", 300ULL << 20}};
  b.static_bytes = 300ULL << 20;
  b.timesteps = 8;
  const double step = 40.0 * kSec / b.timesteps;
  b.loops = {
      loop("rank", "keys", step * 0.60, 1024, 0.65, 0.0017,
           hw::AccessPattern::kRandom, 0.0, /*priv=*/true),
      loop("permute", "keys", step * 0.40, 1024, 0.60, 0.0040,
           hw::AccessPattern::kStreaming, 0.0, /*priv=*/true),
  };
  b.serial_ns_per_step = step * 0.0008;
  return b;
}

std::vector<BenchmarkSpec> paper_suite() {
  return {bt(), ft(), ep(), mg(), sp(), lu(), cg(), is()};
}

std::vector<BenchmarkSpec> cck_suite() {
  return {bt(), ft(), ep(), mg(), sp(), lu(), cg()};
}

BenchmarkSpec by_name(const std::string& name) {
  for (auto& b : paper_suite()) {
    if (b.name == name) return b;
  }
  throw std::invalid_argument("unknown NAS benchmark: " + name);
}

}  // namespace kop::nas
