// Workload descriptors for the NAS 3.0 C+OpenMP benchmarks at the
// paper's evaluated classes (BT-B, FT-B, EP-C, MG-C, SP-C, LU-C, CG-C,
// IS-C; §6.2 explains why BT and FT run class B).
//
// Each benchmark is described by its memory regions and the parallel
// loops of one timestep: trip counts, per-iteration cost, memory
// intensity and pattern, load skew, OpenMP scheduling, and whether the
// loop's OpenMP version relies on privatizing *objects* (per-thread
// work arrays) -- the attribute that decides AutoMP's fate (§6.2).
//
// The per-iteration costs are calibrated so the simulated Linux
// single-thread times approximate the paper's `t` values (Figs. 9-12);
// EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/memory.hpp"
#include "komp/icv.hpp"

namespace kop::nas {

struct RegionSpec {
  std::string name;
  std::uint64_t bytes = 0;
};

struct LoopSpec {
  std::string name;
  std::string region;
  std::int64_t trip = 1024;
  double per_iter_ns = 1000.0;
  double mem_fraction = 0.4;
  std::uint64_t bytes_per_iter = 0;
  hw::AccessPattern pattern = hw::AccessPattern::kStreaming;
  /// Load imbalance across the index space (linear ramp +-skew).
  double skew = 0.0;
  /// The OpenMP source privatizes per-thread work *arrays* here; the
  /// OpenMP runtime handles that fine, AutoMP cannot (§6.2).
  bool needs_object_privatization = false;
  komp::Schedule schedule = komp::Schedule::kStatic;
  int chunk = 0;
};

struct BenchmarkSpec {
  std::string name;   // "BT", "FT", ...
  char clazz = 'C';   // NAS class letter
  std::vector<RegionSpec> regions;
  std::vector<LoopSpec> loops;
  /// Timed iterations (scaled down from the real benchmarks; virtual
  /// time is linear in this, so only ratios matter).
  int timesteps = 8;
  /// Serial (master-only) work per timestep.
  double serial_ns_per_step = 0.0;
  /// Sum of link-time static data (drives the RTK/CCK boot-image
  /// check; benchmarks converted to dynamic allocation report 0).
  std::uint64_t static_bytes = 0;

  std::string full_name() const { return name + "-" + clazz; }
  std::uint64_t total_region_bytes() const;
  /// Total nominal (uninflated) work of the timed section, ns.
  double base_work_ns() const;
};

BenchmarkSpec bt();  // BT-B
BenchmarkSpec sp();  // SP-C
BenchmarkSpec lu();  // LU-C
BenchmarkSpec ft();  // FT-B
BenchmarkSpec ep();  // EP-C
BenchmarkSpec cg();  // CG-C
BenchmarkSpec mg();  // MG-C
BenchmarkSpec is();  // IS-C

/// The full Fig. 9/10/14 suite.
std::vector<BenchmarkSpec> paper_suite();
/// The Fig. 11/12/15 suite (IS elided: AutoMP extracts no parallelism).
std::vector<BenchmarkSpec> cck_suite();
/// Lookup by name ("BT"...); throws on unknown.
BenchmarkSpec by_name(const std::string& name);

}  // namespace kop::nas
