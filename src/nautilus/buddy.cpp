#include "nautilus/buddy.hpp"

#include <algorithm>

namespace kop::nautilus {

namespace {
bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

BuddyAllocator::BuddyAllocator(std::uint64_t base, std::uint64_t size,
                               std::uint64_t min_block)
    : base_(base), min_block_(min_block) {
  if (!is_pow2(min_block_)) throw BuddyError("min_block must be a power of two");
  // Largest power-of-two multiple of min_block that fits in size.
  max_order_ = -1;
  std::uint64_t blk = min_block_;
  while (blk * 2 <= size) {
    blk *= 2;
    ++max_order_;
  }
  ++max_order_;  // blk == min_block << max_order_
  capacity_ = blk;
  if (capacity_ < min_block_) throw BuddyError("zone smaller than min block");
  free_lists_.assign(static_cast<std::size_t>(max_order_) + 1, {});
  free_lists_[static_cast<std::size_t>(max_order_)].push_back(base_);
}

int BuddyAllocator::order_for(std::uint64_t bytes) const {
  if (bytes == 0) bytes = 1;
  int order = 0;
  std::uint64_t blk = min_block_;
  while (blk < bytes) {
    blk *= 2;
    ++order;
    if (order > max_order_) throw BuddyError("allocation larger than zone");
  }
  return order;
}

std::uint64_t BuddyAllocator::alloc(std::uint64_t bytes) {
  const int want = order_for(bytes);
  // Find the smallest free order >= want.
  int from = -1;
  for (int o = want; o <= max_order_; ++o) {
    if (!free_lists_[static_cast<std::size_t>(o)].empty()) {
      from = o;
      break;
    }
  }
  if (from < 0)
    throw BuddyError("out of memory: no free block of order " +
                     std::to_string(want));
  std::uint64_t addr = free_lists_[static_cast<std::size_t>(from)].back();
  free_lists_[static_cast<std::size_t>(from)].pop_back();
  // Split down to the wanted order, freeing the upper buddies.
  for (int o = from; o > want; --o) {
    const std::uint64_t half = block_size(o - 1);
    free_lists_[static_cast<std::size_t>(o - 1)].push_back(addr + half);
  }
  live_[addr] = want;
  allocated_bytes_ += block_size(want);
  return addr;
}

void BuddyAllocator::free(std::uint64_t addr) {
  auto it = live_.find(addr);
  if (it == live_.end()) throw BuddyError("free of unallocated address");
  int order = it->second;
  live_.erase(it);
  allocated_bytes_ -= block_size(order);

  // Coalesce with the buddy while possible.
  while (order < max_order_) {
    const std::uint64_t size = block_size(order);
    const std::uint64_t rel = addr - base_;
    const std::uint64_t buddy = base_ + (rel ^ size);
    auto& list = free_lists_[static_cast<std::size_t>(order)];
    auto bit = std::find(list.begin(), list.end(), buddy);
    if (bit == list.end()) break;
    list.erase(bit);
    addr = std::min(addr, buddy);
    ++order;
  }
  free_lists_[static_cast<std::size_t>(order)].push_back(addr);
}

std::uint64_t BuddyAllocator::largest_free_block() const {
  for (int o = max_order_; o >= 0; --o) {
    if (!free_lists_[static_cast<std::size_t>(o)].empty()) return block_size(o);
  }
  return 0;
}

}  // namespace kop::nautilus
