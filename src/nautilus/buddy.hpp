// Buddy-system physical memory allocator, one instance per NUMA zone
// (paper §2.1: "allocations are done with buddy system allocators that
// are selected based on the target zone").
//
// This is a real allocator over a simulated physical range: it hands
// out addresses, splits and coalesces buddies, and fails crisply on
// exhaustion, so the loader and kernel allocation paths behave like
// the real thing.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

namespace kop::nautilus {

class BuddyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BuddyAllocator {
 public:
  /// Manages [base, base + size).  `size` is rounded down to a power
  /// of two times min_block; min_block must be a power of two.
  BuddyAllocator(std::uint64_t base, std::uint64_t size,
                 std::uint64_t min_block = 4096);

  /// Allocate at least `bytes`; returns the block address.
  /// Throws BuddyError on exhaustion.
  std::uint64_t alloc(std::uint64_t bytes);

  /// Free a block previously returned by alloc(); coalesces buddies.
  void free(std::uint64_t addr);

  std::uint64_t base() const { return base_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t allocated_bytes() const { return allocated_bytes_; }
  std::uint64_t free_bytes() const { return capacity_ - allocated_bytes_; }
  /// Largest allocation that can currently succeed.
  std::uint64_t largest_free_block() const;

 private:
  int order_for(std::uint64_t bytes) const;
  std::uint64_t block_size(int order) const { return min_block_ << order; }

  std::uint64_t base_;
  std::uint64_t capacity_;
  std::uint64_t min_block_;
  int max_order_;
  /// free_lists_[k] holds addresses of free blocks of order k.
  std::vector<std::vector<std::uint64_t>> free_lists_;
  /// Live allocations: address -> order.
  std::map<std::uint64_t, int> live_;
  std::uint64_t allocated_bytes_ = 0;
};

}  // namespace kop::nautilus
