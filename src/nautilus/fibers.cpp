#include "nautilus/fibers.hpp"

#include <stdexcept>

namespace kop::nautilus {

FiberPool::FiberPool(osal::Os& os, int cpu, sim::Time create_ns,
                     sim::Time switch_ns)
    : os_(&os), cpu_(cpu), create_ns_(create_ns), switch_ns_(switch_ns) {}

void FiberPool::spawn(std::string name, FiberFn fn) {
  // Fiber creation is a stack + context allocation: hundreds of
  // nanoseconds, not the microseconds a kernel thread costs.
  if (os_->engine().current() != nullptr && create_ns_ > 0)
    os_->engine().sleep_for(create_ns_);
  pending_.push_back(Fiber{std::move(name), std::move(fn)});
  ++spawned_;
}

// Control discipline: exactly one context (the host or one fiber) runs
// at a time, and every switch passes through the host.  A yielding
// fiber queues itself and wakes the host; a finishing fiber wakes the
// host; the host picks the next runnable/pending fiber round-robin.

void FiberPool::yield_current() {
  if (runnable_.empty() && pending_.empty()) return;  // nothing to switch to
  if (switch_ns_ > 0) os_->engine().sleep_for(switch_ns_);
  ++switches_;
  runnable_.push_back(os_->engine().arm_wake_token());
  if (host_parked_) {
    host_parked_ = false;
    os_->engine().wake_token_at(host_, os_->engine().now());
  }
  os_->engine().block();
}

void FiberPool::run() {
  if (os_->engine().current() == nullptr)
    throw std::logic_error("FiberPool::run: must be called on a sim thread");

  auto park_host = [this] {
    host_ = os_->engine().arm_wake_token();
    host_parked_ = true;
    os_->engine().block();
  };

  while (!pending_.empty() || live_ > 0 || !runnable_.empty()) {
    // Start fresh fibers before resuming yielded ones: this gives the
    // natural round-robin (every fiber takes step k before any takes
    // step k+1).
    if (!pending_.empty()) {
      Fiber next = std::move(pending_.front());
      pending_.pop_front();
      ++live_;
      os_->spawn_thread(
          "fiber:" + next.name,
          [this, fn = std::move(next.fn)]() {
            Yield y(*this);
            fn(y);
            ++completed_;
            --live_;
            if (host_parked_) {
              host_parked_ = false;
              os_->engine().wake_token_at(host_, os_->engine().now());
            }
          },
          cpu_, /*create_cost_ns=*/0);
      park_host();
      continue;
    }
    if (!runnable_.empty()) {
      const auto tok = runnable_.front();
      runnable_.pop_front();
      os_->engine().wake_token_at(tok, os_->engine().now());
      park_host();
      continue;
    }
    // live_ > 0 with nothing runnable: a fiber is mid-flight and will
    // wake us when it yields or finishes.
    park_host();
  }
}

}  // namespace kop::nautilus
