// Nautilus fibers: cooperative, ultra-light execution contexts
// multiplexed on one kernel thread/CPU (§3.3 names fibers among the
// models Nautilus offers parallel runtimes; Hale & Dinda report
// orders-of-magnitude cheaper management than threads).
//
// A FiberPool owns a set of fibers bound to one CPU.  Fibers run
// cooperatively: exactly one executes at a time; yield() hands off
// round-robin at a cost of a context swap (no scheduler, no interrupt
// state, no FP save by default).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "osal/osal.hpp"

namespace kop::nautilus {

class FiberPool {
 public:
  /// Handle passed to fiber bodies for cooperative control.
  class Yield {
   public:
    explicit Yield(FiberPool& pool) : pool_(&pool) {}
    /// Hand the CPU to the next runnable fiber (returns when scheduled
    /// again).  No-op if this is the only live fiber.
    void operator()() { pool_->yield_current(); }

   private:
    FiberPool* pool_;
  };

  using FiberFn = std::function<void(Yield&)>;

  /// `create_ns`/`switch_ns`: fiber management costs -- far below the
  /// kernel-thread numbers in the OsCosts sheet.
  FiberPool(osal::Os& os, int cpu, sim::Time create_ns = 350,
            sim::Time switch_ns = 150);

  /// Create a fiber (charged create_ns to the caller).  Fibers start
  /// when run() drives the pool.
  void spawn(std::string name, FiberFn fn);

  /// Run all fibers to completion from the calling thread (which acts
  /// as the host kernel thread).  Must be called on a sim thread.
  void run();

  int spawned() const { return spawned_; }
  int completed() const { return completed_; }
  std::uint64_t switches() const { return switches_; }

 private:
  friend class Yield;
  void yield_current();

  osal::Os* os_;
  int cpu_;
  sim::Time create_ns_;
  sim::Time switch_ns_;

  struct Fiber {
    std::string name;
    FiberFn fn;
  };
  std::deque<Fiber> pending_;             // not yet started
  std::deque<sim::WakeToken> runnable_;   // yielded, waiting for turn
  int live_ = 0;
  int spawned_ = 0;
  int completed_ = 0;
  std::uint64_t switches_ = 0;
  sim::WakeToken host_;  // the run() caller, parked while fibers run
  bool host_parked_ = false;
};

}  // namespace kop::nautilus
