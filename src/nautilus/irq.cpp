#include "nautilus/irq.hpp"

#include <numeric>

namespace kop::nautilus {

sim::Time FpuManager::interrupt_entry(const std::string& handler,
                                      bool uses_sse) {
  if (!uses_sse || no_sse_.count(handler) > 0) return 0;
  ++offenders_[handler];
  total_cost_ += save_restore_ns_;
  return save_restore_ns_;
}

void FpuManager::mark_no_sse(const std::string& handler) {
  no_sse_.insert(handler);
}

IrqController::IrqController(osal::Os& os, FpuManager& fpu)
    : os_(&os), fpu_(&fpu),
      delivered_per_cpu_(static_cast<std::size_t>(os.machine().num_cpus), 0) {}

void IrqController::steer_all_to(int cpu) { steer_target_ = cpu; }

void IrqController::unsteer() { steer_target_ = -1; }

int IrqController::pick_cpu() {
  if (steer_target_ >= 0) return steer_target_;
  const int cpu = rr_next_;
  rr_next_ = (rr_next_ + 1) % os_->machine().num_cpus;
  return cpu;
}

void IrqController::add_source(std::string handler, sim::Time period,
                               sim::Time handler_ns, bool uses_sse) {
  sources_.push_back(Source{std::move(handler), period, handler_ns, uses_sse});
  schedule_next(sources_.size() - 1);
}

void IrqController::schedule_next(std::size_t source_index) {
  const Source& s = sources_[source_index];
  os_->engine().post_in(s.period, [this, source_index]() {
    if (stopped_) return;
    const Source& src = sources_[source_index];
    const int cpu = pick_cpu();
    ++delivered_per_cpu_[static_cast<std::size_t>(cpu)];
    os_->counters().add_on(cpu, telemetry::Counter::kDeviceInterrupts);
    // Interrupts run on the current thread's stack (§3.1).  The time
    // they steal from computation is part of the OsCosts noise model;
    // here we account delivery and the lazy-FP cost bookkeeping that
    // the tests and the FPU-offender report observe.
    stolen_ns_ += src.handler_ns + fpu_->interrupt_entry(src.handler, src.uses_sse);
    schedule_next(source_index);
  });
}

std::uint64_t IrqController::delivered(int cpu) const {
  return delivered_per_cpu_.at(static_cast<std::size_t>(cpu));
}

std::uint64_t IrqController::total_delivered() const {
  return std::accumulate(delivered_per_cpu_.begin(), delivered_per_cpu_.end(),
                         std::uint64_t{0});
}

}  // namespace kop::nautilus
