// Interrupt steering and the lazy SSE save/restore model (§3.4).
//
// Nautilus integrates kernel and application code, so it cannot forbid
// SSE use in "application" code; instead interrupts lazily save/restore
// SSE state, and the mechanism identifies interrupt handlers that
// trigger it (Clang aggressively vectorizes handlers) so they can be
// rebuilt with the no-SSE attribute.  IrqController also models the
// steering of device interrupts away from application CPUs, which is
// one of the noise-elimination features §6.2 credits.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "osal/osal.hpp"

namespace kop::nautilus {

/// Lazy FP (SSE+) state management for interrupt handlers.
class FpuManager {
 public:
  /// `save_restore_ns`: cost of one lazy save+restore round trip.
  explicit FpuManager(sim::Time save_restore_ns = 1800)
      : save_restore_ns_(save_restore_ns) {}

  /// Called on interrupt entry.  Returns the FP-management cost this
  /// entry incurs (0 if the handler is SSE-clean or marked no-SSE).
  /// Offending handlers are recorded -- the "point out interrupt code
  /// that is causing it to be invoked" feature.
  sim::Time interrupt_entry(const std::string& handler, bool uses_sse);

  /// Apply the no-SSE attribute to a handler (the fix the paper
  /// applied to the handlers the mechanism identified).
  void mark_no_sse(const std::string& handler);

  /// Handlers that triggered a lazy save/restore, with counts.
  const std::map<std::string, std::uint64_t>& offenders() const {
    return offenders_;
  }
  sim::Time total_cost() const { return total_cost_; }

 private:
  sim::Time save_restore_ns_;
  std::set<std::string> no_sse_;
  std::map<std::string, std::uint64_t> offenders_;
  sim::Time total_cost_ = 0;
};

/// Device-interrupt routing.  When steering is enabled, periodic device
/// interrupts land only on the housekeeping CPU; otherwise they are
/// distributed round-robin over all CPUs (stealing time from
/// application threads via posted engine events).
class IrqController {
 public:
  IrqController(osal::Os& os, FpuManager& fpu);

  /// Steer all device interrupts to one CPU (Nautilus default policy
  /// for HRT runs).
  void steer_all_to(int cpu);
  /// Disable steering (interrupts hit every CPU round-robin).
  void unsteer();
  bool steered() const { return steer_target_ >= 0; }
  int steer_target() const { return steer_target_; }

  /// Register a device interrupt source firing every `period`; each
  /// firing charges `handler_ns` (plus FP cost if `uses_sse`) on the
  /// target CPU.  Sources run until the engine drains or `stop()`.
  void add_source(std::string handler, sim::Time period, sim::Time handler_ns,
                  bool uses_sse = false);

  /// Stop generating interrupts (lets the engine drain).
  void stop() { stopped_ = true; }

  std::uint64_t delivered(int cpu) const;
  std::uint64_t total_delivered() const;
  /// Aggregate CPU time interrupt handlers consumed.
  sim::Time stolen_ns() const { return stolen_ns_; }

 private:
  struct Source {
    std::string handler;
    sim::Time period;
    sim::Time handler_ns;
    bool uses_sse;
  };

  void schedule_next(std::size_t source_index);
  int pick_cpu();

  osal::Os* os_;
  FpuManager* fpu_;
  int steer_target_ = -1;
  int rr_next_ = 0;
  bool stopped_ = false;
  std::vector<Source> sources_;
  std::vector<std::uint64_t> delivered_per_cpu_;
  sim::Time stolen_ns_ = 0;
};

}  // namespace kop::nautilus
