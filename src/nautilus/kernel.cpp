#include "nautilus/kernel.hpp"

#include <stdexcept>

#include "hw/cost_params.hpp"

namespace kop::nautilus {

namespace {
/// Simulated physical layout: zones stacked above 4 GB so the boot/MMIO
/// area below stays clear for BootLayout.
std::uint64_t zone_base(int zone_id, const hw::MachineConfig& m) {
  std::uint64_t base = 4ULL << 30;
  for (int z = 0; z < zone_id; ++z)
    base += m.zones[static_cast<std::size_t>(z)].bytes;
  return base;
}
}  // namespace

NautilusKernel::NautilusKernel(sim::Engine& engine, hw::MachineConfig machine,
                               NautilusConfig config)
    : NautilusKernel(engine, machine, config,
                     hw::nautilus_costs(machine)) {}

NautilusKernel::NautilusKernel(sim::Engine& engine, hw::MachineConfig machine,
                               NautilusConfig config, hw::OsCosts costs)
    : BaseOs(engine, std::move(machine), std::move(costs)), config_(config) {
  zone_allocators_.reserve(machine_.zones.size());
  for (const auto& z : machine_.zones) {
    zone_allocators_.push_back(std::make_unique<BuddyAllocator>(
        zone_base(z.id, machine_), z.bytes, /*min_block=*/4096));
  }
  task_system_ = std::make_unique<TaskSystem>(*this);
  loader_ = std::make_unique<Loader>(*zone_allocators_.front());
  irq_ = std::make_unique<IrqController>(*this, fpu_);
  tls_ = std::make_unique<TlsSupport>(*zone_allocators_.front());
  if (config_.steer_interrupts) irq_->steer_all_to(0);
}

NautilusKernel::~NautilusKernel() = default;

BuddyAllocator& NautilusKernel::zone_allocator(int zone) {
  return *zone_allocators_.at(static_cast<std::size_t>(zone));
}

void NautilusKernel::place_region(hw::MemRegion& region,
                                  osal::AllocPolicy policy) {
  // Identity-mapped, largest-possible pages; everything mapped at boot,
  // no demand paging, no swap (§2.1).
  region.set_demand_paged(false);
  region.set_small_page_fraction(0.0);
  region.set_page_size(config_.first_touch_at_2mb ? hw::PageSize::k2M
                                                  : hw::PageSize::k1G);

  using Kind = osal::AllocPolicy::Kind;
  Kind kind = policy.kind;
  if (config_.first_touch_at_2mb && kind == Kind::kLocal) {
    // The §6.3 extension defers placement like Linux does.
    kind = Kind::kFirstTouch;
  }
  switch (kind) {
    case Kind::kZone:
      region.set_home_zone(policy.zone);
      break;
    case Kind::kLocal: {
      // Immediate allocation in the allocating CPU's preferred zone.
      int cpu = 0;
      if (engine_->current() != nullptr && current_thread() != nullptr)
        cpu = current_cpu();
      region.set_home_zone(machine_.preferred_dram_zone(cpu));
      break;
    }
    case Kind::kInterleave: {
      std::vector<int> zones;
      for (const auto& z : machine_.zones) {
        if (z.kind == hw::ZoneKind::kDram) zones.push_back(z.id);
      }
      std::vector<int> slices(kFirstTouchSlices);
      for (int i = 0; i < kFirstTouchSlices; ++i)
        slices[static_cast<std::size_t>(i)] =
            zones[static_cast<std::size_t>((interleave_next_ + i) % zones.size())];
      interleave_next_ =
          (interleave_next_ + kFirstTouchSlices) % static_cast<int>(zones.size());
      region.set_slice_zones(std::move(slices));
      break;
    }
    case Kind::kFirstTouch:
      defer_placement(region);
      break;
  }
}

void NautilusKernel::register_shell_command(const std::string& name,
                                            ShellCommand fn) {
  shell_[name] = std::move(fn);
}

bool NautilusKernel::has_shell_command(const std::string& name) const {
  return shell_.count(name) > 0;
}

int NautilusKernel::run_shell_command(const std::string& name,
                                      const std::vector<std::string>& args) {
  auto it = shell_.find(name);
  if (it == shell_.end())
    throw std::invalid_argument("nautilus shell: unknown command '" + name + "'");
  return it->second(args);
}

std::vector<std::string> NautilusKernel::shell_command_names() const {
  std::vector<std::string> names;
  names.reserve(shell_.size());
  for (const auto& [name, fn] : shell_) names.push_back(name);
  return names;
}

}  // namespace kop::nautilus
