// The Nautilus kernel facade: an osal::Os with the HRT-supporting
// subsystems the paper relies on -- buddy allocators per NUMA zone,
// the SoftIRQ-like task system, the executable loader, interrupt
// steering, hardware TLS, a kernel environment-variable service and
// sysconf (§3.4), and the shell command registry through which RTK
// applications' main() is started (§3.1).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nautilus/buddy.hpp"
#include "nautilus/irq.hpp"
#include "nautilus/loader.hpp"
#include "nautilus/task_system.hpp"
#include "nautilus/tls.hpp"
#include "osal/base_os.hpp"

namespace kop::nautilus {

struct NautilusConfig {
  /// §6.3 extension: first-touch allocation at 2 MB granularity instead
  /// of immediate single-zone allocation (needed for good NUMA behavior
  /// on 8XEON at 24+ cores).
  bool first_touch_at_2mb = false;
  /// Steer device interrupts to CPU 0 (the HRT default).
  bool steer_interrupts = true;
};

/// A shell command takes argv-style arguments and returns an exit code.
using ShellCommand = std::function<int(const std::vector<std::string>&)>;

class NautilusKernel final : public osal::BaseOs {
 public:
  NautilusKernel(sim::Engine& engine, hw::MachineConfig machine,
                 NautilusConfig config = {});
  /// Variant with an explicit cost sheet (for ablations).
  NautilusKernel(sim::Engine& engine, hw::MachineConfig machine,
                 NautilusConfig config, hw::OsCosts costs);
  ~NautilusKernel() override;

  const NautilusConfig& config() const { return config_; }

  // --- subsystems ---
  TaskSystem& task_system() { return *task_system_; }
  BuddyAllocator& zone_allocator(int zone);
  Loader& loader() { return *loader_; }
  IrqController& irq() { return *irq_; }
  FpuManager& fpu() { return fpu_; }
  TlsSupport& tls() { return *tls_; }

  // --- shell (RTK launch path: main() becomes a shell command) ---
  void register_shell_command(const std::string& name, ShellCommand fn);
  bool has_shell_command(const std::string& name) const;
  /// Runs the command on the calling thread; throws if unknown.
  int run_shell_command(const std::string& name,
                        const std::vector<std::string>& args = {});
  std::vector<std::string> shell_command_names() const;

 protected:
  void place_region(hw::MemRegion& region, osal::AllocPolicy policy) override;

 private:
  NautilusConfig config_;
  std::vector<std::unique_ptr<BuddyAllocator>> zone_allocators_;
  std::unique_ptr<TaskSystem> task_system_;
  std::unique_ptr<Loader> loader_;
  FpuManager fpu_;
  std::unique_ptr<IrqController> irq_;
  std::unique_ptr<TlsSupport> tls_;
  std::map<std::string, ShellCommand> shell_;
  int interleave_next_ = 0;
};

}  // namespace kop::nautilus
