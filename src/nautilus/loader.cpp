#include "nautilus/loader.hpp"

namespace kop::nautilus {

sim::Time Loader::load_cost(const ExecutableImage& image) const {
  const double mb = static_cast<double>(image.memory_bytes()) / (1024.0 * 1024.0);
  return static_cast<sim::Time>(mb * static_cast<double>(copy_ns_per_mb_));
}

LoadedProgram Loader::load(const ExecutableImage& image) {
  if (image.header.magic != kMultiboot2Magic64)
    throw LoaderError(image.name + ": missing or bad multiboot2 header");
  if (!image.position_independent)
    throw LoaderError(image.name +
                      ": not position independent (compile with -fPIE)");
  if (!image.statically_linked)
    throw LoaderError(image.name + ": dynamic executables are not loadable");
  if (image.header.image_bytes != image.loadable_bytes())
    throw LoaderError(image.name + ": header size does not match sections");
  if (image.header.entry_offset >= image.text_bytes)
    throw LoaderError(image.name + ": entry point outside .text");

  LoadedProgram out;
  out.bytes = image.memory_bytes();
  // Position independence + static linking + the multiboot2 header let
  // the loader treat the file as a blob placed anywhere convenient.
  out.base = allocator_->alloc(out.bytes);
  out.entry = out.base + image.header.entry_offset;
  out.tls = image.tls;
  return out;
}

void Loader::unload(const LoadedProgram& program) {
  if (program.bytes > 0) allocator_->free(program.base);
}

void BootLayout::check(const hw::MachineConfig& machine, const BootImage& image) {
  if (!fits(machine, image)) {
    throw BootOverlapError(
        "boot image of " + std::to_string(image.total() >> 20) +
        " MB loaded at 1 MB overlaps the MMIO region at " +
        std::to_string(machine.mmio_base >> 20) +
        " MB; link smaller static data (use class B) or allocate "
        "dynamically at startup");
  }
}

bool BootLayout::fits(const hw::MachineConfig& machine, const BootImage& image) {
  return kLoadBase + image.total() <= machine.mmio_base;
}

}  // namespace kop::nautilus
