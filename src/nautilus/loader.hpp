// The Nautilus executable loader and boot-image layout checks.
//
// PIK executables are static-PIE blobs with a 64-bit multiboot2-style
// header prepended as the first section (paper §4.1): the loader
// validates the header, allocates physical memory wherever convenient,
// "copies" the image, zeroes BSS/TBSS, and hands back the entry point.
//
// RTK/CCK instead *link the application into the kernel boot image*;
// gigabyte-size static arrays then inflate the image until it overlaps
// the MMIO hole below 4 GB -- the exact problem that forces the paper
// to run class-B NAS inputs for some benchmarks (§6.2).  BootLayout
// reproduces that check.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/topology.hpp"
#include "nautilus/buddy.hpp"
#include "nautilus/tls.hpp"
#include "sim/time.hpp"

namespace kop::nautilus {

inline constexpr std::uint32_t kMultiboot2Magic64 = 0xe8525264;  // custom 64-bit variant

struct Multiboot2Header {
  std::uint32_t magic = 0;
  std::uint64_t image_bytes = 0;
  std::uint64_t entry_offset = 0;
};

/// What the PIK build process (nld) produces: a statically linked,
/// position-independent executable with all user-space libraries
/// (libomp, libc, libm, ...) folded in.
struct ExecutableImage {
  std::string name;
  Multiboot2Header header;
  bool position_independent = false;
  bool statically_linked = false;
  std::uint64_t text_bytes = 0;
  std::uint64_t rodata_bytes = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t bss_bytes = 0;
  TlsTemplate tls;  // .tdata / .tbss
  /// Libraries folded in at link time (informational; PIK pulls the
  /// entire user stack into the image, which is why PIK images are
  /// large compared to kernel modules, §7).
  std::vector<std::string> linked_libs;

  std::uint64_t loadable_bytes() const {
    return text_bytes + rodata_bytes + data_bytes + tls.tdata_bytes;
  }
  std::uint64_t memory_bytes() const {
    return loadable_bytes() + bss_bytes + tls.tbss_bytes;
  }
};

struct LoadedProgram {
  std::uint64_t base = 0;
  std::uint64_t entry = 0;
  std::uint64_t bytes = 0;
  TlsTemplate tls;
};

class LoaderError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Loads ExecutableImages into a zone allocator; charges virtual time
/// for the copy + BSS clear on the calling thread.
class Loader {
 public:
  /// `copy_ns_per_mb`: memcpy/memset bandwidth of the loading CPU.
  Loader(BuddyAllocator& allocator, sim::Time copy_ns_per_mb = 120'000)
      : allocator_(&allocator), copy_ns_per_mb_(copy_ns_per_mb) {}

  /// Validates and loads; returns the program handle.
  /// Throws LoaderError for bad magic / non-PIE / non-static images.
  LoadedProgram load(const ExecutableImage& image);

  /// Release a loaded program's memory.
  void unload(const LoadedProgram& program);

  /// Virtual time the copy+clear of `image` costs.
  sim::Time load_cost(const ExecutableImage& image) const;

 private:
  BuddyAllocator* allocator_;
  sim::Time copy_ns_per_mb_;
};

/// RTK/CCK boot-image layout.  Nautilus loads at 1 MB physical; the
/// image (kernel + linked application + its static data) must not reach
/// the MMIO hole.
struct BootImage {
  std::uint64_t kernel_bytes = 0;
  /// Static (link-time) application data: globals, including any
  /// gigabyte-size static arrays the benchmark declares.
  std::uint64_t app_static_bytes = 0;
  std::uint64_t total() const { return kernel_bytes + app_static_bytes; }
};

class BootOverlapError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct BootLayout {
  static constexpr std::uint64_t kLoadBase = 1ULL << 20;  // 1 MB

  /// Throws BootOverlapError if the image would overlap MMIO.
  static void check(const hw::MachineConfig& machine, const BootImage& image);
  /// True if the image fits without touching MMIO.
  static bool fits(const hw::MachineConfig& machine, const BootImage& image);
};

}  // namespace kop::nautilus
