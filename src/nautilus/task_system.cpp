#include "nautilus/task_system.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/racecheck.hpp"

namespace kop::nautilus {

TaskSystem::TaskSystem(osal::Os& os, sim::Time dispatch_cost_ns)
    : os_(&os), dispatch_cost_ns_(dispatch_cost_ns) {
  const int n = os.machine().num_cpus;
  queues_.resize(static_cast<std::size_t>(n));
  for (auto& q : queues_) {
    q.lock = std::make_unique<osal::Spinlock>(os);
    q.idle = os.make_wait_queue();
  }
}

TaskSystem::~TaskSystem() {
  // stop() must have been called (or start() never was); workers hold
  // pointers into this object.
}

void TaskSystem::start(int active_cpus) {
  if (started_) throw std::logic_error("TaskSystem: started twice");
  started_ = true;
  sim::race::atomic_store(os_->engine(), &stopping_, "TaskSystem::stopping_");
  stopping_ = false;
  const int total = os_->machine().num_cpus;
  const int n = active_cpus > 0 ? std::min(active_cpus, total) : total;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int cpu = 0; cpu < n; ++cpu) {
    workers_.push_back(os_->spawn_thread(
        "nk-task-worker-" + std::to_string(cpu),
        [this, cpu]() { worker_loop(cpu); }, cpu));
  }
}

void TaskSystem::stop() {
  if (!started_) return;
  sim::race::atomic_store(os_->engine(), &stopping_, "TaskSystem::stopping_");
  stopping_ = true;
  for (auto& q : queues_) q.idle->notify_all();
  for (auto* w : workers_) os_->join_thread(w);
  workers_.clear();
  started_ = false;
}

void TaskSystem::enqueue(TaskFn fn, int cpu_hint) {
  int cpu = cpu_hint;
  if (cpu < 0) {
    cpu = next_rr_;
    next_rr_ = (next_rr_ + 1) % static_cast<int>(queues_.size());
  }
  auto& q = queues_[static_cast<std::size_t>(cpu)];
  q.lock->lock();
  sim::race::plain_write(os_->engine(), &q.tasks, "TaskSystem task deque");
  q.tasks.push_back(std::move(fn));
  q.lock->unlock();
  os_->tools().emit([&](ompt::Tool& t) {
    t.on_rt_task_submit(ompt::TaskRuntimeKind::kKernel, os_->engine().now(),
                        cpu);
  });
  q.idle->notify_one();
}

bool TaskSystem::try_pop(int cpu, TaskFn& out) {
  auto& q = queues_[static_cast<std::size_t>(cpu)];
  q.lock->lock();
  sim::race::plain_read(os_->engine(), &q.tasks, "TaskSystem task deque");
  if (q.tasks.empty()) {
    q.lock->unlock();
    return false;
  }
  sim::race::plain_write(os_->engine(), &q.tasks, "TaskSystem task deque");
  out = std::move(q.tasks.front());
  q.tasks.pop_front();
  q.lock->unlock();
  return true;
}

bool TaskSystem::try_steal(int thief_cpu, TaskFn& out) {
  const int n = static_cast<int>(queues_.size());
  for (int i = 1; i < n; ++i) {
    const int victim = (thief_cpu + i) % n;
    auto& q = queues_[static_cast<std::size_t>(victim)];
    if (!q.lock->try_lock()) continue;
    sim::race::plain_read(os_->engine(), &q.tasks, "TaskSystem task deque");
    if (!q.tasks.empty()) {
      // Steal from the back (classic work-stealing order).
      sim::race::plain_write(os_->engine(), &q.tasks, "TaskSystem task deque");
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      q.lock->unlock();
      sim::race::atomic_rmw(os_->engine(), &steals_, "TaskSystem::steals_");
      ++steals_;
      return true;
    }
    q.lock->unlock();
  }
  return false;
}

void TaskSystem::worker_loop(int cpu) {
  for (;;) {
    TaskFn task;
    const bool popped = try_pop(cpu, task);
    const bool stolen = !popped && try_steal(cpu, task);
    if (popped || stolen) {
      if (stolen) {
        os_->counters().add_on(os_->current_cpu(),
                               telemetry::Counter::kTaskSteals);
      }
      os_->tools().emit([&](ompt::Tool& t) {
        t.on_rt_task_execute(ompt::TaskRuntimeKind::kKernel,
                             ompt::Endpoint::kBegin, os_->engine().now(), cpu,
                             stolen);
      });
      os_->compute_ns(dispatch_cost_ns_);
      task();
      sim::race::atomic_rmw(os_->engine(), &executed_,
                            "TaskSystem::executed_");
      ++executed_;
      os_->tools().emit([&](ompt::Tool& t) {
        t.on_rt_task_execute(ompt::TaskRuntimeKind::kKernel,
                             ompt::Endpoint::kEnd, os_->engine().now(), cpu,
                             stolen);
      });
      continue;
    }
    sim::race::atomic_load(os_->engine(), &stopping_);
    if (stopping_) return;
    // try_pop/try_steal yield inside their lock operations; a task may
    // have been enqueued (and its notify lost) meanwhile.  Recheck the
    // own queue right before parking -- no yield can intervene here.
    // (The unlocked emptiness peek models an atomic size probe.)
    sim::race::atomic_load(os_->engine(),
                           &queues_[static_cast<std::size_t>(cpu)].tasks);
    if (!queues_[static_cast<std::size_t>(cpu)].tasks.empty()) continue;
    // Kernel workers spin briefly (they own the CPU anyway), then
    // sleep until new work shows up on their own queue.
    queues_[static_cast<std::size_t>(cpu)].idle->wait(
        /*spin_ns=*/50 * sim::kMicrosecond);
  }
}

std::size_t TaskSystem::pending() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.tasks.size();
  return n;
}

}  // namespace kop::nautilus
