// Nautilus's internal task system: per-CPU task queues drained by one
// worker per CPU, "operating similarly to the SoftIRQ mechanism in the
// Linux kernel" (paper §2.1).  The kernel-level VIRGIL runtime is a
// thin veneer over this.
//
// Idle workers steal from sibling queues so independent DOALL tasks
// balance across CPUs; dispatch cost is a few hundred nanoseconds,
// which is the whole point of CCK: far cheaper than a full OpenMP
// fork/join.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "osal/sync.hpp"
#include "sim/ring_deque.hpp"

namespace kop::nautilus {

using TaskFn = std::function<void()>;

class TaskSystem {
 public:
  /// `dispatch_cost_ns`: per-task queue/dequeue bookkeeping charged on
  /// the executing CPU.
  TaskSystem(osal::Os& os, sim::Time dispatch_cost_ns = 220);
  ~TaskSystem();

  TaskSystem(const TaskSystem&) = delete;
  TaskSystem& operator=(const TaskSystem&) = delete;

  /// Spawn the per-CPU workers (must be called once, from a sim thread
  /// or before the engine runs).  `active_cpus` limits workers to the
  /// first N CPUs (<= 0: one worker per CPU) -- used by scaling
  /// experiments that restrict execution width.
  void start(int active_cpus = 0);
  /// Signal workers to drain and exit, then join them.
  void stop();

  /// Queue a task on a CPU (-1: round-robin).  Safe from any thread.
  void enqueue(TaskFn fn, int cpu_hint = -1);

  /// Tasks queued but not yet started.
  std::size_t pending() const;
  std::uint64_t executed() const { return executed_; }
  std::uint64_t steals() const { return steals_; }
  bool started() const { return started_; }

 private:
  struct CpuQueue {
    /// Flat ring instead of std::deque: retained capacity, so a warm
    /// queue enqueues/steals without touching the allocator.
    sim::RingDeque<TaskFn> tasks;
    std::unique_ptr<osal::Spinlock> lock;
    /// Per-CPU idle gate: the worker sleeps here; enqueue pokes only
    /// the target CPU (like raising a SoftIRQ on that core).
    std::unique_ptr<osal::WaitQueue> idle;
  };

  void worker_loop(int cpu);
  bool try_pop(int cpu, TaskFn& out);
  bool try_steal(int thief_cpu, TaskFn& out);

  osal::Os* os_;
  sim::Time dispatch_cost_ns_;
  std::vector<CpuQueue> queues_;
  std::vector<osal::Thread*> workers_;
  bool started_ = false;
  bool stopping_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t steals_ = 0;
  int next_rr_ = 0;
};

}  // namespace kop::nautilus
