#include "nautilus/tls.hpp"

#include "nautilus/buddy.hpp"

namespace kop::nautilus {

std::uint64_t TlsSupport::create_block(const TlsTemplate& tmpl) {
  if (tmpl.total() == 0) return 0;
  return allocator_->alloc(tmpl.total());
}

void TlsSupport::destroy_block(std::uint64_t fsbase) {
  if (fsbase != 0) allocator_->free(fsbase);
}

void TlsSupport::set_fsbase(std::uint64_t thread_id, std::uint64_t fsbase) {
  fsbase_by_thread_[thread_id] = fsbase;
}

std::uint64_t TlsSupport::fsbase(std::uint64_t thread_id) const {
  auto it = fsbase_by_thread_.find(thread_id);
  return it == fsbase_by_thread_.end() ? 0 : it->second;
}

void TlsSupport::on_context_switch(std::uint64_t from_thread,
                                   std::uint64_t to_thread) {
  if (fsbase(from_thread) != fsbase(to_thread)) ++switches_;
}

}  // namespace kop::nautilus
