// Hardware thread-local storage support (paper §3.4).
//
// libomp and compiler-generated __thread accesses assume x64 hardware
// TLS: %fs-relative addressing with FSBASE pointing at the thread's TLS
// block.  Nautilus reserves %gs for per-CPU state, so application TLS
// uses %fs; the kernel context-switches FSBASE and supports
// arch_prctl(ARCH_SET_FS).  Thread launch clones the .tdata template
// and zeroes .tbss.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace kop::nautilus {

struct TlsTemplate {
  std::uint64_t tdata_bytes = 0;  // initialized thread-locals
  std::uint64_t tbss_bytes = 0;   // zero-initialized thread-locals
  std::uint64_t total() const { return tdata_bytes + tbss_bytes; }
};

class BuddyAllocator;

/// Per-kernel TLS manager: hands out TLS blocks and tracks each
/// thread's FSBASE (keyed by an opaque thread id).
class TlsSupport {
 public:
  explicit TlsSupport(BuddyAllocator& allocator) : allocator_(&allocator) {}

  /// Clone tdata + zero tbss for a new thread; returns the FSBASE value
  /// (block address).  Returns 0 for an empty template.
  std::uint64_t create_block(const TlsTemplate& tmpl);
  void destroy_block(std::uint64_t fsbase);

  /// arch_prctl(ARCH_SET_FS) equivalent.
  void set_fsbase(std::uint64_t thread_id, std::uint64_t fsbase);
  /// arch_prctl(ARCH_GET_FS) equivalent; 0 if never set.
  std::uint64_t fsbase(std::uint64_t thread_id) const;

  /// Called by the context-switch path; counts FSBASE swaps so tests
  /// can verify the switch code runs.
  void on_context_switch(std::uint64_t from_thread, std::uint64_t to_thread);
  std::uint64_t fsbase_switches() const { return switches_; }

 private:
  BuddyAllocator* allocator_;
  std::unordered_map<std::uint64_t, std::uint64_t> fsbase_by_thread_;
  std::uint64_t switches_ = 0;
};

}  // namespace kop::nautilus
