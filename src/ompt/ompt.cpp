#include "ompt/ompt.hpp"

#include <algorithm>

namespace kop::ompt {

const char* sync_region_name(SyncRegion s) {
  switch (s) {
    case SyncRegion::kBarrierImplicit: return "barrier-implicit";
    case SyncRegion::kBarrierExplicit: return "barrier-explicit";
    case SyncRegion::kTaskwait:        return "taskwait";
  }
  return "unknown";
}

const char* work_kind_name(WorkKind w) {
  switch (w) {
    case WorkKind::kLoopStatic:        return "for-static";
    case WorkKind::kLoopStaticChunked: return "for-static-chunked";
    case WorkKind::kLoopDynamic:       return "for-dynamic";
    case WorkKind::kLoopGuided:        return "for-guided";
    case WorkKind::kSections:          return "sections";
    case WorkKind::kSingle:            return "single";
    case WorkKind::kOrdered:           return "ordered";
  }
  return "unknown";
}

const char* mutex_kind_name(MutexKind m) {
  switch (m) {
    case MutexKind::kLock:     return "lock";
    case MutexKind::kCritical: return "critical";
  }
  return "unknown";
}

void Registry::attach(Tool* t) {
  if (t && std::find(tools_.begin(), tools_.end(), t) == tools_.end()) {
    tools_.push_back(t);
  }
}

void Registry::detach(Tool* t) {
  tools_.erase(std::remove(tools_.begin(), tools_.end(), t), tools_.end());
}

}  // namespace kop::ompt
