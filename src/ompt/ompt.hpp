#pragma once

// OMPT-like tool interface for the simulated OpenMP stack.
//
// Modelled on LLVM libomp's OMPT callbacks but simulator-native: events
// carry virtual timestamps (sim::Time) and the thread's team id instead
// of opaque wait_id/codeptr pairs.  Tools subclass ompt::Tool, override
// the callbacks they care about, and attach through the per-OS
// ompt::Registry (reachable as os.tools()), so profilers never need to
// edit runtime code.
//
// The komp runtime fires parallel/implicit-task/work/dispatch/sync/
// mutex/task events; the virgil + nautilus task runtimes fire the
// rt_task_* events.

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace kop::ompt {

enum class Endpoint { kBegin, kEnd };

enum class SyncRegion {
  kBarrierImplicit,  // region-closing / loop-closing barrier
  kBarrierExplicit,  // user #pragma omp barrier
  kTaskwait,
};

enum class WorkKind {
  kLoopStatic,
  kLoopStaticChunked,
  kLoopDynamic,
  kLoopGuided,
  kSections,
  kSingle,
  kOrdered,
};

enum class MutexKind {
  kLock,      // omp_lock_t-style explicit lock
  kCritical,  // named critical section
};

enum class MutexEvent { kAcquire, kAcquired, kReleased };

enum class TaskRuntimeKind {
  kUser,    // virgil user-level work stealing pool
  kKernel,  // nautilus kernel task system
};

const char* sync_region_name(SyncRegion s);
const char* work_kind_name(WorkKind w);
const char* mutex_kind_name(MutexKind m);

// All callbacks default to no-ops so tools override only what they use.
// `tid` is the OpenMP thread number within the team (0 = master);
// rt_task events use `lane` (worker/CPU index) instead.
class Tool {
 public:
  virtual ~Tool() = default;

  virtual void on_parallel(Endpoint, sim::Time, int /*team_size*/) {}
  virtual void on_implicit_task(Endpoint, sim::Time, int /*tid*/,
                                int /*team_size*/) {}
  virtual void on_work(WorkKind, Endpoint, sim::Time, int /*tid*/,
                       std::int64_t /*iterations*/) {}
  virtual void on_dispatch(sim::Time, int /*tid*/, std::int64_t /*lo*/,
                           std::int64_t /*hi*/) {}
  virtual void on_sync_region(SyncRegion, Endpoint, sim::Time, int /*tid*/) {}
  // Inner wait interval of a sync region (time actually blocked/spinning).
  virtual void on_sync_wait(Endpoint, sim::Time, int /*tid*/) {}
  virtual void on_mutex(MutexKind, MutexEvent, sim::Time,
                        const void* /*lock*/) {}
  virtual void on_task_create(sim::Time, int /*tid*/) {}
  virtual void on_task_schedule(Endpoint, sim::Time, int /*tid*/,
                                bool /*stolen*/) {}
  virtual void on_rt_task_submit(TaskRuntimeKind, sim::Time, int /*lane*/) {}
  virtual void on_rt_task_execute(TaskRuntimeKind, Endpoint, sim::Time,
                                  int /*lane*/, bool /*stolen*/) {}
};

// One registry per simulated OS instance; not thread-safe in host terms,
// which is fine because the simulator is single-threaded at host level.
class Registry {
 public:
  void attach(Tool* t);
  void detach(Tool* t);
  bool empty() const { return tools_.empty(); }
  std::size_t size() const { return tools_.size(); }

  // emit([&](Tool& t) { t.on_...(...); }) — loop is inlined and the
  // empty() fast path keeps un-instrumented runs free of overhead.
  template <typename Fn>
  void emit(Fn&& fn) {
    for (Tool* t : tools_) fn(*t);
  }

 private:
  std::vector<Tool*> tools_;
};

}  // namespace kop::ompt
