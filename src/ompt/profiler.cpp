#include "ompt/profiler.hpp"

#include <cstdio>
#include <sstream>

namespace kop::ompt {

void ConstructProfiler::begin(const std::string& label, int tid,
                              sim::Time t) {
  open_[{label, tid}].push_back(t);
}

void ConstructProfiler::end(const std::string& label, int tid, sim::Time t) {
  auto it = open_.find({label, tid});
  Agg& a = aggs_[label];
  ++a.count;
  if (it != open_.end() && !it->second.empty()) {
    a.total_ns += t - it->second.back();
    it->second.pop_back();
  }
}

void ConstructProfiler::count_event(const std::string& label) {
  ++aggs_[label].count;
}

void ConstructProfiler::on_parallel(Endpoint e, sim::Time t, int) {
  if (e == Endpoint::kBegin) begin("parallel", 0, t);
  else end("parallel", 0, t);
}

void ConstructProfiler::on_implicit_task(Endpoint e, sim::Time t, int tid,
                                         int) {
  if (e == Endpoint::kBegin) begin("implicit-task", tid, t);
  else end("implicit-task", tid, t);
}

void ConstructProfiler::on_work(WorkKind w, Endpoint e, sim::Time t, int tid,
                                std::int64_t) {
  const std::string label = work_kind_name(w);
  if (e == Endpoint::kBegin) begin(label, tid, t);
  else end(label, tid, t);
}

void ConstructProfiler::on_dispatch(sim::Time, int, std::int64_t,
                                    std::int64_t) {
  ++dispatches_;
}

void ConstructProfiler::on_sync_region(SyncRegion s, Endpoint e, sim::Time t,
                                       int tid) {
  const std::string label = sync_region_name(s);
  if (e == Endpoint::kBegin) begin(label, tid, t);
  else end(label, tid, t);
}

void ConstructProfiler::on_sync_wait(Endpoint e, sim::Time t, int tid) {
  if (e == Endpoint::kBegin) begin("sync-wait", tid, t);
  else end("sync-wait", tid, t);
}

void ConstructProfiler::on_mutex(MutexKind m, MutexEvent ev, sim::Time t,
                                 const void* lock) {
  const std::string kind = mutex_kind_name(m);
  switch (ev) {
    case MutexEvent::kAcquire:
      mutex_acquire_[lock] = t;
      break;
    case MutexEvent::kAcquired: {
      auto it = mutex_acquire_.find(lock);
      Agg& a = aggs_[kind + ".wait"];
      ++a.count;
      if (it != mutex_acquire_.end()) {
        a.total_ns += t - it->second;
        mutex_acquire_.erase(it);
      }
      mutex_acquired_[lock] = t;
      break;
    }
    case MutexEvent::kReleased: {
      auto it = mutex_acquired_.find(lock);
      Agg& a = aggs_[kind + ".hold"];
      ++a.count;
      if (it != mutex_acquired_.end()) {
        a.total_ns += t - it->second;
        mutex_acquired_.erase(it);
      }
      break;
    }
  }
}

void ConstructProfiler::on_task_create(sim::Time, int) {
  count_event("task-create");
}

void ConstructProfiler::on_task_schedule(Endpoint e, sim::Time t, int tid,
                                         bool stolen) {
  if (e == Endpoint::kBegin) {
    begin("task-exec", tid, t);
    if (stolen) ++steals_;
  } else {
    end("task-exec", tid, t);
  }
}

void ConstructProfiler::on_rt_task_submit(TaskRuntimeKind k, sim::Time,
                                          int) {
  count_event(k == TaskRuntimeKind::kKernel ? "rt-task-submit.kernel"
                                            : "rt-task-submit.user");
}

void ConstructProfiler::on_rt_task_execute(TaskRuntimeKind k, Endpoint e,
                                           sim::Time t, int lane,
                                           bool stolen) {
  const std::string label = k == TaskRuntimeKind::kKernel
                                ? "rt-task-exec.kernel"
                                : "rt-task-exec.user";
  if (e == Endpoint::kBegin) {
    begin(label, lane, t);
    if (stolen) ++steals_;
  } else {
    end(label, lane, t);
  }
}

std::string ConstructProfiler::format_table() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-24s %10s %14s %12s\n", "construct",
                "count", "total_us", "mean_us");
  os << buf;
  os << std::string(63, '-') << '\n';
  for (const auto& [label, a] : aggs_) {
    const double total_us = static_cast<double>(a.total_ns) / 1e3;
    const double mean_us =
        a.count ? total_us / static_cast<double>(a.count) : 0.0;
    std::snprintf(buf, sizeof(buf), "%-24s %10llu %14.3f %12.4f\n",
                  label.c_str(), static_cast<unsigned long long>(a.count),
                  total_us, mean_us);
    os << buf;
  }
  if (dispatches_ || steals_) {
    os << std::string(63, '-') << '\n';
    os << "chunk dispatches: " << dispatches_
       << "   task steals: " << steals_ << '\n';
  }
  return os.str();
}

void ConstructProfiler::clear() {
  aggs_.clear();
  open_.clear();
  mutex_acquire_.clear();
  mutex_acquired_.clear();
  dispatches_ = 0;
  steals_ = 0;
}

}  // namespace kop::ompt
