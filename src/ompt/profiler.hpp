#pragma once

// ConstructProfiler: the built-in OMPT tool behind examples/omp_profiler.
//
// Aggregates begin/end callback pairs into per-construct (count,
// total virtual time) buckets keyed by a stable label, e.g.
// "parallel", "barrier-explicit.wait", "for-dynamic", "critical.hold".
// Output order is alphabetical (std::map) so both the text table and
// the JSON export are deterministic.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ompt/ompt.hpp"

namespace kop::ompt {

class ConstructProfiler : public Tool {
 public:
  struct Agg {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
  };

  void on_parallel(Endpoint e, sim::Time t, int team_size) override;
  void on_implicit_task(Endpoint e, sim::Time t, int tid,
                        int team_size) override;
  void on_work(WorkKind w, Endpoint e, sim::Time t, int tid,
               std::int64_t iterations) override;
  void on_dispatch(sim::Time t, int tid, std::int64_t lo,
                   std::int64_t hi) override;
  void on_sync_region(SyncRegion s, Endpoint e, sim::Time t,
                      int tid) override;
  void on_sync_wait(Endpoint e, sim::Time t, int tid) override;
  void on_mutex(MutexKind m, MutexEvent ev, sim::Time t,
                const void* lock) override;
  void on_task_create(sim::Time t, int tid) override;
  void on_task_schedule(Endpoint e, sim::Time t, int tid,
                        bool stolen) override;
  void on_rt_task_submit(TaskRuntimeKind k, sim::Time t, int lane) override;
  void on_rt_task_execute(TaskRuntimeKind k, Endpoint e, sim::Time t,
                          int lane, bool stolen) override;

  const std::map<std::string, Agg>& aggregates() const { return aggs_; }
  std::uint64_t dispatches() const { return dispatches_; }
  std::uint64_t steals() const { return steals_; }

  // Human-readable per-construct table.
  std::string format_table() const;

  void clear();

 private:
  // Interval tracking: begin pushes, end pops and accumulates.
  void begin(const std::string& label, int tid, sim::Time t);
  void end(const std::string& label, int tid, sim::Time t);
  void count_event(const std::string& label);

  std::map<std::string, Agg> aggs_;
  // (label, tid) -> stack of begin times; nesting-safe.
  std::map<std::pair<std::string, int>, std::vector<sim::Time>> open_;
  // Mutexes are keyed by lock address, not tid, because a lock can be
  // released by a different event order than FIFO per thread.
  std::map<const void*, sim::Time> mutex_acquire_;
  std::map<const void*, sim::Time> mutex_acquired_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t steals_ = 0;
};

}  // namespace kop::ompt
