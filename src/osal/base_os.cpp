#include "osal/base_os.hpp"

#include <algorithm>
#include <stdexcept>

namespace kop::osal {

class BaseOs::ThreadImpl final : public Thread {
 public:
  ThreadImpl(std::string name, int cpu) : name_(std::move(name)), cpu_(cpu) {}

  const std::string& name() const override { return name_; }
  int bound_cpu() const override { return cpu_; }
  bool done() const override { return done_; }

  sim::SimThread* sim_thread = nullptr;
  bool done_ = false;
  std::vector<sim::WakeToken> joiners;

 private:
  std::string name_;
  int cpu_;
};

BaseOs::BaseOs(sim::Engine& engine, hw::MachineConfig machine, hw::OsCosts costs)
    : engine_(&engine),
      machine_(std::move(machine)),
      costs_(std::move(costs)),
      exec_(machine_, costs_),
      counters_(machine_.num_cpus) {
  machine_.validate();
  cpus_.reserve(static_cast<std::size_t>(machine_.num_cpus));
  for (int i = 0; i < machine_.num_cpus; ++i) {
    cpus_.push_back(std::make_unique<hw::Cpu>(
        *engine_, i, costs_.timeslice_ns, costs_.context_switch_ns,
        &counters_));
  }
}

BaseOs::~BaseOs() = default;

void BaseOs::rebind_costs(const hw::OsCosts& costs) {
  if (costs.personality != costs_.personality)
    throw std::invalid_argument("rebind_costs: personality mismatch (" +
                                costs.personality + " vs " +
                                costs_.personality + ")");
  // costs_'s address is stable, so WaitQueues pointing at it see the
  // new sheet; the ExecModel and per-CPU scheduling copies are rebuilt.
  costs_ = costs;
  exec_ = hw::ExecModel(machine_, costs_);
  for (auto& cpu : cpus_)
    cpu->set_sched_costs(costs_.timeslice_ns, costs_.context_switch_ns);
}

Thread* BaseOs::spawn_thread(std::string name, std::function<void()> fn,
                             int cpu, sim::Time create_cost_ns) {
  if (cpu < 0) {
    cpu = next_rr_cpu_;
    next_rr_cpu_ = (next_rr_cpu_ + 1) % machine_.num_cpus;
  }
  if (cpu >= machine_.num_cpus)
    throw std::out_of_range("spawn_thread: cpu out of range");

  // Creation cost is paid by the creator if we are inside the sim.
  const sim::Time create_cost =
      create_cost_ns >= 0 ? create_cost_ns : costs_.thread_create_ns;
  if (engine_->current() != nullptr && create_cost > 0)
    engine_->sleep_for(create_cost);
  counters_.add_on(cpu, telemetry::Counter::kThreadsCreated);

  auto impl = std::make_unique<ThreadImpl>(std::move(name), cpu);
  ThreadImpl* raw = impl.get();
  auto body = [this, raw, fn = std::move(fn)]() {
    fn();
    raw->done_ = true;
    for (auto& tok : raw->joiners) engine_->wake_token_at(tok, engine_->now());
    raw->joiners.clear();
  };
  raw->sim_thread = engine_->spawn(raw->name(), std::move(body));
  raw->sim_thread->user_data = raw;
  threads_.push_back(std::move(impl));
  engine_->wake(raw->sim_thread);
  return raw;
}

void BaseOs::join_thread(Thread* t) {
  auto* impl = static_cast<ThreadImpl*>(t);
  if (impl->done_) return;
  impl->joiners.push_back(engine_->arm_wake_token());
  engine_->block();
}

BaseOs::ThreadImpl* BaseOs::current_impl() {
  sim::SimThread* st = engine_->current();
  if (st == nullptr || st->user_data == nullptr) return nullptr;
  return static_cast<ThreadImpl*>(st->user_data);
}

Thread* BaseOs::current_thread() { return current_impl(); }

int BaseOs::current_cpu() {
  ThreadImpl* t = current_impl();
  if (t == nullptr)
    throw std::logic_error("current_cpu: not on an OS thread");
  return t->bound_cpu();
}

void BaseOs::yield() {
  // sched_yield-ish: a syscall plus requeue.
  if (costs_.syscall_ns > 0) {
    counters_.add_on(current_cpu(), telemetry::Counter::kSyscalls);
    engine_->sleep_for(costs_.syscall_ns);
  }
  engine_->yield_now();
}

void BaseOs::sleep_ns(sim::Time ns) { engine_->sleep_for(ns); }

void BaseOs::compute(const hw::WorkBlock& block, int data_zone) {
  const int cpu = current_cpu();
  const hw::BlockCharge charge = exec_.charge(block, cpu, data_zone, engine_->rng());
  using telemetry::Counter;
  if (charge.fault_count) counters_.add_on(cpu, Counter::kPageFaults, charge.fault_count);
  if (charge.tlb_misses) counters_.add_on(cpu, Counter::kTlbMisses, charge.tlb_misses);
  if (charge.tick_count) counters_.add_on(cpu, Counter::kTimerTicks, charge.tick_count);
  if (charge.noise_events) counters_.add_on(cpu, Counter::kNoisePreemptions, charge.noise_events);
  const sim::Time start = engine_->now();
  cpus_[static_cast<std::size_t>(cpu)]->occupy(charge.total());
  if (tracer_.enabled()) {
    tracer_.record(current_thread()->name(), cpu, start,
                   engine_->now() - start);
  }
}

void BaseOs::atomic_op(int contenders) {
  // An uncontended RMW costs roughly one cacheline ownership transfer;
  // each additional contender serializes behind the line.
  const sim::Time cost =
      machine_.cacheline_transfer_ns * (1 + std::max(0, contenders));
  engine_->sleep_for(cost);
}

std::unique_ptr<WaitQueue> BaseOs::make_wait_queue() {
  return std::make_unique<GenericWaitQueue>(*engine_, machine_, costs_,
                                            &counters_);
}

hw::MemRegion* BaseOs::alloc_region(std::string name, std::uint64_t bytes,
                                    AllocPolicy policy) {
  if (engine_->current() != nullptr) engine_->sleep_for(costs_.alloc_base_ns);
  auto region = std::make_unique<hw::MemRegion>(std::move(name), bytes);
  place_region(*region, policy);
  if (next_touch_migration_) region->arm_next_touch();
  hw::MemRegion* raw = region.get();
  regions_.push_back(std::move(region));
  return raw;
}

void BaseOs::free_region(hw::MemRegion* region) {
  regions_.erase(
      std::remove_if(regions_.begin(), regions_.end(),
                     [&](const auto& r) { return r.get() == region; }),
      regions_.end());
}

void BaseOs::defer_placement(hw::MemRegion& region) {
  region.set_slice_zones(std::vector<int>(kFirstTouchSlices, -1));
}

int BaseOs::resolve_data_zone(hw::MemRegion* region, int part, int nparts) {
  if (region == nullptr) return -1;
  const int my_zone = machine_.zone_of_cpu(current_cpu());
  const int preferred = machine_.preferred_dram_zone(current_cpu());
  if (!region->is_sliced()) {
    if (!region->next_touch_armed()) {
      region->record_touch(region->home_zone(), preferred);
      return region->home_zone();
    }
    // Armed single-home region: expand to the standard slice map so
    // next-touch can re-home at slice granularity.
    region->set_slice_zones(
        std::vector<int>(kFirstTouchSlices, region->home_zone()));
  }
  // First-touch: assign any still-unassigned slices in this partition's
  // range to the toucher's zone.
  std::vector<int> zones = region->slice_zones();
  const auto n = static_cast<int>(zones.size());
  const int lo = part * n / nparts;
  int hi = (part + 1) * n / nparts;
  hi = std::max(hi, lo + 1);
  bool changed = false;
  std::uint64_t migrated = 0;
  for (int i = lo; i < hi && i < n; ++i) {
    auto& z = zones[static_cast<std::size_t>(i)];
    if (region->next_touch_claim(i, n)) {
      // Next touch after arming: the slice is re-homed (or, if still
      // unplaced, placed) exactly on the toucher's preferred DRAM zone
      // -- migration is precise where scattered first touch is not.
      if (z >= 0 && z != preferred) ++migrated;
      if (z != preferred) changed = true;
      z = preferred;
    } else if (z < 0) {
      z = first_touch_zone(my_zone);
      changed = true;
    }
  }
  if (migrated > 0) {
    counters_.add_on(current_cpu(), telemetry::Counter::kPageMigrations,
                     migrated);
    // Moving a slice costs a copy at the machine's memcpy bandwidth.
    const std::uint64_t slice_bytes =
        region->bytes() / static_cast<std::uint64_t>(n);
    if (engine_->current() != nullptr) {
      engine_->sleep_for(static_cast<sim::Time>(
          static_cast<double>(migrated * slice_bytes) /
          machine_.copy_bytes_per_ns));
    }
  }
  if (changed) region->set_slice_zones(std::move(zones));
  const int z = region->zone_for_partition(part, nparts);
  region->record_touch(z < 0 ? my_zone : z, preferred);
  return z < 0 ? my_zone : z;
}

std::optional<std::string> BaseOs::get_env(const std::string& key) const {
  auto it = env_.find(key);
  if (it == env_.end()) return std::nullopt;
  return it->second;
}

void BaseOs::set_env(const std::string& key, std::string value) {
  env_[key] = std::move(value);
}

long BaseOs::sys_conf(SysConfKey key) const {
  switch (key) {
    case SysConfKey::kNumProcessors:
    case SysConfKey::kNumProcessorsConf:
      return machine_.num_cpus;
    case SysConfKey::kPageSize:
      return 4096;
  }
  return -1;
}

}  // namespace kop::osal
