// BaseOs: the shared 90% of an Os implementation (thread plumbing over
// the sim engine, CPU occupancy, work charging, env vars).  The OS
// substrates subclass it and supply what actually differs: cost sheets
// and memory-placement policy -- plus their own distinctive subsystems
// (buddy allocator / task system / loader for Nautilus; paging, futexes
// and syscalls for the Linux model).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/exec_model.hpp"
#include "osal/osal.hpp"
#include "osal/tracer.hpp"
#include "osal/wait_queue.hpp"

namespace kop::osal {

class BaseOs : public Os {
 public:
  BaseOs(sim::Engine& engine, hw::MachineConfig machine, hw::OsCosts costs);
  ~BaseOs() override;

  sim::Engine& engine() override { return *engine_; }
  const hw::MachineConfig& machine() const override { return machine_; }
  const hw::OsCosts& costs() const override { return costs_; }
  void rebind_costs(const hw::OsCosts& costs) override;

  telemetry::CounterFabric& counters() override { return counters_; }
  ompt::Registry& tools() override { return tools_; }

  Thread* spawn_thread(std::string name, std::function<void()> fn,
                       int cpu = -1, sim::Time create_cost_ns = -1) override;
  void join_thread(Thread* t) override;
  Thread* current_thread() override;
  int current_cpu() override;
  void yield() override;
  void sleep_ns(sim::Time ns) override;

  void compute(const hw::WorkBlock& block, int data_zone) override;
  void atomic_op(int contenders) override;

  std::unique_ptr<WaitQueue> make_wait_queue() override;

  hw::MemRegion* alloc_region(std::string name, std::uint64_t bytes,
                              AllocPolicy policy) override;
  void free_region(hw::MemRegion* region) override;
  int resolve_data_zone(hw::MemRegion* region, int part, int nparts) override;
  void set_next_touch_migration(bool on) override {
    next_touch_migration_ = on;
  }

  std::optional<std::string> get_env(const std::string& key) const override;
  void set_env(const std::string& key, std::string value) override;
  long sys_conf(SysConfKey key) const override;

  hw::Cpu& cpu(int id) { return *cpus_.at(static_cast<std::size_t>(id)); }
  const hw::ExecModel& exec_model() const { return exec_; }

  /// Per-CPU activity tracing (Chrome trace-event export); disabled by
  /// default, enable with tracer().enable().
  Tracer& tracer() { return tracer_; }

 protected:
  /// OS-specific placement: page size, demand paging, zone assignment.
  virtual void place_region(hw::MemRegion& region, AllocPolicy policy) = 0;

  /// Zone a deferred (first-touch) slice actually lands in when the
  /// toucher's preferred zone is `preferred`.  The kernels place
  /// exactly; the Linux model overrides this to scatter a fraction of
  /// slices remotely (automatic NUMA balancing, THP collapse and
  /// reclaim all perturb placement on real systems).
  virtual int first_touch_zone(int preferred) { return preferred; }

  /// Granularity of deferred (first-touch) zone assignment.
  static constexpr int kFirstTouchSlices = 64;

  /// Marks a region for first-touch assignment (all slices unassigned).
  static void defer_placement(hw::MemRegion& region);

  sim::Engine* engine_;
  hw::MachineConfig machine_;
  hw::OsCosts costs_;
  hw::ExecModel exec_;

 private:
  class ThreadImpl;

  ThreadImpl* current_impl();

  Tracer tracer_;
  telemetry::CounterFabric counters_;
  ompt::Registry tools_;
  std::vector<std::unique_ptr<hw::Cpu>> cpus_;
  std::vector<std::unique_ptr<ThreadImpl>> threads_;
  std::vector<std::unique_ptr<hw::MemRegion>> regions_;
  std::unordered_map<std::string, std::string> env_;
  int next_rr_cpu_ = 0;
  /// Arm regions allocated from now on for migration-on-next-touch.
  bool next_touch_migration_ = false;
};

}  // namespace kop::osal
