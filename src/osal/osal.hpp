// OS abstraction layer: the contract between the OS substrates
// (nautilus, linuxmodel) and everything above them (pthread_compat,
// komp, virgil, the benchmark suites).
//
// Mirrors the paper's layering: libomp is written against pthreads +
// libc-ish services; pthreads is written against kernel primitives.
// Here those kernel primitives are the Os interface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "hw/cost_params.hpp"
#include "hw/memory.hpp"
#include "hw/topology.hpp"
#include "ompt/ompt.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "telemetry/counters.hpp"

namespace kop::osal {

/// Opaque handle to an OS thread (kernel thread in Nautilus, task in
/// the Linux model).
class Thread {
 public:
  virtual ~Thread() = default;
  virtual const std::string& name() const = 0;
  virtual int bound_cpu() const = 0;
  virtual bool done() const = 0;
};

/// NUMA placement request for a region allocation.
struct AllocPolicy {
  enum class Kind {
    kLocal,       // zone preferred by the allocating CPU
    kZone,        // explicit zone
    kInterleave,  // round-robin across DRAM zones
    kFirstTouch,  // zones assigned as partitions are first touched
  };
  Kind kind = Kind::kLocal;
  int zone = 0;  // for kZone

  static AllocPolicy local() { return {}; }
  static AllocPolicy in_zone(int z) { return {Kind::kZone, z}; }
  static AllocPolicy interleave() { return {Kind::kInterleave, 0}; }
  static AllocPolicy first_touch() { return {Kind::kFirstTouch, 0}; }
};

enum class SysConfKey {
  kNumProcessors,       // _SC_NPROCESSORS_ONLN
  kNumProcessorsConf,   // _SC_NPROCESSORS_CONF
  kPageSize,            // _SC_PAGESIZE
};

/// Blocking wait queue with spin-then-block wake semantics.
///
/// A waiter declares how long it is willing to spin (`spin_ns`, the
/// KMP_BLOCKTIME idea).  A notify that arrives while the waiter is
/// still inside its spin window wakes it at cacheline-transfer cost;
/// after the window the waiter has "gone to sleep" and the wake pays
/// the OS blocking-wake path (futex syscall + scheduler latency on
/// Linux; a direct scheduler poke in the kernel).  This one asymmetry
/// is responsible for most of the EPCC-visible differences between the
/// user-level and in-kernel runtimes.
class WaitQueue {
 public:
  virtual ~WaitQueue() = default;
  /// Block until notified.
  virtual void wait(sim::Time spin_ns) = 0;
  /// Block until notified or `deadline`; false on timeout.
  virtual bool wait_until(sim::Time deadline, sim::Time spin_ns) = 0;
  virtual void notify_one() = 0;
  virtual void notify_all() = 0;
  virtual std::size_t waiters() const = 0;
};

/// The kernel-primitive surface.
class Os {
 public:
  virtual ~Os() = default;

  virtual sim::Engine& engine() = 0;
  virtual const hw::MachineConfig& machine() const = 0;
  virtual const hw::OsCosts& costs() const = 0;
  /// Swap in a new cost sheet mid-run (checkpoint late binding): the
  /// execution model and per-CPU scheduling parameters are rebuilt from
  /// `costs`.  Call only at a quiescent boundary (no work block in
  /// flight); the personality must match the current sheet.
  virtual void rebind_costs(const hw::OsCosts& costs) = 0;

  // --- observability ---
  /// Per-CPU hardware/OS event counters (page faults, TLB misses,
  /// interrupts, ...).  Fed by the hw + osal layers and the substrates;
  /// snapshot after a run to explain the paper's §6.2 contrasts.
  virtual telemetry::CounterFabric& counters() = 0;
  /// OMPT-like tool registry: runtimes above (komp, virgil, nautilus
  /// task system) emit construct events; tools attach here without
  /// touching runtime code.
  virtual ompt::Registry& tools() = 0;

  // --- threads ---
  /// Spawn a thread bound to `cpu` (-1: round-robin placement).
  /// Creation cost is charged to the *caller*; `create_cost_ns`
  /// overrides the cost sheet's thread_create_ns (used by lighter
  /// execution contexts such as fibers; -1: use the sheet).
  virtual Thread* spawn_thread(std::string name, std::function<void()> fn,
                               int cpu = -1,
                               sim::Time create_cost_ns = -1) = 0;
  virtual void join_thread(Thread* t) = 0;
  virtual Thread* current_thread() = 0;
  virtual int current_cpu() = 0;
  virtual void yield() = 0;
  virtual void sleep_ns(sim::Time ns) = 0;

  // --- execution ---
  /// Run a work block on the current CPU (queueing/timeslicing under
  /// the OS's rules); charges the full cost model.
  virtual void compute(const hw::WorkBlock& block, int data_zone = -1) = 0;
  /// Pure-compute convenience.
  void compute_ns(sim::Time ns) {
    hw::WorkBlock b;
    b.cpu_ns = ns;
    compute(b);
  }
  /// Charge an atomic RMW on a cacheline contended by ~`contenders`
  /// other CPUs.
  virtual void atomic_op(int contenders = 0) = 0;

  // --- blocking ---
  virtual std::unique_ptr<WaitQueue> make_wait_queue() = 0;

  // --- memory ---
  virtual hw::MemRegion* alloc_region(std::string name, std::uint64_t bytes,
                                      AllocPolicy policy) = 0;
  virtual void free_region(hw::MemRegion* region) = 0;
  /// Zone the data for partition `part` of `nparts` of `region` lives
  /// in, applying first-touch assignment if the policy deferred it.
  virtual int resolve_data_zone(hw::MemRegion* region, int part, int nparts) = 0;
  /// Enable migration-on-next-touch as the placement policy for regions
  /// allocated from here on: each one is armed so its first access per
  /// slice re-homes the slice to the toucher's preferred DRAM zone.
  /// Default: unsupported, silently off (substrates opt in).
  virtual void set_next_touch_migration(bool on) { (void)on; }

  // --- environment / configuration (libomp's libc dependencies, §3.4) ---
  virtual std::optional<std::string> get_env(const std::string& key) const = 0;
  virtual void set_env(const std::string& key, std::string value) = 0;
  virtual long sys_conf(SysConfKey key) const = 0;
};

}  // namespace kop::osal
