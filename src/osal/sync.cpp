#include "osal/sync.hpp"

namespace kop::osal {

Mutex::Mutex(Os& os, sim::Time spin_ns)
    : os_(&os), spin_ns_(spin_ns), queue_(os.make_wait_queue()) {}

void Mutex::lock() {
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  while (held_) {
    queue_->wait(spin_ns_);
    // Barging: someone else may have taken the lock between our wake
    // and our run; loop re-checks.
  }
  held_ = true;
}

bool Mutex::try_lock() {
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  if (held_) return false;
  held_ = true;
  return true;
}

void Mutex::unlock() {
  held_ = false;
  os_->atomic_op(0);
  queue_->notify_one();
}

Spinlock::Spinlock(Os& os) : impl_(os, sim::kTimeNever) {}
void Spinlock::lock() { impl_.lock(); }
bool Spinlock::try_lock() { return impl_.try_lock(); }
void Spinlock::unlock() { impl_.unlock(); }

CondVar::CondVar(Os& os, sim::Time spin_ns)
    : os_(&os), spin_ns_(spin_ns), queue_(os.make_wait_queue()) {}

void CondVar::wait(Mutex& m) {
  // The engine is cooperative: between unlock() and queue_->wait() no
  // other sim thread can run, so the release+sleep pair is atomic and
  // there is no lost-wakeup window to close.
  m.unlock();
  queue_->wait(spin_ns_);
  m.lock();
}

bool CondVar::wait_until(Mutex& m, sim::Time deadline) {
  m.unlock();
  const bool notified = queue_->wait_until(deadline, spin_ns_);
  m.lock();
  return notified;
}

void CondVar::signal() { queue_->notify_one(); }

void CondVar::broadcast() { queue_->notify_all(); }

Barrier::Barrier(Os& os, int parties, sim::Time spin_ns)
    : os_(&os), parties_(parties), spin_ns_(spin_ns),
      queue_(os.make_wait_queue()) {}

void Barrier::arrive_and_wait() {
  // The arrival counter is a single hot cacheline; concurrent arrivals
  // serialize on it.
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  ++arrived_;
  if (arrived_ == parties_) {
    arrived_ = 0;
    queue_->notify_all();
  } else {
    queue_->wait(spin_ns_);
  }
}

Semaphore::Semaphore(Os& os, int initial, sim::Time spin_ns)
    : os_(&os), spin_ns_(spin_ns), count_(initial),
      queue_(os.make_wait_queue()) {}

void Semaphore::post() {
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  ++count_;
  queue_->notify_one();
}

void Semaphore::wait() {
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  while (count_ <= 0) queue_->wait(spin_ns_);
  --count_;
}

bool Semaphore::try_wait() {
  os_->atomic_op(0);
  if (count_ <= 0) return false;
  --count_;
  return true;
}

}  // namespace kop::osal
