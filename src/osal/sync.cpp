#include "osal/sync.hpp"

#include "sim/racecheck.hpp"

namespace kop::osal {

// Happens-before: each primitive publishes the caller's vector clock on
// the releasing side and joins it on the acquiring side (the race
// detector's acquire/release hooks are no-ops unless enabled).  The
// blocking paths additionally get edges from the engine's wake events;
// the object-level edges here are what covers the *non-blocking* paths
// (barging lock grabs, semaphore fast paths, already-released barriers).

Mutex::Mutex(Os& os, sim::Time spin_ns)
    : os_(&os), spin_ns_(spin_ns), queue_(os.make_wait_queue()) {}

void Mutex::lock() {
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  while (held_) {
    queue_->wait(spin_ns_);
    // Barging: someone else may have taken the lock between our wake
    // and our run; loop re-checks.
  }
  held_ = true;
  sim::race::acquire(os_->engine(), this);
}

bool Mutex::try_lock() {
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  if (held_) return false;
  held_ = true;
  sim::race::acquire(os_->engine(), this);
  return true;
}

void Mutex::unlock() {
  sim::race::release(os_->engine(), this);
  held_ = false;
  os_->atomic_op(0);
  queue_->notify_one();
}

Spinlock::Spinlock(Os& os) : impl_(os, sim::kTimeNever) {}
void Spinlock::lock() { impl_.lock(); }
bool Spinlock::try_lock() { return impl_.try_lock(); }
void Spinlock::unlock() { impl_.unlock(); }

CondVar::CondVar(Os& os, sim::Time spin_ns)
    : os_(&os), spin_ns_(spin_ns), queue_(os.make_wait_queue()) {}

void CondVar::wait(Mutex& m) {
  // The engine is cooperative: between unlock() and queue_->wait() no
  // other sim thread can run, so the release+sleep pair is atomic and
  // there is no lost-wakeup window to close.
  m.unlock();
  queue_->wait(spin_ns_);
  sim::race::acquire(os_->engine(), this);
  m.lock();
}

bool CondVar::wait_until(Mutex& m, sim::Time deadline) {
  m.unlock();
  const bool notified = queue_->wait_until(deadline, spin_ns_);
  if (notified) sim::race::acquire(os_->engine(), this);
  m.lock();
  return notified;
}

void CondVar::signal() {
  sim::race::release(os_->engine(), this);
  queue_->notify_one();
}

void CondVar::broadcast() {
  sim::race::release(os_->engine(), this);
  queue_->notify_all();
}

Barrier::Barrier(Os& os, int parties, sim::Time spin_ns)
    : os_(&os), parties_(parties), spin_ns_(spin_ns),
      queue_(os.make_wait_queue()) {}

void Barrier::arrive_and_wait() {
  // The arrival counter is a single hot cacheline; concurrent arrivals
  // serialize on it.
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  // Publish everything this thread did before the barrier...
  sim::race::release(os_->engine(), this);
  ++arrived_;
  if (arrived_ == parties_) {
    arrived_ = 0;
    queue_->notify_all();
  } else {
    queue_->wait(spin_ns_);
  }
  // ...and leave having observed every other party's arrival.
  sim::race::acquire(os_->engine(), this);
}

Semaphore::Semaphore(Os& os, int initial, sim::Time spin_ns)
    : os_(&os), spin_ns_(spin_ns), count_(initial),
      queue_(os.make_wait_queue()) {}

void Semaphore::post() {
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  sim::race::release(os_->engine(), this);
  ++count_;
  queue_->notify_one();
}

void Semaphore::wait() {
  os_->atomic_op(static_cast<int>(queue_->waiters()));
  while (count_ <= 0) queue_->wait(spin_ns_);
  --count_;
  sim::race::acquire(os_->engine(), this);
}

bool Semaphore::try_wait() {
  os_->atomic_op(0);
  if (count_ <= 0) return false;
  --count_;
  sim::race::acquire(os_->engine(), this);
  return true;
}

}  // namespace kop::osal
