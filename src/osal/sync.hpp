// Kernel-level synchronization primitives built on Os::make_wait_queue
// and the atomic-op cost model.  One implementation serves every
// substrate: the OsCosts wired into the owning Os determine whether a
// blocked waiter pays a futex wake (Linux) or a direct scheduler poke
// (Nautilus).
#pragma once

#include <memory>

#include "osal/osal.hpp"

namespace kop::osal {

/// Sleeping mutex with a configurable spin window and barging
/// semantics (an unlocked mutex can be grabbed by a runner before the
/// woken waiter arrives, like real futex-based locks).
class Mutex {
 public:
  explicit Mutex(Os& os, sim::Time spin_ns = 0);

  void lock();
  bool try_lock();
  void unlock();
  bool held() const { return held_; }

 private:
  Os* os_;
  sim::Time spin_ns_;
  bool held_ = false;
  std::unique_ptr<WaitQueue> queue_;
};

/// Pure spinlock: waiters never sleep; the wake is always a cacheline
/// transfer.  Matches Nautilus's interrupt-safe spinlocks.
class Spinlock {
 public:
  explicit Spinlock(Os& os);
  void lock();
  bool try_lock();
  void unlock();

 private:
  Mutex impl_;
};

class CondVar {
 public:
  explicit CondVar(Os& os, sim::Time spin_ns = 0);

  /// Atomically release `m` and wait; reacquires `m` before returning.
  void wait(Mutex& m);
  /// Timed variant; false on timeout (m reacquired either way).
  bool wait_until(Mutex& m, sim::Time deadline);
  void signal();
  void broadcast();
  std::size_t waiters() const { return queue_->waiters(); }

 private:
  Os* os_;
  sim::Time spin_ns_;
  std::unique_ptr<WaitQueue> queue_;
};

/// Centralized sense-reversing barrier.  Arrival is one contended RMW;
/// release is a broadcast on the sense flag's cacheline.
class Barrier {
 public:
  Barrier(Os& os, int parties, sim::Time spin_ns = sim::kTimeNever);

  void arrive_and_wait();
  int parties() const { return parties_; }

 private:
  Os* os_;
  int parties_;
  sim::Time spin_ns_;
  int arrived_ = 0;
  std::unique_ptr<WaitQueue> queue_;
};

class Semaphore {
 public:
  Semaphore(Os& os, int initial, sim::Time spin_ns = 0);
  void post();
  void wait();
  bool try_wait();
  int value() const { return count_; }

 private:
  Os* os_;
  sim::Time spin_ns_;
  int count_;
  std::unique_ptr<WaitQueue> queue_;
};

}  // namespace kop::osal
