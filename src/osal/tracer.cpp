#include "osal/tracer.hpp"

#include <sstream>

namespace kop::osal {

namespace {
void append_escaped(std::ostringstream& oss, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') oss << '\\';
    oss << c;
  }
}
}  // namespace

std::string Tracer::to_chrome_json() const {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) oss << ",";
    first = false;
    oss << "{\"name\":\"";
    append_escaped(oss, e.name);
    oss << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.cpu
        << ",\"ts\":" << sim::to_micros(e.start)
        << ",\"dur\":" << sim::to_micros(e.duration) << "}";
  }
  oss << "],\"displayTimeUnit\":\"ms\"}";
  return oss.str();
}

}  // namespace kop::osal
