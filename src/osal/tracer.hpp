// Execution tracing: records per-CPU activity intervals and exports
// them in the Chrome trace-event format (load chrome://tracing or
// https://ui.perfetto.dev on the JSON to see the simulated machine's
// timeline -- which threads ran where, barrier waits, stragglers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace kop::osal {

class Tracer {
 public:
  struct Event {
    std::string name;
    int cpu = 0;
    sim::Time start = 0;
    sim::Time duration = 0;
  };

  void record(std::string name, int cpu, sim::Time start, sim::Time duration) {
    if (!enabled_) return;
    events_.push_back(Event{std::move(name), cpu, start, duration});
  }

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }
  void clear() { events_.clear(); }
  const std::vector<Event>& events() const { return events_; }

  /// Chrome trace-event JSON ("X" complete events; pid = 1, tid = CPU;
  /// timestamps in microseconds as the format requires).
  std::string to_chrome_json() const;

 private:
  bool enabled_ = false;
  std::vector<Event> events_;
};

}  // namespace kop::osal
