#include "osal/wait_queue.hpp"

#include <algorithm>

namespace kop::osal {

void GenericWaitQueue::wait(sim::Time spin_ns) {
  auto w = std::make_shared<Waiter>();
  w->token = engine_->arm_wake_token();
  w->wait_start = engine_->now();
  w->spin_ns = spin_ns;
  queue_.push_back(w);
  engine_->block();
  // Plain waits are only resumed by a notify.
}

bool GenericWaitQueue::wait_until(sim::Time deadline, sim::Time spin_ns) {
  auto w = std::make_shared<Waiter>();
  w->token = engine_->arm_wake_token();
  w->wait_start = engine_->now();
  w->spin_ns = spin_ns;
  queue_.push_back(w);
  engine_->wake_token_at(w->token, deadline);
  engine_->block();
  if (!w->notified) {
    // Timed out: drop ourselves from the queue.
    queue_.erase(std::remove(queue_.begin(), queue_.end(), w), queue_.end());
    return false;
  }
  return true;
}

bool GenericWaitQueue::wake_waiter(Waiter& w, int rank) {
  const sim::Time now = engine_->now();
  const bool was_spinning = (now - w.wait_start) <= w.spin_ns;
  sim::Time delay;
  if (was_spinning) {
    // The waiter is polling a shared flag: it observes the store one
    // cacheline transfer later (staggered across a broadcast).
    delay = machine_->cacheline_transfer_ns * (1 + rank / 4);
  } else {
    // The waiter went to sleep: pay the OS blocking-wake path.
    delay = static_cast<sim::Time>(engine_->rng().lognormal_mean_cv(
        static_cast<double>(costs_->wake_latency_ns), costs_->wake_cv));
    delay += costs_->context_switch_ns;
  }
  if (counters_) {
    using telemetry::Counter;
    if (was_spinning) {
      counters_->add(Counter::kSpinWakes);
    } else {
      counters_->add(Counter::kBlockingWakes);
      counters_->add(Counter::kContextSwitches);
      // In-kernel runtimes wake a remote sleeper with an IPI poke
      // instead of a futex syscall.
      if (costs_->syscall_ns <= 0) counters_->add(Counter::kIpis);
    }
  }
  w.notified = true;
  engine_->wake_token_at(w.token, now + delay);
  return !was_spinning;
}

void GenericWaitQueue::charge_waker_syscall() {
  // The waker enters the kernel to perform the wake (futex syscall on
  // Linux; free for in-kernel code where the wake is a function call).
  if (costs_->syscall_ns > 0 && engine_->current() != nullptr) {
    if (counters_) counters_->add(telemetry::Counter::kSyscalls);
    engine_->sleep_for(costs_->syscall_ns);
  }
}

void GenericWaitQueue::notify_one() {
  while (!queue_.empty()) {
    auto w = queue_.front();
    queue_.pop_front();
    if (w->notified) continue;  // already handled (timeout raced us)
    const bool slept = wake_waiter(*w, 0);
    if (slept) charge_waker_syscall();
    return;
  }
}

void GenericWaitQueue::notify_all() {
  bool any_slept = false;
  int rank = 0;
  for (auto& w : queue_) {
    if (w->notified) continue;
    any_slept |= wake_waiter(*w, rank++);
  }
  queue_.clear();
  if (any_slept) charge_waker_syscall();
}

}  // namespace kop::osal
