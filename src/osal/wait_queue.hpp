// Generic, cost-parameterized WaitQueue implementation shared by both
// OS substrates (they differ only in the OsCosts they pass in).
#pragma once

#include <deque>
#include <memory>

#include "osal/osal.hpp"

namespace kop::osal {

class GenericWaitQueue final : public WaitQueue {
 public:
  GenericWaitQueue(sim::Engine& engine, const hw::MachineConfig& machine,
                   const hw::OsCosts& costs,
                   telemetry::CounterFabric* counters = nullptr)
      : engine_(&engine),
        machine_(&machine),
        costs_(&costs),
        counters_(counters) {}

  void wait(sim::Time spin_ns) override;
  bool wait_until(sim::Time deadline, sim::Time spin_ns) override;
  void notify_one() override;
  void notify_all() override;
  std::size_t waiters() const override { return queue_.size(); }

 private:
  struct Waiter {
    sim::WakeToken token;
    sim::Time wait_start = 0;
    sim::Time spin_ns = 0;
    bool notified = false;
  };

  /// Wake `w` with the appropriate latency; `rank` staggers broadcast
  /// wakes (the release wave of a barrier is serialized on the flag's
  /// cacheline).  Returns true if the waiter had left its spin window
  /// (i.e. the waker used the expensive blocking-wake path).
  bool wake_waiter(Waiter& w, int rank);
  void charge_waker_syscall();

  sim::Engine* engine_;
  const hw::MachineConfig* machine_;
  const hw::OsCosts* costs_;
  telemetry::CounterFabric* counters_;
  std::deque<std::shared_ptr<Waiter>> queue_;
};

}  // namespace kop::osal
