#include "pik/gang.hpp"

#include <algorithm>
#include <stdexcept>

namespace kop::pik {

GangScheduler::GangScheduler(osal::Os& os, Policy policy, int groups,
                             sim::Time window_ns)
    : os_(&os), policy_(policy), groups_(groups), window_ns_(window_ns) {
  if (groups <= 0) throw std::invalid_argument("GangScheduler: groups <= 0");
  if (window_ns <= 0) throw std::invalid_argument("GangScheduler: window <= 0");
}

namespace {
/// Deterministic per-CPU phase shift for the uncoordinated policy:
/// CPUs drift apart the way independent tick-aligned runqueues do.
/// Spread over the whole group cycle so CPUs genuinely disagree about
/// which group is running.
sim::Time cpu_phase(int cpu, sim::Time window, int groups) {
  const sim::Time cycle = window * static_cast<sim::Time>(groups);
  return (static_cast<sim::Time>(cpu) * 2654435761LL) % cycle;
}
}  // namespace

bool GangScheduler::active(int group, int cpu, sim::Time now) const {
  const sim::Time phase =
      policy_ == Policy::kGang ? 0 : cpu_phase(cpu, window_ns_, groups_);
  const sim::Time slot = ((now + phase) / window_ns_) %
                         static_cast<sim::Time>(groups_);
  return slot == static_cast<sim::Time>(group);
}

sim::Time GangScheduler::time_to_active(int group, int cpu,
                                        sim::Time now) const {
  if (active(group, cpu, now)) return 0;
  const sim::Time phase =
      policy_ == Policy::kGang ? 0 : cpu_phase(cpu, window_ns_, groups_);
  const sim::Time shifted = now + phase;
  const sim::Time cycle = window_ns_ * static_cast<sim::Time>(groups_);
  const sim::Time group_start =
      static_cast<sim::Time>(group) * window_ns_;
  const sim::Time pos = shifted % cycle;
  sim::Time wait = group_start - pos;
  if (wait < 0) wait += cycle;
  return wait;
}

void GangScheduler::compute(int group, int cpu, sim::Time ns) {
  sim::Time remaining = ns;
  while (remaining > 0) {
    const sim::Time now = os_->engine().now();
    const sim::Time wait = time_to_active(group, cpu, now);
    if (wait > 0) {
      // Descheduled: park until the group's window opens here.
      os_->engine().sleep_for(wait + os_->costs().context_switch_ns);
      ++window_switches_;
      continue;
    }
    // Run until the work finishes or the window closes.
    const sim::Time phase =
        policy_ == Policy::kGang ? 0 : cpu_phase(cpu, window_ns_, groups_);
    const sim::Time into_window = (os_->engine().now() + phase) % window_ns_;
    const sim::Time left_in_window = window_ns_ - into_window;
    const sim::Time slice = std::min(remaining, left_in_window);
    os_->compute_ns(slice);
    remaining -= slice;
  }
}

}  // namespace kop::pik
