// Gang scheduling for kernel-mode process thread groups (§4.2: the
// process abstraction "combines the notion of a kernel thread group
// (which can be gang-scheduled)").
//
// When two processes share the same CPUs, a gang scheduler runs all
// threads of one group simultaneously in each window, so barrier-heavy
// teams never wait on a descheduled partner.  Uncoordinated
// timeslicing instead dephases the team: at any instant only part of a
// gang runs, and every barrier stretches across scheduling windows.
//
// GangScheduler models both policies over the simulated CPUs: group
// threads execute their compute through the scheduler, which parks
// them while their gang is inactive.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osal/osal.hpp"

namespace kop::pik {

class GangScheduler {
 public:
  enum class Policy {
    kGang,         // whole-group windows, coordinated across CPUs
    kUncoordinated  // per-CPU windows with per-CPU phase offsets
  };

  /// `window_ns`: scheduling window; `groups`: how many thread groups
  /// share the CPUs (each thread belongs to one group id < groups).
  GangScheduler(osal::Os& os, Policy policy, int groups,
                sim::Time window_ns = 2 * sim::kMillisecond);

  Policy policy() const { return policy_; }
  int groups() const { return groups_; }

  /// Execute `ns` of CPU work on behalf of `group`, running only
  /// inside the group's scheduling windows (plus a context-switch
  /// charge at each window boundary crossed).  Must be called from the
  /// thread's own sim context; `cpu` selects the per-CPU phase for the
  /// uncoordinated policy.
  void compute(int group, int cpu, sim::Time ns);

  /// True if `group` is currently scheduled on `cpu`.
  bool active(int group, int cpu, sim::Time now) const;

  /// Virtual time until `group` next becomes active on `cpu` (0 if
  /// active now).
  sim::Time time_to_active(int group, int cpu, sim::Time now) const;

  std::uint64_t window_switches() const { return window_switches_; }

 private:
  osal::Os* os_;
  Policy policy_;
  int groups_;
  sim::Time window_ns_;
  std::uint64_t window_switches_ = 0;
};

}  // namespace kop::pik
