#include "pik/pik.hpp"

#include "komp/tuning.hpp"

namespace kop::pik {

nautilus::ExecutableImage default_app_image(const std::string& name,
                                            std::uint64_t app_static_bytes) {
  nautilus::ExecutableImage img;
  img.name = name;
  img.position_independent = true;  // -fPIE (§4.1, the one extra flag)
  img.statically_linked = true;     // static PIE via the nld link script
  img.text_bytes = 6ULL << 20;
  img.rodata_bytes = 2ULL << 20;
  img.data_bytes = 1ULL << 20;
  img.bss_bytes = app_static_bytes;
  img.tls.tdata_bytes = 64ULL << 10;
  img.tls.tbss_bytes = 192ULL << 10;
  img.linked_libs = {"libomp.a", "libc.a", "libm.a", "libpthread.a",
                     "libstdc++.a", "crt0.o"};
  img.header.magic = nautilus::kMultiboot2Magic64;
  img.header.image_bytes = img.loadable_bytes();
  img.header.entry_offset = 0x1000;
  return img;
}

PikStack::PikStack(PikOptions options) : options_(std::move(options)) {
  engine_ = std::make_unique<sim::Engine>(options_.seed, options_.sched);
  if (options_.racecheck) engine_->enable_racecheck();
  os_ = std::make_unique<PikOs>(*engine_, options_.machine);
  // Physical window the loader and mmap emulation draw from.
  phys_ = std::make_unique<nautilus::BuddyAllocator>(
      /*base=*/4ULL << 30, /*size=*/32ULL << 30, /*min_block=*/4096);
  loader_ = std::make_unique<nautilus::Loader>(*phys_);
  tls_ = std::make_unique<nautilus::TlsSupport>(*phys_);
  futex_ = std::make_unique<linuxmodel::FutexTable>(*os_);
  syscalls_ = std::make_unique<SyscallTable>(*os_);

  // The unchanged user binary: glibc pthreads tuning, clone() routed
  // through the emulated syscall table.
  auto tuning = pthread_compat::linux_glibc_tuning();
  tuning.flavor = "pik-glibc";
  tuning.on_thread_create = [this]() {
    SyscallArgs args;
    args.arg[0] = 0x3d0f00;  // CLONE_VM|CLONE_FS|... (flags, informational)
    syscalls_->invoke(Sys::kClone, args);
  };
  pthreads_ = std::make_unique<pthread_compat::Pthreads>(*os_, tuning);

  install_syscalls();
}

PikStack::~PikStack() = default;

void PikStack::install_syscalls() {
  syscalls_->implement(Sys::kWrite, [this](const SyscallArgs& a) {
    const std::uint64_t fd = a.arg[0];
    if (fd != 1 && fd != 2) return SyscallResult{kEbadf, {}};
    console_ += a.data;
    return SyscallResult{static_cast<long>(a.data.size()), {}};
  });

  syscalls_->implement(Sys::kOpenat, [this](const SyscallArgs& a) {
    // Virtual filesystems are not implemented except /proc/self (§4.3).
    if (a.path.rfind("/proc/self", 0) != 0) return SyscallResult{kEnoent, {}};
    OpenFile f;
    f.path = a.path;
    if (a.path == "/proc/self/status") {
      f.content =
          "Name:\t" + (process_ ? process_->name : std::string("pik")) +
          "\nPid:\t1\nThreads:\t" + std::to_string(1 + pthreads_->threads_created()) +
          "\n";
    } else if (a.path == "/proc/self/maps") {
      f.content = "00000000-ffffffff rw-p 00000000 00:00 0 [pik]\n";
    } else {
      return SyscallResult{kEnoent, {}};
    }
    const int fd = next_fd_++;
    fds_[fd] = std::move(f);
    return SyscallResult{fd, {}};
  });

  syscalls_->implement(Sys::kRead, [this](const SyscallArgs& a) {
    auto it = fds_.find(static_cast<int>(a.arg[0]));
    if (it == fds_.end()) return SyscallResult{kEbadf, {}};
    OpenFile& f = it->second;
    const std::size_t want = a.arg[2];
    const std::string out = f.content.substr(
        std::min(f.offset, f.content.size()), want);
    f.offset += out.size();
    return SyscallResult{static_cast<long>(out.size()), out};
  });

  syscalls_->implement(Sys::kClose, [this](const SyscallArgs& a) {
    return SyscallResult{fds_.erase(static_cast<int>(a.arg[0])) > 0 ? 0 : kEbadf,
                         {}};
  });

  syscalls_->implement(Sys::kMmap, [this](const SyscallArgs& a) {
    const std::uint64_t len = a.arg[1];
    if (len == 0) return SyscallResult{kEinval, {}};
    const std::uint64_t addr = phys_->alloc(len);
    mmaps_[addr] = len;
    return SyscallResult{static_cast<long>(addr), {}};
  });

  syscalls_->implement(Sys::kMunmap, [this](const SyscallArgs& a) {
    auto it = mmaps_.find(a.arg[0]);
    if (it == mmaps_.end()) return SyscallResult{kEinval, {}};
    phys_->free(it->first);
    mmaps_.erase(it);
    return SyscallResult{0, {}};
  });

  syscalls_->implement(Sys::kMprotect,
                       [](const SyscallArgs&) { return SyscallResult{0, {}}; });
  syscalls_->implement(Sys::kBrk, [this](const SyscallArgs& a) {
    // Minimal brk: report a fixed break; libomp's allocations go
    // through mmap anyway.
    (void)a;
    return SyscallResult{static_cast<long>(0x20000000), {}};
  });
  syscalls_->implement(Sys::kRtSigprocmask,
                       [](const SyscallArgs&) { return SyscallResult{0, {}}; });

  syscalls_->implement(Sys::kSchedYield, [this](const SyscallArgs&) {
    if (engine_->current() != nullptr) engine_->post_in(0, [] {});
    return SyscallResult{0, {}};
  });

  syscalls_->implement(Sys::kNanosleep, [this](const SyscallArgs& a) {
    if (engine_->current() != nullptr)
      engine_->sleep_for(static_cast<sim::Time>(a.arg[0]));
    return SyscallResult{0, {}};
  });

  syscalls_->implement(Sys::kGetpid,
                       [](const SyscallArgs&) { return SyscallResult{1, {}}; });
  syscalls_->implement(Sys::kGettid,
                       [](const SyscallArgs&) { return SyscallResult{1, {}}; });

  syscalls_->implement(Sys::kClone, [this](const SyscallArgs&) {
    // Thread creation itself happens in the kernel's thread layer; the
    // syscall records the crossing and returns a tid.  Per-stack state
    // (not function-static): several PikStack engines may run
    // concurrently on different host threads.
    return SyscallResult{next_clone_tid_++, {}};
  });

  syscalls_->implement(Sys::kArchPrctl, [this](const SyscallArgs& a) {
    constexpr std::uint64_t kArchSetFs = 0x1002;
    if (a.arg[0] != kArchSetFs) return SyscallResult{kEinval, {}};
    tls_->set_fsbase(/*thread_id=*/1, a.arg[1]);
    return SyscallResult{0, {}};
  });

  syscalls_->implement(Sys::kFutex, [this](const SyscallArgs& a) {
    constexpr std::uint64_t kFutexWait = 0;
    constexpr std::uint64_t kFutexWake = 1;
    const std::uint64_t op = a.arg[1] & 0x7f;
    if (op == kFutexWait) {
      futex_->wait(a.arg[0]);
      return SyscallResult{0, {}};
    }
    if (op == kFutexWake) {
      return SyscallResult{futex_->wake(a.arg[0], static_cast<int>(a.arg[2])),
                           {}};
    }
    return SyscallResult{kEinval, {}};
  });

  syscalls_->implement(Sys::kSchedGetaffinity, [this](const SyscallArgs&) {
    // Returns the mask size; libomp uses this to size its thread pool.
    return SyscallResult{os_->machine().num_cpus, {}};
  });

  syscalls_->implement(Sys::kSetTidAddress,
                       [](const SyscallArgs&) { return SyscallResult{1, {}}; });

  syscalls_->implement(Sys::kClockGettime, [this](const SyscallArgs&) {
    // The vDSO is not detected (§4.3), so time queries are real
    // syscalls in PIK.
    return SyscallResult{static_cast<long>(engine_->now()), {}};
  });

  syscalls_->implement(Sys::kExitGroup, [this](const SyscallArgs& a) {
    if (process_ != nullptr) {
      process_->exited = true;
      process_->exit_code = static_cast<int>(a.arg[0]);
    }
    return SyscallResult{0, {}};
  });

  syscalls_->implement(Sys::kGetrandom, [this](const SyscallArgs& a) {
    return SyscallResult{static_cast<long>(a.arg[1]),
                         std::string(a.arg[1], '\x42')};
  });
}

void PikStack::prestart(PikProcess& proc) {
  // The "pre-start" wrapper (§4.2): complete the Linux-process
  // illusion before crt0/main.  This is the C-runtime startup sequence
  // a static-PIE glibc binary performs, over the emulated interface.
  SyscallArgs a;

  // TLS for the initial thread: clone .tdata, zero .tbss, point FSBASE.
  const std::uint64_t fsbase = tls_->create_block(proc.program.tls);
  a = {};
  a.arg[0] = 0x1002;  // ARCH_SET_FS
  a.arg[1] = fsbase;
  syscalls_->invoke(Sys::kArchPrctl, a);

  a = {};
  syscalls_->invoke(Sys::kSetTidAddress, a);
  syscalls_->invoke(Sys::kBrk, a);
  syscalls_->invoke(Sys::kRtSigprocmask, a);

  // Early mmap for malloc's first arena.
  a = {};
  a.arg[1] = 4ULL << 20;
  syscalls_->invoke(Sys::kMmap, a);

  // libomp bring-up: topology + /proc/self (§4.3).
  a = {};
  syscalls_->invoke(Sys::kSchedGetaffinity, a);
  a = {};
  a.path = "/proc/self/status";
  const auto fd = syscalls_->invoke(Sys::kOpenat, a);
  if (fd.rv >= 0) {
    SyscallArgs r;
    r.arg[0] = static_cast<std::uint64_t>(fd.rv);
    r.arg[2] = 4096;
    syscalls_->invoke(Sys::kRead, r);
    SyscallArgs c;
    c.arg[0] = static_cast<std::uint64_t>(fd.rv);
    syscalls_->invoke(Sys::kClose, c);
  }
  a = {};
  a.arg[1] = 16;
  syscalls_->invoke(Sys::kGetrandom, a);
  syscalls_->invoke(Sys::kClockGettime, {});

  proc.prestart_complete = true;
}

int PikStack::run_app(const std::string& name, AppMain app) {
  return run_app(name, default_app_image(name, options_.app_static_bytes),
                 std::move(app));
}

int PikStack::run_app(const std::string& name,
                      const nautilus::ExecutableImage& image, AppMain app) {
  process_ = std::make_unique<PikProcess>();
  process_->name = name;
  process_->environ["OMP_NUM_THREADS"] =
      os_->get_env("OMP_NUM_THREADS").value_or("");

  os_->spawn_thread(
      "pik:" + name,
      [this, image, app = std::move(app)]() {
        // Loader: validate header, place the blob, init BSS/TBSS (§4.2).
        engine_->sleep_for(loader_->load_cost(image));
        process_->program = loader_->load(image);

        prestart(*process_);

        {
          // The pristine libomp (identical tuning to Linux, §6.1).
          komp::Runtime runtime(*pthreads_, komp::pik_libomp_tuning());
          const int code = app(runtime);
          SyscallArgs a;
          a.arg[0] = static_cast<std::uint64_t>(code);
          syscalls_->invoke(Sys::kExitGroup, a);
        }
        loader_->unload(process_->program);
      },
      /*cpu=*/0);
  engine_->run();
  return process_->exit_code;
}

}  // namespace kop::pik
