// Process-in-kernel (PIK, paper §4): an unmodified, statically linked
// PIE executable (libomp and libc folded in by `nld`) is loaded by the
// kernel's multiboot2-aware loader into a kernel-mode process and run
// against a Linux-emulating syscall interface.
//
// PikStack assembles: engine -> PikOs (kernel execution personality,
// user-layout memory) -> loader + TLS + futex + syscall table ->
// pristine glibc-tuned pthreads -> pristine libomp tuning -> app.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "komp/runtime.hpp"
#include "linuxmodel/futex.hpp"
#include "nautilus/buddy.hpp"
#include "nautilus/loader.hpp"
#include "nautilus/tls.hpp"
#include "pik/pik_os.hpp"
#include "pik/syscalls.hpp"
#include "pthread_compat/pthreads.hpp"

namespace kop::pik {

struct PikOptions {
  hw::MachineConfig machine;
  std::uint64_t seed = 42;
  /// Engine scheduling policy (FIFO / seeded-random / PCT).
  sim::SchedConfig sched;
  /// Attach the vector-clock race detector.
  bool racecheck = false;
  /// Static data the application links in (PIK has no boot-image/MMIO
  /// constraint: the loader places the image anywhere, §6.2).
  std::uint64_t app_static_bytes = 64ULL << 20;
};

/// Build the static-PIE image nld would produce for an app: text,
/// data, gigantic BSS, TLS template, and the whole user-space library
/// stack folded in (which is why PIK images dwarf kernel modules, §7).
nautilus::ExecutableImage default_app_image(const std::string& name,
                                            std::uint64_t app_static_bytes);

/// The kernel-mode process abstraction (§4.2): a thread group with a
/// pre-start wrapper that completes Linux-compat setup before main().
struct PikProcess {
  std::string name;
  nautilus::LoadedProgram program;
  bool prestart_complete = false;
  int exit_code = -1;
  bool exited = false;
  std::map<std::string, std::string> environ;
};

class PikStack {
 public:
  explicit PikStack(PikOptions options);
  ~PikStack();

  sim::Engine& engine() { return *engine_; }
  PikOs& os() { return *os_; }
  SyscallTable& syscalls() { return *syscalls_; }
  pthread_compat::Pthreads& pthreads() { return *pthreads_; }
  nautilus::Loader& loader() { return *loader_; }
  PikProcess* process() { return process_.get(); }
  const std::string& console() const { return console_; }

  using AppMain = std::function<int(komp::Runtime&)>;

  /// CreateProcess-style flow (§4.2): load the image, run the
  /// pre-start wrapper (C runtime startup over emulated syscalls),
  /// execute the app with the pristine libomp, exit_group.  Drains the
  /// engine; returns the exit code.
  int run_app(const std::string& name, AppMain app);
  int run_app(const std::string& name, const nautilus::ExecutableImage& image,
              AppMain app);

 private:
  void install_syscalls();
  void prestart(PikProcess& proc);

  PikOptions options_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<PikOs> os_;
  std::unique_ptr<nautilus::BuddyAllocator> phys_;
  std::unique_ptr<nautilus::Loader> loader_;
  std::unique_ptr<nautilus::TlsSupport> tls_;
  std::unique_ptr<linuxmodel::FutexTable> futex_;
  std::unique_ptr<SyscallTable> syscalls_;
  std::unique_ptr<pthread_compat::Pthreads> pthreads_;
  std::unique_ptr<PikProcess> process_;
  std::string console_;
  long next_clone_tid_ = 2;
  // fd table for the /proc/self subset (§4.3: "not implemented with
  // the exception of /proc/self").
  struct OpenFile {
    std::string path;
    std::string content;
    std::size_t offset = 0;
  };
  std::map<int, OpenFile> fds_;
  int next_fd_ = 3;
  std::uint64_t next_mmap_ = 0;
  std::map<std::uint64_t, std::uint64_t> mmaps_;  // addr -> bytes
};

}  // namespace kop::pik
