#include "pik/pik_os.hpp"

#include "hw/cost_params.hpp"

namespace kop::pik {

hw::OsCosts pik_costs(const hw::MachineConfig& m) {
  hw::OsCosts c = hw::nautilus_costs(m);
  c.personality = "pik";
  // Same binary interface as Linux, but the "kernel" is a function in
  // the same address space at the same privilege (§4.3).
  c.syscall_ns = (m.name == "phi") ? 400 : 150;
  // futex is emulated in-kernel: a crossing plus a scheduler poke --
  // cheaper than Linux, pricier than RTK's direct call.
  c.wake_latency_ns = (m.name == "phi") ? 3600 : 1300;
  c.wake_cv = 0.12;  // §6.1: "considerably lower variation" than Linux
  c.thread_create_ns += c.syscall_ns;  // clone() crossing
  c.alloc_base_ns = 1400;              // mmap emulation over the buddy
  // The PIK binary is compiled *with* the red zone (§4.2: the kernel
  // uses an IST trampoline on interrupts instead of -mno-red-zone).
  c.compute_inflation = 1.0;
  return c;
}

PikOs::PikOs(sim::Engine& engine, hw::MachineConfig machine)
    : PikOs(engine, machine, pik_costs(machine)) {}

PikOs::PikOs(sim::Engine& engine, hw::MachineConfig machine, hw::OsCosts costs)
    : BaseOs(engine, std::move(machine), std::move(costs)) {}

void PikOs::place_region(hw::MemRegion& region, osal::AllocPolicy policy) {
  // Emulated mmap: the kernel maps the pages immediately (no demand
  // paging -- §4.2's loader preallocates, and heap requests come
  // straight out of the buddy), but the address-space layout follows
  // the user binary's expectations: 2 MB mappings with a 4K residue.
  region.set_demand_paged(false);
  region.set_page_size(hw::PageSize::k2M);
  // The buddy hands out naturally aligned blocks, so nearly all of a
  // large request maps at 2 MB; only heads/tails stay 4K.
  region.set_small_page_fraction(0.10);

  using Kind = osal::AllocPolicy::Kind;
  switch (policy.kind) {
    case Kind::kZone:
      region.set_home_zone(policy.zone);
      break;
    case Kind::kLocal:
    case Kind::kInterleave:
    case Kind::kFirstTouch:
      // The emulated mmap preserves Linux *semantics* -- physical
      // backing is assigned as threads first touch their slices (the
      // backing itself is a cheap buddy call, so no fault cost) -- and
      // the kernel places each slice exactly on the toucher's zone.
      defer_placement(region);
      break;
  }
}

}  // namespace kop::pik
