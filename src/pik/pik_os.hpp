// The execution personality a PIK process sees: kernel-mode execution
// (no faults, no noise, steered interrupts) but through a user-level
// binary's lens -- services cross the emulated syscall interface, and
// memory keeps the user-level 2 MB-grained mapping layout the
// static-PIE image and emulated mmap produce (rather than RTK's 1 GB
// identity map), leaving a 4K residue.  That difference is why PIK
// recovers most, but not all, of RTK's translation benefits (paper
// Fig. 9 vs Fig. 10).
#pragma once

#include "osal/base_os.hpp"

namespace kop::pik {

/// Cost sheet for PIK: kernel-grade wake/thread costs plus a cheap
/// same-privilege syscall crossing.
hw::OsCosts pik_costs(const hw::MachineConfig& m);

class PikOs final : public osal::BaseOs {
 public:
  PikOs(sim::Engine& engine, hw::MachineConfig machine);
  PikOs(sim::Engine& engine, hw::MachineConfig machine, hw::OsCosts costs);

 protected:
  void place_region(hw::MemRegion& region, osal::AllocPolicy policy) override;
};

}  // namespace kop::pik
