#include "pik/syscalls.hpp"

namespace kop::pik {

SyscallTable::SyscallTable(osal::Os& os) : os_(&os) {}

void SyscallTable::implement(Sys nr, Handler handler) {
  handlers_[static_cast<int>(nr)] = std::move(handler);
}

SyscallResult SyscallTable::invoke(int nr, const SyscallArgs& args) {
  // Same privilege level, same address space, caller's stack: the
  // crossing is the cost-sheet "syscall", far below a Linux one.
  if (os_->engine().current() != nullptr && os_->costs().syscall_ns > 0)
    os_->engine().sleep_for(os_->costs().syscall_ns);
  os_->counters().add_on(
      os_->engine().current() != nullptr ? os_->current_cpu() : -1,
      telemetry::Counter::kSyscalls);
  ++total_calls_;
  ++counts_[nr];
  auto it = handlers_.find(nr);
  if (it == handlers_.end()) {
    ++enosys_counts_[nr];
    return SyscallResult{kEnosys, {}};
  }
  return it->second(args);
}

std::uint64_t SyscallTable::calls(Sys nr) const {
  auto it = counts_.find(static_cast<int>(nr));
  return it == counts_.end() ? 0 : it->second;
}

std::vector<int> SyscallTable::unimplemented_seen() const {
  std::vector<int> out;
  for (const auto& [nr, count] : enosys_counts_) {
    if (count > 0) out.push_back(nr);
  }
  return out;
}

bool SyscallTable::is_implemented(Sys nr) const {
  return handlers_.count(static_cast<int>(nr)) > 0;
}

}  // namespace kop::pik
